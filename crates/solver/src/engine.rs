//! The search engine.

use idl::{Atom, AtomKind, CTree, CompiledConstraint, EdgeKind, TypeClass};
use ssair::analysis::{
    all_control_flow_passes_through, all_data_flow_passes_through, kernel_slice, Analyses,
};
use ssair::{Function, Opcode, ValueId, ValueKind};
use std::collections::{BTreeMap, HashSet};

/// Pure math callees allowed inside extracted kernel functions (matches
/// the minicc intrinsic set).
pub const PURE_CALLS: &[&str] = &[
    "sqrt", "fabs", "exp", "log", "sin", "cos", "pow", "fmin", "fmax",
];

/// One satisfying assignment: flattened variable name → IR value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The bindings, including family members produced by `collect` and
    /// `Concat`.
    pub bindings: BTreeMap<String, ValueId>,
}

/// Search limits.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Stop after this many solutions.
    pub max_solutions: usize,
    /// Abort the search after this many assignment steps (guards
    /// pathological formulas; generously above anything the idiom library
    /// needs on benchmark-sized functions).
    pub max_steps: u64,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            max_solutions: 256,
            max_steps: 20_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

type Assignment = BTreeMap<String, ValueId>;

/// A solver instance for one function (analyses and value buckets are
/// computed once and reused across idiom queries, as the paper's compiler
/// does per compilation unit).
pub struct Solver<'f> {
    f: &'f Function,
    an: Analyses,
    all_values: Vec<ValueId>,
    instructions: Vec<ValueId>,
    constants: Vec<ValueId>,
    arguments: Vec<ValueId>,
}

impl<'f> Solver<'f> {
    /// Builds a solver (computing all analyses) for `f`.
    #[must_use]
    pub fn new(f: &'f Function) -> Solver<'f> {
        let an = Analyses::new(f);
        let mut instructions = Vec::new();
        let mut constants = Vec::new();
        let mut arguments = Vec::new();
        // Only instructions currently placed in blocks participate.
        let mut placed: HashSet<ValueId> = HashSet::new();
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                placed.insert(v);
                instructions.push(v);
            }
        }
        for v in f.value_ids() {
            match f.value(v).kind {
                ValueKind::ConstInt(_) | ValueKind::ConstFloat(_) => constants.push(v),
                ValueKind::Argument { .. } => arguments.push(v),
                ValueKind::Instr(_) => {}
            }
        }
        let all_values: Vec<ValueId> = arguments
            .iter()
            .chain(constants.iter())
            .chain(instructions.iter())
            .copied()
            .collect();
        Solver {
            f,
            an,
            all_values,
            instructions,
            constants,
            arguments,
        }
    }

    /// Enumerates all solutions of `c` (deduplicated), subject to `opts`.
    #[must_use]
    pub fn solve(&self, c: &CompiledConstraint, opts: &SolveOptions) -> Vec<Solution> {
        self.solve_with(&c.tree, Assignment::new(), opts)
    }

    /// Solves `tree` starting from a partial assignment (used for `collect`
    /// sub-searches, where context variables are pre-bound).
    #[must_use]
    pub fn solve_with(
        &self,
        tree: &CTree,
        initial: Assignment,
        opts: &SolveOptions,
    ) -> Vec<Solution> {
        let vars: Vec<String> = tree
            .variables()
            .into_iter()
            .filter(|v| !initial.contains_key(v))
            .collect();
        let order = order_variables(tree, &vars);
        let mut cx = SearchCx {
            solver: self,
            tree,
            order,
            opts,
            steps: 0,
            out: Vec::new(),
            seen: HashSet::new(),
        };
        let mut asg = initial;
        cx.search(0, &mut asg);
        cx.out
    }

    // ----- atom evaluation -----

    fn opcode_of(&self, v: ValueId) -> Option<Opcode> {
        self.f.opcode(v)
    }

    fn eval_atom(&self, atom: &Atom, asg: &Assignment) -> Tri {
        use AtomKind::*;
        // Deferred constraints are resolved in the finalize stage.
        if matches!(atom.kind, KilledBy | Concat) {
            return Tri::Unknown;
        }
        let mut vals = Vec::with_capacity(atom.vars.len());
        for v in &atom.vars {
            match asg.get(v) {
                Some(&x) => vals.push(x),
                None => return Tri::Unknown,
            }
        }
        Tri::from_bool(self.eval_ground(atom, &vals))
    }

    fn eval_ground(&self, atom: &Atom, vals: &[ValueId]) -> bool {
        use AtomKind::*;
        let f = self.f;
        match &atom.kind {
            TypeIs {
                class,
                constant_zero,
            } => {
                let ty = &f.value(vals[0]).ty;
                let class_ok = match class {
                    TypeClass::Integer => ty.is_integer(),
                    TypeClass::Float => ty.is_float(),
                    TypeClass::Pointer => ty.is_pointer(),
                };
                let zero_ok = !constant_zero
                    || matches!(f.value(vals[0]).kind, ValueKind::ConstInt(0))
                    || matches!(f.value(vals[0]).kind,
                        ValueKind::ConstFloat(x) if x == 0.0);
                class_ok && zero_ok
            }
            Unused => self.an.defuse.is_unused(vals[0]),
            IsConstant => f.is_constant(vals[0]),
            IsPreexecution => f.is_constant(vals[0]) || f.is_argument(vals[0]),
            IsArgument => f.is_argument(vals[0]),
            IsInstruction => f.is_instruction(vals[0]),
            OpcodeIs(class) => self.opcode_of(vals[0]).is_some_and(|op| class.matches(op)),
            Same { negated } => (vals[0] == vals[1]) != *negated,
            HasEdge(EdgeKind::Data) => f
                .instr(vals[1])
                .is_some_and(|i| i.operands.contains(&vals[0])),
            HasEdge(EdgeKind::Control) => self.an.has_control_flow_edge(f, vals[0], vals[1]),
            HasEdge(EdgeKind::Dependence) => self.may_depend(vals[0], vals[1]),
            ArgumentOf { pos } => f
                .instr(vals[1])
                .is_some_and(|i| i.operands.get(*pos) == Some(&vals[0])),
            ReachesPhi => {
                let Some(i) = f.instr(vals[1]) else {
                    return false;
                };
                if i.opcode != Opcode::Phi {
                    return false;
                }
                i.operands
                    .iter()
                    .zip(&i.incoming)
                    .any(|(&v, &b)| v == vals[0] && f.terminator(b) == Some(vals[2]))
            }
            Dominates {
                strict,
                post,
                negated,
            } => {
                let (a, b) = (vals[0], vals[1]);
                let result = if !f.is_instruction(a) || !f.is_instruction(b) {
                    // Constants and arguments are available everywhere:
                    // they dominate every instruction and post-dominate
                    // nothing.
                    !*post && !f.is_instruction(a)
                } else {
                    match (post, strict) {
                        (false, false) => self.an.inst_dominates(a, b),
                        (false, true) => self.an.inst_strictly_dominates(a, b),
                        (true, false) => self.an.inst_post_dominates(a, b),
                        (true, true) => self.an.inst_strictly_post_dominates(a, b),
                    }
                };
                result != *negated
            }
            AllFlowThrough { data } => {
                if *data {
                    all_data_flow_passes_through(self.f, &self.an, vals[0], vals[1], vals[2])
                } else {
                    all_control_flow_passes_through(self.f, &self.an, vals[0], vals[1], vals[2])
                }
            }
            KilledBy | Concat => unreachable!("deferred"),
        }
    }

    /// Conservative may-dependence between two memory instructions: both
    /// touch memory and their addresses share a root object.
    fn may_depend(&self, a: ValueId, b: ValueId) -> bool {
        let addr = |v: ValueId| -> Option<ValueId> {
            let i = self.f.instr(v)?;
            match i.opcode {
                Opcode::Load => Some(i.operands[0]),
                Opcode::Store => Some(i.operands[1]),
                _ => None,
            }
        };
        let (Some(mut ra), Some(mut rb)) = (addr(a), addr(b)) else {
            return false;
        };
        loop {
            match self.f.instr(ra) {
                Some(i) if i.opcode == Opcode::Gep => ra = i.operands[0],
                _ => break,
            }
        }
        loop {
            match self.f.instr(rb) {
                Some(i) if i.opcode == Opcode::Gep => rb = i.operands[0],
                _ => break,
            }
        }
        ra == rb
    }

    // ----- candidate generation -----

    fn bucket(&self, kind: &AtomKind) -> Option<Vec<ValueId>> {
        use AtomKind::*;
        Some(match kind {
            OpcodeIs(class) => self
                .instructions
                .iter()
                .copied()
                .filter(|&v| self.opcode_of(v).is_some_and(|op| class.matches(op)))
                .collect(),
            IsConstant => self.constants.clone(),
            IsArgument => self.arguments.clone(),
            IsPreexecution => self
                .constants
                .iter()
                .chain(self.arguments.iter())
                .copied()
                .collect(),
            IsInstruction => self.instructions.clone(),
            TypeIs {
                class,
                constant_zero,
            } => self
                .all_values
                .iter()
                .copied()
                .filter(|&v| {
                    self.eval_ground(
                        &Atom {
                            kind: TypeIs {
                                class: *class,
                                constant_zero: *constant_zero,
                            },
                            vars: vec![String::new()],
                            families: vec![],
                        },
                        &[v],
                    )
                })
                .collect(),
            _ => return None,
        })
    }

    /// Candidates for `var` implied by `atom` under `asg`, if the atom can
    /// act as a generator in this direction.
    fn gen_atom(&self, atom: &Atom, var: &str, asg: &Assignment) -> Option<Vec<ValueId>> {
        use AtomKind::*;
        let f = self.f;
        let pos_of = |name: &str| atom.vars.iter().position(|v| v == name);
        let slot = pos_of(var)?;
        let get = |k: usize| asg.get(&atom.vars[k]).copied();
        match &atom.kind {
            OpcodeIs(_)
            | IsConstant
            | IsArgument
            | IsPreexecution
            | IsInstruction
            | TypeIs { .. } => self.bucket(&atom.kind),
            Same { negated: false } => {
                let other = if slot == 0 { get(1) } else { get(0) };
                other.map(|v| vec![v])
            }
            ArgumentOf { pos } => {
                if slot == 0 {
                    // child from parent
                    let parent = get(1)?;
                    f.instr(parent)?.operands.get(*pos).map(|&v| vec![v])
                } else {
                    // parent from child: users with child at position pos
                    let child = get(0)?;
                    Some(
                        self.an
                            .defuse
                            .users(child)
                            .iter()
                            .copied()
                            .filter(|&u| {
                                f.instr(u)
                                    .is_some_and(|i| i.operands.get(*pos) == Some(&child))
                            })
                            .collect(),
                    )
                }
            }
            HasEdge(EdgeKind::Data) => {
                if slot == 1 {
                    let from = get(0)?;
                    Some(self.an.defuse.users(from).to_vec())
                } else {
                    let to = get(1)?;
                    f.instr(to).map(|i| i.operands.clone())
                }
            }
            HasEdge(EdgeKind::Control) => {
                if slot == 1 {
                    let from = get(0)?;
                    Some(self.an.control_flow_successors(f, from))
                } else {
                    let to = get(1)?;
                    Some(self.an.control_flow_predecessors(f, to))
                }
            }
            ReachesPhi => {
                // vars: [value, phi, branch]
                match slot {
                    0 => {
                        let phi = get(1)?;
                        let from = get(2);
                        let i = f.instr(phi)?;
                        if i.opcode != Opcode::Phi {
                            return Some(Vec::new());
                        }
                        Some(match from {
                            Some(br) => i
                                .operands
                                .iter()
                                .zip(&i.incoming)
                                .filter(|(_, &b)| f.terminator(b) == Some(br))
                                .map(|(&v, _)| v)
                                .collect(),
                            None => i.operands.clone(),
                        })
                    }
                    1 => {
                        let value = get(0)?;
                        Some(
                            self.an
                                .defuse
                                .users(value)
                                .iter()
                                .copied()
                                .filter(|&u| f.opcode(u) == Some(Opcode::Phi))
                                .collect(),
                        )
                    }
                    2 => {
                        let phi = get(1)?;
                        let i = f.instr(phi)?;
                        if i.opcode != Opcode::Phi {
                            return Some(Vec::new());
                        }
                        Some(i.incoming.iter().filter_map(|&b| f.terminator(b)).collect())
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn gen_tree(&self, tree: &CTree, var: &str, asg: &Assignment) -> Option<Vec<ValueId>> {
        match tree {
            CTree::Atom(a) => self.gen_atom(a, var, asg),
            CTree::And(cs) => {
                let mut acc: Option<Vec<ValueId>> = None;
                for c in cs {
                    if let Some(g) = self.gen_tree(c, var, asg) {
                        acc = Some(match acc {
                            None => g,
                            Some(prev) => {
                                let set: HashSet<ValueId> = g.into_iter().collect();
                                prev.into_iter().filter(|v| set.contains(v)).collect()
                            }
                        });
                        if acc.as_ref().is_some_and(Vec::is_empty) {
                            return acc; // empty intersection, prune hard
                        }
                    }
                }
                acc
            }
            CTree::Or(cs) => {
                // A union is only a sound generator if EVERY branch
                // generates (otherwise an ungenerated branch might admit
                // other values). Branches already falsified under the
                // current assignment admit nothing and are skipped.
                let mut union: Vec<ValueId> = Vec::new();
                for c in cs {
                    if self.eval3(c, asg) == Tri::False {
                        continue;
                    }
                    let g = self.gen_tree(c, var, asg)?;
                    for v in g {
                        if !union.contains(&v) {
                            union.push(v);
                        }
                    }
                }
                Some(union)
            }
            CTree::Collect { .. } => None,
        }
    }

    // ----- 3-valued evaluation -----

    fn eval3(&self, tree: &CTree, asg: &Assignment) -> Tri {
        match tree {
            CTree::Atom(a) => self.eval_atom(a, asg),
            CTree::And(cs) => {
                let mut result = Tri::True;
                for c in cs {
                    match self.eval3(c, asg) {
                        Tri::False => return Tri::False,
                        Tri::Unknown => result = Tri::Unknown,
                        Tri::True => {}
                    }
                }
                result
            }
            CTree::Or(cs) => {
                if cs.is_empty() {
                    return Tri::False;
                }
                let mut result = Tri::False;
                for c in cs {
                    match self.eval3(c, asg) {
                        Tri::True => return Tri::True,
                        Tri::Unknown => result = Tri::Unknown,
                        Tri::False => {}
                    }
                }
                result
            }
            CTree::Collect { .. } => Tri::Unknown,
        }
    }

    /// `true` if assigning `var` can still influence the truth of `tree`
    /// under the partial assignment `asg` (see don't-care elimination in
    /// the search loop).
    fn is_relevant(&self, tree: &CTree, var: &str, asg: &Assignment) -> bool {
        match tree {
            CTree::And(cs) => cs.iter().any(|c| self.is_relevant(c, var, asg)),
            CTree::Or(cs) => {
                // A branch that is already false stays false: ground atoms
                // never change once their variables are bound, so variables
                // appearing only under a falsified branch cannot influence
                // the formula either. One evaluation pass serves both the
                // satisfied-disjunction check and the per-branch filter.
                let branch_vals: Vec<Tri> = cs.iter().map(|c| self.eval3(c, asg)).collect();
                if branch_vals.contains(&Tri::True) {
                    return false;
                }
                cs.iter()
                    .zip(&branch_vals)
                    .any(|(c, &v)| v != Tri::False && self.is_relevant(c, var, asg))
            }
            CTree::Atom(a) => a.vars.iter().any(|v| v == var),
            CTree::Collect { .. } => false,
        }
    }

    // ----- finalization: collects, concats, purity -----

    /// Resolves a family reference against an assignment: the scalar
    /// binding if present, else all `name[k]...` bindings in index order.
    fn resolve_family(asg: &Assignment, name: &str) -> Vec<ValueId> {
        if let Some(&v) = asg.get(name) {
            return vec![v];
        }
        let prefix = format!("{name}[");
        let mut found: Vec<(usize, ValueId)> = Vec::new();
        for (k, &v) in asg.range(prefix.clone()..) {
            if !k.starts_with(&prefix) {
                break;
            }
            let rest = &k[prefix.len()..];
            let Some(close) = rest.find(']') else {
                continue;
            };
            // Only direct family elements (no trailing sub-path) qualify.
            if !rest[close + 1..].is_empty() {
                continue;
            }
            if let Ok(idx) = rest[..close].parse::<usize>() {
                found.push((idx, v));
            }
        }
        found.sort_by_key(|&(i, _)| i);
        found.into_iter().map(|(_, v)| v).collect()
    }

    /// Runs collects/concats and checks deferred atoms. Returns the
    /// completed assignment or `None` if some deferred constraint fails.
    fn finalize(&self, tree: &CTree, asg: &Assignment, opts: &SolveOptions) -> Option<Assignment> {
        let mut full = asg.clone();
        self.run_bindings(tree, &mut full, opts)?;
        if self.eval_final(tree, &full) {
            Some(full)
        } else {
            None
        }
    }

    /// Executes `collect` and `Concat` nodes along the conjunctive spine.
    fn run_bindings(&self, tree: &CTree, full: &mut Assignment, opts: &SolveOptions) -> Option<()> {
        match tree {
            CTree::And(cs) => {
                for c in cs {
                    self.run_bindings(c, full, opts)?;
                }
                Some(())
            }
            CTree::Or(_)
            | CTree::Atom(Atom {
                kind: AtomKind::KilledBy,
                ..
            }) => Some(()),
            CTree::Atom(a) if a.kind == AtomKind::Concat => {
                let out = &a.families[0];
                let mut members = Self::resolve_family(full, &a.families[1]);
                members.extend(Self::resolve_family(full, &a.families[2]));
                for (k, v) in members.into_iter().enumerate() {
                    full.insert(format!("{out}[{k}]"), v);
                }
                Some(())
            }
            CTree::Atom(_) => Some(()),
            CTree::Collect { instances } => {
                if instances.is_empty() {
                    return Some(());
                }
                let sub_opts = SolveOptions {
                    max_solutions: instances.len(),
                    max_steps: opts.max_steps,
                };
                let sols = self.solve_with(&instances[0], full.clone(), &sub_opts);
                let v0 = instances[0].variables_deep();
                for (k, sol) in sols.iter().enumerate() {
                    if k >= instances.len() {
                        break;
                    }
                    let vk = instances[k].variables_deep();
                    for (name0, namek) in v0.iter().zip(&vk) {
                        if let Some(&val) = sol.bindings.get(name0) {
                            full.entry(namek.clone()).or_insert(val);
                        }
                    }
                }
                Some(())
            }
        }
    }

    /// Final evaluation: everything must be true; `collect` counts as
    /// satisfied, `Concat` as executed, `KilledBy` is checked against the
    /// bound families.
    fn eval_final(&self, tree: &CTree, full: &Assignment) -> bool {
        match tree {
            CTree::And(cs) => cs.iter().all(|c| self.eval_final(c, full)),
            CTree::Or(cs) => cs.iter().any(|c| self.eval_final(c, full)),
            CTree::Collect { .. } => true,
            CTree::Atom(a) => match a.kind {
                AtomKind::Concat => true,
                AtomKind::KilledBy => {
                    let Some(&sink) = full.get(&a.vars[0]) else {
                        return false;
                    };
                    let mut killers = Vec::new();
                    for fam in &a.families {
                        killers.extend(Self::resolve_family(full, fam));
                    }
                    kernel_slice(self.f, sink, &killers, PURE_CALLS).is_some()
                }
                _ => {
                    let mut vals = Vec::with_capacity(a.vars.len());
                    for v in &a.vars {
                        match full.get(v) {
                            Some(&x) => vals.push(x),
                            None => return false,
                        }
                    }
                    self.eval_ground(a, &vals)
                }
            },
        }
    }
}

struct SearchCx<'a, 'f> {
    solver: &'a Solver<'f>,
    tree: &'a CTree,
    order: Vec<String>,
    opts: &'a SolveOptions,
    steps: u64,
    out: Vec<Solution>,
    seen: HashSet<Vec<(String, u32)>>,
}

impl SearchCx<'_, '_> {
    fn search(&mut self, k: usize, asg: &mut Assignment) {
        if self.out.len() >= self.opts.max_solutions || self.steps > self.opts.max_steps {
            return;
        }
        if k == self.order.len() {
            if let Some(full) = self.solver.finalize(self.tree, asg, self.opts) {
                let key: Vec<(String, u32)> = full.iter().map(|(n, v)| (n.clone(), v.0)).collect();
                if self.seen.insert(key) {
                    self.out.push(Solution { bindings: full });
                }
            }
            return;
        }
        let var = self.order[k].clone();
        // Don't-care elimination: if every atom mentioning this variable
        // sits under a disjunction that is already satisfied, the variable
        // cannot influence the formula — bind it canonically instead of
        // enumerating (this is what keeps helper variables of untaken
        // `or` branches, e.g. the offset of an identity OffsetChain, from
        // multiplying solutions).
        if !self.solver.is_relevant(self.tree, &var, asg) {
            asg.insert(var.clone(), ValueId(0));
            self.search(k + 1, asg);
            asg.remove(&var);
            return;
        }
        let candidates = self
            .solver
            .gen_tree(self.tree, &var, asg)
            .unwrap_or_else(|| self.solver.all_values.clone());
        for c in candidates {
            self.steps += 1;
            if self.steps > self.opts.max_steps {
                return;
            }
            asg.insert(var.clone(), c);
            if self.solver.eval3(self.tree, asg) != Tri::False {
                self.search(k + 1, asg);
            }
            asg.remove(&var);
            if self.out.len() >= self.opts.max_solutions {
                return;
            }
        }
    }
}

/// Orders variables so that each one (after the first) is connected to an
/// already-ordered variable through a generator-capable atom — the §4.4
/// "variables are collected and ordered to assist constraint solving".
fn order_variables(tree: &CTree, vars: &[String]) -> Vec<String> {
    let mut atoms = Vec::new();
    collect_atoms(tree, &mut atoms);
    let has_anchor = |v: &String| {
        atoms.iter().any(|a| {
            a.vars.first() == Some(v)
                && matches!(
                    a.kind,
                    AtomKind::OpcodeIs(_)
                        | AtomKind::IsConstant
                        | AtomKind::IsArgument
                        | AtomKind::IsInstruction
                        | AtomKind::IsPreexecution
                )
        })
    };
    let connected = |v: &String, ordered: &[String]| {
        atoms.iter().any(|a| {
            matches!(
                a.kind,
                AtomKind::ArgumentOf { .. }
                    | AtomKind::HasEdge(_)
                    | AtomKind::ReachesPhi
                    | AtomKind::Same { negated: false }
            ) && a.vars.contains(v)
                && a.vars.iter().any(|w| ordered.contains(w))
        })
    };
    let mut remaining: Vec<String> = vars.to_vec();
    let mut order: Vec<String> = Vec::new();
    // Seed: an anchored variable if possible.
    if let Some(i) = remaining.iter().position(has_anchor) {
        order.push(remaining.remove(i));
    } else if !remaining.is_empty() {
        order.push(remaining.remove(0));
    }
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .position(|v| connected(v, &order) && has_anchor(v))
            .or_else(|| remaining.iter().position(|v| connected(v, &order)))
            .or_else(|| remaining.iter().position(has_anchor))
            .unwrap_or(0);
        order.push(remaining.remove(next));
    }
    order
}

fn collect_atoms<'t>(tree: &'t CTree, out: &mut Vec<&'t Atom>) {
    match tree {
        CTree::And(cs) | CTree::Or(cs) => {
            for c in cs {
                collect_atoms(c, out);
            }
        }
        CTree::Atom(a) => out.push(a),
        CTree::Collect { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl::{compile, parse_library};
    use ssair::parser::parse_function_text;

    #[test]
    fn ordering_prefers_anchored_connected_variables() {
        let lib = parse_library(
            r#"
Constraint X
( {b} is first argument of {a} and
  {a} is add instruction and
  {c} is first argument of {b} )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "X").unwrap();
        let order = order_variables(&c.tree, &c.variables);
        assert_eq!(order[0], "a", "anchored variable first");
        assert_eq!(order[1], "b", "connected to a");
        assert_eq!(order[2], "c");
    }

    #[test]
    fn family_resolution_orders_indices_numerically() {
        let f = parse_function_text("define void @f() {\nentry:\n  ret void\n}\n").unwrap();
        let _solver = Solver::new(&f);
        let mut asg = Assignment::new();
        for k in [0usize, 2, 10, 1] {
            asg.insert(format!("fam[{k}]"), ValueId(k as u32));
        }
        asg.insert("fam[0].sub".into(), ValueId(99)); // must be ignored
        let got = Solver::resolve_family(&asg, "fam");
        assert_eq!(got, vec![ValueId(0), ValueId(1), ValueId(2), ValueId(10)]);
        // Scalar binding takes priority.
        asg.insert("fam".into(), ValueId(7));
        assert_eq!(Solver::resolve_family(&asg, "fam"), vec![ValueId(7)]);
    }

    // ----- edge cases: degenerate functions and unsatisfiable programs -----

    /// A small but non-trivial constraint exercising generators, ordering,
    /// disjunction and dominance against degenerate inputs.
    fn loopish_constraint() -> idl::CompiledConstraint {
        let lib = parse_library(
            r#"
Constraint Loopish
( {iterator} is phi instruction and
  {precursor} is branch instruction and
  {precursor} has control flow to {iterator} and
  {begin} reaches phi node {iterator} from {precursor} and
  ( {begin} is a constant or {begin} is an argument ) and
  {iterator} strictly dominates {precursor} )
End
"#,
        )
        .unwrap();
        compile(&lib, "Loopish").unwrap()
    }

    #[test]
    fn empty_function_terminates_with_no_solutions() {
        // An entry block with no instructions at all (not even a
        // terminator): nothing to bind, nothing to crash on.
        let f = Function::new("empty", &[], ssair::Type::Void);
        let s = Solver::new(&f);
        let sols = s.solve(&loopish_constraint(), &SolveOptions::default());
        assert!(sols.is_empty());
    }

    #[test]
    fn single_block_function_terminates_with_no_solutions() {
        let f = parse_function_text(
            "define i64 @one(i64 %a) {\nentry:\n  %x = add i64 %a, 1\n  ret i64 %x\n}\n",
        )
        .unwrap();
        let s = Solver::new(&f);
        let sols = s.solve(&loopish_constraint(), &SolveOptions::default());
        assert!(sols.is_empty(), "no phi, no branch: nothing may match");
    }

    #[test]
    fn unreachable_blocks_do_not_panic_the_analyses_or_search() {
        // `dead` has no predecessors; dominance and post-dominance queries
        // against its instructions must stay well-defined.
        let f = parse_function_text(
            r#"
define i64 @u(i64 %n) {
entry:
  br label %exit
dead:
  %x = add i64 %n, 1
  br label %exit
exit:
  %r = phi i64 [ 0, %entry ], [ %x, %dead ]
  ret i64 %r
}
"#,
        )
        .unwrap();
        let s = Solver::new(&f);
        let sols = s.solve(&loopish_constraint(), &SolveOptions::default());
        // Whatever matches must at least be internally consistent.
        for sol in &sols {
            assert!(f.opcode(sol.bindings["iterator"]) == Some(Opcode::Phi));
        }
    }

    #[test]
    fn zero_solution_program_terminates() {
        // Mutually exclusive atoms: satisfiable nowhere, on any function.
        let lib = parse_library(
            "Constraint Impossible ( {a} is add instruction and {a} is mul instruction and {b} is first argument of {a} and {b} is unused ) End",
        )
        .unwrap();
        let c = compile(&lib, "Impossible").unwrap();
        let f = parse_function_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, %a\n  %y = mul i32 %x, %x\n  ret i32 %y\n}\n",
        )
        .unwrap();
        let sols = Solver::new(&f).solve(&c, &SolveOptions::default());
        assert!(sols.is_empty());
    }

    #[test]
    fn step_budget_cuts_off_pathological_searches() {
        // Five unconstrained variables over the whole value arena: the
        // search must stop at max_steps instead of exploding.
        let lib = parse_library(
            "Constraint Wide ( {a} is an instruction and {b} is an instruction and {c} is an instruction and {d} is an instruction and {a} is not the same as {b} ) End",
        )
        .unwrap();
        let c = compile(&lib, "Wide").unwrap();
        let mut body = String::new();
        for k in 0..24 {
            body.push_str(&format!("  %t{k} = add i64 %n, {k}\n"));
        }
        let f = parse_function_text(&format!(
            "define void @f(i64 %n) {{\nentry:\n{body}  ret void\n}}\n"
        ))
        .unwrap();
        let opts = SolveOptions {
            max_solutions: usize::MAX,
            max_steps: 2_000,
        };
        let sols = Solver::new(&f).solve(&c, &opts);
        // Terminates quickly and reports only genuine assignments.
        for sol in &sols {
            assert_ne!(sol.bindings["a"], sol.bindings["b"]);
        }
    }

    #[test]
    fn dependence_edges_use_address_roots() {
        let f = parse_function_text(
            r#"
define void @f(double* %p, double* %q, i64 %i) {
entry:
  %a = getelementptr double, double* %p, i64 %i
  %x = load double, double* %a
  %b = getelementptr double, double* %p, i64 0
  store double %x, double* %b
  %c = getelementptr double, double* %q, i64 %i
  store double %x, double* %c
  ret void
}
"#,
        )
        .unwrap();
        let s = Solver::new(&f);
        let e = ssair::BlockId(0);
        let load = f.block(e).instrs[1];
        let store_p = f.block(e).instrs[3];
        let store_q = f.block(e).instrs[5];
        assert!(s.may_depend(load, store_p), "same root p");
        assert!(!s.may_depend(load, store_q), "distinct roots p vs q");
    }
}
