//! The search engine.

use idl::{
    Atom, AtomKind, CTree, CompiledConstraint, EdgeKind, IndexedKind, OpcodeClass, SymbolTable,
    TreeIndex, TypeClass, VarId,
};
use ssair::analysis::{
    all_control_flow_passes_through, all_data_flow_passes_through, kernel_slice, Analyses,
};
use ssair::{Function, Opcode, ValueId, ValueKind};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

/// Pure math callees allowed inside extracted kernel functions (matches
/// the minicc intrinsic set).
pub const PURE_CALLS: &[&str] = &[
    "sqrt", "fabs", "exp", "log", "sin", "cos", "pow", "fmin", "fmax",
];

/// One satisfying assignment: flattened variable name → IR value.
///
/// The search itself runs entirely on dense [`VarId`]-indexed slots; the
/// string map is materialized only here, at the API boundary, for
/// display and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The bindings, including family members produced by `collect` and
    /// `Concat`.
    pub bindings: BTreeMap<String, ValueId>,
}

/// The result of a search, including whether it was exhaustive.
///
/// A search cut off by [`SolveOptions::max_solutions`] or
/// [`SolveOptions::max_steps`] may have missed solutions; `complete`
/// distinguishes that from a genuinely finished enumeration so callers
/// (e.g. idiom detection) can surface truncation instead of silently
/// undercounting.
///
/// Solutions are returned in a canonical order (sorted by their dense
/// binding vectors), so any two search strategies that enumerate the same
/// solution *set* — e.g. the skeleton-seeded search and the plain
/// enumeration it replaces — return byte-identical lists.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The deduplicated solutions found, in canonical order.
    pub solutions: Vec<Solution>,
    /// `true` if the enumeration finished without hitting a limit
    /// (including inside `collect` sub-searches). A `collect` body that
    /// fills its IDL-declared family capacity is *not* truncation — that
    /// cap is structural, so it never clears this flag.
    pub complete: bool,
    /// Assignment steps consumed, *including* `collect` sub-searches —
    /// never more than `max_steps`.
    pub steps: u64,
}

/// Search limits.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Stop after this many solutions.
    pub max_solutions: usize,
    /// Abort the search after this many assignment steps (guards
    /// pathological formulas; generously above anything the idiom library
    /// needs on benchmark-sized functions).
    pub max_steps: u64,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            max_solutions: 256,
            max_steps: 20_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

/// The dense per-search assignment: one slot per interned symbol of the
/// constraint, plus the bind/unbind discipline of the backtracking
/// search as its undo trail (every bind is reverted by an explicit
/// unbind on the same frame).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    slots: Vec<Option<ValueId>>,
}

impl Assignment {
    /// An all-unbound assignment for a constraint with `n` symbols.
    #[must_use]
    pub fn new(n: usize) -> Assignment {
        Assignment {
            slots: vec![None; n],
        }
    }

    /// The value bound to `v`, if any.
    #[must_use]
    pub fn get(&self, v: VarId) -> Option<ValueId> {
        self.slots[v.index()]
    }

    /// Binds `v` to `x` (overwrites).
    pub fn bind(&mut self, v: VarId, x: ValueId) {
        self.slots[v.index()] = Some(x);
    }

    /// Removes the binding of `v`.
    pub fn unbind(&mut self, v: VarId) {
        self.slots[v.index()] = None;
    }

    /// The raw slot array (index = [`VarId::index`]).
    #[must_use]
    pub fn slots(&self) -> &[Option<ValueId>] {
        &self.slots
    }
}

/// Key of one memoized candidate bucket (the unary generator atoms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BucketKey {
    Opcode(OpcodeClass),
    Constant,
    Argument,
    Preexecution,
    Instruction,
    Type(TypeClass, bool),
}

impl BucketKey {
    fn of(kind: &AtomKind) -> Option<BucketKey> {
        Some(match kind {
            AtomKind::OpcodeIs(c) => BucketKey::Opcode(*c),
            AtomKind::IsConstant => BucketKey::Constant,
            AtomKind::IsArgument => BucketKey::Argument,
            AtomKind::IsPreexecution => BucketKey::Preexecution,
            AtomKind::IsInstruction => BucketKey::Instruction,
            AtomKind::TypeIs {
                class,
                constant_zero,
            } => BucketKey::Type(*class, *constant_zero),
            _ => return None,
        })
    }
}

/// A candidate list: either borrowed from the per-function bucket memo
/// (shared across every idiom query and collect sub-search on the same
/// function) or owned by the current search frame.
enum Cand {
    Shared(Rc<Vec<ValueId>>),
    Owned(Vec<ValueId>),
    /// A single candidate inline — the common result of functional atoms
    /// (`is first argument of`, `is the same as`), kept off the heap.
    One([ValueId; 1]),
}

impl std::ops::Deref for Cand {
    type Target = [ValueId];
    fn deref(&self) -> &[ValueId] {
        match self {
            Cand::Shared(v) => v,
            Cand::Owned(v) => v,
            Cand::One(v) => v,
        }
    }
}

/// A solver instance for one function. All per-function state — the IR
/// analyses (dominance, def-use, CFG, loop forest, flow-cut memos), the
/// value buckets and the scratch buffers — is computed once and shared
/// across every idiom query *and* every `collect` sub-search on that
/// function, as the paper's compiler does per compilation unit.
pub struct Solver<'f> {
    f: &'f Function,
    an: Analyses,
    all_values: Rc<Vec<ValueId>>,
    instructions: Vec<ValueId>,
    constants: Vec<ValueId>,
    arguments: Vec<ValueId>,
    /// Memoized unary-generator buckets, filled on first use and reused
    /// by all subsequent queries on this function.
    buckets: RefCell<HashMap<BucketKey, Rc<Vec<ValueId>>>>,
    /// Recycled candidate buffers: owned candidate lists are returned
    /// here when a search frame finishes, so repeated queries on one
    /// function stop churning the allocator.
    scratch: RefCell<Vec<Vec<ValueId>>>,
}

impl<'f> Solver<'f> {
    /// Builds a solver (computing all analyses) for `f`.
    #[must_use]
    pub fn new(f: &'f Function) -> Solver<'f> {
        let an = Analyses::new(f);
        let mut instructions = Vec::new();
        let mut constants = Vec::new();
        let mut arguments = Vec::new();
        // Only instructions currently placed in blocks participate.
        let mut placed: HashSet<ValueId> = HashSet::new();
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                placed.insert(v);
                instructions.push(v);
            }
        }
        for v in f.value_ids() {
            match f.value(v).kind {
                ValueKind::ConstInt(_) | ValueKind::ConstFloat(_) => constants.push(v),
                ValueKind::Argument { .. } => arguments.push(v),
                ValueKind::Instr(_) => {}
            }
        }
        let all_values: Vec<ValueId> = arguments
            .iter()
            .chain(constants.iter())
            .chain(instructions.iter())
            .copied()
            .collect();
        Solver {
            f,
            an,
            all_values: Rc::new(all_values),
            instructions,
            constants,
            arguments,
            buckets: RefCell::new(HashMap::new()),
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// The per-function analyses computed at construction (shared with
    /// detection post-processing so they are not recomputed).
    #[must_use]
    pub fn analyses(&self) -> &Analyses {
        &self.an
    }

    /// Enumerates all solutions of `c` (deduplicated), subject to `opts`.
    #[must_use]
    pub fn solve(&self, c: &CompiledConstraint, opts: &SolveOptions) -> Vec<Solution> {
        self.solve_outcome(c, opts).solutions
    }

    /// [`Solver::solve`], also reporting completeness and steps consumed.
    /// Uses the variable order precomputed at constraint compile time.
    #[must_use]
    pub fn solve_outcome(&self, c: &CompiledConstraint, opts: &SolveOptions) -> SolveOutcome {
        let dense = self.run_search(
            &c.tree,
            c.index(),
            &c.symbols,
            Assignment::new(c.symbols.len()),
            c.order.clone(),
            opts,
        );
        render_outcome(&c.symbols, dense)
    }

    /// Solves `c` seeded from pre-solved loop-skeleton solutions: each
    /// seed binds the skeleton prefix of `c.order` in one shot (charging
    /// one step per bound variable) and the search continues over the
    /// remaining variables only.
    ///
    /// When the seed list is exhaustive (every skeleton solution of the
    /// function, from a *complete* skeleton solve), the enumerated
    /// solution set — and therefore, by canonical ordering, the returned
    /// list — is identical to [`Solver::solve_outcome`]: every solution's
    /// skeleton projection satisfies the skeleton constraints, so it
    /// appears among the seeds, and the continuation search under each
    /// seed is the same exhaustive enumeration the plain search runs
    /// below that prefix. A truncated outcome (`complete == false`) makes
    /// no such promise — callers fall back to the unseeded search.
    #[must_use]
    pub fn solve_seeded_outcome(
        &self,
        c: &CompiledConstraint,
        seeds: &[Vec<(VarId, ValueId)>],
        opts: &SolveOptions,
    ) -> SolveOutcome {
        render_outcome(&c.symbols, self.seeded_dense(c, seeds, opts))
    }

    /// [`Solver::solve_seeded_outcome`] returning bulk rows (each solution
    /// as the values of `vars`, in order) instead of string-keyed
    /// solutions — the skeleton cache's format, skipping the rendering
    /// round-trip.
    #[must_use]
    pub fn solve_seeded_rows(
        &self,
        c: &CompiledConstraint,
        seeds: &[Vec<(VarId, ValueId)>],
        vars: &[VarId],
        opts: &SolveOptions,
    ) -> RowsOutcome {
        rows_outcome(vars, self.seeded_dense(c, seeds, opts))
    }

    /// [`Solver::solve_outcome`] in bulk row form (see
    /// [`Solver::solve_seeded_rows`]).
    #[must_use]
    pub fn solve_rows(
        &self,
        c: &CompiledConstraint,
        vars: &[VarId],
        opts: &SolveOptions,
    ) -> RowsOutcome {
        let dense = self.run_search(
            &c.tree,
            c.index(),
            &c.symbols,
            Assignment::new(c.symbols.len()),
            c.order.clone(),
            opts,
        );
        rows_outcome(vars, dense)
    }

    fn seeded_dense(
        &self,
        c: &CompiledConstraint,
        seeds: &[Vec<(VarId, ValueId)>],
        opts: &SolveOptions,
    ) -> DenseOutcome {
        if seeds.is_empty() {
            // No skeleton rows: trivially complete with no search (and no
            // point building the evaluator).
            return DenseOutcome {
                solutions: Vec::new(),
                complete: true,
                steps: 0,
            };
        }
        let mut asg = Assignment::new(c.symbols.len());
        let mut cx = SearchCx {
            solver: self,
            tree: &c.tree,
            symbols: &c.symbols,
            inc: IncEval::new(self, c.index(), &asg),
            order: c.order.clone(),
            opts,
            steps: 0,
            complete: true,
            out: Vec::new(),
            seen: HashSet::new(),
        };
        for seed in seeds {
            if cx.out.len() >= opts.max_solutions
                || cx.steps.saturating_add(seed.len() as u64) > opts.max_steps
            {
                cx.complete = false;
                break;
            }
            debug_assert!(
                seed.len() <= cx.order.len()
                    && seed.iter().all(|(v, _)| cx.order[..seed.len()].contains(v)),
                "seed variables must form the order prefix"
            );
            // Bulk-bind the row and rebuild the evaluator in one sweep:
            // cheaper than 2×|seed| incremental repairs per row.
            cx.steps += seed.len() as u64;
            for &(v, x) in seed {
                asg.bind(v, x);
            }
            cx.inc.reseed(self, &asg);
            cx.check_oracle(&asg);
            if cx.inc.root_val() != Tri::False {
                cx.search(seed.len(), &mut asg);
            }
            for &(v, _) in seed {
                asg.unbind(v);
            }
        }
        cx.finish_dense()
    }

    /// Solves `tree` starting from a partial assignment (used for `collect`
    /// sub-searches, where context variables are pre-bound). `symbols` is
    /// the owning constraint's table (`tree` must index into it).
    #[must_use]
    pub fn solve_with(
        &self,
        tree: &CTree,
        symbols: &SymbolTable,
        initial: Assignment,
        opts: &SolveOptions,
    ) -> Vec<Solution> {
        self.solve_with_outcome(tree, symbols, initial, opts)
            .solutions
    }

    /// [`Solver::solve_with`], also reporting completeness and steps.
    #[must_use]
    pub fn solve_with_outcome(
        &self,
        tree: &CTree,
        symbols: &SymbolTable,
        initial: Assignment,
        opts: &SolveOptions,
    ) -> SolveOutcome {
        render_outcome(symbols, self.solve_with_dense(tree, symbols, initial, opts))
    }

    /// [`Solver::solve_with_outcome`] keeping solutions dense — the
    /// internal form `run_bindings` consumes for `collect` sub-searches
    /// (no string round-trip).
    fn solve_with_dense(
        &self,
        tree: &CTree,
        symbols: &SymbolTable,
        initial: Assignment,
        opts: &SolveOptions,
    ) -> DenseOutcome {
        let vars: Vec<VarId> = tree
            .variables()
            .into_iter()
            .filter(|&v| initial.get(v).is_none())
            .collect();
        let order = idl::order_variables(tree, &vars);
        let idx = tree.index();
        self.run_search(tree, &idx, symbols, initial, order, opts)
    }

    fn run_search(
        &self,
        tree: &CTree,
        idx: &TreeIndex,
        symbols: &SymbolTable,
        initial: Assignment,
        order: Vec<VarId>,
        opts: &SolveOptions,
    ) -> DenseOutcome {
        let mut cx = SearchCx {
            solver: self,
            tree,
            symbols,
            inc: IncEval::new(self, idx, &initial),
            order,
            opts,
            steps: 0,
            complete: true,
            out: Vec::new(),
            seen: HashSet::new(),
        };
        let mut asg = initial;
        cx.search(0, &mut asg);
        cx.finish_dense()
    }

    // ----- atom evaluation -----

    fn opcode_of(&self, v: ValueId) -> Option<Opcode> {
        self.f.opcode(v)
    }

    fn eval_atom(&self, atom: &Atom, asg: &Assignment) -> Tri {
        use AtomKind::*;
        // Deferred constraints are resolved in the finalize stage.
        if matches!(atom.kind, KilledBy | Concat) {
            return Tri::Unknown;
        }
        let mut vals = [ValueId(0); 3];
        debug_assert!(atom.vars.len() <= 3);
        for (slot, &v) in vals.iter_mut().zip(&atom.vars) {
            match asg.get(v) {
                Some(x) => *slot = x,
                None => return Tri::Unknown,
            }
        }
        Tri::from_bool(self.eval_ground(atom, &vals[..atom.vars.len()]))
    }

    fn eval_ground(&self, atom: &Atom, vals: &[ValueId]) -> bool {
        use AtomKind::*;
        let f = self.f;
        match &atom.kind {
            TypeIs {
                class,
                constant_zero,
            } => self.type_is(vals[0], *class, *constant_zero),
            Unused => self.an.defuse.is_unused(vals[0]),
            IsConstant => f.is_constant(vals[0]),
            IsPreexecution => f.is_constant(vals[0]) || f.is_argument(vals[0]),
            IsArgument => f.is_argument(vals[0]),
            IsInstruction => f.is_instruction(vals[0]),
            OpcodeIs(class) => self.opcode_of(vals[0]).is_some_and(|op| class.matches(op)),
            Same { negated } => (vals[0] == vals[1]) != *negated,
            HasEdge(EdgeKind::Data) => f
                .instr(vals[1])
                .is_some_and(|i| i.operands.contains(&vals[0])),
            HasEdge(EdgeKind::Control) => self.an.has_control_flow_edge(f, vals[0], vals[1]),
            HasEdge(EdgeKind::Dependence) => self.may_depend(vals[0], vals[1]),
            ArgumentOf { pos } => f
                .instr(vals[1])
                .is_some_and(|i| i.operands.get(*pos) == Some(&vals[0])),
            ReachesPhi => {
                let Some(i) = f.instr(vals[1]) else {
                    return false;
                };
                if i.opcode != Opcode::Phi {
                    return false;
                }
                i.operands
                    .iter()
                    .zip(&i.incoming)
                    .any(|(&v, &b)| v == vals[0] && f.terminator(b) == Some(vals[2]))
            }
            Dominates {
                strict,
                post,
                negated,
            } => self.dominance(vals[0], vals[1], *post, *strict) != *negated,
            AllFlowThrough { data } => {
                if *data {
                    all_data_flow_passes_through(self.f, &self.an, vals[0], vals[1], vals[2])
                } else {
                    all_control_flow_passes_through(self.f, &self.an, vals[0], vals[1], vals[2])
                }
            }
            KilledBy | Concat => unreachable!("deferred"),
        }
    }

    /// Value-level (post)dominance exactly as the `dominates` family of
    /// atoms evaluates it.
    fn dominance(&self, a: ValueId, b: ValueId, post: bool, strict: bool) -> bool {
        let f = self.f;
        if !f.is_instruction(a) || !f.is_instruction(b) {
            // Constants and arguments are available everywhere: they
            // dominate every instruction and post-dominate nothing.
            return !post && !f.is_instruction(a);
        }
        match (post, strict) {
            (false, false) => self.an.inst_dominates(a, b),
            (false, true) => self.an.inst_strictly_dominates(a, b),
            (true, false) => self.an.inst_post_dominates(a, b),
            (true, true) => self.an.inst_strictly_post_dominates(a, b),
        }
    }

    /// `a strictly dominates b` with the `strictly dominates` atom's exact
    /// semantics — exposed so the skeleton cache can apply `ForNest`
    /// nesting legs to pre-solved `For` rows without a search.
    #[must_use]
    pub fn value_strictly_dominates(&self, a: ValueId, b: ValueId) -> bool {
        self.dominance(a, b, false, true)
    }

    /// `a strictly post dominates b` with the atom's exact semantics
    /// (companion of [`Solver::value_strictly_dominates`]).
    #[must_use]
    pub fn value_strictly_post_dominates(&self, a: ValueId, b: ValueId) -> bool {
        self.dominance(a, b, true, true)
    }

    fn type_is(&self, v: ValueId, class: TypeClass, constant_zero: bool) -> bool {
        let f = self.f;
        let ty = &f.value(v).ty;
        let class_ok = match class {
            TypeClass::Integer => ty.is_integer(),
            TypeClass::Float => ty.is_float(),
            TypeClass::Pointer => ty.is_pointer(),
        };
        let zero_ok = !constant_zero
            || matches!(f.value(v).kind, ValueKind::ConstInt(0))
            || matches!(f.value(v).kind, ValueKind::ConstFloat(x) if x == 0.0);
        class_ok && zero_ok
    }

    /// Conservative may-dependence between two memory instructions: both
    /// touch memory and their addresses share a root object.
    fn may_depend(&self, a: ValueId, b: ValueId) -> bool {
        let addr = |v: ValueId| -> Option<ValueId> {
            let i = self.f.instr(v)?;
            match i.opcode {
                Opcode::Load => Some(i.operands[0]),
                Opcode::Store => Some(i.operands[1]),
                _ => None,
            }
        };
        let (Some(mut ra), Some(mut rb)) = (addr(a), addr(b)) else {
            return false;
        };
        loop {
            match self.f.instr(ra) {
                Some(i) if i.opcode == Opcode::Gep => ra = i.operands[0],
                _ => break,
            }
        }
        loop {
            match self.f.instr(rb) {
                Some(i) if i.opcode == Opcode::Gep => rb = i.operands[0],
                _ => break,
            }
        }
        ra == rb
    }

    // ----- candidate generation -----

    /// The memoized candidate bucket for a unary generator atom. Computed
    /// on first request and shared (via `Rc`) by every later query on
    /// this function.
    fn bucket(&self, kind: &AtomKind) -> Option<Rc<Vec<ValueId>>> {
        let key = BucketKey::of(kind)?;
        if let Some(b) = self.buckets.borrow().get(&key) {
            return Some(Rc::clone(b));
        }
        let vals: Vec<ValueId> = match key {
            BucketKey::Opcode(class) => self
                .instructions
                .iter()
                .copied()
                .filter(|&v| self.opcode_of(v).is_some_and(|op| class.matches(op)))
                .collect(),
            BucketKey::Constant => self.constants.clone(),
            BucketKey::Argument => self.arguments.clone(),
            BucketKey::Preexecution => self
                .constants
                .iter()
                .chain(self.arguments.iter())
                .copied()
                .collect(),
            BucketKey::Instruction => self.instructions.clone(),
            BucketKey::Type(class, zero) => self
                .all_values
                .iter()
                .copied()
                .filter(|&v| self.type_is(v, class, zero))
                .collect(),
        };
        let rc = Rc::new(vals);
        self.buckets.borrow_mut().insert(key, Rc::clone(&rc));
        Some(rc)
    }

    /// Candidates for `var` implied by `atom` under `asg`, if the atom can
    /// act as a generator in this direction.
    fn gen_atom(&self, atom: &Atom, var: VarId, asg: &Assignment) -> Option<Cand> {
        use AtomKind::*;
        let f = self.f;
        let slot = atom.vars.iter().position(|&v| v == var)?;
        let get = |k: usize| asg.get(atom.vars[k]);
        match &atom.kind {
            OpcodeIs(_)
            | IsConstant
            | IsArgument
            | IsPreexecution
            | IsInstruction
            | TypeIs { .. } => self.bucket(&atom.kind).map(Cand::Shared),
            Same { negated: false } => {
                let other = if slot == 0 { get(1) } else { get(0) };
                other.map(|v| Cand::One([v]))
            }
            ArgumentOf { pos } => {
                if slot == 0 {
                    // child from parent
                    let parent = get(1)?;
                    f.instr(parent)?.operands.get(*pos).map(|&v| Cand::One([v]))
                } else {
                    // parent from child: users with child at position pos
                    let child = get(0)?;
                    Some(Cand::Owned(
                        self.an
                            .defuse
                            .users(child)
                            .iter()
                            .copied()
                            .filter(|&u| {
                                f.instr(u)
                                    .is_some_and(|i| i.operands.get(*pos) == Some(&child))
                            })
                            .collect(),
                    ))
                }
            }
            HasEdge(EdgeKind::Data) => {
                if slot == 1 {
                    let from = get(0)?;
                    Some(Cand::Owned(self.an.defuse.users(from).to_vec()))
                } else {
                    let to = get(1)?;
                    f.instr(to).map(|i| Cand::Owned(i.operands.clone()))
                }
            }
            HasEdge(EdgeKind::Control) => {
                if slot == 1 {
                    let from = get(0)?;
                    Some(Cand::Owned(self.an.control_flow_successors(f, from)))
                } else {
                    let to = get(1)?;
                    Some(Cand::Owned(self.an.control_flow_predecessors(f, to)))
                }
            }
            ReachesPhi => {
                // vars: [value, phi, branch]
                match slot {
                    0 => {
                        let phi = get(1)?;
                        let from = get(2);
                        let i = f.instr(phi)?;
                        if i.opcode != Opcode::Phi {
                            return Some(Cand::Owned(Vec::new()));
                        }
                        Some(Cand::Owned(match from {
                            Some(br) => i
                                .operands
                                .iter()
                                .zip(&i.incoming)
                                .filter(|(_, &b)| f.terminator(b) == Some(br))
                                .map(|(&v, _)| v)
                                .collect(),
                            None => i.operands.clone(),
                        }))
                    }
                    1 => {
                        let value = get(0)?;
                        Some(Cand::Owned(
                            self.an
                                .defuse
                                .users(value)
                                .iter()
                                .copied()
                                .filter(|&u| f.opcode(u) == Some(Opcode::Phi))
                                .collect(),
                        ))
                    }
                    2 => {
                        let phi = get(1)?;
                        let i = f.instr(phi)?;
                        if i.opcode != Opcode::Phi {
                            return Some(Cand::Owned(Vec::new()));
                        }
                        Some(Cand::Owned(
                            i.incoming.iter().filter_map(|&b| f.terminator(b)).collect(),
                        ))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    // ----- 3-valued evaluation -----

    /// Recursive whole-tree evaluation. Superseded on the search hot path
    /// by the incremental [`IncEval`]; kept as the `debug_assert!` oracle
    /// the incremental evaluator is checked against under test.
    fn eval3(&self, tree: &CTree, asg: &Assignment) -> Tri {
        match tree {
            CTree::Atom(a) => self.eval_atom(a, asg),
            CTree::And(cs) => {
                let mut result = Tri::True;
                for c in cs {
                    match self.eval3(c, asg) {
                        Tri::False => return Tri::False,
                        Tri::Unknown => result = Tri::Unknown,
                        Tri::True => {}
                    }
                }
                result
            }
            CTree::Or(cs) => {
                if cs.is_empty() {
                    return Tri::False;
                }
                let mut result = Tri::False;
                for c in cs {
                    match self.eval3(c, asg) {
                        Tri::True => return Tri::True,
                        Tri::Unknown => result = Tri::Unknown,
                        Tri::False => {}
                    }
                }
                result
            }
            CTree::Collect { .. } => Tri::Unknown,
        }
    }

    // ----- finalization: collects, concats, purity -----

    /// Resolves a family reference against an assignment: the scalar
    /// binding if present, else all bound `name[k]` members in index
    /// order (membership is pre-resolved in the symbol table).
    fn resolve_family(asg: &Assignment, symbols: &SymbolTable, fam: VarId) -> Vec<ValueId> {
        if let Some(v) = asg.get(fam) {
            return vec![v];
        }
        symbols
            .family_members(fam)
            .iter()
            .filter_map(|&m| asg.get(m))
            .collect()
    }

    /// Runs collects/concats and checks deferred atoms. Returns the
    /// completed assignment or `None` if some deferred constraint fails.
    ///
    /// `steps` is the *shared* step counter of the enclosing search:
    /// `collect` sub-searches only spend what remains of the budget and
    /// charge their consumption back, so total work stays bounded by
    /// `opts.max_steps` even across nested searches. An exhausted or
    /// truncated sub-search clears `complete`.
    #[allow(clippy::too_many_arguments)]
    fn finalize(
        &self,
        tree: &CTree,
        idx: &TreeIndex,
        vals: &[Tri],
        symbols: &SymbolTable,
        asg: &Assignment,
        opts: &SolveOptions,
        steps: &mut u64,
        complete: &mut bool,
    ) -> Option<Assignment> {
        let mut full = asg.clone();
        self.run_bindings(tree, idx, 0, symbols, &mut full, opts, steps, complete)?;
        if self.eval_final(tree, idx, 0, vals, symbols, &full) {
            Some(full)
        } else {
            None
        }
    }

    /// Executes `collect` and `Concat` nodes along the conjunctive spine.
    /// `id` is `tree`'s node id in `idx` (the index of the *enclosing*
    /// search tree — the walk keeps them aligned so `collect` nodes can
    /// use their pre-built sub-search plans).
    #[allow(clippy::too_many_arguments)]
    fn run_bindings(
        &self,
        tree: &CTree,
        idx: &TreeIndex,
        id: usize,
        symbols: &SymbolTable,
        full: &mut Assignment,
        opts: &SolveOptions,
        steps: &mut u64,
        complete: &mut bool,
    ) -> Option<()> {
        match tree {
            CTree::And(cs) => {
                for (c, &cid) in cs.iter().zip(&idx.nodes()[id].children) {
                    self.run_bindings(c, idx, cid, symbols, full, opts, steps, complete)?;
                }
                Some(())
            }
            CTree::Or(_)
            | CTree::Atom(Atom {
                kind: AtomKind::KilledBy,
                ..
            }) => Some(()),
            CTree::Atom(a) if a.kind == AtomKind::Concat => {
                let out = a.families[0];
                let mut members = Self::resolve_family(full, symbols, a.families[1]);
                members.extend(Self::resolve_family(full, symbols, a.families[2]));
                // Output slots were pre-interned at compile time; for any
                // acyclic concat chain they cover every index we can
                // produce. A degenerate self-referential concat is capped
                // at the pre-interned capacity (the only finite reading).
                let slots = symbols.family_members(out);
                for (k, v) in members.into_iter().enumerate().take(slots.len()) {
                    full.bind(slots[k], v);
                }
                Some(())
            }
            CTree::Atom(_) => Some(()),
            CTree::Collect { instances } => {
                if instances.is_empty() {
                    return Some(());
                }
                let sub_opts = SolveOptions {
                    max_solutions: instances.len(),
                    max_steps: opts.max_steps.saturating_sub(*steps),
                };
                // The plan carries the body's variable list and index,
                // built once with the enclosing constraint's index — the
                // per-finalize cost is just the unbound filter (plus a
                // memoized ordering).
                let plan = idx.collect_plan(id).expect("non-empty collect has a plan");
                let unbound: Vec<VarId> = plan
                    .variables
                    .iter()
                    .copied()
                    .filter(|&v| full.get(v).is_none())
                    .collect();
                let order = plan.order_for(&instances[0], &unbound);
                let out = self.run_search(
                    &instances[0],
                    &plan.index,
                    symbols,
                    full.clone(),
                    order,
                    &sub_opts,
                );
                *steps = steps.saturating_add(out.steps);
                // Only *budget* truncation counts as incompleteness. The
                // solution cap here is the IDL-declared family capacity
                // (`collect i N`): stopping at N members is the constraint
                // working as written, not a missed enumeration, and no
                // budget widening could ever "fix" it.
                if !out.complete && out.steps >= sub_opts.max_steps {
                    *complete = false;
                }
                let v0 = instances[0].variables_deep();
                for (k, sol) in out.solutions.iter().enumerate() {
                    if k >= instances.len() {
                        break;
                    }
                    let vk = instances[k].variables_deep();
                    for (&name0, &namek) in v0.iter().zip(&vk) {
                        if let Some(val) = sol.get(name0) {
                            if full.get(namek).is_none() {
                                full.bind(namek, val);
                            }
                        }
                    }
                }
                Some(())
            }
        }
    }

    /// Final evaluation: everything must be true; `collect` counts as
    /// satisfied, `Concat` as executed, `KilledBy` is checked against the
    /// bound families. `vals` is the incremental evaluator's cache for
    /// `idx` under the pre-finalize assignment: a node it already proved
    /// `True` stays true under the extension (`full` only *adds*
    /// bindings, and `Collect`/`Concat`/`KilledBy` evaluate `Unknown`
    /// incrementally, so no deferred node hides under a `True`), letting
    /// the walk skip everything except the deferred spine.
    #[allow(clippy::too_many_arguments)]
    fn eval_final(
        &self,
        tree: &CTree,
        idx: &TreeIndex,
        id: usize,
        vals: &[Tri],
        symbols: &SymbolTable,
        full: &Assignment,
    ) -> bool {
        if vals.get(id) == Some(&Tri::True) {
            return true;
        }
        match tree {
            CTree::And(cs) => cs
                .iter()
                .zip(&idx.nodes()[id].children)
                .all(|(c, &cid)| self.eval_final(c, idx, cid, vals, symbols, full)),
            CTree::Or(cs) => cs
                .iter()
                .zip(&idx.nodes()[id].children)
                .any(|(c, &cid)| self.eval_final(c, idx, cid, vals, symbols, full)),
            CTree::Collect { .. } => true,
            CTree::Atom(a) => match a.kind {
                AtomKind::Concat => true,
                AtomKind::KilledBy => {
                    let Some(sink) = full.get(a.vars[0]) else {
                        return false;
                    };
                    let mut killers = Vec::new();
                    for &fam in &a.families {
                        killers.extend(Self::resolve_family(full, symbols, fam));
                    }
                    kernel_slice(self.f, sink, &killers, PURE_CALLS).is_some()
                }
                _ => {
                    let mut vals = Vec::with_capacity(a.vars.len());
                    for &v in &a.vars {
                        match full.get(v) {
                            Some(x) => vals.push(x),
                            None => return false,
                        }
                    }
                    self.eval_ground(a, &vals)
                }
            },
        }
    }
}

/// A [`SolveOutcome`] whose solutions are still dense assignments.
struct DenseOutcome {
    solutions: Vec<Assignment>,
    complete: bool,
    steps: u64,
}

/// A [`SolveOutcome`] in bulk row form: each solution projected onto a
/// caller-chosen variable list, in that order. Same canonical solution
/// ordering as [`SolveOutcome`]; no variable names involved.
#[derive(Debug, Clone)]
pub struct RowsOutcome {
    /// One row per solution, each the values of the requested variables.
    pub rows: Vec<Vec<ValueId>>,
    /// See [`SolveOutcome::complete`].
    pub complete: bool,
    /// See [`SolveOutcome::steps`].
    pub steps: u64,
}

/// Projects a dense outcome onto `vars` (which must all be bound in every
/// solution — true for any variable of the solved tree).
fn rows_outcome(vars: &[VarId], dense: DenseOutcome) -> RowsOutcome {
    let rows = dense
        .solutions
        .iter()
        .map(|a| {
            vars.iter()
                .map(|&v| a.get(v).expect("projection variable is bound"))
                .collect()
        })
        .collect();
    RowsOutcome {
        rows,
        complete: dense.complete,
        steps: dense.steps,
    }
}

/// Renders a dense outcome as string-keyed [`Solution`]s — the only
/// point where variable names re-enter the picture.
fn render_outcome(symbols: &SymbolTable, dense: DenseOutcome) -> SolveOutcome {
    let solutions = dense
        .solutions
        .into_iter()
        .map(|a| Solution {
            bindings: a
                .slots()
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|v| (symbols.name(VarId(i as u32)).to_owned(), v)))
                .collect(),
        })
        .collect();
    SolveOutcome {
        solutions,
        complete: dense.complete,
        steps: dense.steps,
    }
}

/// Incremental watched-atom evaluation over a [`TreeIndex`].
///
/// Replaces the O(|tree|)-per-step recursive `eval3` walk: every node's
/// 3-valued truth is cached, and each `And`/`Or` keeps counts of its
/// children per truth value so a child change repairs the parent in O(1).
/// Binding (or unbinding) a variable re-evaluates only the atoms watching
/// that variable and propagates dirtiness along parent links — worst case
/// O(watchers × depth) per step instead of the size of the whole tree.
struct IncEval<'t> {
    idx: &'t TreeIndex,
    /// Cached truth per node (pre-order, `vals[0]` is the root).
    vals: Vec<Tri>,
    /// Per composite node: how many children are currently true /
    /// false / unknown.
    n_true: Vec<u32>,
    n_false: Vec<u32>,
    n_unknown: Vec<u32>,
}

fn composite_val(kind: IndexedKind, n_true: u32, n_false: u32, n_unknown: u32) -> Tri {
    match kind {
        // Empty conjunction = true, empty disjunction = false (as eval3).
        IndexedKind::And => {
            if n_false > 0 {
                Tri::False
            } else if n_unknown > 0 {
                Tri::Unknown
            } else {
                Tri::True
            }
        }
        IndexedKind::Or => {
            if n_true > 0 {
                Tri::True
            } else if n_unknown > 0 {
                Tri::Unknown
            } else {
                Tri::False
            }
        }
        IndexedKind::Atom(_) | IndexedKind::Collect => unreachable!("leaf"),
    }
}

impl<'t> IncEval<'t> {
    /// Seeds every cache from `asg` over a prebuilt index (one full
    /// evaluation pass; everything after is incremental).
    fn new(solver: &Solver, idx: &'t TreeIndex, asg: &Assignment) -> IncEval<'t> {
        let n = idx.len();
        let mut ev = IncEval {
            idx,
            vals: vec![Tri::Unknown; n],
            n_true: vec![0; n],
            n_false: vec![0; n],
            n_unknown: vec![0; n],
        };
        ev.reseed(solver, asg);
        ev
    }

    /// Recomputes every cache from `asg` in one pass — the bulk-rebind
    /// used between seed rows, where repairing tens of bindings
    /// incrementally (twice: unbind then bind) costs more than one sweep.
    fn reseed(&mut self, solver: &Solver, asg: &Assignment) {
        // Children have larger ids than parents: reverse pre-order visits
        // children first.
        for id in (0..self.idx.len()).rev() {
            let v = match self.idx.nodes()[id].kind {
                IndexedKind::Atom(a) => solver.eval_atom(self.idx.atom(a), asg),
                IndexedKind::Collect => Tri::Unknown,
                kind @ (IndexedKind::And | IndexedKind::Or) => {
                    let (mut t, mut f, mut u) = (0u32, 0u32, 0u32);
                    for &c in &self.idx.nodes()[id].children {
                        match self.vals[c] {
                            Tri::True => t += 1,
                            Tri::False => f += 1,
                            Tri::Unknown => u += 1,
                        }
                    }
                    self.n_true[id] = t;
                    self.n_false[id] = f;
                    self.n_unknown[id] = u;
                    composite_val(kind, t, f, u)
                }
            };
            self.vals[id] = v;
        }
    }

    /// Cached truth of the whole formula.
    fn root_val(&self) -> Tri {
        self.vals[0]
    }

    /// Re-evaluates the atoms watching `var` against `asg` (which must
    /// already reflect the bind or unbind) and repairs ancestor caches.
    fn rebind(&mut self, solver: &Solver, var: VarId, asg: &Assignment) {
        let IncEval {
            idx,
            vals,
            n_true,
            n_false,
            n_unknown,
        } = self;
        for &a in idx.watchers(var) {
            let IndexedKind::Atom(atom) = idx.nodes()[a].kind else {
                unreachable!("watchers point at atoms");
            };
            let mut node = a;
            let mut newv = solver.eval_atom(idx.atom(atom), asg);
            loop {
                let old = vals[node];
                if old == newv {
                    break;
                }
                vals[node] = newv;
                let Some(p) = idx.nodes()[node].parent else {
                    break;
                };
                match old {
                    Tri::True => n_true[p] -= 1,
                    Tri::False => n_false[p] -= 1,
                    Tri::Unknown => n_unknown[p] -= 1,
                }
                match newv {
                    Tri::True => n_true[p] += 1,
                    Tri::False => n_false[p] += 1,
                    Tri::Unknown => n_unknown[p] += 1,
                }
                newv = composite_val(idx.nodes()[p].kind, n_true[p], n_false[p], n_unknown[p]);
                node = p;
            }
        }
    }
}

struct SearchCx<'a, 'f> {
    solver: &'a Solver<'f>,
    tree: &'a CTree,
    symbols: &'a SymbolTable,
    inc: IncEval<'a>,
    order: Vec<VarId>,
    opts: &'a SolveOptions,
    steps: u64,
    complete: bool,
    out: Vec<Assignment>,
    seen: HashSet<Assignment>,
}

impl SearchCx<'_, '_> {
    /// Checks the incremental evaluator against the recursive oracle
    /// (compiled out of release builds).
    fn check_oracle(&self, asg: &Assignment) {
        debug_assert_eq!(
            self.inc.root_val(),
            self.solver.eval3(self.tree, asg),
            "incremental evaluator diverged from eval3 under {asg:?}"
        );
    }

    /// Sorts the collected assignments canonically, keeping them dense.
    fn finish_dense(self) -> DenseOutcome {
        let mut solutions = self.out;
        solutions.sort_unstable_by(|a, b| a.slots().cmp(b.slots()));
        DenseOutcome {
            solutions,
            complete: self.complete,
            steps: self.steps,
        }
    }

    fn search(&mut self, k: usize, asg: &mut Assignment) {
        if k == self.order.len() {
            if self.inc.root_val() == Tri::True {
                // Proven true incrementally with nothing deferred:
                // `Collect`/`Concat`/`KilledBy` all evaluate `Unknown`,
                // so a root that reached `True` has none of them pending
                // on the conjunctive spine — `finalize` would clone,
                // no-op `run_bindings` and re-prove the tree. Skip it.
                if self.seen.insert(asg.clone()) {
                    self.out.push(asg.clone());
                }
                return;
            }
            if let Some(full) = self.solver.finalize(
                self.tree,
                self.inc.idx,
                &self.inc.vals,
                self.symbols,
                asg,
                self.opts,
                &mut self.steps,
                &mut self.complete,
            ) {
                if self.seen.insert(full.clone()) {
                    self.out.push(full);
                }
            }
            return;
        }
        let var = self.order[k];
        // Don't-care elimination: if every atom mentioning this variable
        // sits under a disjunction that is already satisfied, the variable
        // cannot influence the formula — bind it canonically instead of
        // enumerating (this is what keeps helper variables of untaken
        // `or` branches, e.g. the offset of an identity OffsetChain, from
        // multiplying solutions).
        if !self.relevant(var) {
            asg.bind(var, ValueId(0));
            self.inc.rebind(self.solver, var, asg);
            self.check_oracle(asg);
            self.search(k + 1, asg);
            asg.unbind(var);
            self.inc.rebind(self.solver, var, asg);
            return;
        }
        let candidates = self
            .gen_node(0, var, asg)
            .unwrap_or_else(|| Cand::Shared(Rc::clone(&self.solver.all_values)));
        for i in 0..candidates.len() {
            let c = candidates[i];
            if self.out.len() >= self.opts.max_solutions || self.steps >= self.opts.max_steps {
                // Cut off with candidates still unexplored: solutions may
                // have been missed.
                self.complete = false;
                self.recycle(candidates);
                return;
            }
            self.steps += 1;
            asg.bind(var, c);
            self.inc.rebind(self.solver, var, asg);
            self.check_oracle(asg);
            if self.inc.root_val() != Tri::False {
                self.search(k + 1, asg);
            }
            asg.unbind(var);
            self.inc.rebind(self.solver, var, asg);
        }
        self.recycle(candidates);
    }

    /// Returns an owned candidate buffer to the solver's scratch pool.
    fn recycle(&self, cand: Cand) {
        if let Cand::Owned(mut v) = cand {
            v.clear();
            let mut pool = self.solver.scratch.borrow_mut();
            if pool.len() < 64 {
                pool.push(v);
            }
        }
    }

    /// `true` if assigning `var` can still influence the truth of the
    /// formula: some atom watching `var` has no disjunction ancestor that
    /// is already satisfied, along a branch path not yet falsified.
    fn relevant(&self, var: VarId) -> bool {
        let nodes = self.inc.idx.nodes();
        'watcher: for &a in self.inc.idx.watchers(var) {
            let mut x = a;
            while let Some(p) = nodes[x].parent {
                if matches!(nodes[p].kind, IndexedKind::Or)
                    && (self.inc.n_true[p] > 0 || self.inc.vals[x] == Tri::False)
                {
                    continue 'watcher;
                }
                x = p;
            }
            return true;
        }
        false
    }

    /// Candidates for `var` implied by the subtree at `node`, using the
    /// cached branch truth values to skip falsified `or` branches.
    fn gen_node(&self, node: usize, var: VarId, asg: &Assignment) -> Option<Cand> {
        // A subtree with no atom mentioning `var` can never generate for
        // it (atoms return `None`, `And` folds `None` children away, `Or`
        // needs every branch): skip it in O(1) instead of recursing.
        if !self.inc.idx.mentions(node, var) {
            return None;
        }
        let n = &self.inc.idx.nodes()[node];
        match n.kind {
            IndexedKind::Atom(a) => self.solver.gen_atom(self.inc.idx.atom(a), var, asg),
            IndexedKind::And => {
                let mut acc: Option<Cand> = None;
                for &c in &n.children {
                    // Hoisted subtree-mention test (also first thing the
                    // recursive call would do): most children of a wide
                    // conjunction never mention `var` — skip the call.
                    if !self.inc.idx.mentions(c, var) {
                        continue;
                    }
                    if let Some(g) = self.gen_node(c, var, asg) {
                        acc = Some(match acc {
                            None => g,
                            Some(prev) => {
                                // Singleton fast paths: an intersection
                                // with a one-element list is a membership
                                // test, no allocation. The kept order is
                                // what the filter below would produce.
                                let merged = if let [x] = *g {
                                    if prev.contains(&x) {
                                        Cand::One([x])
                                    } else {
                                        Cand::Owned(Vec::new())
                                    }
                                } else if let [x] = *prev {
                                    if g.contains(&x) {
                                        Cand::One([x])
                                    } else {
                                        Cand::Owned(Vec::new())
                                    }
                                } else {
                                    let filtered: Vec<ValueId> = if g.len() <= 32 {
                                        prev.iter().copied().filter(|v| g.contains(v)).collect()
                                    } else {
                                        let set: HashSet<ValueId> = g.iter().copied().collect();
                                        prev.iter().copied().filter(|v| set.contains(v)).collect()
                                    };
                                    Cand::Owned(filtered)
                                };
                                self.recycle(g);
                                self.recycle(prev);
                                merged
                            }
                        });
                        if acc.as_ref().is_some_and(|c| c.is_empty()) {
                            return acc; // empty intersection, prune hard
                        }
                    }
                }
                acc
            }
            IndexedKind::Or => {
                // A union is only a sound generator if EVERY branch
                // generates (otherwise an ungenerated branch might admit
                // other values). Branches already falsified under the
                // current assignment admit nothing and are skipped.
                let mut union: Vec<ValueId> =
                    self.solver.scratch.borrow_mut().pop().unwrap_or_default();
                for &c in &n.children {
                    if self.inc.vals[c] == Tri::False {
                        continue;
                    }
                    if !self.inc.idx.mentions(c, var) {
                        // The branch admits every value of `var`: no
                        // sound union exists (same as the recursive
                        // call returning `None`).
                        self.recycle(Cand::Owned(union));
                        return None;
                    }
                    match self.gen_node(c, var, asg) {
                        Some(g) => {
                            for &v in g.iter() {
                                if !union.contains(&v) {
                                    union.push(v);
                                }
                            }
                            self.recycle(g);
                        }
                        None => {
                            self.recycle(Cand::Owned(union));
                            return None;
                        }
                    }
                }
                Some(Cand::Owned(union))
            }
            IndexedKind::Collect => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl::{compile, parse_library};
    use ssair::parser::parse_function_text;

    #[test]
    fn ordering_prefers_anchored_connected_variables() {
        let lib = parse_library(
            r#"
Constraint X
( {b} is first argument of {a} and
  {a} is add instruction and
  {c} is first argument of {b} )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "X").unwrap();
        // The compile-time precomputed order is what solve_outcome uses.
        assert_eq!(c.var_name(c.order[0]), "a", "anchored variable first");
        assert_eq!(c.var_name(c.order[1]), "b", "connected to a");
        assert_eq!(c.var_name(c.order[2]), "c");
    }

    #[test]
    fn family_resolution_orders_indices_numerically() {
        let mut syms = SymbolTable::new();
        let ids: Vec<VarId> = [0usize, 2, 10, 1]
            .iter()
            .map(|k| syms.intern(&format!("fam[{k}]")))
            .collect();
        syms.intern("fam[0].sub"); // must be ignored (not a direct member)
        let fam = syms.intern("fam");
        syms.index_families();
        let mut asg = Assignment::new(syms.len());
        for (&id, k) in ids.iter().zip([0u32, 2, 10, 1]) {
            asg.bind(id, ValueId(k));
        }
        asg.bind(syms.lookup("fam[0].sub").unwrap(), ValueId(99));
        let got = Solver::resolve_family(&asg, &syms, fam);
        assert_eq!(got, vec![ValueId(0), ValueId(1), ValueId(2), ValueId(10)]);
        // Scalar binding takes priority.
        asg.bind(fam, ValueId(7));
        assert_eq!(Solver::resolve_family(&asg, &syms, fam), vec![ValueId(7)]);
    }

    // ----- edge cases: degenerate functions and unsatisfiable programs -----

    /// A small but non-trivial constraint exercising generators, ordering,
    /// disjunction and dominance against degenerate inputs.
    fn loopish_constraint() -> idl::CompiledConstraint {
        let lib = parse_library(
            r#"
Constraint Loopish
( {iterator} is phi instruction and
  {precursor} is branch instruction and
  {precursor} has control flow to {iterator} and
  {begin} reaches phi node {iterator} from {precursor} and
  ( {begin} is a constant or {begin} is an argument ) and
  {iterator} strictly dominates {precursor} )
End
"#,
        )
        .unwrap();
        compile(&lib, "Loopish").unwrap()
    }

    #[test]
    fn empty_function_terminates_with_no_solutions() {
        // An entry block with no instructions at all (not even a
        // terminator): nothing to bind, nothing to crash on.
        let f = Function::new("empty", &[], ssair::Type::Void);
        let s = Solver::new(&f);
        let sols = s.solve(&loopish_constraint(), &SolveOptions::default());
        assert!(sols.is_empty());
    }

    #[test]
    fn single_block_function_terminates_with_no_solutions() {
        let f = parse_function_text(
            "define i64 @one(i64 %a) {\nentry:\n  %x = add i64 %a, 1\n  ret i64 %x\n}\n",
        )
        .unwrap();
        let s = Solver::new(&f);
        let sols = s.solve(&loopish_constraint(), &SolveOptions::default());
        assert!(sols.is_empty(), "no phi, no branch: nothing may match");
    }

    #[test]
    fn unreachable_blocks_do_not_panic_the_analyses_or_search() {
        // `dead` has no predecessors; dominance and post-dominance queries
        // against its instructions must stay well-defined.
        let f = parse_function_text(
            r#"
define i64 @u(i64 %n) {
entry:
  br label %exit
dead:
  %x = add i64 %n, 1
  br label %exit
exit:
  %r = phi i64 [ 0, %entry ], [ %x, %dead ]
  ret i64 %r
}
"#,
        )
        .unwrap();
        let s = Solver::new(&f);
        let sols = s.solve(&loopish_constraint(), &SolveOptions::default());
        // Whatever matches must at least be internally consistent.
        for sol in &sols {
            assert!(f.opcode(sol.bindings["iterator"]) == Some(Opcode::Phi));
        }
    }

    #[test]
    fn zero_solution_program_terminates() {
        // Mutually exclusive atoms: satisfiable nowhere, on any function.
        let lib = parse_library(
            "Constraint Impossible ( {a} is add instruction and {a} is mul instruction and {b} is first argument of {a} and {b} is unused ) End",
        )
        .unwrap();
        let c = compile(&lib, "Impossible").unwrap();
        let f = parse_function_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, %a\n  %y = mul i32 %x, %x\n  ret i32 %y\n}\n",
        )
        .unwrap();
        let sols = Solver::new(&f).solve(&c, &SolveOptions::default());
        assert!(sols.is_empty());
    }

    #[test]
    fn step_budget_cuts_off_pathological_searches() {
        // Five unconstrained variables over the whole value arena: the
        // search must stop at max_steps instead of exploding.
        let lib = parse_library(
            "Constraint Wide ( {a} is an instruction and {b} is an instruction and {c} is an instruction and {d} is an instruction and {a} is not the same as {b} ) End",
        )
        .unwrap();
        let c = compile(&lib, "Wide").unwrap();
        let mut body = String::new();
        for k in 0..24 {
            body.push_str(&format!("  %t{k} = add i64 %n, {k}\n"));
        }
        let f = parse_function_text(&format!(
            "define void @f(i64 %n) {{\nentry:\n{body}  ret void\n}}\n"
        ))
        .unwrap();
        let opts = SolveOptions {
            max_solutions: usize::MAX,
            max_steps: 2_000,
        };
        let sols = Solver::new(&f).solve(&c, &opts);
        // Terminates quickly and reports only genuine assignments.
        for sol in &sols {
            assert_ne!(sol.bindings["a"], sol.bindings["b"]);
        }
    }

    // ----- budget semantics and truncation reporting -----

    /// A function with `n` independent add instructions.
    fn wide_function(n: usize) -> Function {
        let mut body = String::new();
        for k in 0..n {
            body.push_str(&format!("  %t{k} = add i64 %n, {k}\n"));
        }
        parse_function_text(&format!(
            "define void @f(i64 %n) {{\nentry:\n{body}  ret void\n}}\n"
        ))
        .unwrap()
    }

    #[test]
    fn collect_sub_searches_share_the_total_step_budget() {
        // The outer search binds only the cheap anchor; the collect body
        // pairs every load with every load through a non-generator
        // dependence atom that never holds (all loads have distinct
        // roots), so the sub-search burns ~n² steps and finds nothing.
        // With the budget threaded through, the TOTAL work (outer + all
        // sub-searches) must stay within max_steps instead of getting a
        // fresh budget per collect — and the step cut must be reported.
        let lib = parse_library(
            "Constraint PathologicalCollect ( {anchor} is return instruction and collect i 64 ( {a[i]} is load instruction and {b[i]} is load instruction and {a[i]} has dependence edge to {b[i]} ) ) End",
        )
        .unwrap();
        let c = compile(&lib, "PathologicalCollect").unwrap();
        let k = 24;
        let params: Vec<String> = (0..k).map(|i| format!("double* %p{i}")).collect();
        let mut body = String::new();
        for i in 0..k {
            body.push_str(&format!("  %x{i} = load double, double* %p{i}\n"));
        }
        let f = parse_function_text(&format!(
            "define void @f({}) {{\nentry:\n{body}  ret void\n}}\n",
            params.join(", ")
        ))
        .unwrap();
        let opts = SolveOptions {
            max_solutions: usize::MAX,
            max_steps: 300,
        };
        let out = Solver::new(&f).solve_outcome(&c, &opts);
        assert!(
            out.steps <= opts.max_steps,
            "total steps {} exceed the budget {}",
            out.steps,
            opts.max_steps
        );
        assert!(
            !out.complete,
            "a step-cut search must report incompleteness"
        );
        // Sanity: with a generous budget the same query completes (and
        // proves the n² search space really is larger than 300 steps).
        let generous = Solver::new(&f).solve_outcome(&c, &SolveOptions::default());
        assert!(generous.complete);
        assert!(generous.steps > 300);
    }

    #[test]
    fn overfull_collect_family_is_not_reported_as_truncation() {
        // Four loads, family capacity two: the sub-search stops at the
        // IDL-declared cap. That is the constraint working as written —
        // not budget truncation — so the search stays `complete`.
        let lib = parse_library(
            "Constraint SmallFamily ( {anchor} is return instruction and collect i 2 ( {read[i]} is load instruction ) ) End",
        )
        .unwrap();
        let c = compile(&lib, "SmallFamily").unwrap();
        let f = parse_function_text(
            r#"
define double @f(double* %p) {
entry:
  %a = load double, double* %p
  %b = load double, double* %p
  %c = load double, double* %p
  %d = load double, double* %p
  %s = fadd double %a, %b
  ret double %s
}
"#,
        )
        .unwrap();
        let out = Solver::new(&f).solve_outcome(&c, &SolveOptions::default());
        assert_eq!(out.solutions.len(), 1);
        let b = &out.solutions[0].bindings;
        assert!(b.contains_key("read[0]") && b.contains_key("read[1]"));
        assert!(!b.contains_key("read[2]"), "family capped at capacity 2");
        assert!(
            out.complete,
            "a structurally-capped family is not an incomplete search"
        );
    }

    #[test]
    fn step_budget_is_not_exceeded_by_one() {
        // The off-by-one regression: `steps > max_steps` allowed
        // max_steps + 1 assignment steps.
        let lib = parse_library(
            "Constraint Wide2 ( {a} is an instruction and {b} is an instruction ) End",
        )
        .unwrap();
        let c = compile(&lib, "Wide2").unwrap();
        let f = wide_function(10);
        for budget in [1u64, 7, 50] {
            let opts = SolveOptions {
                max_solutions: usize::MAX,
                max_steps: budget,
            };
            let out = Solver::new(&f).solve_outcome(&c, &opts);
            assert!(
                out.steps <= budget,
                "{} steps under budget {budget}",
                out.steps
            );
            assert!(!out.complete);
        }
    }

    #[test]
    fn truncated_search_reports_incomplete() {
        let lib = parse_library("Constraint AnyAdd ( {x} is add instruction ) End").unwrap();
        let c = compile(&lib, "AnyAdd").unwrap();
        let f = wide_function(20);
        let solver = Solver::new(&f);
        // Cut by max_solutions.
        let capped = solver.solve_outcome(
            &c,
            &SolveOptions {
                max_solutions: 5,
                ..SolveOptions::default()
            },
        );
        assert_eq!(capped.solutions.len(), 5);
        assert!(!capped.complete, "solution cap hit mid-enumeration");
        // Cut by max_steps.
        let starved = solver.solve_outcome(
            &c,
            &SolveOptions {
                max_solutions: usize::MAX,
                max_steps: 3,
            },
        );
        assert!(starved.solutions.len() < 20);
        assert!(!starved.complete, "step cut must report incompleteness");
        // No limits hit: the full enumeration is complete.
        let full = solver.solve_outcome(&c, &SolveOptions::default());
        assert_eq!(full.solutions.len(), 20);
        assert!(full.complete);
        assert!(full.steps >= 20);
    }

    // ----- seeded search vs plain enumeration -----

    #[test]
    fn seeded_search_with_exhaustive_seeds_matches_plain_enumeration() {
        // A hand-rolled "skeleton": solve the anchor sub-constraint
        // standalone, then seed the full constraint from its solutions.
        // With canonical solution ordering the outcome must be
        // byte-identical to the plain search.
        let lib = parse_library(
            r#"
Constraint Anchor
( {m} is mul instruction )
End

Constraint Full
( inherits Anchor and
  ( {x} is first argument of {m} or {x} is second argument of {m} ) )
End
"#,
        )
        .unwrap();
        let anchor = compile(&lib, "Anchor").unwrap();
        let full = compile(&lib, "Full").unwrap();
        // `Anchor` is not a skeleton block, so no marker is recorded —
        // but the seeded API only needs the order prefix, which `m`
        // satisfies (it is the anchored first variable either way).
        assert_eq!(full.var_name(full.order[0]), "m");
        let f = parse_function_text(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %m = mul i32 %a, %b\n  %n = mul i32 %m, %a\n  ret i32 %n\n}\n",
        )
        .unwrap();
        let solver = Solver::new(&f);
        let m_full = full.symbols.lookup("m").unwrap();
        let seeds: Vec<Vec<(VarId, ValueId)>> = solver
            .solve_outcome(&anchor, &SolveOptions::default())
            .solutions
            .iter()
            .map(|s| vec![(m_full, s.bindings["m"])])
            .collect();
        assert_eq!(seeds.len(), 2);
        let plain = solver.solve_outcome(&full, &SolveOptions::default());
        let seeded = solver.solve_seeded_outcome(&full, &seeds, &SolveOptions::default());
        assert!(plain.complete && seeded.complete);
        assert_eq!(plain.solutions, seeded.solutions);
        // Seeding charges one step per seed binding, so it can never cost
        // more than enumerating the same prefix (and wins outright as
        // soon as the prefix enumeration tries failing candidates).
        assert!(
            seeded.steps <= plain.steps,
            "seeding must not cost more than the prefix enumeration ({} > {})",
            seeded.steps,
            plain.steps
        );
    }

    #[test]
    fn seeded_search_respects_the_step_budget() {
        let lib = parse_library(
            "Constraint TwoWide ( {a} is add instruction and {b} is an instruction ) End",
        )
        .unwrap();
        let c = compile(&lib, "TwoWide").unwrap();
        let f = wide_function(12);
        let solver = Solver::new(&f);
        let a = c.symbols.lookup("a").unwrap();
        assert_eq!(c.order[0], a);
        let seeds: Vec<Vec<(VarId, ValueId)>> = solver
            .solve_outcome(
                &compile(
                    &parse_library("Constraint A ( {a} is add instruction ) End").unwrap(),
                    "A",
                )
                .unwrap(),
                &SolveOptions::default(),
            )
            .solutions
            .iter()
            .map(|s| vec![(a, s.bindings["a"])])
            .collect();
        let opts = SolveOptions {
            max_solutions: usize::MAX,
            max_steps: 5,
        };
        let out = solver.solve_seeded_outcome(&c, &seeds, &opts);
        assert!(out.steps <= opts.max_steps);
        assert!(!out.complete, "budget cut must surface");
    }

    // ----- incremental evaluator vs the recursive oracle -----

    /// The subtrees of `t` in the same pre-order the `TreeIndex` uses
    /// (collect bodies are leaves, exactly as in the index).
    fn pre_order<'t>(t: &'t CTree, out: &mut Vec<&'t CTree>) {
        out.push(t);
        if let CTree::And(cs) | CTree::Or(cs) = t {
            for c in cs {
                pre_order(c, out);
            }
        }
    }

    /// A disjunction/conjunction-rich constraint whose atoms cover the
    /// three truth values under partial assignments.
    fn rich_constraint() -> idl::CompiledConstraint {
        let lib = parse_library(
            r#"
Constraint Rich
( {a} is add instruction and
  ( {b} is first argument of {a} or {b} is second argument of {a} ) and
  ( {b} is a constant or
    ( {b} is an instruction and {c} has data flow to {b} ) or
    {b} is an argument ) and
  {a} is not the same as {c} and
  ( {d} is mul instruction or {d} is unused ) )
End
"#,
        )
        .unwrap();
        compile(&lib, "Rich").unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(128))]

        #[test]
        fn incremental_eval_agrees_with_eval3_on_random_partial_assignments(
            picks in proptest::collection::vec((0usize..4, 0u32..16, proptest::prelude::any::<bool>()), 1..24),
        ) {
            let c = rich_constraint();
            let f = parse_function_text(
                r#"
define i64 @g(i64 %n, i64 %m) {
entry:
  %x = add i64 %n, 3
  %y = mul i64 %x, %m
  %z = add i64 %y, %x
  %w = sub i64 %z, %n
  ret i64 %w
}
"#,
            )
            .unwrap();
            let solver = Solver::new(&f);
            let vars: Vec<VarId> = ["a", "b", "c", "d"]
                .iter()
                .map(|n| c.symbols.lookup(n).unwrap())
                .collect();
            let mut subtrees = Vec::new();
            pre_order(&c.tree, &mut subtrees);

            // Replay a random bind/unbind history, comparing EVERY cached
            // node value against the recursive evaluation of its subtree.
            let mut asg = Assignment::new(c.symbols.len());
            let mut inc = IncEval::new(&solver, c.index(), &asg);
            proptest::prop_assert_eq!(subtrees.len(), inc.idx.len());
            for (slot, raw, unbind) in picks {
                let var = vars[slot];
                if unbind {
                    asg.unbind(var);
                } else {
                    // Values deliberately include ids that are not valid
                    // for some atoms — the evaluators must agree anyway.
                    let vals = &solver.all_values;
                    asg.bind(var, vals[(raw as usize) % vals.len()]);
                }
                inc.rebind(&solver, var, &asg);
                for (id, sub) in subtrees.iter().enumerate() {
                    proptest::prop_assert_eq!(
                        inc.vals[id],
                        solver.eval3(sub, &asg),
                        "node {} diverged under {:?}",
                        id,
                        &asg
                    );
                }
            }
        }
    }

    #[test]
    fn dependence_edges_use_address_roots() {
        let f = parse_function_text(
            r#"
define void @f(double* %p, double* %q, i64 %i) {
entry:
  %a = getelementptr double, double* %p, i64 %i
  %x = load double, double* %a
  %b = getelementptr double, double* %p, i64 0
  store double %x, double* %b
  %c = getelementptr double, double* %q, i64 %i
  store double %x, double* %c
  ret void
}
"#,
        )
        .unwrap();
        let s = Solver::new(&f);
        let e = ssair::BlockId(0);
        let load = f.block(e).instrs[1];
        let store_p = f.block(e).instrs[3];
        let store_q = f.block(e).instrs[5];
        assert!(s.may_depend(load, store_p), "same root p");
        assert!(!s.may_depend(load, store_q), "distinct roots p vs q");
    }
}
