//! # solver — backtracking constraint solver over SSA IR
//!
//! The generic solver of the paper (§2.1, §4.4; after Ginsbach & O'Boyle,
//! CGO'17 "Discovery and exploitation of general reductions"): given a
//! compiled IDL constraint and a function's IR, it enumerates **all**
//! assignments of IR values to constraint variables that satisfy the
//! formula.
//!
//! The search is classic backtracking with two accelerations:
//!
//! * **candidate generation** — functional atoms propagate: once `{sum}`
//!   is assigned, `{left} is first argument of {sum}` has exactly one
//!   candidate; opcode/type atoms restrict unassigned variables to
//!   precomputed buckets (the variable-ordering pass of §4.4 makes sure a
//!   generator is usually available);
//! * **incremental three-valued pruning** — every node of the constraint
//!   tree caches its truth value in {true, false, unknown}; binding a
//!   variable re-evaluates only the atoms *watching* that variable
//!   (per-variable watcher lists built from the [`idl::TreeIndex`]) and
//!   repairs ancestor `and`/`or` caches through per-node truth counters,
//!   so each step costs O(watchers × depth) instead of O(|tree|).
//!   Definitely-false partial assignments are abandoned immediately; the
//!   old recursive evaluator survives as a `debug_assert!` oracle the
//!   incremental one is checked against in every test run.
//!
//! `collect` nodes are executed once all outer variables are assigned:
//! each runs a nested all-solutions search and binds the solutions as an
//! indexed variable family (`read[0].value`, `read[1].value`, ...), the
//! `Concat` pseudo-atom concatenates families, and the `KilledBy` purity
//! check runs last against the fully bound assignment. Sub-searches spend
//! the *remaining* step budget of the enclosing search and charge their
//! consumption back, so [`SolveOptions::max_steps`] bounds the total work
//! of a query; [`SolveOutcome`] reports whether any limit truncated the
//! enumeration.

mod engine;

pub use engine::{RowsOutcome, Solution, SolveOptions, SolveOutcome, Solver, PURE_CALLS};

#[cfg(test)]
mod tests {
    use super::*;
    use idl::{compile, parse_library};
    use ssair::parser::parse_function_text;

    /// The worked example of the paper (§2.2, Figures 2 and 3): the
    /// factorization idiom finds exactly one opportunity, with `factor`
    /// assigned to `%a`.
    #[test]
    fn figure_2_and_3_worked_example() {
        let lib = parse_library(
            r#"
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend}) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend}))
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "FactorizationOpportunity").unwrap();
        let f = parse_function_text(
            r#"
define i32 @example(i32 %a, i32 %b, i32 %c) {
entry:
  %1 = mul i32 %a, %b
  %2 = mul i32 %c, %a
  %3 = add i32 %1, %2
  ret i32 %3
}
"#,
        )
        .unwrap();
        let solver = Solver::new(&f);
        let sols = solver.solve(&c, &SolveOptions::default());
        assert_eq!(sols.len(), 1, "exactly one factorization opportunity");
        let sol = &sols[0];
        let name = |v: &str| f.display_name(sol.bindings[v]);
        assert_eq!(name("factor"), "%a");
        assert_eq!(name("sum"), "%3");
        assert_eq!(name("left_addend"), "%1");
        assert_eq!(name("right_addend"), "%2");
    }

    #[test]
    fn no_match_when_no_common_factor() {
        let lib = parse_library(
            r#"
Constraint Factorization
( {sum} is add instruction and
  {l} is first argument of {sum} and
  {l} is mul instruction and
  {r} is second argument of {sum} and
  {r} is mul instruction and
  ( {factor} is first argument of {l} or {factor} is second argument of {l} ) and
  ( {factor} is first argument of {r} or {factor} is second argument of {r} ))
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "Factorization").unwrap();
        let f = parse_function_text(
            r#"
define i32 @nofactor(i32 %a, i32 %b, i32 %c, i32 %d) {
entry:
  %1 = mul i32 %a, %b
  %2 = mul i32 %c, %d
  %3 = add i32 %1, %2
  ret i32 %3
}
"#,
        )
        .unwrap();
        let solver = Solver::new(&f);
        assert!(solver.solve(&c, &SolveOptions::default()).is_empty());
    }

    #[test]
    fn disjunction_enumerates_all_alternatives() {
        // Both operands of the mul qualify -> two solutions.
        let lib = parse_library(
            r#"
Constraint MulOperand
( {m} is mul instruction and
  ( {x} is first argument of {m} or {x} is second argument of {m} ))
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "MulOperand").unwrap();
        let f = parse_function_text(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %m = mul i32 %a, %b\n  ret i32 %m\n}\n",
        )
        .unwrap();
        let sols = Solver::new(&f).solve(&c, &SolveOptions::default());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn collect_binds_families() {
        let lib = parse_library(
            r#"
Constraint Loads
( {anchor} is return instruction and
  collect i 8
  ( {read[i]} is load instruction ))
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "Loads").unwrap();
        let f = parse_function_text(
            r#"
define double @f(double* %p) {
entry:
  %a0 = getelementptr double, double* %p, i64 0
  %x = load double, double* %a0
  %a1 = getelementptr double, double* %p, i64 1
  %y = load double, double* %a1
  %s = fadd double %x, %y
  ret double %s
}
"#,
        )
        .unwrap();
        let sols = Solver::new(&f).solve(&c, &SolveOptions::default());
        assert_eq!(sols.len(), 1);
        let b = &sols[0].bindings;
        assert!(b.contains_key("read[0]"));
        assert!(b.contains_key("read[1]"));
        assert!(!b.contains_key("read[2]"));
    }

    #[test]
    fn killed_by_accepts_pure_kernels_and_rejects_impure() {
        let lib = parse_library(
            r#"
Constraint PureStore
( {st} is store instruction and
  {out} is first argument of {st} and
  {in} is load instruction and
  all flow to {out} is killed by {in} )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "PureStore").unwrap();
        // out = in*in + 1.0 : pure in `in`.
        let pure = parse_function_text(
            r#"
define void @k(double* %p, double* %q) {
entry:
  %x = load double, double* %p
  %m = fmul double %x, %x
  %o = fadd double %m, 1.0
  store double %o, double* %q
  ret void
}
"#,
        )
        .unwrap();
        let sols = Solver::new(&pure).solve(&c, &SolveOptions::default());
        assert!(!sols.is_empty(), "pure kernel accepted");
        // The stored value depends on two loads; with only one declared
        // input no solution can satisfy the purity check.
        let impure = parse_function_text(
            r#"
define void @k(double* %p, double* %q, double* %r) {
entry:
  %x = load double, double* %p
  %y = load double, double* %r
  %m = fmul double %x, %y
  store double %m, double* %q
  ret void
}
"#,
        )
        .unwrap();
        let sols = Solver::new(&impure).solve(&c, &SolveOptions::default());
        assert!(
            sols.is_empty(),
            "kernel depending on two loads has no 1-input solution"
        );
    }

    #[test]
    fn dominance_and_flow_atoms_work_in_loops() {
        let lib = parse_library(
            r#"
Constraint LoopShape
( {iterator} is phi instruction and
  {increment} is add instruction and
  {iterator} is first argument of {increment} and
  {increment} reaches phi node {iterator} from {backedge} and
  {backedge} is branch instruction and
  {comparison} is icmp instruction and
  {iterator} is first argument of {comparison} and
  {comparison} strictly control flow dominates {increment} )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "LoopShape").unwrap();
        let f = parse_function_text(
            r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
"#,
        )
        .unwrap();
        let sols = Solver::new(&f).solve(&c, &SolveOptions::default());
        assert_eq!(sols.len(), 1);
        let b = &sols[0].bindings;
        assert_eq!(f.display_name(b["iterator"]), "%i");
        assert_eq!(f.display_name(b["increment"]), "%i.next");
    }

    #[test]
    fn solution_cap_is_respected() {
        let lib = parse_library("Constraint AnyAdd ( {x} is add instruction ) End").unwrap();
        let c = compile(&lib, "AnyAdd").unwrap();
        let mut text = String::from("define i64 @f(i64 %a) {\nentry:\n");
        for k in 0..20 {
            text.push_str(&format!("  %x{k} = add i64 %a, {k}\n"));
        }
        text.push_str("  ret i64 %a\n}\n");
        let f = parse_function_text(&text).unwrap();
        let opts = SolveOptions {
            max_solutions: 5,
            ..SolveOptions::default()
        };
        let sols = Solver::new(&f).solve(&c, &opts);
        assert_eq!(sols.len(), 5);
    }

    #[test]
    fn concat_joins_families() {
        let lib = parse_library(
            r#"
Constraint C
( {old} is phi instruction and
  collect i 4 ( {read[i]} is load instruction ) and
  {kernel.input} is concatenation of {read} and {old} and
  {st} is store instruction and
  {out} is first argument of {st} and
  all flow to {out} is killed by {kernel.input} )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "C").unwrap();
        let f = parse_function_text(
            r#"
define void @f(double* %p, double* %q, i64 %n) {
entry:
  br label %header
header:
  %acc = phi double [ 0.0, %entry ], [ %nacc, %latch ]
  %i = phi i64 [ 0, %entry ], [ %inext, %latch ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %latch, label %exit
latch:
  %a = getelementptr double, double* %p, i64 %i
  %x = load double, double* %a
  %nacc = fadd double %acc, %x
  %inext = add i64 %i, 1
  br label %header
exit:
  store double %acc, double* %q
  ret void
}
"#,
        )
        .unwrap();
        let sols = Solver::new(&f).solve(&c, &SolveOptions::default());
        assert!(!sols.is_empty());
        let b = &sols[0].bindings;
        // kernel.input[0] = the load (from read), kernel.input[1] = phi.
        assert!(b.contains_key("kernel.input[0]"));
        assert!(b.contains_key("kernel.input[1]"));
    }
}
