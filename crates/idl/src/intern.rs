//! Symbol interning for compiled constraints.
//!
//! The solver's hot path used to key every binding, watcher list and
//! family lookup on flattened dotted names (`"inner.iter_begin"`,
//! `"read[2].value"`). All of those names are known once macro expansion
//! finishes, so each [`crate::CompiledConstraint`] now carries a
//! [`SymbolTable`] that maps every name to a dense [`VarId`] at compile
//! time. Atoms, watcher lists and assignments operate purely on ids; the
//! strings survive only at the `Solution` API boundary for display and
//! tests.
//!
//! The table also pre-resolves the *family structure* the `collect`,
//! `Concat` and `KilledBy` constructs need at solve time: for a symbol
//! `base`, the members are the symbols named `base[k]` (with no trailing
//! sub-path), in index order. Because `collect` bodies are
//! pre-instantiated and `Concat` output slots are pre-interned (see
//! [`crate::expand`]), family membership is entirely static — the solver
//! never parses a name while searching.

use std::collections::HashMap;

/// Dense id of one flattened variable name within a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-constraint mapping between flattened variable names and dense ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, VarId>,
    /// Per symbol: ids of its direct family members (`name[k]`, no
    /// trailing sub-path), sorted by `k`. Empty for non-family symbols.
    families: Vec<Vec<VarId>>,
}

impl SymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("constraint symbol count fits u32"));
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        self.families.push(Vec::new());
        id
    }

    /// The id of `name`, if interned.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.map.get(name).copied()
    }

    /// The name of `id`.
    #[must_use]
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned symbols (the solver's slot-array size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no symbol is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Ids of the direct family members of `base` (`base[0]`, `base[1]`,
    /// ... in index order). Empty unless [`SymbolTable::index_families`]
    /// ran after the last `intern`.
    #[must_use]
    pub fn family_members(&self, base: VarId) -> &[VarId] {
        &self.families[base.index()]
    }

    /// (Re)computes the family-member lists from the current name set.
    ///
    /// A symbol `base[k]` is a member of `base` iff nothing follows the
    /// closing bracket; `base` itself is interned on demand so family
    /// references that never appear as scalars (e.g. `read_value` when
    /// only `read_value[0..]` are bound) still get a slot.
    pub fn index_families(&mut self) {
        let mut memberships: Vec<(String, usize, VarId)> = Vec::new();
        for (i, name) in self.names.iter().enumerate() {
            let Some(open) = name.rfind('[') else {
                continue;
            };
            let Some(rest) = name[open + 1..].strip_suffix(']') else {
                continue;
            };
            let Ok(k) = rest.parse::<usize>() else {
                continue;
            };
            memberships.push((name[..open].to_owned(), k, VarId(i as u32)));
        }
        for f in &mut self.families {
            f.clear();
        }
        memberships.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        for (base, _, member) in memberships {
            let base_id = self.intern(&base);
            self.families[base_id.index()].push(member);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("iterator");
        let b = t.intern("inner.iter_begin");
        assert_eq!(t.intern("iterator"), a);
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(t.name(b), "inner.iter_begin");
        assert_eq!(t.lookup("iterator"), Some(a));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn family_indexing_orders_members_and_skips_subpaths() {
        let mut t = SymbolTable::new();
        let m2 = t.intern("read[2]");
        let m0 = t.intern("read[0]");
        let m10 = t.intern("read[10]");
        t.intern("read[0].value"); // sub-path: not a direct member
        t.intern("plain");
        t.index_families();
        let base = t.lookup("read").expect("base interned on demand");
        assert_eq!(t.family_members(base), &[m0, m2, m10]);
        assert!(t.family_members(t.lookup("plain").unwrap()).is_empty());
    }
}
