//! # idl — the Idiom Description Language
//!
//! This crate implements the paper's central contribution: a constraint
//! language for describing computational idioms over SSA IR (§3, Figure 7).
//! An IDL *program* is a set of named `Constraint ... End` definitions;
//! each definition combines **atomic constraints** (opcode tests, data- and
//! control-flow edges, dominance, argument positions...) with conjunction,
//! disjunction, inheritance, range quantifiers (`for all` / `for some`),
//! compile-time conditionals and the `collect` construct.
//!
//! Compilation follows §4.4 of the paper: `inherits`, `for all`,
//! `for some`, `if`, renaming and rebasing are macro-expanded away, leaving
//! a flat [`ctree::CTree`] of conjunctions/disjunctions over atomics (plus
//! `collect` nodes, which the solver executes as nested all-solutions
//! searches). Variable names are flattened to dotted strings such as
//! `inner.iter_begin` or `read[2].value`, exactly the names the paper's
//! Figure 5 solution table shows.
//!
//! ## Deviations from the paper's grammar (documented in DESIGN.md)
//!
//! The paper prints the BNF but not the building-block idioms, and two of
//! its atomics are under-specified. We therefore:
//!
//! * support `post dominates` forms (used by the paper's own SESE spec but
//!   missing from its printed grammar);
//! * accept every ssair opcode in `is <opcode> instruction`;
//! * define the kernel-purity varlist atomic as
//!   `all flow to {v} is killed by {list}` — every backward data-flow path
//!   from `v` must terminate at a member of `list`, a constant or an
//!   argument, crossing only pure instructions;
//! * define `{out} is concatenation of {in1} and {in2}` as the `Concat`
//!   binding constraint for variable families.
//!
//! ## Example
//!
//! The paper's Figure 2 factorization idiom parses and compiles directly:
//!
//! ```
//! let src = r#"
//! Constraint FactorizationOpportunity
//! ( {sum} is add instruction and
//!   {left_addend} is first argument of {sum} and
//!   {left_addend} is mul instruction and
//!   {right_addend} is second argument of {sum} and
//!   {right_addend} is mul instruction and
//!   ( {factor} is first argument of {left_addend} or
//!     {factor} is second argument of {left_addend}) and
//!   ( {factor} is first argument of {right_addend} or
//!     {factor} is second argument of {right_addend}))
//! End
//! "#;
//! let lib = idl::parse_library(src).expect("parses");
//! let compiled = idl::compile(&lib, "FactorizationOpportunity").expect("compiles");
//! assert_eq!(compiled.variables.len(), 4);
//! ```

pub mod ast;
pub mod ctree;
pub mod expand;
pub mod intern;
pub mod lexer;
pub mod parser;

pub use ast::{Calc, Constraint, Definition, Library, VarName};
pub use ctree::{
    order_variables, order_variables_seeded, Atom, AtomKind, CTree, CompiledConstraint, DomKind,
    EdgeKind, IndexedKind, IndexedNode, OpcodeClass, SkeletonRef, TreeIndex, TypeClass,
};
pub use expand::{compile, ExpandError};
pub use intern::{SymbolTable, VarId};
pub use parser::{parse_library, ParseError};
