//! Compiled constraint trees.
//!
//! After macro expansion (`inherits`, quantifiers, renaming — §4.4 of the
//! paper) an idiom definition is a tree of conjunctions and disjunctions
//! over atomic constraints, plus `collect` nodes. Variables are flattened
//! dotted strings (`"inner.iter_begin"`, `"read[2].value"`); the solver
//! assigns each one an IR value, exactly like the paper's Figure 5
//! solution table.

use ssair::Opcode;

/// Type classes testable by `is integer/float/pointer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeClass {
    /// `i1`/`i32`/`i64`.
    Integer,
    /// `f32`/`f64`.
    Float,
    /// Any pointer.
    Pointer,
}

/// Edge kinds for `has ... to` atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Operand-to-user SSA edge.
    Data,
    /// Direct instruction-level control-flow edge.
    Control,
    /// May-dependence between memory instructions.
    Dependence,
}

/// Dominance direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomKind {
    /// Forward dominance.
    Dom,
    /// Post-dominance.
    PostDom,
}

/// Opcode classes for `is <opcode> instruction`. `Branch` covers both the
/// conditional and unconditional forms, `ICmp`/`FCmp` cover all predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpcodeClass {
    /// `store`.
    Store,
    /// `load`.
    Load,
    /// `ret`.
    Return,
    /// `br` / conditional `br`.
    Branch,
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `mul`.
    Mul,
    /// `sdiv`.
    SDiv,
    /// `srem`.
    SRem,
    /// `fadd`.
    FAdd,
    /// `fsub`.
    FSub,
    /// `fmul`.
    FMul,
    /// `fdiv`.
    FDiv,
    /// `select`.
    Select,
    /// `getelementptr`.
    Gep,
    /// `icmp` (any predicate).
    ICmp,
    /// `fcmp` (any predicate).
    FCmp,
    /// `phi`.
    Phi,
    /// `sext`.
    SExt,
    /// `zext`.
    ZExt,
    /// `trunc`.
    Trunc,
    /// `sitofp`.
    SIToFP,
    /// `fptosi`.
    FPToSI,
    /// `fpext`.
    FPExt,
    /// `fptrunc`.
    FPTrunc,
    /// `call`.
    Call,
    /// `alloca`.
    Alloca,
}

impl OpcodeClass {
    /// Parses the surface spelling used in IDL sources.
    #[must_use]
    pub fn from_word(w: &str) -> Option<OpcodeClass> {
        Some(match w {
            "store" => OpcodeClass::Store,
            "load" => OpcodeClass::Load,
            "return" => OpcodeClass::Return,
            "branch" => OpcodeClass::Branch,
            "add" => OpcodeClass::Add,
            "sub" => OpcodeClass::Sub,
            "mul" => OpcodeClass::Mul,
            "sdiv" => OpcodeClass::SDiv,
            "srem" => OpcodeClass::SRem,
            "fadd" => OpcodeClass::FAdd,
            "fsub" => OpcodeClass::FSub,
            "fmul" => OpcodeClass::FMul,
            "fdiv" => OpcodeClass::FDiv,
            "select" => OpcodeClass::Select,
            "gep" => OpcodeClass::Gep,
            "icmp" => OpcodeClass::ICmp,
            "fcmp" => OpcodeClass::FCmp,
            "phi" => OpcodeClass::Phi,
            "sext" => OpcodeClass::SExt,
            "zext" => OpcodeClass::ZExt,
            "trunc" => OpcodeClass::Trunc,
            "sitofp" => OpcodeClass::SIToFP,
            "fptosi" => OpcodeClass::FPToSI,
            "fpext" => OpcodeClass::FPExt,
            "fptrunc" => OpcodeClass::FPTrunc,
            "call" => OpcodeClass::Call,
            "alloca" => OpcodeClass::Alloca,
            _ => return None,
        })
    }

    /// `true` if `op` belongs to this class.
    #[must_use]
    pub fn matches(self, op: Opcode) -> bool {
        match self {
            OpcodeClass::Store => op == Opcode::Store,
            OpcodeClass::Load => op == Opcode::Load,
            OpcodeClass::Return => op == Opcode::Ret,
            OpcodeClass::Branch => matches!(op, Opcode::Br | Opcode::CondBr),
            OpcodeClass::Add => op == Opcode::Add,
            OpcodeClass::Sub => op == Opcode::Sub,
            OpcodeClass::Mul => op == Opcode::Mul,
            OpcodeClass::SDiv => op == Opcode::SDiv,
            OpcodeClass::SRem => op == Opcode::SRem,
            OpcodeClass::FAdd => op == Opcode::FAdd,
            OpcodeClass::FSub => op == Opcode::FSub,
            OpcodeClass::FMul => op == Opcode::FMul,
            OpcodeClass::FDiv => op == Opcode::FDiv,
            OpcodeClass::Select => op == Opcode::Select,
            OpcodeClass::Gep => op == Opcode::Gep,
            OpcodeClass::ICmp => matches!(op, Opcode::ICmp(_)),
            OpcodeClass::FCmp => matches!(op, Opcode::FCmp(_)),
            OpcodeClass::Phi => op == Opcode::Phi,
            OpcodeClass::SExt => op == Opcode::SExt,
            OpcodeClass::ZExt => op == Opcode::ZExt,
            OpcodeClass::Trunc => op == Opcode::Trunc,
            OpcodeClass::SIToFP => op == Opcode::SIToFP,
            OpcodeClass::FPToSI => op == Opcode::FPToSI,
            OpcodeClass::FPExt => op == Opcode::FPExt,
            OpcodeClass::FPTrunc => op == Opcode::FPTrunc,
            OpcodeClass::Call => op == Opcode::Call,
            OpcodeClass::Alloca => op == Opcode::Alloca,
        }
    }
}

/// An atomic constraint over flattened variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomKind {
    /// `is integer/float/pointer [constant zero]`.
    TypeIs {
        /// The tested class.
        class: TypeClass,
        /// Also require a zero constant.
        constant_zero: bool,
    },
    /// No users.
    Unused,
    /// Integer/float constant.
    IsConstant,
    /// Constant or function argument ("compile time value").
    IsPreexecution,
    /// Function argument.
    IsArgument,
    /// Any instruction.
    IsInstruction,
    /// Specific opcode class.
    OpcodeIs(OpcodeClass),
    /// Variable equality (or inequality with `negated`).
    Same {
        /// `is not the same as`.
        negated: bool,
    },
    /// `has <kind> to` edge.
    HasEdge(EdgeKind),
    /// Operand position: `vars[0]` is operand `pos` of `vars[1]`.
    ArgumentOf {
        /// Zero-based operand index.
        pos: usize,
    },
    /// `vars[0]` is the incoming value of phi `vars[1]` for the edge whose
    /// terminator is `vars[2]`.
    ReachesPhi,
    /// Instruction-granularity dominance between `vars[0]` and `vars[1]`.
    Dominates {
        /// Strict form.
        strict: bool,
        /// Post-dominance.
        post: bool,
        /// `does not` form.
        negated: bool,
    },
    /// Every path `vars[0] → vars[1]` passes through `vars[2]`.
    AllFlowThrough {
        /// `true` for data-flow paths, `false` for control flow.
        data: bool,
    },
    /// Kernel purity: the backward slice of `vars[0]` terminates at the
    /// `families` members (or constants/arguments) crossing only pure
    /// instructions.
    KilledBy,
    /// Family binding: `families[0] = families[1] ++ families[2]`.
    Concat,
}

/// An atom with its variable references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The kind.
    pub kind: AtomKind,
    /// Searchable variable names (assigned by the solver).
    pub vars: Vec<String>,
    /// Family/reference names resolved against the assignment at
    /// evaluation time (`KilledBy` killers, `Concat` operands).
    pub families: Vec<String>,
}

/// A compiled constraint tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CTree {
    /// Conjunction (empty = true).
    And(Vec<CTree>),
    /// Disjunction (empty = false).
    Or(Vec<CTree>),
    /// Atomic constraint.
    Atom(Atom),
    /// All-solutions sub-search. `instances[k]` is the body with the
    /// collect index substituted by `k`; solution `k` of the sub-search is
    /// bound to the names of instance `k`.
    Collect {
        /// Pre-instantiated bodies, index 0..max.
        instances: Vec<CTree>,
    },
}

impl CTree {
    /// All searchable variables in first-occurrence order (excluding
    /// variables internal to `collect` bodies).
    #[must_use]
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_vars(&mut out, true);
        out
    }

    /// All variables including collect-internal ones (used to align
    /// collect instances positionally).
    #[must_use]
    pub fn variables_deep(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_vars(&mut out, false);
        out
    }

    fn walk_vars(&self, out: &mut Vec<String>, skip_collect: bool) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.walk_vars(out, skip_collect);
                }
            }
            CTree::Atom(a) => {
                // Family references (`KilledBy` killers, `Concat` operands)
                // are resolved against the assignment at evaluation time;
                // they are NOT search variables.
                for v in &a.vars {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
            CTree::Collect { instances } => {
                if !skip_collect {
                    for i in instances {
                        i.walk_vars(out, false);
                    }
                }
            }
        }
    }

    /// Number of atoms in the tree (collect bodies counted once).
    #[must_use]
    pub fn atom_count(&self) -> usize {
        match self {
            CTree::And(cs) | CTree::Or(cs) => cs.iter().map(CTree::atom_count).sum(),
            CTree::Atom(_) => 1,
            CTree::Collect { instances } => instances.first().map_or(0, CTree::atom_count),
        }
    }
}

/// A fully compiled, solver-ready idiom definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledConstraint {
    /// Idiom name (the `Constraint <name>` header).
    pub name: String,
    /// The constraint tree.
    pub tree: CTree,
    /// Searchable variables in first-occurrence order.
    pub variables: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classes_match() {
        assert!(OpcodeClass::Branch.matches(Opcode::Br));
        assert!(OpcodeClass::Branch.matches(Opcode::CondBr));
        assert!(!OpcodeClass::Branch.matches(Opcode::Ret));
        assert!(OpcodeClass::ICmp.matches(Opcode::ICmp(ssair::ICmpPred::Slt)));
        assert!(OpcodeClass::from_word("gep") == Some(OpcodeClass::Gep));
        assert!(OpcodeClass::from_word("bogus").is_none());
    }

    #[test]
    fn variable_collection_order_and_dedup() {
        let t = CTree::And(vec![
            CTree::Atom(Atom {
                kind: AtomKind::OpcodeIs(OpcodeClass::Add),
                vars: vec!["sum".into()],
                families: vec![],
            }),
            CTree::Or(vec![
                CTree::Atom(Atom {
                    kind: AtomKind::ArgumentOf { pos: 0 },
                    vars: vec!["factor".into(), "sum".into()],
                    families: vec![],
                }),
                CTree::Atom(Atom {
                    kind: AtomKind::ArgumentOf { pos: 1 },
                    vars: vec!["factor".into(), "sum".into()],
                    families: vec![],
                }),
            ]),
        ]);
        assert_eq!(t.variables(), vec!["sum".to_owned(), "factor".to_owned()]);
        assert_eq!(t.atom_count(), 3);
    }
}
