//! Compiled constraint trees.
//!
//! After macro expansion (`inherits`, quantifiers, renaming — §4.4 of the
//! paper) an idiom definition is a tree of conjunctions and disjunctions
//! over atomic constraints, plus `collect` nodes. Variables are flattened
//! dotted strings (`"inner.iter_begin"`, `"read[2].value"`) interned into
//! dense [`VarId`]s through the constraint's [`SymbolTable`]; the solver
//! assigns each one an IR value, exactly like the paper's Figure 5
//! solution table (which shows the names the table maps back to).

use crate::intern::{SymbolTable, VarId};
use ssair::Opcode;

/// Type classes testable by `is integer/float/pointer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// `i1`/`i32`/`i64`.
    Integer,
    /// `f32`/`f64`.
    Float,
    /// Any pointer.
    Pointer,
}

/// Edge kinds for `has ... to` atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Operand-to-user SSA edge.
    Data,
    /// Direct instruction-level control-flow edge.
    Control,
    /// May-dependence between memory instructions.
    Dependence,
}

/// Dominance direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomKind {
    /// Forward dominance.
    Dom,
    /// Post-dominance.
    PostDom,
}

/// Opcode classes for `is <opcode> instruction`. `Branch` covers both the
/// conditional and unconditional forms, `ICmp`/`FCmp` cover all predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpcodeClass {
    /// `store`.
    Store,
    /// `load`.
    Load,
    /// `ret`.
    Return,
    /// `br` / conditional `br`.
    Branch,
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `mul`.
    Mul,
    /// `sdiv`.
    SDiv,
    /// `srem`.
    SRem,
    /// `fadd`.
    FAdd,
    /// `fsub`.
    FSub,
    /// `fmul`.
    FMul,
    /// `fdiv`.
    FDiv,
    /// `select`.
    Select,
    /// `getelementptr`.
    Gep,
    /// `icmp` (any predicate).
    ICmp,
    /// `fcmp` (any predicate).
    FCmp,
    /// `phi`.
    Phi,
    /// `sext`.
    SExt,
    /// `zext`.
    ZExt,
    /// `trunc`.
    Trunc,
    /// `sitofp`.
    SIToFP,
    /// `fptosi`.
    FPToSI,
    /// `fpext`.
    FPExt,
    /// `fptrunc`.
    FPTrunc,
    /// `call`.
    Call,
    /// `alloca`.
    Alloca,
}

impl OpcodeClass {
    /// Parses the surface spelling used in IDL sources.
    #[must_use]
    pub fn from_word(w: &str) -> Option<OpcodeClass> {
        Some(match w {
            "store" => OpcodeClass::Store,
            "load" => OpcodeClass::Load,
            "return" => OpcodeClass::Return,
            "branch" => OpcodeClass::Branch,
            "add" => OpcodeClass::Add,
            "sub" => OpcodeClass::Sub,
            "mul" => OpcodeClass::Mul,
            "sdiv" => OpcodeClass::SDiv,
            "srem" => OpcodeClass::SRem,
            "fadd" => OpcodeClass::FAdd,
            "fsub" => OpcodeClass::FSub,
            "fmul" => OpcodeClass::FMul,
            "fdiv" => OpcodeClass::FDiv,
            "select" => OpcodeClass::Select,
            "gep" => OpcodeClass::Gep,
            "icmp" => OpcodeClass::ICmp,
            "fcmp" => OpcodeClass::FCmp,
            "phi" => OpcodeClass::Phi,
            "sext" => OpcodeClass::SExt,
            "zext" => OpcodeClass::ZExt,
            "trunc" => OpcodeClass::Trunc,
            "sitofp" => OpcodeClass::SIToFP,
            "fptosi" => OpcodeClass::FPToSI,
            "fpext" => OpcodeClass::FPExt,
            "fptrunc" => OpcodeClass::FPTrunc,
            "call" => OpcodeClass::Call,
            "alloca" => OpcodeClass::Alloca,
            _ => return None,
        })
    }

    /// The class `op` belongs to, if any IDL opcode class names it
    /// (bitwise/shift opcodes have no IDL spelling).
    #[must_use]
    pub fn of(op: Opcode) -> Option<OpcodeClass> {
        Some(match op {
            Opcode::Store => OpcodeClass::Store,
            Opcode::Load => OpcodeClass::Load,
            Opcode::Ret => OpcodeClass::Return,
            Opcode::Br | Opcode::CondBr => OpcodeClass::Branch,
            Opcode::Add => OpcodeClass::Add,
            Opcode::Sub => OpcodeClass::Sub,
            Opcode::Mul => OpcodeClass::Mul,
            Opcode::SDiv => OpcodeClass::SDiv,
            Opcode::SRem => OpcodeClass::SRem,
            Opcode::FAdd => OpcodeClass::FAdd,
            Opcode::FSub => OpcodeClass::FSub,
            Opcode::FMul => OpcodeClass::FMul,
            Opcode::FDiv => OpcodeClass::FDiv,
            Opcode::Select => OpcodeClass::Select,
            Opcode::Gep => OpcodeClass::Gep,
            Opcode::ICmp(_) => OpcodeClass::ICmp,
            Opcode::FCmp(_) => OpcodeClass::FCmp,
            Opcode::Phi => OpcodeClass::Phi,
            Opcode::SExt => OpcodeClass::SExt,
            Opcode::ZExt => OpcodeClass::ZExt,
            Opcode::Trunc => OpcodeClass::Trunc,
            Opcode::SIToFP => OpcodeClass::SIToFP,
            Opcode::FPToSI => OpcodeClass::FPToSI,
            Opcode::FPExt => OpcodeClass::FPExt,
            Opcode::FPTrunc => OpcodeClass::FPTrunc,
            Opcode::Call => OpcodeClass::Call,
            Opcode::Alloca => OpcodeClass::Alloca,
            _ => return None,
        })
    }

    /// `true` if `op` belongs to this class.
    #[must_use]
    pub fn matches(self, op: Opcode) -> bool {
        match self {
            OpcodeClass::Store => op == Opcode::Store,
            OpcodeClass::Load => op == Opcode::Load,
            OpcodeClass::Return => op == Opcode::Ret,
            OpcodeClass::Branch => matches!(op, Opcode::Br | Opcode::CondBr),
            OpcodeClass::Add => op == Opcode::Add,
            OpcodeClass::Sub => op == Opcode::Sub,
            OpcodeClass::Mul => op == Opcode::Mul,
            OpcodeClass::SDiv => op == Opcode::SDiv,
            OpcodeClass::SRem => op == Opcode::SRem,
            OpcodeClass::FAdd => op == Opcode::FAdd,
            OpcodeClass::FSub => op == Opcode::FSub,
            OpcodeClass::FMul => op == Opcode::FMul,
            OpcodeClass::FDiv => op == Opcode::FDiv,
            OpcodeClass::Select => op == Opcode::Select,
            OpcodeClass::Gep => op == Opcode::Gep,
            OpcodeClass::ICmp => matches!(op, Opcode::ICmp(_)),
            OpcodeClass::FCmp => matches!(op, Opcode::FCmp(_)),
            OpcodeClass::Phi => op == Opcode::Phi,
            OpcodeClass::SExt => op == Opcode::SExt,
            OpcodeClass::ZExt => op == Opcode::ZExt,
            OpcodeClass::Trunc => op == Opcode::Trunc,
            OpcodeClass::SIToFP => op == Opcode::SIToFP,
            OpcodeClass::FPToSI => op == Opcode::FPToSI,
            OpcodeClass::FPExt => op == Opcode::FPExt,
            OpcodeClass::FPTrunc => op == Opcode::FPTrunc,
            OpcodeClass::Call => op == Opcode::Call,
            OpcodeClass::Alloca => op == Opcode::Alloca,
        }
    }
}

/// An atomic constraint over flattened variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomKind {
    /// `is integer/float/pointer [constant zero]`.
    TypeIs {
        /// The tested class.
        class: TypeClass,
        /// Also require a zero constant.
        constant_zero: bool,
    },
    /// No users.
    Unused,
    /// Integer/float constant.
    IsConstant,
    /// Constant or function argument ("compile time value").
    IsPreexecution,
    /// Function argument.
    IsArgument,
    /// Any instruction.
    IsInstruction,
    /// Specific opcode class.
    OpcodeIs(OpcodeClass),
    /// Variable equality (or inequality with `negated`).
    Same {
        /// `is not the same as`.
        negated: bool,
    },
    /// `has <kind> to` edge.
    HasEdge(EdgeKind),
    /// Operand position: `vars[0]` is operand `pos` of `vars[1]`.
    ArgumentOf {
        /// Zero-based operand index.
        pos: usize,
    },
    /// `vars[0]` is the incoming value of phi `vars[1]` for the edge whose
    /// terminator is `vars[2]`.
    ReachesPhi,
    /// Instruction-granularity dominance between `vars[0]` and `vars[1]`.
    Dominates {
        /// Strict form.
        strict: bool,
        /// Post-dominance.
        post: bool,
        /// `does not` form.
        negated: bool,
    },
    /// Every path `vars[0] → vars[1]` passes through `vars[2]`.
    AllFlowThrough {
        /// `true` for data-flow paths, `false` for control flow.
        data: bool,
    },
    /// Kernel purity: the backward slice of `vars[0]` terminates at the
    /// `families` members (or constants/arguments) crossing only pure
    /// instructions.
    KilledBy,
    /// Family binding: `families[0] = families[1] ++ families[2]`.
    Concat,
}

/// An atom with its variable references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The kind.
    pub kind: AtomKind,
    /// Searchable variables (assigned by the solver), as interned ids.
    pub vars: Vec<VarId>,
    /// Family/reference ids resolved against the assignment at
    /// evaluation time (`KilledBy` killers, `Concat` operands).
    pub families: Vec<VarId>,
}

/// A compiled constraint tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CTree {
    /// Conjunction (empty = true).
    And(Vec<CTree>),
    /// Disjunction (empty = false).
    Or(Vec<CTree>),
    /// Atomic constraint.
    Atom(Atom),
    /// All-solutions sub-search. `instances[k]` is the body with the
    /// collect index substituted by `k`; solution `k` of the sub-search is
    /// bound to the names of instance `k`.
    Collect {
        /// Pre-instantiated bodies, index 0..max.
        instances: Vec<CTree>,
    },
}

impl CTree {
    /// All searchable variables in first-occurrence order (excluding
    /// variables internal to `collect` bodies).
    #[must_use]
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk_vars(&mut out, true);
        out
    }

    /// All variables including collect-internal ones (used to align
    /// collect instances positionally).
    #[must_use]
    pub fn variables_deep(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk_vars(&mut out, false);
        out
    }

    fn walk_vars(&self, out: &mut Vec<VarId>, skip_collect: bool) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.walk_vars(out, skip_collect);
                }
            }
            CTree::Atom(a) => {
                // Family references (`KilledBy` killers, `Concat` operands)
                // are resolved against the assignment at evaluation time;
                // they are NOT search variables.
                for &v in &a.vars {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            CTree::Collect { instances } => {
                if !skip_collect {
                    for i in instances {
                        i.walk_vars(out, false);
                    }
                }
            }
        }
    }

    /// All ids referenced anywhere in the tree — search variables *and*
    /// family references, collect bodies included — in first-occurrence
    /// order. This is the id universe a compacting remap must cover.
    #[must_use]
    pub fn all_symbols(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk_symbols(&mut out);
        out
    }

    fn walk_symbols(&self, out: &mut Vec<VarId>) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.walk_symbols(out);
                }
            }
            CTree::Atom(a) => {
                for &v in a.vars.iter().chain(&a.families) {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            CTree::Collect { instances } => {
                for i in instances {
                    i.walk_symbols(out);
                }
            }
        }
    }

    /// Applies `f` to every id in the tree (vars and families alike).
    pub fn remap_symbols(&mut self, f: &mut impl FnMut(VarId) -> VarId) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.remap_symbols(f);
                }
            }
            CTree::Atom(a) => {
                for v in a.vars.iter_mut().chain(a.families.iter_mut()) {
                    *v = f(*v);
                }
            }
            CTree::Collect { instances } => {
                for i in instances {
                    i.remap_symbols(f);
                }
            }
        }
    }

    /// Number of atoms in the tree (collect bodies counted once).
    #[must_use]
    pub fn atom_count(&self) -> usize {
        match self {
            CTree::And(cs) | CTree::Or(cs) => cs.iter().map(CTree::atom_count).sum(),
            CTree::Atom(_) => 1,
            CTree::Collect { instances } => instances.first().map_or(0, CTree::atom_count),
        }
    }
}

/// The shape of one node in a [`TreeIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexedKind {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Atomic constraint (slot into [`TreeIndex::atom`]).
    Atom(u32),
    /// All-solutions sub-search (a leaf for evaluation purposes: its
    /// instances are solved at finalization, not during the search).
    Collect,
}

/// One flattened node of a [`TreeIndex`].
/// Pre-computed sub-search setup for one `collect` node: the first
/// instance body's searchable variables and its own [`TreeIndex`], plus a
/// one-slot memo of the (unbound variables → search order) pair the
/// finalize stage needs. The bound outer context is the same on every
/// finalize of a given search, so the memo hits after the first
/// sub-search; a different context just recomputes without caching.
#[derive(Debug, Clone)]
pub struct CollectPlan {
    /// `instances[0].variables()`, unfiltered.
    pub variables: Vec<VarId>,
    /// `instances[0].index()`.
    pub index: TreeIndex,
    order_memo: std::sync::OnceLock<(Vec<VarId>, Vec<VarId>)>,
}

impl CollectPlan {
    /// The search order over `unbound` (which must be the subset of
    /// [`CollectPlan::variables`] the caller found unbound), memoized on
    /// first use.
    #[must_use]
    pub fn order_for(&self, tree: &CTree, unbound: &[VarId]) -> Vec<VarId> {
        let memo = self
            .order_memo
            .get_or_init(|| (unbound.to_vec(), order_variables(tree, unbound)));
        if memo.0 == unbound {
            memo.1.clone()
        } else {
            order_variables(tree, unbound)
        }
    }
}

impl PartialEq for CollectPlan {
    fn eq(&self, other: &CollectPlan) -> bool {
        // The order memo is derived state, recomputable at any time.
        self.variables == other.variables && self.index == other.index
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct IndexedNode {
    /// Node shape (and the atom slot for leaves).
    pub kind: IndexedKind,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Child node ids (empty for `Atom`/`Collect`).
    pub children: Vec<usize>,
}

/// A flat, pre-order index over a [`CTree`], built once per *constraint*
/// (cached by [`CompiledConstraint::index`]; `collect` bodies build a
/// transient one per sub-search). Owns clones of the atoms it points at,
/// so it carries no lifetime and can outlive any one search.
///
/// The solver's incremental evaluator needs two things the recursive tree
/// cannot answer cheaply: *which atoms mention a given variable* (the
/// watcher lists, dense `Vec`s indexed by [`VarId`]) and *how to reach
/// every ancestor of a node* (the parent links along which cached
/// `And`/`Or` truth values are repaired after a binding). Node 0 is the
/// root; children always have larger ids than their parent, so a reverse
/// iteration visits children before parents.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeIndex {
    nodes: Vec<IndexedNode>,
    /// Clones of the tree's atoms, in pre-order ([`IndexedKind::Atom`]
    /// slots point here).
    atoms: Vec<Atom>,
    /// Pre-built sub-search setup per `Collect` node id (absent only for
    /// degenerate empty-instance collects).
    collect_plans: std::collections::BTreeMap<usize, CollectPlan>,
    watchers: Vec<Vec<usize>>,
    /// Per-node bitmask over variables: bit `v` of node `n`'s words is
    /// set iff some atom in `n`'s subtree mentions variable `v`
    /// (`Collect` bodies excluded — they are evaluation leaves). Lets the
    /// candidate generator skip whole subtrees in O(1) instead of
    /// recursing to discover that nothing below mentions the variable.
    mentions: Vec<u64>,
    /// Words per node in `mentions`.
    mention_words: usize,
}

impl TreeIndex {
    fn push(&mut self, tree: &CTree, parent: Option<usize>) -> usize {
        let id = self.nodes.len();
        let kind = match tree {
            CTree::And(_) => IndexedKind::And,
            CTree::Or(_) => IndexedKind::Or,
            CTree::Atom(a) => {
                self.atoms.push(a.clone());
                IndexedKind::Atom(self.atoms.len() as u32 - 1)
            }
            CTree::Collect { .. } => IndexedKind::Collect,
        };
        self.nodes.push(IndexedNode {
            kind,
            parent,
            children: Vec::new(),
        });
        match tree {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    let child = self.push(c, Some(id));
                    self.nodes[id].children.push(child);
                }
            }
            CTree::Atom(a) => {
                for &v in &a.vars {
                    if self.watchers.len() <= v.index() {
                        self.watchers.resize_with(v.index() + 1, Vec::new);
                    }
                    let w = &mut self.watchers[v.index()];
                    if w.last() != Some(&id) {
                        w.push(id);
                    }
                }
            }
            CTree::Collect { instances } => {
                if let Some(body) = instances.first() {
                    self.collect_plans.insert(
                        id,
                        CollectPlan {
                            variables: body.variables(),
                            index: body.index(),
                            order_memo: std::sync::OnceLock::new(),
                        },
                    );
                }
            }
        }
        id
    }

    /// The pre-built sub-search plan of the `Collect` node `node`
    /// (`None` for non-collect nodes and empty-instance collects).
    #[must_use]
    pub fn collect_plan(&self, node: usize) -> Option<&CollectPlan> {
        self.collect_plans.get(&node)
    }

    /// All nodes, pre-order (node 0 is the root).
    #[must_use]
    pub fn nodes(&self) -> &[IndexedNode] {
        &self.nodes
    }

    /// The atom at `slot` (from [`IndexedKind::Atom`]).
    #[must_use]
    pub fn atom(&self, slot: u32) -> &Atom {
        &self.atoms[slot as usize]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty index (never produced by [`CTree::index`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of the atom nodes that mention `var` (the atoms whose truth may
    /// change when `var` is bound or unbound).
    #[must_use]
    pub fn watchers(&self, var: VarId) -> &[usize] {
        self.watchers.get(var.index()).map_or(&[], Vec::as_slice)
    }

    /// `true` iff some atom in `node`'s subtree mentions `var`.
    #[must_use]
    pub fn mentions(&self, node: usize, var: VarId) -> bool {
        let (word, bit) = (var.index() / 64, var.index() % 64);
        word < self.mention_words
            && self.mentions[node * self.mention_words + word] & (1 << bit) != 0
    }

    /// Seeds `mentions` bottom-up (children have larger ids, so one
    /// reverse pass sees every child before its parent).
    fn build_mentions(&mut self) {
        self.mention_words = self.watchers.len().div_ceil(64);
        let w = self.mention_words;
        self.mentions = vec![0u64; self.nodes.len() * w];
        for id in (0..self.nodes.len()).rev() {
            match self.nodes[id].kind {
                IndexedKind::Atom(a) => {
                    for v in &self.atoms[a as usize].vars {
                        self.mentions[id * w + v.index() / 64] |= 1 << (v.index() % 64);
                    }
                }
                IndexedKind::And | IndexedKind::Or => {
                    for ci in 0..self.nodes[id].children.len() {
                        let c = self.nodes[id].children[ci];
                        for k in 0..w {
                            let cv = self.mentions[c * w + k];
                            self.mentions[id * w + k] |= cv;
                        }
                    }
                }
                IndexedKind::Collect => {}
            }
        }
    }
}

impl CTree {
    /// Builds the flat evaluation index for this tree. Prefer
    /// [`CompiledConstraint::index`] for whole-constraint searches — it
    /// builds once and caches; this is for transient subtrees (`collect`
    /// bodies).
    #[must_use]
    pub fn index(&self) -> TreeIndex {
        let mut idx = TreeIndex {
            nodes: Vec::new(),
            atoms: Vec::new(),
            collect_plans: std::collections::BTreeMap::new(),
            watchers: Vec::new(),
            mentions: Vec::new(),
            mention_words: 0,
        };
        idx.push(self, None);
        idx.build_mentions();
        idx
    }
}

/// A shared building block inherited on the conjunctive spine (`inherits
/// For`, `inherits DotProductLoop with .. at {dot}`, ..), recorded at
/// expansion time together with its full adaptation. Idiom detection
/// solves the chain of connected spine blocks once per function and
/// seeds every consuming idiom's search from the cached solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkeletonRef {
    /// The inherited building-block definition (`For`, `ForNest`,
    /// `LoopAccumulator`, ..).
    pub block: String,
    /// The block's compile-time parameters (e.g. `N=3`), sorted by name.
    pub params: Vec<(String, i64)>,
    /// The block's variables *in this constraint's id space*, in the same
    /// first-occurrence order the standalone-compiled block lists its own
    /// variables — the positional mapping between cached skeleton
    /// solutions and this idiom's seed bindings.
    pub vars: Vec<VarId>,
    /// Flattened rename pairs `(outer, inner)` of the `with {outer} as
    /// {inner}` adaptation, in source order.
    pub renames: Vec<(String, String)>,
    /// Flattened rebase prefix of the `at {prefix}` adaptation, if any.
    pub rebase: Option<String>,
}

impl SkeletonRef {
    /// Reconstructs the `inherits ..` clause source text this marker was
    /// recorded from, with every adaptation name already flattened. A
    /// wrapper constraint built from these clauses expands to exactly the
    /// subtree the idiom embeds (same flattened variable names), which is
    /// what lets a standalone-compiled skeleton chain seed the idiom's
    /// search positionally.
    #[must_use]
    pub fn clause(&self) -> String {
        let mut s = format!("inherits {}", self.block);
        if !self.params.is_empty() {
            let kv: Vec<String> = self
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            s.push_str(&format!("({})", kv.join(", ")));
        }
        for (i, (outer, inner)) in self.renames.iter().enumerate() {
            let kw = if i == 0 { " with" } else { " and" };
            s.push_str(&format!("{kw} {{{outer}}} as {{{inner}}}"));
        }
        if let Some(p) = &self.rebase {
            s.push_str(&format!(" at {{{p}}}"));
        }
        s
    }
}

/// A fully compiled, solver-ready idiom definition.
#[derive(Debug, Clone)]
pub struct CompiledConstraint {
    /// Idiom name (the `Constraint <name>` header).
    pub name: String,
    /// The constraint tree (atoms hold interned [`VarId`]s).
    pub tree: CTree,
    /// The name ↔ id mapping for every symbol in the tree.
    pub symbols: SymbolTable,
    /// Searchable variables in first-occurrence order.
    pub variables: Vec<VarId>,
    /// Search order for `variables` (precomputed by [`order_variables`]
    /// at compile time so per-query solve setup stays cheap). When
    /// `skeletons` is non-empty, the first skeleton's variables form a
    /// prefix of this order (in the standalone block's own order) so the
    /// solver can substitute cached skeleton solutions for the prefix
    /// enumeration.
    pub order: Vec<VarId>,
    /// Shared loop-skeleton building blocks inherited on the conjunctive
    /// spine, in source order.
    pub skeletons: Vec<SkeletonRef>,
    /// Lazily built evaluation index over `tree`, shared by every search
    /// on this constraint (the tree is immutable after compilation).
    /// Ignored by `PartialEq`.
    pub index_cache: std::sync::OnceLock<TreeIndex>,
}

impl PartialEq for CompiledConstraint {
    fn eq(&self, other: &CompiledConstraint) -> bool {
        // The index cache is derived state — two constraints are equal
        // iff their compiled content is.
        self.name == other.name
            && self.tree == other.tree
            && self.symbols == other.symbols
            && self.variables == other.variables
            && self.order == other.order
            && self.skeletons == other.skeletons
    }
}

impl CompiledConstraint {
    /// The flattened name of `id`.
    #[must_use]
    pub fn var_name(&self, id: VarId) -> &str {
        self.symbols.name(id)
    }

    /// The evaluation index of `tree`, built on first use and cached.
    #[must_use]
    pub fn index(&self) -> &TreeIndex {
        self.index_cache.get_or_init(|| self.tree.index())
    }

    /// The searchable variable names in first-occurrence order (the
    /// string view of [`CompiledConstraint::variables`]).
    #[must_use]
    pub fn variable_names(&self) -> Vec<&str> {
        self.variables
            .iter()
            .map(|&v| self.symbols.name(v))
            .collect()
    }
}

/// Orders variables so that each one (after the first) is connected to an
/// already-ordered variable through a generator-capable atom — the §4.4
/// "variables are collected and ordered to assist constraint solving".
///
/// Precomputed adjacency and hash lookups keep this near-linear; the
/// greedy choice (and therefore the produced order) is identical to the
/// naive quadratic formulation.
#[must_use]
pub fn order_variables(tree: &CTree, vars: &[VarId]) -> Vec<VarId> {
    order_variables_seeded(tree, vars, &[])
}

/// [`order_variables`] with a pre-ordered prefix: `seed` variables are
/// treated as already ordered (and emitted first, in `seed` order); the
/// remaining `vars` are appended by the same greedy connectivity rule.
/// This is how a constraint with a skeleton prefix keeps the skeleton's
/// own variable order while the rest of the idiom orders itself around
/// the (soon pre-bound) skeleton.
#[must_use]
pub fn order_variables_seeded(tree: &CTree, vars: &[VarId], seed: &[VarId]) -> Vec<VarId> {
    use std::collections::{HashMap, HashSet};
    let mut atoms = Vec::new();
    collect_shallow_atoms(tree, &mut atoms);
    // Variables with a unary bucket generator (candidate enumerable).
    let mut anchored: HashSet<VarId> = HashSet::new();
    // var -> connector atoms (binary/ternary generators) mentioning it.
    let mut adj: HashMap<VarId, Vec<&Atom>> = HashMap::new();
    for &a in &atoms {
        match a.kind {
            AtomKind::OpcodeIs(_)
            | AtomKind::IsConstant
            | AtomKind::IsArgument
            | AtomKind::IsInstruction
            | AtomKind::IsPreexecution => {
                if let Some(&v) = a.vars.first() {
                    anchored.insert(v);
                }
            }
            AtomKind::ArgumentOf { .. }
            | AtomKind::HasEdge(_)
            | AtomKind::ReachesPhi
            | AtomKind::Same { negated: false } => {
                for &v in &a.vars {
                    let entry = adj.entry(v).or_default();
                    // An atom lists a variable at most a couple of times;
                    // dedup cheaply.
                    if !entry.iter().any(|x| std::ptr::eq(*x, a)) {
                        entry.push(a);
                    }
                }
            }
            _ => {}
        }
    }
    let has_anchor = |v: &VarId| anchored.contains(v);
    let connected = |v: &VarId, ordered: &HashSet<VarId>| {
        adj.get(v).is_some_and(|atoms| {
            atoms
                .iter()
                .any(|a| a.vars.iter().any(|w| ordered.contains(w)))
        })
    };
    let mut order: Vec<VarId> = Vec::with_capacity(vars.len());
    let mut ordered_set: HashSet<VarId> = HashSet::new();
    let mut remaining: Vec<VarId> = Vec::with_capacity(vars.len());
    for &v in seed {
        if vars.contains(&v) {
            ordered_set.insert(v);
            order.push(v);
        }
    }
    remaining.extend(vars.iter().copied().filter(|v| !ordered_set.contains(v)));
    let take = |remaining: &mut Vec<VarId>,
                order: &mut Vec<VarId>,
                ordered_set: &mut HashSet<VarId>,
                i: usize| {
        let v = remaining.remove(i);
        ordered_set.insert(v);
        order.push(v);
    };
    // Seed: an anchored variable if possible (skipped when a skeleton
    // prefix already seeded the order).
    if ordered_set.is_empty() {
        if let Some(i) = remaining.iter().position(has_anchor) {
            take(&mut remaining, &mut order, &mut ordered_set, i);
        } else if !remaining.is_empty() {
            take(&mut remaining, &mut order, &mut ordered_set, 0);
        }
    }
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .position(|v| connected(v, &ordered_set) && has_anchor(v))
            .or_else(|| remaining.iter().position(|v| connected(v, &ordered_set)))
            .or_else(|| remaining.iter().position(has_anchor))
            .unwrap_or(0);
        take(&mut remaining, &mut order, &mut ordered_set, next);
    }
    order
}

fn collect_shallow_atoms<'t>(tree: &'t CTree, out: &mut Vec<&'t Atom>) {
    match tree {
        CTree::And(cs) | CTree::Or(cs) => {
            for c in cs {
                collect_shallow_atoms(c, out);
            }
        }
        CTree::Atom(a) => out.push(a),
        CTree::Collect { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classes_match() {
        assert!(OpcodeClass::Branch.matches(Opcode::Br));
        assert!(OpcodeClass::Branch.matches(Opcode::CondBr));
        assert!(!OpcodeClass::Branch.matches(Opcode::Ret));
        assert!(OpcodeClass::ICmp.matches(Opcode::ICmp(ssair::ICmpPred::Slt)));
        assert!(OpcodeClass::from_word("gep") == Some(OpcodeClass::Gep));
        assert!(OpcodeClass::from_word("bogus").is_none());
    }

    /// A two-variable sample tree over a fresh table: `sum` = VarId(0),
    /// `factor` = VarId(1).
    fn sample_tree(with_collect: bool) -> (CTree, SymbolTable) {
        let mut syms = SymbolTable::new();
        let sum = syms.intern("sum");
        let factor = syms.intern("factor");
        let mut children = vec![
            CTree::Atom(Atom {
                kind: AtomKind::OpcodeIs(OpcodeClass::Add),
                vars: vec![sum],
                families: vec![],
            }),
            CTree::Or(vec![
                CTree::Atom(Atom {
                    kind: AtomKind::ArgumentOf { pos: 0 },
                    vars: vec![factor, sum],
                    families: vec![],
                }),
                CTree::Atom(Atom {
                    kind: AtomKind::ArgumentOf { pos: 1 },
                    vars: vec![factor, sum],
                    families: vec![],
                }),
            ]),
        ];
        if with_collect {
            children.push(CTree::Collect { instances: vec![] });
        }
        (CTree::And(children), syms)
    }

    #[test]
    fn variable_collection_order_and_dedup() {
        let (t, syms) = sample_tree(false);
        assert_eq!(
            t.variables(),
            vec![syms.lookup("sum").unwrap(), syms.lookup("factor").unwrap()]
        );
        assert_eq!(t.atom_count(), 3);
    }

    #[test]
    fn tree_index_parents_children_and_watchers() {
        let (t, syms) = sample_tree(true);
        let idx = t.index();
        assert_eq!(idx.len(), 6);
        let nodes = idx.nodes();
        assert_eq!(nodes[0].kind, IndexedKind::And);
        assert_eq!(nodes[0].parent, None);
        assert_eq!(nodes[0].children, vec![1, 2, 5]);
        assert_eq!(nodes[2].kind, IndexedKind::Or);
        assert_eq!(nodes[2].children, vec![3, 4]);
        assert_eq!(nodes[5].kind, IndexedKind::Collect);
        // Children always have larger ids than their parent.
        for (id, n) in nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < id);
            }
        }
        assert_eq!(idx.watchers(syms.lookup("sum").unwrap()), &[1, 3, 4]);
        assert_eq!(idx.watchers(syms.lookup("factor").unwrap()), &[3, 4]);
        assert!(idx.watchers(VarId(99)).is_empty());
    }
}
