//! Compiled constraint trees.
//!
//! After macro expansion (`inherits`, quantifiers, renaming — §4.4 of the
//! paper) an idiom definition is a tree of conjunctions and disjunctions
//! over atomic constraints, plus `collect` nodes. Variables are flattened
//! dotted strings (`"inner.iter_begin"`, `"read[2].value"`) interned into
//! dense [`VarId`]s through the constraint's [`SymbolTable`]; the solver
//! assigns each one an IR value, exactly like the paper's Figure 5
//! solution table (which shows the names the table maps back to).

use crate::intern::{SymbolTable, VarId};
use ssair::Opcode;

/// Type classes testable by `is integer/float/pointer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// `i1`/`i32`/`i64`.
    Integer,
    /// `f32`/`f64`.
    Float,
    /// Any pointer.
    Pointer,
}

/// Edge kinds for `has ... to` atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Operand-to-user SSA edge.
    Data,
    /// Direct instruction-level control-flow edge.
    Control,
    /// May-dependence between memory instructions.
    Dependence,
}

/// Dominance direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomKind {
    /// Forward dominance.
    Dom,
    /// Post-dominance.
    PostDom,
}

/// Opcode classes for `is <opcode> instruction`. `Branch` covers both the
/// conditional and unconditional forms, `ICmp`/`FCmp` cover all predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeClass {
    /// `store`.
    Store,
    /// `load`.
    Load,
    /// `ret`.
    Return,
    /// `br` / conditional `br`.
    Branch,
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `mul`.
    Mul,
    /// `sdiv`.
    SDiv,
    /// `srem`.
    SRem,
    /// `fadd`.
    FAdd,
    /// `fsub`.
    FSub,
    /// `fmul`.
    FMul,
    /// `fdiv`.
    FDiv,
    /// `select`.
    Select,
    /// `getelementptr`.
    Gep,
    /// `icmp` (any predicate).
    ICmp,
    /// `fcmp` (any predicate).
    FCmp,
    /// `phi`.
    Phi,
    /// `sext`.
    SExt,
    /// `zext`.
    ZExt,
    /// `trunc`.
    Trunc,
    /// `sitofp`.
    SIToFP,
    /// `fptosi`.
    FPToSI,
    /// `fpext`.
    FPExt,
    /// `fptrunc`.
    FPTrunc,
    /// `call`.
    Call,
    /// `alloca`.
    Alloca,
}

impl OpcodeClass {
    /// Parses the surface spelling used in IDL sources.
    #[must_use]
    pub fn from_word(w: &str) -> Option<OpcodeClass> {
        Some(match w {
            "store" => OpcodeClass::Store,
            "load" => OpcodeClass::Load,
            "return" => OpcodeClass::Return,
            "branch" => OpcodeClass::Branch,
            "add" => OpcodeClass::Add,
            "sub" => OpcodeClass::Sub,
            "mul" => OpcodeClass::Mul,
            "sdiv" => OpcodeClass::SDiv,
            "srem" => OpcodeClass::SRem,
            "fadd" => OpcodeClass::FAdd,
            "fsub" => OpcodeClass::FSub,
            "fmul" => OpcodeClass::FMul,
            "fdiv" => OpcodeClass::FDiv,
            "select" => OpcodeClass::Select,
            "gep" => OpcodeClass::Gep,
            "icmp" => OpcodeClass::ICmp,
            "fcmp" => OpcodeClass::FCmp,
            "phi" => OpcodeClass::Phi,
            "sext" => OpcodeClass::SExt,
            "zext" => OpcodeClass::ZExt,
            "trunc" => OpcodeClass::Trunc,
            "sitofp" => OpcodeClass::SIToFP,
            "fptosi" => OpcodeClass::FPToSI,
            "fpext" => OpcodeClass::FPExt,
            "fptrunc" => OpcodeClass::FPTrunc,
            "call" => OpcodeClass::Call,
            "alloca" => OpcodeClass::Alloca,
            _ => return None,
        })
    }

    /// `true` if `op` belongs to this class.
    #[must_use]
    pub fn matches(self, op: Opcode) -> bool {
        match self {
            OpcodeClass::Store => op == Opcode::Store,
            OpcodeClass::Load => op == Opcode::Load,
            OpcodeClass::Return => op == Opcode::Ret,
            OpcodeClass::Branch => matches!(op, Opcode::Br | Opcode::CondBr),
            OpcodeClass::Add => op == Opcode::Add,
            OpcodeClass::Sub => op == Opcode::Sub,
            OpcodeClass::Mul => op == Opcode::Mul,
            OpcodeClass::SDiv => op == Opcode::SDiv,
            OpcodeClass::SRem => op == Opcode::SRem,
            OpcodeClass::FAdd => op == Opcode::FAdd,
            OpcodeClass::FSub => op == Opcode::FSub,
            OpcodeClass::FMul => op == Opcode::FMul,
            OpcodeClass::FDiv => op == Opcode::FDiv,
            OpcodeClass::Select => op == Opcode::Select,
            OpcodeClass::Gep => op == Opcode::Gep,
            OpcodeClass::ICmp => matches!(op, Opcode::ICmp(_)),
            OpcodeClass::FCmp => matches!(op, Opcode::FCmp(_)),
            OpcodeClass::Phi => op == Opcode::Phi,
            OpcodeClass::SExt => op == Opcode::SExt,
            OpcodeClass::ZExt => op == Opcode::ZExt,
            OpcodeClass::Trunc => op == Opcode::Trunc,
            OpcodeClass::SIToFP => op == Opcode::SIToFP,
            OpcodeClass::FPToSI => op == Opcode::FPToSI,
            OpcodeClass::FPExt => op == Opcode::FPExt,
            OpcodeClass::FPTrunc => op == Opcode::FPTrunc,
            OpcodeClass::Call => op == Opcode::Call,
            OpcodeClass::Alloca => op == Opcode::Alloca,
        }
    }
}

/// An atomic constraint over flattened variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomKind {
    /// `is integer/float/pointer [constant zero]`.
    TypeIs {
        /// The tested class.
        class: TypeClass,
        /// Also require a zero constant.
        constant_zero: bool,
    },
    /// No users.
    Unused,
    /// Integer/float constant.
    IsConstant,
    /// Constant or function argument ("compile time value").
    IsPreexecution,
    /// Function argument.
    IsArgument,
    /// Any instruction.
    IsInstruction,
    /// Specific opcode class.
    OpcodeIs(OpcodeClass),
    /// Variable equality (or inequality with `negated`).
    Same {
        /// `is not the same as`.
        negated: bool,
    },
    /// `has <kind> to` edge.
    HasEdge(EdgeKind),
    /// Operand position: `vars[0]` is operand `pos` of `vars[1]`.
    ArgumentOf {
        /// Zero-based operand index.
        pos: usize,
    },
    /// `vars[0]` is the incoming value of phi `vars[1]` for the edge whose
    /// terminator is `vars[2]`.
    ReachesPhi,
    /// Instruction-granularity dominance between `vars[0]` and `vars[1]`.
    Dominates {
        /// Strict form.
        strict: bool,
        /// Post-dominance.
        post: bool,
        /// `does not` form.
        negated: bool,
    },
    /// Every path `vars[0] → vars[1]` passes through `vars[2]`.
    AllFlowThrough {
        /// `true` for data-flow paths, `false` for control flow.
        data: bool,
    },
    /// Kernel purity: the backward slice of `vars[0]` terminates at the
    /// `families` members (or constants/arguments) crossing only pure
    /// instructions.
    KilledBy,
    /// Family binding: `families[0] = families[1] ++ families[2]`.
    Concat,
}

/// An atom with its variable references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The kind.
    pub kind: AtomKind,
    /// Searchable variables (assigned by the solver), as interned ids.
    pub vars: Vec<VarId>,
    /// Family/reference ids resolved against the assignment at
    /// evaluation time (`KilledBy` killers, `Concat` operands).
    pub families: Vec<VarId>,
}

/// A compiled constraint tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CTree {
    /// Conjunction (empty = true).
    And(Vec<CTree>),
    /// Disjunction (empty = false).
    Or(Vec<CTree>),
    /// Atomic constraint.
    Atom(Atom),
    /// All-solutions sub-search. `instances[k]` is the body with the
    /// collect index substituted by `k`; solution `k` of the sub-search is
    /// bound to the names of instance `k`.
    Collect {
        /// Pre-instantiated bodies, index 0..max.
        instances: Vec<CTree>,
    },
}

impl CTree {
    /// All searchable variables in first-occurrence order (excluding
    /// variables internal to `collect` bodies).
    #[must_use]
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk_vars(&mut out, true);
        out
    }

    /// All variables including collect-internal ones (used to align
    /// collect instances positionally).
    #[must_use]
    pub fn variables_deep(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk_vars(&mut out, false);
        out
    }

    fn walk_vars(&self, out: &mut Vec<VarId>, skip_collect: bool) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.walk_vars(out, skip_collect);
                }
            }
            CTree::Atom(a) => {
                // Family references (`KilledBy` killers, `Concat` operands)
                // are resolved against the assignment at evaluation time;
                // they are NOT search variables.
                for &v in &a.vars {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            CTree::Collect { instances } => {
                if !skip_collect {
                    for i in instances {
                        i.walk_vars(out, false);
                    }
                }
            }
        }
    }

    /// All ids referenced anywhere in the tree — search variables *and*
    /// family references, collect bodies included — in first-occurrence
    /// order. This is the id universe a compacting remap must cover.
    #[must_use]
    pub fn all_symbols(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.walk_symbols(&mut out);
        out
    }

    fn walk_symbols(&self, out: &mut Vec<VarId>) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.walk_symbols(out);
                }
            }
            CTree::Atom(a) => {
                for &v in a.vars.iter().chain(&a.families) {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            CTree::Collect { instances } => {
                for i in instances {
                    i.walk_symbols(out);
                }
            }
        }
    }

    /// Applies `f` to every id in the tree (vars and families alike).
    pub fn remap_symbols(&mut self, f: &mut impl FnMut(VarId) -> VarId) {
        match self {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    c.remap_symbols(f);
                }
            }
            CTree::Atom(a) => {
                for v in a.vars.iter_mut().chain(a.families.iter_mut()) {
                    *v = f(*v);
                }
            }
            CTree::Collect { instances } => {
                for i in instances {
                    i.remap_symbols(f);
                }
            }
        }
    }

    /// Number of atoms in the tree (collect bodies counted once).
    #[must_use]
    pub fn atom_count(&self) -> usize {
        match self {
            CTree::And(cs) | CTree::Or(cs) => cs.iter().map(CTree::atom_count).sum(),
            CTree::Atom(_) => 1,
            CTree::Collect { instances } => instances.first().map_or(0, CTree::atom_count),
        }
    }
}

/// The shape of one node in a [`TreeIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexedKind<'t> {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Atomic constraint.
    Atom(&'t Atom),
    /// All-solutions sub-search (a leaf for evaluation purposes: its
    /// instances are solved at finalization, not during the search).
    Collect,
}

/// One flattened node of a [`TreeIndex`].
#[derive(Debug, Clone)]
pub struct IndexedNode<'t> {
    /// Node shape (and the atom itself for leaves).
    pub kind: IndexedKind<'t>,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Child node ids (empty for `Atom`/`Collect`).
    pub children: Vec<usize>,
}

/// A flat, pre-order index over a [`CTree`], built once per search.
///
/// The solver's incremental evaluator needs two things the recursive tree
/// cannot answer cheaply: *which atoms mention a given variable* (the
/// watcher lists, dense `Vec`s indexed by [`VarId`]) and *how to reach
/// every ancestor of a node* (the parent links along which cached
/// `And`/`Or` truth values are repaired after a binding). Node 0 is the
/// root; children always have larger ids than their parent, so a reverse
/// iteration visits children before parents.
#[derive(Debug, Clone)]
pub struct TreeIndex<'t> {
    nodes: Vec<IndexedNode<'t>>,
    watchers: Vec<Vec<usize>>,
}

impl<'t> TreeIndex<'t> {
    fn push(&mut self, tree: &'t CTree, parent: Option<usize>) -> usize {
        let id = self.nodes.len();
        let kind = match tree {
            CTree::And(_) => IndexedKind::And,
            CTree::Or(_) => IndexedKind::Or,
            CTree::Atom(a) => IndexedKind::Atom(a),
            CTree::Collect { .. } => IndexedKind::Collect,
        };
        self.nodes.push(IndexedNode {
            kind,
            parent,
            children: Vec::new(),
        });
        match tree {
            CTree::And(cs) | CTree::Or(cs) => {
                for c in cs {
                    let child = self.push(c, Some(id));
                    self.nodes[id].children.push(child);
                }
            }
            CTree::Atom(a) => {
                for &v in &a.vars {
                    if self.watchers.len() <= v.index() {
                        self.watchers.resize_with(v.index() + 1, Vec::new);
                    }
                    let w = &mut self.watchers[v.index()];
                    if w.last() != Some(&id) {
                        w.push(id);
                    }
                }
            }
            CTree::Collect { .. } => {}
        }
        id
    }

    /// All nodes, pre-order (node 0 is the root).
    #[must_use]
    pub fn nodes(&self) -> &[IndexedNode<'t>] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty index (never produced by [`CTree::index`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of the atom nodes that mention `var` (the atoms whose truth may
    /// change when `var` is bound or unbound).
    #[must_use]
    pub fn watchers(&self, var: VarId) -> &[usize] {
        self.watchers.get(var.index()).map_or(&[], Vec::as_slice)
    }
}

impl CTree {
    /// Builds the flat evaluation index for this tree.
    #[must_use]
    pub fn index(&self) -> TreeIndex<'_> {
        let mut idx = TreeIndex {
            nodes: Vec::new(),
            watchers: Vec::new(),
        };
        idx.push(self, None);
        idx
    }
}

/// A loop-skeleton building block shared with other idioms: a top-level
/// (conjunctive-spine) `inherits For`/`inherits ForNest(N=..)` recorded
/// at expansion time. Idiom detection solves the block once per function
/// and seeds every consuming idiom's search from the cached solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkeletonRef {
    /// The inherited building-block definition (`For` or `ForNest`).
    pub block: String,
    /// The block's compile-time parameters (e.g. `N=3`), sorted by name —
    /// together with `block` this is the skeleton cache key.
    pub params: Vec<(String, i64)>,
    /// The block's variables *in this constraint's id space*, in the same
    /// first-occurrence order the standalone-compiled block lists its own
    /// variables — the positional mapping between cached skeleton
    /// solutions and this idiom's seed bindings.
    pub vars: Vec<VarId>,
}

/// A fully compiled, solver-ready idiom definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledConstraint {
    /// Idiom name (the `Constraint <name>` header).
    pub name: String,
    /// The constraint tree (atoms hold interned [`VarId`]s).
    pub tree: CTree,
    /// The name ↔ id mapping for every symbol in the tree.
    pub symbols: SymbolTable,
    /// Searchable variables in first-occurrence order.
    pub variables: Vec<VarId>,
    /// Search order for `variables` (precomputed by [`order_variables`]
    /// at compile time so per-query solve setup stays cheap). When
    /// `skeletons` is non-empty, the first skeleton's variables form a
    /// prefix of this order (in the standalone block's own order) so the
    /// solver can substitute cached skeleton solutions for the prefix
    /// enumeration.
    pub order: Vec<VarId>,
    /// Shared loop-skeleton building blocks inherited on the conjunctive
    /// spine, in source order.
    pub skeletons: Vec<SkeletonRef>,
}

impl CompiledConstraint {
    /// The flattened name of `id`.
    #[must_use]
    pub fn var_name(&self, id: VarId) -> &str {
        self.symbols.name(id)
    }

    /// The searchable variable names in first-occurrence order (the
    /// string view of [`CompiledConstraint::variables`]).
    #[must_use]
    pub fn variable_names(&self) -> Vec<&str> {
        self.variables
            .iter()
            .map(|&v| self.symbols.name(v))
            .collect()
    }
}

/// Orders variables so that each one (after the first) is connected to an
/// already-ordered variable through a generator-capable atom — the §4.4
/// "variables are collected and ordered to assist constraint solving".
///
/// Precomputed adjacency and hash lookups keep this near-linear; the
/// greedy choice (and therefore the produced order) is identical to the
/// naive quadratic formulation.
#[must_use]
pub fn order_variables(tree: &CTree, vars: &[VarId]) -> Vec<VarId> {
    order_variables_seeded(tree, vars, &[])
}

/// [`order_variables`] with a pre-ordered prefix: `seed` variables are
/// treated as already ordered (and emitted first, in `seed` order); the
/// remaining `vars` are appended by the same greedy connectivity rule.
/// This is how a constraint with a skeleton prefix keeps the skeleton's
/// own variable order while the rest of the idiom orders itself around
/// the (soon pre-bound) skeleton.
#[must_use]
pub fn order_variables_seeded(tree: &CTree, vars: &[VarId], seed: &[VarId]) -> Vec<VarId> {
    use std::collections::{HashMap, HashSet};
    let mut atoms = Vec::new();
    collect_shallow_atoms(tree, &mut atoms);
    // Variables with a unary bucket generator (candidate enumerable).
    let mut anchored: HashSet<VarId> = HashSet::new();
    // var -> connector atoms (binary/ternary generators) mentioning it.
    let mut adj: HashMap<VarId, Vec<&Atom>> = HashMap::new();
    for &a in &atoms {
        match a.kind {
            AtomKind::OpcodeIs(_)
            | AtomKind::IsConstant
            | AtomKind::IsArgument
            | AtomKind::IsInstruction
            | AtomKind::IsPreexecution => {
                if let Some(&v) = a.vars.first() {
                    anchored.insert(v);
                }
            }
            AtomKind::ArgumentOf { .. }
            | AtomKind::HasEdge(_)
            | AtomKind::ReachesPhi
            | AtomKind::Same { negated: false } => {
                for &v in &a.vars {
                    let entry = adj.entry(v).or_default();
                    // An atom lists a variable at most a couple of times;
                    // dedup cheaply.
                    if !entry.iter().any(|x| std::ptr::eq(*x, a)) {
                        entry.push(a);
                    }
                }
            }
            _ => {}
        }
    }
    let has_anchor = |v: &VarId| anchored.contains(v);
    let connected = |v: &VarId, ordered: &HashSet<VarId>| {
        adj.get(v).is_some_and(|atoms| {
            atoms
                .iter()
                .any(|a| a.vars.iter().any(|w| ordered.contains(w)))
        })
    };
    let mut order: Vec<VarId> = Vec::with_capacity(vars.len());
    let mut ordered_set: HashSet<VarId> = HashSet::new();
    let mut remaining: Vec<VarId> = Vec::with_capacity(vars.len());
    for &v in seed {
        if vars.contains(&v) {
            ordered_set.insert(v);
            order.push(v);
        }
    }
    remaining.extend(vars.iter().copied().filter(|v| !ordered_set.contains(v)));
    let take = |remaining: &mut Vec<VarId>,
                order: &mut Vec<VarId>,
                ordered_set: &mut HashSet<VarId>,
                i: usize| {
        let v = remaining.remove(i);
        ordered_set.insert(v);
        order.push(v);
    };
    // Seed: an anchored variable if possible (skipped when a skeleton
    // prefix already seeded the order).
    if ordered_set.is_empty() {
        if let Some(i) = remaining.iter().position(has_anchor) {
            take(&mut remaining, &mut order, &mut ordered_set, i);
        } else if !remaining.is_empty() {
            take(&mut remaining, &mut order, &mut ordered_set, 0);
        }
    }
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .position(|v| connected(v, &ordered_set) && has_anchor(v))
            .or_else(|| remaining.iter().position(|v| connected(v, &ordered_set)))
            .or_else(|| remaining.iter().position(has_anchor))
            .unwrap_or(0);
        take(&mut remaining, &mut order, &mut ordered_set, next);
    }
    order
}

fn collect_shallow_atoms<'t>(tree: &'t CTree, out: &mut Vec<&'t Atom>) {
    match tree {
        CTree::And(cs) | CTree::Or(cs) => {
            for c in cs {
                collect_shallow_atoms(c, out);
            }
        }
        CTree::Atom(a) => out.push(a),
        CTree::Collect { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classes_match() {
        assert!(OpcodeClass::Branch.matches(Opcode::Br));
        assert!(OpcodeClass::Branch.matches(Opcode::CondBr));
        assert!(!OpcodeClass::Branch.matches(Opcode::Ret));
        assert!(OpcodeClass::ICmp.matches(Opcode::ICmp(ssair::ICmpPred::Slt)));
        assert!(OpcodeClass::from_word("gep") == Some(OpcodeClass::Gep));
        assert!(OpcodeClass::from_word("bogus").is_none());
    }

    /// A two-variable sample tree over a fresh table: `sum` = VarId(0),
    /// `factor` = VarId(1).
    fn sample_tree(with_collect: bool) -> (CTree, SymbolTable) {
        let mut syms = SymbolTable::new();
        let sum = syms.intern("sum");
        let factor = syms.intern("factor");
        let mut children = vec![
            CTree::Atom(Atom {
                kind: AtomKind::OpcodeIs(OpcodeClass::Add),
                vars: vec![sum],
                families: vec![],
            }),
            CTree::Or(vec![
                CTree::Atom(Atom {
                    kind: AtomKind::ArgumentOf { pos: 0 },
                    vars: vec![factor, sum],
                    families: vec![],
                }),
                CTree::Atom(Atom {
                    kind: AtomKind::ArgumentOf { pos: 1 },
                    vars: vec![factor, sum],
                    families: vec![],
                }),
            ]),
        ];
        if with_collect {
            children.push(CTree::Collect { instances: vec![] });
        }
        (CTree::And(children), syms)
    }

    #[test]
    fn variable_collection_order_and_dedup() {
        let (t, syms) = sample_tree(false);
        assert_eq!(
            t.variables(),
            vec![syms.lookup("sum").unwrap(), syms.lookup("factor").unwrap()]
        );
        assert_eq!(t.atom_count(), 3);
    }

    #[test]
    fn tree_index_parents_children_and_watchers() {
        let (t, syms) = sample_tree(true);
        let idx = t.index();
        assert_eq!(idx.len(), 6);
        let nodes = idx.nodes();
        assert_eq!(nodes[0].kind, IndexedKind::And);
        assert_eq!(nodes[0].parent, None);
        assert_eq!(nodes[0].children, vec![1, 2, 5]);
        assert_eq!(nodes[2].kind, IndexedKind::Or);
        assert_eq!(nodes[2].children, vec![3, 4]);
        assert_eq!(nodes[5].kind, IndexedKind::Collect);
        // Children always have larger ids than their parent.
        for (id, n) in nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                assert!(p < id);
            }
        }
        assert_eq!(idx.watchers(syms.lookup("sum").unwrap()), &[1, 3, 4]);
        assert_eq!(idx.watchers(syms.lookup("factor").unwrap()), &[3, 4]);
        assert!(idx.watchers(VarId(99)).is_empty());
    }
}
