//! Macro expansion: AST → [`CTree`].
//!
//! Implements the compilation process of §4.4: `inherits`, `for all`,
//! `for some`, `for`, `if`, renaming and rebasing are eliminated, leaving
//! conjunctions/disjunctions of atomics with flattened variable names.
//! `collect` bodies are pre-instantiated for each index value.
//!
//! Names are interned into the constraint's [`SymbolTable`] as they are
//! produced, and renames/rebases rewrite ids through the table; after
//! expansion the table is compacted to exactly the ids the final tree
//! references (in first-occurrence order), `Concat` output slots are
//! pre-interned and the family structure is indexed, so the solver never
//! touches a string. Top-level `inherits For`/`inherits ForNest(..)`
//! blocks on the conjunctive spine are additionally recorded as
//! [`SkeletonRef`] markers — the hook the per-function loop-skeleton
//! cache in `idioms` seeds idiom searches from.

use crate::ast::*;
use crate::ctree::*;
use crate::intern::{SymbolTable, VarId};
use std::collections::HashMap;

/// Building-block definitions eligible as shared skeleton-chain members.
/// Loop shapes plus the accumulator/read families — every reusable block
/// the idiom library inherits on a conjunctive spine.
const SKELETON_BLOCKS: [&str; 9] = [
    "For",
    "ForNest",
    "LoopAccumulator",
    "DotProductLoop",
    "VectorRead",
    "OffsetRead",
    "MatrixRead",
    "MatrixStore",
    "ReadRange",
];

/// An expansion failure (unknown definition, unbound parameter, cyclic
/// inheritance, malformed atom).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandError {
    /// Human-readable description with definition context.
    pub message: String,
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IDL expansion: {}", self.message)
    }
}

impl std::error::Error for ExpandError {}

type Result<T> = std::result::Result<T, ExpandError>;

/// Compiles the definition `name` from `lib` into a solver-ready
/// constraint.
pub fn compile(lib: &Library, name: &str) -> Result<CompiledConstraint> {
    let def = lib.get(name).ok_or_else(|| ExpandError {
        message: format!("no definition named {name:?}"),
    })?;
    let mut cx = Cx {
        lib,
        stack: vec![name.to_owned()],
        syms: SymbolTable::new(),
        skeletons: Vec::new(),
    };
    let env = HashMap::new();
    let mut tree = cx.expand_spine(&def.body, &env, true)?;
    // Compact the symbol table to exactly the ids the final tree
    // references: renames leave dead pre-rename symbols behind, and the
    // solver's slot arrays are sized by the table.
    let used = tree.all_symbols();
    let mut symbols = SymbolTable::new();
    let remap: HashMap<VarId, VarId> = used
        .iter()
        .map(|&v| (v, symbols.intern(cx.syms.name(v))))
        .collect();
    tree.remap_symbols(&mut |v| remap[&v]);
    let mut skeletons = cx.skeletons;
    for s in &mut skeletons {
        for v in &mut s.vars {
            *v = remap[v];
        }
    }
    // Chain selection: keep only the markers connected (through shared
    // variables) to the chain built so far — the first marker (the loop
    // skeleton) anchors it. Disconnected markers (e.g. a MatrixRead whose
    // variables only meet the loop nest through separate spine atoms)
    // would multiply the chain's solution rows without narrowing them,
    // so they are dropped and the idiom's own search re-proves them.
    {
        let mut chain: Vec<SkeletonRef> = Vec::new();
        let mut included: std::collections::HashSet<VarId> = std::collections::HashSet::new();
        for s in skeletons {
            if chain.is_empty() || s.vars.iter().any(|v| included.contains(v)) {
                included.extend(s.vars.iter().copied());
                chain.push(s);
            }
        }
        skeletons = chain;
    }
    // `Concat` writes `out[k]` bindings at solve time; pre-intern every
    // slot it could ever fill (bounded by the operand families' sizes)
    // so the solver never interns mid-search. Concat chains can extend
    // families, so iterate to a fixpoint — an *acyclic* chain of N
    // concats stabilizes within N+1 rounds (each round resolves at
    // least one more chain level), so the loop is capped there: a
    // self-referential concat (`{xs} = {xs} ++ {ys}`) would otherwise
    // grow its own input forever. Past the cap the family is simply
    // left at its current capacity (the solver truncates to the
    // pre-interned slots), which is the only finite reading of a
    // cyclic concatenation.
    let mut atoms = Vec::new();
    collect_deep_atoms(&tree, &mut atoms);
    let concats: Vec<&Atom> = atoms
        .into_iter()
        .filter(|a| a.kind == AtomKind::Concat)
        .collect();
    for _round in 0..=concats.len() {
        symbols.index_families();
        let mut fresh: Vec<String> = Vec::new();
        for a in &concats {
            let cap_of = |fam: VarId| symbols.family_members(fam).len().max(1);
            let cap = cap_of(a.families[1]) + cap_of(a.families[2]);
            let out = symbols.name(a.families[0]);
            for k in 0..cap {
                let slot = format!("{out}[{k}]");
                if symbols.lookup(&slot).is_none() {
                    fresh.push(slot);
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        for s in fresh {
            symbols.intern(&s);
        }
    }
    symbols.index_families();
    let variables = tree.variables();
    // The ordering seed is the whole chain's variable set (deduplicated,
    // first-occurrence order) — exactly the prefix a cached chain
    // solution binds in one shot.
    let mut seed: Vec<VarId> = Vec::new();
    for s in &skeletons {
        for &v in &s.vars {
            if !seed.contains(&v) {
                seed.push(v);
            }
        }
    }
    let order = crate::ctree::order_variables_seeded(&tree, &variables, &seed);
    Ok(CompiledConstraint {
        name: name.to_owned(),
        tree,
        symbols,
        variables,
        order,
        skeletons,
        index_cache: std::sync::OnceLock::new(),
    })
}

fn collect_deep_atoms<'t>(tree: &'t CTree, out: &mut Vec<&'t Atom>) {
    match tree {
        CTree::And(cs) | CTree::Or(cs) => {
            for c in cs {
                collect_deep_atoms(c, out);
            }
        }
        CTree::Atom(a) => out.push(a),
        CTree::Collect { instances } => {
            for i in instances {
                collect_deep_atoms(i, out);
            }
        }
    }
}

struct Cx<'l> {
    lib: &'l Library,
    stack: Vec<String>,
    syms: SymbolTable,
    skeletons: Vec<SkeletonRef>,
}

/// A variable-name rewrite: exact-or-prefix renames plus an optional
/// rebase prefix for unmapped names.
struct Rewrite {
    /// (inner prefix, outer replacement).
    renames: Vec<(String, String)>,
    rebase: Option<String>,
}

impl Rewrite {
    fn apply(&self, name: &str) -> String {
        for (inner, outer) in &self.renames {
            if name == inner {
                return outer.clone();
            }
            if let Some(rest) = name.strip_prefix(inner.as_str()) {
                if rest.starts_with('.') || rest.starts_with('[') {
                    return format!("{outer}{rest}");
                }
            }
        }
        match &self.rebase {
            Some(p) => format!("{p}.{name}"),
            None => name.to_owned(),
        }
    }
}

fn rewrite_tree(tree: &mut CTree, rw: &Rewrite, syms: &mut SymbolTable) {
    match tree {
        CTree::And(cs) | CTree::Or(cs) => {
            for c in cs {
                rewrite_tree(c, rw, syms);
            }
        }
        CTree::Atom(a) => {
            for v in a.vars.iter_mut().chain(a.families.iter_mut()) {
                let new = rw.apply(syms.name(*v));
                if syms.name(*v) != new {
                    *v = syms.intern(&new);
                }
            }
        }
        CTree::Collect { instances } => {
            for i in instances {
                rewrite_tree(i, rw, syms);
            }
        }
    }
}

impl<'l> Cx<'l> {
    fn err(&self, msg: impl Into<String>) -> ExpandError {
        ExpandError {
            message: format!(
                "{} (while expanding {})",
                msg.into(),
                self.stack.join(" -> ")
            ),
        }
    }

    fn flatten(&self, v: &VarName, env: &HashMap<String, i64>) -> Result<String> {
        v.flatten(env).map_err(|e| self.err(e))
    }

    /// Flattens and interns a variable reference.
    fn fvar(&mut self, v: &VarName, env: &HashMap<String, i64>) -> Result<VarId> {
        let name = self.flatten(v, env)?;
        Ok(self.syms.intern(&name))
    }

    fn expand(&mut self, c: &Constraint, env: &HashMap<String, i64>) -> Result<CTree> {
        self.expand_spine(c, env, false)
    }

    /// [`Cx::expand`] with spine tracking: `spine` is `true` only along
    /// the root's conjunctive chain, where an `inherits For`/`ForNest` is
    /// a whole-idiom loop skeleton worth recording as a [`SkeletonRef`].
    fn expand_spine(
        &mut self,
        c: &Constraint,
        env: &HashMap<String, i64>,
        spine: bool,
    ) -> Result<CTree> {
        match c {
            Constraint::And(cs) => Ok(CTree::And(
                cs.iter()
                    .map(|x| self.expand_spine(x, env, spine))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Constraint::Or(cs) => Ok(CTree::Or(
                cs.iter()
                    .map(|x| self.expand(x, env))
                    .collect::<Result<Vec<_>>>()?,
            )),
            Constraint::Atom(a) => self.expand_atom(a, env),
            Constraint::ForAll {
                body,
                index,
                lo,
                hi,
            } => {
                let lo = lo.eval(env).map_err(|e| self.err(e))?;
                let hi = hi.eval(env).map_err(|e| self.err(e))?;
                let mut items = Vec::new();
                for i in lo..=hi {
                    let mut env2 = env.clone();
                    env2.insert(index.clone(), i);
                    items.push(self.expand(body, &env2)?);
                }
                Ok(CTree::And(items))
            }
            Constraint::ForSome {
                body,
                index,
                lo,
                hi,
            } => {
                let lo = lo.eval(env).map_err(|e| self.err(e))?;
                let hi = hi.eval(env).map_err(|e| self.err(e))?;
                let mut items = Vec::new();
                for i in lo..=hi {
                    let mut env2 = env.clone();
                    env2.insert(index.clone(), i);
                    items.push(self.expand(body, &env2)?);
                }
                Ok(CTree::Or(items))
            }
            Constraint::ForOne { body, index, value } => {
                let v = value.eval(env).map_err(|e| self.err(e))?;
                let mut env2 = env.clone();
                env2.insert(index.clone(), v);
                self.expand(body, &env2)
            }
            Constraint::If { a, b, then, other } => {
                let av = a.eval(env).map_err(|e| self.err(e))?;
                let bv = b.eval(env).map_err(|e| self.err(e))?;
                if av == bv {
                    self.expand(then, env)
                } else {
                    self.expand(other, env)
                }
            }
            Constraint::Collect { index, max, body } => {
                let mut instances = Vec::new();
                for k in 0..*max {
                    let mut env2 = env.clone();
                    env2.insert(index.clone(), k as i64);
                    instances.push(self.expand(body, &env2)?);
                }
                Ok(CTree::Collect { instances })
            }
            Constraint::Adapted { inner, adapt } => {
                let mut tree = self.expand(inner, env)?;
                let rw = self.build_rewrite(adapt, env)?;
                rewrite_tree(&mut tree, &rw, &mut self.syms);
                Ok(tree)
            }
            Constraint::Inherits {
                name,
                params,
                adapt,
            } => {
                if self.stack.contains(name) {
                    return Err(self.err(format!("cyclic inheritance of {name:?}")));
                }
                let def = self
                    .lib
                    .get(name)
                    .ok_or_else(|| self.err(format!("no definition named {name:?}")))?;
                // Inner environment: only the declared parameters.
                let mut inner_env = HashMap::new();
                for (pname, calc) in params {
                    inner_env.insert(pname.clone(), calc.eval(env).map_err(|e| self.err(e))?);
                }
                self.stack.push(name.clone());
                let body = def.body.clone();
                let mut tree = self.expand(&body, &inner_env)?;
                self.stack.pop();
                let rw = self.build_rewrite_mixed(adapt, env, &inner_env)?;
                rewrite_tree(&mut tree, &rw, &mut self.syms);
                // A loop-skeleton building block inherited on the
                // conjunctive spine: record the (renamed) variable set so
                // detection can seed this constraint's search from cached
                // per-function skeleton solutions. Variables are listed
                // in first-occurrence order, which renaming preserves, so
                // they align positionally with the standalone-compiled
                // block's `variables`.
                if spine && SKELETON_BLOCKS.contains(&name.as_str()) {
                    let mut sorted_params: Vec<(String, i64)> = inner_env.into_iter().collect();
                    sorted_params.sort();
                    self.skeletons.push(SkeletonRef {
                        block: name.clone(),
                        params: sorted_params,
                        vars: tree.variables(),
                        renames: rw
                            .renames
                            .iter()
                            .map(|(inner, outer)| (outer.clone(), inner.clone()))
                            .collect(),
                        rebase: rw.rebase.clone(),
                    });
                }
                Ok(tree)
            }
        }
    }

    /// Builds a rewrite where both sides are flattened under the same env
    /// (used by `Adapted` groups, whose inner names live in the current
    /// scope).
    fn build_rewrite(&self, adapt: &Adaptation, env: &HashMap<String, i64>) -> Result<Rewrite> {
        self.build_rewrite_mixed(adapt, env, env)
    }

    /// Builds a rewrite for `inherits`: outer names evaluate under the
    /// caller's environment, inner names under the inherited definition's
    /// parameter environment.
    fn build_rewrite_mixed(
        &self,
        adapt: &Adaptation,
        outer_env: &HashMap<String, i64>,
        inner_env: &HashMap<String, i64>,
    ) -> Result<Rewrite> {
        let mut renames = Vec::new();
        for (outer, inner) in &adapt.renames {
            renames.push((
                self.flatten(inner, inner_env)?,
                self.flatten(outer, outer_env)?,
            ));
        }
        let rebase = match &adapt.rebase {
            Some(p) => Some(self.flatten(p, outer_env)?),
            None => None,
        };
        Ok(Rewrite { renames, rebase })
    }

    fn expand_atom(&mut self, a: &RawAtom, env: &HashMap<String, i64>) -> Result<CTree> {
        let atom = match a {
            RawAtom::TypeIs {
                var,
                class,
                constant_zero,
            } => {
                let class = match class.as_str() {
                    "integer" => TypeClass::Integer,
                    "float" => TypeClass::Float,
                    "pointer" => TypeClass::Pointer,
                    other => return Err(self.err(format!("unknown type class {other:?}"))),
                };
                Atom {
                    kind: AtomKind::TypeIs {
                        class,
                        constant_zero: *constant_zero,
                    },
                    vars: vec![self.fvar(var, env)?],
                    families: vec![],
                }
            }
            RawAtom::Unused(v) => Atom {
                kind: AtomKind::Unused,
                vars: vec![self.fvar(v, env)?],
                families: vec![],
            },
            RawAtom::IsConstant(v) => Atom {
                kind: AtomKind::IsConstant,
                vars: vec![self.fvar(v, env)?],
                families: vec![],
            },
            RawAtom::IsPreexecution(v) => Atom {
                kind: AtomKind::IsPreexecution,
                vars: vec![self.fvar(v, env)?],
                families: vec![],
            },
            RawAtom::IsArgument(v) => Atom {
                kind: AtomKind::IsArgument,
                vars: vec![self.fvar(v, env)?],
                families: vec![],
            },
            RawAtom::IsInstruction(v) => Atom {
                kind: AtomKind::IsInstruction,
                vars: vec![self.fvar(v, env)?],
                families: vec![],
            },
            RawAtom::OpcodeIs { var, opcode } => {
                let class = OpcodeClass::from_word(opcode)
                    .ok_or_else(|| self.err(format!("unknown opcode {opcode:?}")))?;
                Atom {
                    kind: AtomKind::OpcodeIs(class),
                    vars: vec![self.fvar(var, env)?],
                    families: vec![],
                }
            }
            RawAtom::Same { a, b, negated } => Atom {
                kind: AtomKind::Same { negated: *negated },
                vars: vec![self.fvar(a, env)?, self.fvar(b, env)?],
                families: vec![],
            },
            RawAtom::HasEdge { from, to, kind } => {
                let kind = match kind.as_str() {
                    "data" => EdgeKind::Data,
                    "control" => EdgeKind::Control,
                    "dependence" => EdgeKind::Dependence,
                    other => return Err(self.err(format!("unknown edge kind {other:?}"))),
                };
                Atom {
                    kind: AtomKind::HasEdge(kind),
                    vars: vec![self.fvar(from, env)?, self.fvar(to, env)?],
                    families: vec![],
                }
            }
            RawAtom::ArgumentOf { child, parent, pos } => Atom {
                kind: AtomKind::ArgumentOf { pos: *pos },
                vars: vec![self.fvar(child, env)?, self.fvar(parent, env)?],
                families: vec![],
            },
            RawAtom::ReachesPhi { value, phi, from } => Atom {
                kind: AtomKind::ReachesPhi,
                vars: vec![
                    self.fvar(value, env)?,
                    self.fvar(phi, env)?,
                    self.fvar(from, env)?,
                ],
                families: vec![],
            },
            RawAtom::Dominates {
                a,
                b,
                strict,
                post,
                negated,
            } => Atom {
                kind: AtomKind::Dominates {
                    strict: *strict,
                    post: *post,
                    negated: *negated,
                },
                vars: vec![self.fvar(a, env)?, self.fvar(b, env)?],
                families: vec![],
            },
            RawAtom::AllFlowThrough {
                from,
                to,
                through,
                kind,
            } => Atom {
                kind: AtomKind::AllFlowThrough {
                    data: kind == "data",
                },
                vars: vec![
                    self.fvar(from, env)?,
                    self.fvar(to, env)?,
                    self.fvar(through, env)?,
                ],
                families: vec![],
            },
            RawAtom::KilledBy { sink, killers } => Atom {
                kind: AtomKind::KilledBy,
                vars: vec![self.fvar(sink, env)?],
                families: killers
                    .iter()
                    .map(|k| self.fvar(k, env))
                    .collect::<Result<Vec<_>>>()?,
            },
            RawAtom::Concat { out, in1, in2 } => Atom {
                kind: AtomKind::Concat,
                vars: vec![],
                families: vec![
                    self.fvar(out, env)?,
                    self.fvar(in1, env)?,
                    self.fvar(in2, env)?,
                ],
            },
        };
        Ok(CTree::Atom(atom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_library;

    #[test]
    fn compiles_figure2() {
        let lib = parse_library(
            r#"
Constraint Factorization
( {sum} is add instruction and
  {left} is first argument of {sum} and
  ( {factor} is first argument of {left} or
    {factor} is second argument of {left} ))
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "Factorization").unwrap();
        assert_eq!(c.variable_names(), vec!["sum", "left", "factor"]);
        assert_eq!(c.tree.atom_count(), 4);
    }

    #[test]
    fn inheritance_renames_and_rebases() {
        let lib = parse_library(
            r#"
Constraint Read
( {address} is gep instruction and
  {value} is load instruction and
  {address} is first argument of {value} and
  {idx} is second argument of {address} )
End

Constraint Outer
( inherits Read with {iterator} as {idx} at {src} and
  {iterator} is phi instruction )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "Outer").unwrap();
        // idx is renamed to the outer iterator; others get the src prefix.
        let names = c.variable_names();
        assert!(names.contains(&"src.address"));
        assert!(names.contains(&"src.value"));
        assert!(names.contains(&"iterator"));
        assert!(!names.iter().any(|&v| v == "idx" || v == "src.idx"));
    }

    #[test]
    fn forall_duplicates_with_index_substitution() {
        let lib = parse_library(
            r#"
Constraint Nest
( ( {loop[i].header} is phi instruction ) for all i = 0 .. N-1 )
End

Constraint Three
( inherits Nest(N=3) )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "Three").unwrap();
        assert_eq!(
            c.variable_names(),
            vec!["loop[0].header", "loop[1].header", "loop[2].header"]
        );
    }

    #[test]
    fn forsome_becomes_disjunction() {
        let lib = parse_library(
            r#"
Constraint S
( ( {x[i]} is load instruction ) for some i = 0 .. 1 )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "S").unwrap();
        assert!(matches!(c.tree, CTree::Or(ref v) if v.len() == 2));
    }

    #[test]
    fn if_selects_branch_at_compile_time() {
        let lib = parse_library(
            r#"
Constraint C
( if N = 1 then {a} is unused else {a} is an instruction endif )
End

Constraint D ( inherits C(N=1) )
End

Constraint E ( inherits C(N=2) )
End
"#,
        )
        .unwrap();
        let d = compile(&lib, "D").unwrap();
        let e = compile(&lib, "E").unwrap();
        assert!(matches!(
            d.tree,
            CTree::Atom(Atom {
                kind: AtomKind::Unused,
                ..
            })
        ));
        assert!(matches!(
            e.tree,
            CTree::Atom(Atom {
                kind: AtomKind::IsInstruction,
                ..
            })
        ));
    }

    #[test]
    fn collect_preinstantiates() {
        let lib = parse_library(
            r#"
Constraint C
( collect i 3 ( {read[i].value} is load instruction and
                {iterator} has data flow to {read[i].value} ) )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "C").unwrap();
        let CTree::Collect { instances } = &c.tree else {
            panic!("expected collect")
        };
        assert_eq!(instances.len(), 3);
        // Outer variables exclude collect internals.
        assert!(c.variables.is_empty());
        let deep: Vec<&str> = instances[2]
            .variables_deep()
            .into_iter()
            .map(|v| c.symbols.name(v))
            .collect();
        assert!(deep.contains(&"read[2].value"));
        assert!(deep.contains(&"iterator"));
    }

    #[test]
    fn self_referential_concat_terminates_at_a_finite_capacity() {
        // `{xs} = {xs} ++ {old}` can never stabilize — every pre-interned
        // output slot enlarges the input family. Compilation must still
        // terminate (capped fixpoint) instead of hanging, leaving `xs`
        // with a finite pre-interned capacity.
        let lib = parse_library(
            "Constraint C ( {old} is phi instruction and {xs} is concatenation of {xs} and {old} ) End",
        )
        .unwrap();
        let c = compile(&lib, "C").unwrap();
        let xs = c.symbols.lookup("xs").expect("family base interned");
        assert!(!c.symbols.family_members(xs).is_empty());
    }

    #[test]
    fn cyclic_inheritance_is_an_error() {
        let lib = parse_library("Constraint A ( inherits B ) End Constraint B ( inherits A ) End")
            .unwrap();
        let err = compile(&lib, "A").unwrap_err();
        assert!(err.message.contains("cyclic"));
    }

    #[test]
    fn unknown_definition_is_an_error() {
        let lib = parse_library("Constraint A ( inherits Missing ) End").unwrap();
        assert!(compile(&lib, "A").is_err());
        assert!(compile(&lib, "Nope").is_err());
    }

    #[test]
    fn family_prefix_renaming() {
        let lib = parse_library(
            r#"
Constraint Inner
( all flow to {out} is killed by {input} )
End

Constraint Outer
( inherits Inner with {reads} as {input} and {result} as {out} at {k} )
End
"#,
        )
        .unwrap();
        let c = compile(&lib, "Outer").unwrap();
        let CTree::Atom(a) = &c.tree else { panic!() };
        assert_eq!(c.symbols.name(a.vars[0]), "result");
        assert_eq!(c.symbols.name(a.families[0]), "reads");
    }
}
