//! IDL parser (recursive descent over the Figure-7 grammar).

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};

/// An IDL parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IDL line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a whole IDL library (a sequence of `Constraint ... End`
/// definitions).
pub fn parse_library(src: &str) -> Result<Library> {
    let toks = lex(src).map_err(|(line, message)| ParseError { line, message })?;
    let mut p = Parser { toks, pos: 0 };
    let mut lib = Library::default();
    while !matches!(p.peek(), Tok::Eof) {
        lib.defs.push(p.definition()?);
    }
    Ok(lib)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

const OPCODE_WORDS: &[&str] = &[
    "store", "load", "return", "branch", "add", "sub", "mul", "sdiv", "srem", "fadd", "fsub",
    "fmul", "fdiv", "select", "gep", "icmp", "fcmp", "phi", "sext", "zext", "trunc", "sitofp",
    "fptosi", "fpext", "fptrunc", "call", "alloca",
];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, k: usize) -> &Tok {
        &self.toks[(self.pos + k).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Tok::Word(x) if x == w) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Tries to consume a sequence of words; consumes nothing on failure.
    fn eat_words(&mut self, ws: &[&str]) -> bool {
        let save = self.pos;
        for w in ws {
            if !self.eat_word(w) {
                self.pos = save;
                return false;
            }
        }
        true
    }

    fn expect_word(&mut self, w: &str) -> Result<()> {
        if self.eat_word(w) {
            Ok(())
        } else {
            Err(self.err(format!("expected {w:?}, got {:?}", self.peek())))
        }
    }

    fn word(&mut self) -> Result<String> {
        let line = self.line();
        match self.bump() {
            Tok::Word(w) => Ok(w),
            other => Err(ParseError {
                line,
                message: format!("expected word, got {other:?}"),
            }),
        }
    }

    fn braced(&mut self) -> Result<String> {
        let line = self.line();
        match self.bump() {
            Tok::Braced(b) => Ok(b),
            other => Err(ParseError {
                line,
                message: format!("expected {{variable}}, got {other:?}"),
            }),
        }
    }

    fn var(&mut self) -> Result<VarName> {
        let line = self.line();
        let raw = self.braced()?;
        parse_varname(&raw).map_err(|message| ParseError { line, message })
    }

    /// A braced variable list: `{a, b.c, d}` or a single `{family}`.
    fn varlist(&mut self) -> Result<Vec<VarName>> {
        let line = self.line();
        let raw = self.braced()?;
        raw.split(',')
            .map(|part| parse_varname(part.trim()))
            .collect::<std::result::Result<Vec<_>, _>>()
            .map_err(|message| ParseError { line, message })
    }

    fn definition(&mut self) -> Result<Definition> {
        self.expect_word("Constraint")?;
        let name = self.word()?;
        let body = self.constraint()?;
        self.expect_word("End")?;
        Ok(Definition { name, body })
    }

    fn calc(&mut self) -> Result<Calc> {
        let line = self.line();
        let mut lhs = match self.bump() {
            Tok::Num(n) => Calc::Num(n),
            Tok::Word(w) => Calc::Name(w),
            Tok::Minus => match self.bump() {
                Tok::Num(n) => Calc::Num(-n),
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("expected number after '-', got {other:?}"),
                    })
                }
            },
            other => {
                return Err(ParseError {
                    line,
                    message: format!("expected calculation, got {other:?}"),
                })
            }
        };
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let rhs = self.calc_term()?;
                    lhs = Calc::Add(Box::new(lhs), Box::new(rhs));
                }
                Tok::Minus => {
                    self.bump();
                    let rhs = self.calc_term()?;
                    lhs = Calc::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn calc_term(&mut self) -> Result<Calc> {
        let line = self.line();
        match self.bump() {
            Tok::Num(n) => Ok(Calc::Num(n)),
            Tok::Word(w) => Ok(Calc::Name(w)),
            other => Err(ParseError {
                line,
                message: format!("expected calculation term, got {other:?}"),
            }),
        }
    }

    /// Parses a constraint with optional postfix quantifiers/adaptations.
    fn constraint(&mut self) -> Result<Constraint> {
        let mut c = self.primary()?;
        loop {
            if matches!(self.peek(), Tok::Word(w) if w == "for") {
                // `for all` / `for some` / `for <name> = <calc>`
                self.bump();
                if self.eat_word("all") {
                    let index = self.word()?;
                    self.expect_equals()?;
                    let lo = self.calc()?;
                    self.expect_dotdot()?;
                    let hi = self.calc()?;
                    c = Constraint::ForAll {
                        body: Box::new(c),
                        index,
                        lo,
                        hi,
                    };
                } else if self.eat_word("some") {
                    let index = self.word()?;
                    self.expect_equals()?;
                    let lo = self.calc()?;
                    self.expect_dotdot()?;
                    let hi = self.calc()?;
                    c = Constraint::ForSome {
                        body: Box::new(c),
                        index,
                        lo,
                        hi,
                    };
                } else {
                    let index = self.word()?;
                    self.expect_equals()?;
                    let value = self.calc()?;
                    c = Constraint::ForOne {
                        body: Box::new(c),
                        index,
                        value,
                    };
                }
            } else if matches!(self.peek(), Tok::Word(w) if w == "with" || w == "at") {
                let adapt = self.adaptation()?;
                c = match c {
                    Constraint::Inherits {
                        name,
                        params,
                        adapt: old,
                    } if is_empty_adapt(&old) => Constraint::Inherits {
                        name,
                        params,
                        adapt,
                    },
                    other => Constraint::Adapted {
                        inner: Box::new(other),
                        adapt,
                    },
                };
            } else {
                return Ok(c);
            }
        }
    }

    fn expect_equals(&mut self) -> Result<()> {
        if matches!(self.bump(), Tok::Equals) {
            Ok(())
        } else {
            Err(self.err("expected '='"))
        }
    }

    fn expect_dotdot(&mut self) -> Result<()> {
        if matches!(self.bump(), Tok::DotDot) {
            Ok(())
        } else {
            Err(self.err("expected '..'"))
        }
    }

    fn adaptation(&mut self) -> Result<Adaptation> {
        let mut adapt = Adaptation::default();
        if self.eat_word("with") {
            loop {
                let outer = self.var()?;
                self.expect_word("as")?;
                let inner = self.var()?;
                adapt.renames.push((outer, inner));
                // `and` continues the rename list only when followed by
                // `{var} as`; otherwise it is the enclosing conjunction.
                let more = matches!(self.peek(), Tok::Word(w) if w == "and")
                    && matches!(self.peek_at(1), Tok::Braced(_))
                    && matches!(self.peek_at(2), Tok::Word(w) if w == "as");
                if more {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if self.eat_word("at") {
            adapt.rebase = Some(self.var()?);
        }
        Ok(adapt)
    }

    fn primary(&mut self) -> Result<Constraint> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let first = self.constraint()?;
                let mut items = vec![first];
                let mut mode: Option<bool> = None; // Some(true)=and, Some(false)=or
                loop {
                    if matches!(self.peek(), Tok::RParen) {
                        self.bump();
                        break;
                    }
                    let is_and = if self.eat_word("and") {
                        true
                    } else if self.eat_word("or") {
                        false
                    } else {
                        return Err(self.err(format!(
                            "expected 'and', 'or' or ')', got {:?}",
                            self.peek()
                        )));
                    };
                    match mode {
                        None => mode = Some(is_and),
                        Some(m) if m != is_and => {
                            return Err(self.err("mixed 'and'/'or' at the same level; parenthesize"))
                        }
                        _ => {}
                    }
                    items.push(self.constraint()?);
                }
                Ok(match mode {
                    None => items.pop().expect("one item"),
                    Some(true) => Constraint::And(items),
                    Some(false) => Constraint::Or(items),
                })
            }
            Tok::Word(w) if w == "inherits" => {
                self.bump();
                let name = self.word()?;
                let mut params = Vec::new();
                if matches!(self.peek(), Tok::LParen) {
                    self.bump();
                    loop {
                        let pname = self.word()?;
                        self.expect_equals()?;
                        let val = self.calc()?;
                        params.push((pname, val));
                        match self.bump() {
                            Tok::Comma => continue,
                            Tok::RParen => break,
                            other => {
                                return Err(self.err(format!(
                                    "expected ',' or ')' in parameter list, got {other:?}"
                                )))
                            }
                        }
                    }
                }
                // Adaptations are handled by the postfix loop in
                // `constraint`, which folds them into the Inherits node.
                Ok(Constraint::Inherits {
                    name,
                    params,
                    adapt: Adaptation::default(),
                })
            }
            Tok::Word(w) if w == "if" => {
                self.bump();
                let a = self.calc()?;
                self.expect_equals()?;
                let b = self.calc()?;
                self.expect_word("then")?;
                let then = self.constraint()?;
                self.expect_word("else")?;
                let other = self.constraint()?;
                self.expect_word("endif")?;
                Ok(Constraint::If {
                    a,
                    b,
                    then: Box::new(then),
                    other: Box::new(other),
                })
            }
            Tok::Word(w) if w == "collect" => {
                self.bump();
                let index = self.word()?;
                let max = match self.peek() {
                    Tok::Num(n) => {
                        let n = *n;
                        self.bump();
                        usize::try_from(n).map_err(|_| self.err("bad collect bound"))?
                    }
                    _ => 16, // default family bound
                };
                let body = self.constraint()?;
                Ok(Constraint::Collect {
                    index,
                    max,
                    body: Box::new(body),
                })
            }
            Tok::Word(w) if w == "all" => self.all_flow_atom(),
            Tok::Braced(_) => self.var_atom(),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    /// Atoms beginning with `all ... flow ...`.
    fn all_flow_atom(&mut self) -> Result<Constraint> {
        self.expect_word("all")?;
        let kind = if self.eat_word("control") {
            "control".to_owned()
        } else if self.eat_word("data") {
            "data".to_owned()
        } else {
            "control".to_owned() // bare `all flow` defaults to control flow
        };
        self.expect_word("flow")?;
        if self.eat_word("from") {
            let from = self.var()?;
            self.expect_word("to")?;
            let to = self.var()?;
            self.expect_word("passes")?;
            self.expect_word("through")?;
            let through = self.var()?;
            Ok(Constraint::Atom(RawAtom::AllFlowThrough {
                from,
                to,
                through,
                kind,
            }))
        } else {
            // `all flow to {sink} is killed by {killers}`
            self.expect_word("to")?;
            let sink = self.var()?;
            self.expect_word("is")?;
            self.expect_word("killed")?;
            self.expect_word("by")?;
            let killers = self.varlist()?;
            Ok(Constraint::Atom(RawAtom::KilledBy { sink, killers }))
        }
    }

    /// Atoms beginning with a `{variable}`.
    fn var_atom(&mut self) -> Result<Constraint> {
        let v = self.var()?;
        if self.eat_word("is") {
            return self.is_atom(v);
        }
        if self.eat_word("has") {
            let kind = if self.eat_words(&["data", "flow"]) {
                "data"
            } else if self.eat_words(&["control", "flow"]) {
                "control"
            } else if self.eat_words(&["dependence", "edge"]) {
                "dependence"
            } else {
                return Err(self.err("expected 'data flow', 'control flow' or 'dependence edge'"));
            };
            self.expect_word("to")?;
            let to = self.var()?;
            return Ok(Constraint::Atom(RawAtom::HasEdge {
                from: v,
                to,
                kind: kind.to_owned(),
            }));
        }
        if self.eat_word("reaches") {
            self.expect_word("phi")?;
            self.expect_word("node")?;
            let phi = self.var()?;
            self.expect_word("from")?;
            let from = self.var()?;
            return Ok(Constraint::Atom(RawAtom::ReachesPhi {
                value: v,
                phi,
                from,
            }));
        }
        // Dominance: [does not] [strictly] [control flow] [post] dominates
        let negated = self.eat_words(&["does", "not"]);
        let strict = self.eat_word("strictly");
        let _cf = self.eat_words(&["control", "flow"]);
        let post = self.eat_word("post");
        if self.eat_word("dominates") || self.eat_word("dominate") {
            let b = self.var()?;
            return Ok(Constraint::Atom(RawAtom::Dominates {
                a: v,
                b,
                strict,
                post,
                negated,
            }));
        }
        Err(self.err("expected an atomic constraint after variable"))
    }

    fn is_atom(&mut self, v: VarName) -> Result<Constraint> {
        // `is not the same as`
        if self.eat_words(&["not", "the", "same", "as"]) {
            let b = self.var()?;
            return Ok(Constraint::Atom(RawAtom::Same {
                a: v,
                b,
                negated: true,
            }));
        }
        if self.eat_words(&["the", "same", "as"]) {
            let b = self.var()?;
            return Ok(Constraint::Atom(RawAtom::Same {
                a: v,
                b,
                negated: false,
            }));
        }
        for class in ["integer", "float", "pointer"] {
            if self.eat_word(class) {
                let constant_zero = self.eat_words(&["constant", "zero"]);
                return Ok(Constraint::Atom(RawAtom::TypeIs {
                    var: v,
                    class: class.to_owned(),
                    constant_zero,
                }));
            }
        }
        if self.eat_word("unused") {
            return Ok(Constraint::Atom(RawAtom::Unused(v)));
        }
        if self.eat_word("a") {
            if self.eat_word("constant") {
                return Ok(Constraint::Atom(RawAtom::IsConstant(v)));
            }
            if self.eat_words(&["compile", "time", "value"]) {
                return Ok(Constraint::Atom(RawAtom::IsPreexecution(v)));
            }
            return Err(self.err("expected 'constant' or 'compile time value'"));
        }
        if self.eat_word("an") {
            if self.eat_word("argument") {
                return Ok(Constraint::Atom(RawAtom::IsArgument(v)));
            }
            if self.eat_word("instruction") {
                return Ok(Constraint::Atom(RawAtom::IsInstruction(v)));
            }
            return Err(self.err("expected 'argument' or 'instruction'"));
        }
        for (word, pos) in [("first", 0), ("second", 1), ("third", 2), ("fourth", 3)] {
            if self.eat_word(word) {
                self.expect_word("argument")?;
                self.expect_word("of")?;
                let parent = self.var()?;
                return Ok(Constraint::Atom(RawAtom::ArgumentOf {
                    child: v,
                    parent,
                    pos,
                }));
            }
        }
        if self.eat_word("concatenation") {
            self.expect_word("of")?;
            let in1 = self.var()?;
            self.expect_word("and")?;
            let in2 = self.var()?;
            return Ok(Constraint::Atom(RawAtom::Concat { out: v, in1, in2 }));
        }
        // `is <opcode> instruction`
        let line = self.line();
        let w = self.word()?;
        if OPCODE_WORDS.contains(&w.as_str()) {
            self.expect_word("instruction")?;
            return Ok(Constraint::Atom(RawAtom::OpcodeIs { var: v, opcode: w }));
        }
        Err(ParseError {
            line,
            message: format!("unknown atom keyword {w:?} after 'is'"),
        })
    }
}

fn is_empty_adapt(a: &Adaptation) -> bool {
    a.renames.is_empty() && a.rebase.is_none()
}

/// Parses a variable name `seg[idx].seg2...` into a [`VarName`].
pub fn parse_varname(raw: &str) -> std::result::Result<VarName, String> {
    if raw.is_empty() {
        return Err("empty variable name".into());
    }
    let mut segs = Vec::new();
    for part in raw.split('.') {
        let part = part.trim();
        let open = part.find('[');
        let (name, mut rest) = match open {
            Some(k) => (&part[..k], &part[k..]),
            None => (part, ""),
        };
        if name.is_empty() {
            return Err(format!("bad variable segment in {raw:?}"));
        }
        let mut indices = Vec::new();
        while !rest.is_empty() {
            if !rest.starts_with('[') {
                return Err(format!("bad index syntax in {raw:?}"));
            }
            let close = rest
                .find(']')
                .ok_or_else(|| format!("unterminated index in {raw:?}"))?;
            indices.push(parse_calc_str(&rest[1..close])?);
            rest = &rest[close + 1..];
        }
        segs.push(VarSeg {
            name: name.to_owned(),
            indices,
        });
    }
    Ok(VarName { segs })
}

/// Parses a calculation inside index brackets: `i`, `3`, `N-1`, `i+2`.
fn parse_calc_str(s: &str) -> std::result::Result<Calc, String> {
    let s = s.trim();
    // Find a top-level + or - (no nesting in the grammar).
    for (k, c) in s.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let lhs = parse_calc_str(&s[..k])?;
            let rhs = parse_calc_str(&s[k + 1..])?;
            return Ok(if c == '+' {
                Calc::Add(Box::new(lhs), Box::new(rhs))
            } else {
                Calc::Sub(Box::new(lhs), Box::new(rhs))
            });
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Calc::Num(n));
    }
    if s.chars().all(|c| c.is_alphanumeric() || c == '_') && !s.is_empty() {
        return Ok(Calc::Name(s.to_owned()));
    }
    Err(format!("bad calculation {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_factorization() {
        let src = r#"
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend}) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend}))
End
"#;
        let lib = parse_library(src).unwrap();
        assert_eq!(lib.defs.len(), 1);
        let Constraint::And(items) = &lib.defs[0].body else {
            panic!("expected And")
        };
        assert_eq!(items.len(), 7);
        assert!(matches!(items[5], Constraint::Or(_)));
    }

    #[test]
    fn parses_sese_with_dominance_and_flow() {
        let src = r#"
Constraint SESE
( {precursor} is branch instruction and
  {precursor} has control flow to {begin} and
  {end} is branch instruction and
  {end} has control flow to {successor} and
  {begin} control flow dominates {end} and
  {end} control flow post dominates {begin} and
  {precursor} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {end} and
  all control flow from {begin} to {precursor} passes through {end} and
  all control flow from {successor} to {end} passes through {begin})
End
"#;
        let lib = parse_library(src).unwrap();
        let Constraint::And(items) = &lib.defs[0].body else {
            panic!()
        };
        assert_eq!(items.len(), 10);
        assert!(matches!(
            items[5],
            Constraint::Atom(RawAtom::Dominates {
                post: true,
                strict: false,
                ..
            })
        ));
        assert!(matches!(
            items[8],
            Constraint::Atom(RawAtom::AllFlowThrough { .. })
        ));
    }

    #[test]
    fn parses_inherits_with_params_rename_rebase() {
        let src = r#"
Constraint GEMMish
( inherits ForNest(N=3) and
  inherits MatrixRead
    with {iterator[0]} as {col}
    and {iterator[2]} as {row}
    and {begin} as {begin} at {input1})
End
"#;
        let lib = parse_library(src).unwrap();
        let Constraint::And(items) = &lib.defs[0].body else {
            panic!()
        };
        let Constraint::Inherits { name, params, .. } = &items[0] else {
            panic!()
        };
        assert_eq!(name, "ForNest");
        assert_eq!(params[0].0, "N");
        let Constraint::Inherits { name, adapt, .. } = &items[1] else {
            panic!()
        };
        assert_eq!(name, "MatrixRead");
        assert_eq!(adapt.renames.len(), 3);
        assert_eq!(adapt.rebase.as_ref().unwrap().segs[0].name, "input1");
    }

    #[test]
    fn parses_forall_and_collect() {
        let src = r#"
Constraint Nest
( ( {loop[i+1].precursor} is branch instruction ) for all i = 0 .. N-2 and
  collect j 8 ( {read[j].value} is load instruction ))
End
"#;
        let lib = parse_library(src).unwrap();
        let Constraint::And(items) = &lib.defs[0].body else {
            panic!()
        };
        assert!(matches!(items[0], Constraint::ForAll { .. }));
        let Constraint::Collect { index, max, .. } = &items[1] else {
            panic!()
        };
        assert_eq!(index, "j");
        assert_eq!(*max, 8);
    }

    #[test]
    fn parses_killed_by_and_concat() {
        let src = r#"
Constraint K
( all flow to {out} is killed by {kernel.input} and
  {kernel.input} is concatenation of {reads} and {old} )
End
"#;
        let lib = parse_library(src).unwrap();
        let Constraint::And(items) = &lib.defs[0].body else {
            panic!()
        };
        assert!(matches!(
            items[0],
            Constraint::Atom(RawAtom::KilledBy { .. })
        ));
        assert!(matches!(items[1], Constraint::Atom(RawAtom::Concat { .. })));
    }

    #[test]
    fn rejects_mixed_and_or() {
        let src = "Constraint X ( {a} is add instruction and {b} is mul instruction or {c} is unused ) End";
        let err = parse_library(src).unwrap_err();
        assert!(err.message.contains("mixed"));
    }

    #[test]
    fn parses_varname_shapes() {
        let v = parse_varname("loop[N-1].iterator").unwrap();
        assert_eq!(v.segs.len(), 2);
        assert_eq!(v.segs[0].indices.len(), 1);
        assert!(parse_varname("").is_err());
        assert!(parse_varname("a[").is_err());
    }

    #[test]
    fn parses_if_and_forone() {
        let src = r#"
Constraint C
( if N = 1 then {a} is unused else {a} is an instruction endif and
  ( {x[k]} is load instruction ) for k = N-1 )
End
"#;
        let lib = parse_library(src).unwrap();
        let Constraint::And(items) = &lib.defs[0].body else {
            panic!()
        };
        assert!(matches!(items[0], Constraint::If { .. }));
        assert!(matches!(items[1], Constraint::ForOne { .. }));
    }
}
