//! IDL lexer.

/// IDL tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Bare word (keywords, idiom names, opcode mnemonics).
    Word(String),
    /// Integer literal.
    Num(i64),
    /// `{`-delimited variable reference content, raw (parsed further by
    /// the parser), e.g. `loop[N-1].iterator` or `a, b, c` for varlists.
    Braced(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `=`.
    Equals,
    /// `,`.
    Comma,
    /// `..`.
    DotDot,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// End of input.
    Eof,
}

/// A token with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: usize,
}

/// Lexes IDL source (with `#`- or `--`-style comments to end of line).
pub fn lex(src: &str) -> Result<Vec<Spanned>, (usize, String)> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '}' {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                if j >= chars.len() {
                    return Err((line, "unterminated variable brace".into()));
                }
                let content: String = chars[start..j].iter().collect();
                out.push(Spanned {
                    tok: Tok::Braced(content.trim().to_owned()),
                    line,
                });
                i = j + 1;
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    tok: Tok::Equals,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    tok: Tok::Minus,
                    line,
                });
                i += 1;
            }
            '.' if i + 1 < chars.len() && chars[i + 1] == '.' => {
                out.push(Spanned {
                    tok: Tok::DotDot,
                    line,
                });
                i += 2;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| (line, format!("bad number {text:?}")))?;
                out.push(Spanned {
                    tok: Tok::Num(n),
                    line,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Word(chars[start..i].iter().collect()),
                    line,
                });
            }
            other => return Err((line, format!("unexpected character {other:?}"))),
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_constraint_header_and_braces() {
        let toks = lex("Constraint X\n( {sum} is add instruction )\nEnd").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Word(w) if w == "Constraint"));
        assert!(matches!(kinds[2], Tok::LParen));
        assert!(matches!(kinds[3], Tok::Braced(b) if b == "sum"));
    }

    #[test]
    fn lexes_ranges_params_and_comments() {
        let toks = lex("# comment\nForNest(N=3) for all i = 0 .. N-1 -- trailing").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::DotDot));
        assert!(toks.iter().any(|t| t.tok == Tok::Equals));
        assert!(toks.iter().any(|t| matches!(&t.tok, Tok::Num(3))));
        assert!(!toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Word(w) if w == "comment" || w == "trailing")));
    }

    #[test]
    fn brace_content_is_raw() {
        let toks = lex("{loop[N-1].iterator}").unwrap();
        assert!(matches!(&toks[0].tok, Tok::Braced(b) if b == "loop[N-1].iterator"));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[2].line, 3);
    }
}
