//! IDL abstract syntax (pre-expansion).

use std::collections::HashMap;
use std::fmt;

/// A compile-time calculation: identifiers (template parameters or
/// quantifier indices) combined with `+`/`-` and integer literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Calc {
    /// Integer literal.
    Num(i64),
    /// Parameter or index reference.
    Name(String),
    /// Addition.
    Add(Box<Calc>, Box<Calc>),
    /// Subtraction.
    Sub(Box<Calc>, Box<Calc>),
}

impl Calc {
    /// Evaluates under `env`; unknown names are an error.
    pub fn eval(&self, env: &HashMap<String, i64>) -> Result<i64, String> {
        match self {
            Calc::Num(n) => Ok(*n),
            Calc::Name(s) => env
                .get(s)
                .copied()
                .ok_or_else(|| format!("unbound calculation name {s:?}")),
            Calc::Add(a, b) => Ok(a.eval(env)? + b.eval(env)?),
            Calc::Sub(a, b) => Ok(a.eval(env)? - b.eval(env)?),
        }
    }
}

/// One segment of a hierarchical variable name: `name` optionally followed
/// by index brackets, e.g. `loop[N-1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarSeg {
    /// Segment identifier.
    pub name: String,
    /// Bracketed index calculations.
    pub indices: Vec<Calc>,
}

/// A hierarchical variable name, e.g. `{inner.iter_begin}` or
/// `{read[i].value}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarName {
    /// The dot-separated segments.
    pub segs: Vec<VarSeg>,
}

impl VarName {
    /// A single-segment unindexed name.
    #[must_use]
    pub fn simple(name: &str) -> VarName {
        VarName {
            segs: vec![VarSeg {
                name: name.to_owned(),
                indices: Vec::new(),
            }],
        }
    }

    /// Flattens under `env`, evaluating all index calculations:
    /// `read[i].value` with `i = 2` becomes `"read[2].value"`.
    pub fn flatten(&self, env: &HashMap<String, i64>) -> Result<String, String> {
        let mut out = String::new();
        for (k, seg) in self.segs.iter().enumerate() {
            if k > 0 {
                out.push('.');
            }
            out.push_str(&seg.name);
            for idx in &seg.indices {
                out.push('[');
                out.push_str(&idx.eval(env)?.to_string());
                out.push(']');
            }
        }
        Ok(out)
    }
}

impl fmt::Display for VarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, seg) in self.segs.iter().enumerate() {
            if k > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", seg.name)?;
            for idx in &seg.indices {
                write!(f, "[{idx:?}]")?;
            }
        }
        Ok(())
    }
}

/// Raw (surface-syntax) atomic constraints; variables are unflattened.
#[derive(Debug, Clone, PartialEq)]
pub enum RawAtom {
    /// `{v} is integer/float/pointer [constant zero]`.
    TypeIs {
        /// Variable under test.
        var: VarName,
        /// `integer`, `float` or `pointer`.
        class: String,
        /// With the `constant zero` suffix.
        constant_zero: bool,
    },
    /// `{v} is unused`.
    Unused(VarName),
    /// `{v} is a constant`.
    IsConstant(VarName),
    /// `{v} is a compile time value` (constant or argument).
    IsPreexecution(VarName),
    /// `{v} is an argument`.
    IsArgument(VarName),
    /// `{v} is an instruction`.
    IsInstruction(VarName),
    /// `{v} is <opcode> instruction`.
    OpcodeIs {
        /// Variable under test.
        var: VarName,
        /// Opcode mnemonic (surface spelling, e.g. `branch`, `return`).
        opcode: String,
    },
    /// `{a} is [not] the same as {b}`.
    Same {
        /// Left side.
        a: VarName,
        /// Right side.
        b: VarName,
        /// `true` for the `not` form.
        negated: bool,
    },
    /// `{a} has data flow / control flow / dependence edge to {b}`.
    HasEdge {
        /// Edge source.
        from: VarName,
        /// Edge target.
        to: VarName,
        /// `data flow`, `control flow` or `dependence edge`.
        kind: String,
    },
    /// `{a} is first/second/third/fourth argument of {b}`.
    ArgumentOf {
        /// The operand.
        child: VarName,
        /// The instruction.
        parent: VarName,
        /// Zero-based operand position.
        pos: usize,
    },
    /// `{value} reaches phi node {phi} from {branch}`.
    ReachesPhi {
        /// Incoming value.
        value: VarName,
        /// The phi.
        phi: VarName,
        /// The branch terminating the incoming block.
        from: VarName,
    },
    /// `{a} [does not] [strictly] [control flow] [post] dominates {b}`.
    Dominates {
        /// The dominator candidate.
        a: VarName,
        /// The dominated candidate.
        b: VarName,
        /// `strictly` given.
        strict: bool,
        /// `post` given.
        post: bool,
        /// `does not` given.
        negated: bool,
    },
    /// `all control/data flow from {a} to {b} passes through {c}`.
    AllFlowThrough {
        /// Path source.
        from: VarName,
        /// Path target.
        to: VarName,
        /// Mandatory waypoint.
        through: VarName,
        /// `control` or `data`.
        kind: String,
    },
    /// `all flow to {sink} is killed by {killers}` — kernel purity.
    KilledBy {
        /// The kernel output value.
        sink: VarName,
        /// Families and/or scalars terminating the backward slice.
        killers: Vec<VarName>,
    },
    /// `{out} is concatenation of {in1} and {in2}` — family binding.
    Concat {
        /// Output family.
        out: VarName,
        /// First input family.
        in1: VarName,
        /// Second input family (or scalar, treated as 1-element family).
        in2: VarName,
    },
}

/// A rename/rebase suffix: `with {outer} as {inner} ... [at {prefix}]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Adaptation {
    /// Pairs (outer name, inner name): occurrences of the inner name in the
    /// adapted constraint are replaced with the outer name.
    pub renames: Vec<(VarName, VarName)>,
    /// Rebase prefix for all unmapped variables (the `at {p}` clause).
    pub rebase: Option<VarName>,
}

/// Constraint syntax tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Atomic constraint.
    Atom(RawAtom),
    /// `( c and c and ... )`.
    And(Vec<Constraint>),
    /// `( c or c or ... )`.
    Or(Vec<Constraint>),
    /// `inherits Name(P=calc, ...) [with ... as ...] [at ...]`.
    Inherits {
        /// Inherited definition name.
        name: String,
        /// Template-parameter bindings.
        params: Vec<(String, Calc)>,
        /// Rename/rebase clause.
        adapt: Adaptation,
    },
    /// Parenthesized group with an adaptation suffix.
    Adapted {
        /// Underlying constraint.
        inner: Box<Constraint>,
        /// Rename/rebase clause.
        adapt: Adaptation,
    },
    /// `c for all i = a .. b` (conjunction over the range).
    ForAll {
        /// Quantified constraint.
        body: Box<Constraint>,
        /// Index name.
        index: String,
        /// Inclusive lower bound.
        lo: Calc,
        /// Inclusive upper bound.
        hi: Calc,
    },
    /// `c for some i = a .. b` (disjunction over the range).
    ForSome {
        /// Quantified constraint.
        body: Box<Constraint>,
        /// Index name.
        index: String,
        /// Inclusive lower bound.
        lo: Calc,
        /// Inclusive upper bound.
        hi: Calc,
    },
    /// `c for i = calc` (binds one index value).
    ForOne {
        /// Constraint with the binding in scope.
        body: Box<Constraint>,
        /// Index name.
        index: String,
        /// Bound value.
        value: Calc,
    },
    /// `if a = b then c else d endif`, resolved at expansion time.
    If {
        /// Left calculation.
        a: Calc,
        /// Right calculation.
        b: Calc,
        /// Constraint when equal.
        then: Box<Constraint>,
        /// Constraint when different.
        other: Box<Constraint>,
    },
    /// `collect i N ( c )` — bind all solutions of `c` as families
    /// indexed by `i`.
    Collect {
        /// Index name substituted per solution.
        index: String,
        /// Maximum number of collected solutions.
        max: usize,
        /// The collected constraint.
        body: Box<Constraint>,
    },
}

/// A named `Constraint ... End` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Definition {
    /// Definition name.
    pub name: String,
    /// Body constraint.
    pub body: Constraint,
}

/// A parsed IDL program: an ordered set of definitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Library {
    /// Definitions in source order.
    pub defs: Vec<Definition>,
}

impl Library {
    /// Looks up a definition by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Definition> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Merges another library into this one (later definitions of the same
    /// name shadow earlier ones at lookup through `get`... definitions are
    /// appended; `get` returns the first match, so earlier wins).
    pub fn extend(&mut self, other: Library) {
        self.defs.extend(other.defs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calc_eval() {
        let mut env = HashMap::new();
        env.insert("N".to_owned(), 3);
        let c = Calc::Sub(Box::new(Calc::Name("N".into())), Box::new(Calc::Num(1)));
        assert_eq!(c.eval(&env).unwrap(), 2);
        assert!(Calc::Name("M".into()).eval(&env).is_err());
    }

    #[test]
    fn varname_flatten() {
        let mut env = HashMap::new();
        env.insert("i".to_owned(), 2);
        let v = VarName {
            segs: vec![
                VarSeg {
                    name: "read".into(),
                    indices: vec![Calc::Name("i".into())],
                },
                VarSeg {
                    name: "value".into(),
                    indices: vec![],
                },
            ],
        };
        assert_eq!(v.flatten(&env).unwrap(), "read[2].value");
        assert_eq!(VarName::simple("begin").flatten(&env).unwrap(), "begin");
    }
}
