//! Golden tests for the IDL parser.
//!
//! Every built-in idiom definition must parse to a stable AST: the pretty
//! debug form of each `Constraint ... End` block is snapshotted under
//! `tests/snapshots/`. Regenerate with `BLESS=1 cargo test -p idl`.
//! Malformed inputs must come back as `ParseError`s, never panics.

use idl::parse_library;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The bundled idiom library, included by path (the `idioms` crate depends
/// on `idl`, so the dependency cannot point the other way).
const BUILDING_BLOCKS: &str = include_str!("../../idioms/idl/building_blocks.idl");
const IDIOMS: &str = include_str!("../../idioms/idl/idioms.idl");

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.snap"))
}

fn check_snapshot(name: &str, got: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing snapshot {}; run with BLESS=1", path.display()));
    assert_eq!(
        got.trim(),
        want.trim(),
        "snapshot mismatch for {name}; rerun with BLESS=1 after reviewing"
    );
}

#[test]
fn every_builtin_definition_has_a_stable_ast() {
    let mut src = String::from(BUILDING_BLOCKS);
    src.push('\n');
    src.push_str(IDIOMS);
    let lib = parse_library(&src).expect("bundled library parses");
    assert!(!lib.defs.is_empty());
    for def in &lib.defs {
        let mut text = String::new();
        writeln!(text, "{:#?}", def).unwrap();
        check_snapshot(&def.name, &text);
    }
}

#[test]
fn builtin_definition_inventory_is_stable() {
    let mut src = String::from(BUILDING_BLOCKS);
    src.push('\n');
    src.push_str(IDIOMS);
    let lib = parse_library(&src).expect("bundled library parses");
    let names: Vec<&str> = lib.defs.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "For",
            "ForNest",
            "LoopAccumulator",
            "DotProductLoop",
            "OffsetExpr",
            "VectorRead",
            "OffsetRead",
            "MatrixRead",
            "MatrixStore",
            "ReadRange",
            "Reduction",
            "Histogram",
            "Stencil1D",
            "Stencil2D",
            "GEMM",
            "SPMV",
        ]
    );
}

#[test]
fn every_builtin_definition_compiles() {
    let mut src = String::from(BUILDING_BLOCKS);
    src.push('\n');
    src.push_str(IDIOMS);
    let lib = parse_library(&src).expect("bundled library parses");
    for def in &lib.defs {
        // Building blocks with free parameters (ForNest's N) only compile
        // through inheritance; everything else must compile standalone.
        if def.name == "ForNest" {
            continue;
        }
        idl::compile(&lib, &def.name)
            .unwrap_or_else(|e| panic!("{} fails to compile: {e}", def.name));
    }
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    let cases: &[(&str, &str)] = &[
        ("missing body", "Constraint X End"),
        ("missing end", "Constraint X ( {a} is add instruction )"),
        ("unterminated brace", "Constraint X ( {a is add instruction ) End"),
        (
            "mixed and/or",
            "Constraint X ( {a} is add instruction and {b} is mul instruction or {c} is unused ) End",
        ),
        ("unknown atom keyword", "Constraint X ( {a} is banana instruction ) End"),
        ("unknown opcode", "Constraint X ( {a} is frobnicate instruction ) End"),
        ("empty variable", "Constraint X ( {} is add instruction ) End"),
        ("bad index syntax", "Constraint X ( {a[} is add instruction ) End"),
        ("dangling is", "Constraint X ( {a} is ) End"),
        ("bad adaptation", "Constraint X ( inherits Y with {a} {b} ) End"),
        ("for-all without range", "Constraint X ( ( {a} is unused ) for all i = ) End"),
        ("stray token", "Constraint X ( {a} is add instruction ) End @"),
        ("number overflow", "Constraint X ( inherits Y(N=99999999999999999999999) ) End"),
        (
            "bad varlist",
            "Constraint X ( all flow to {out} is killed by {,} ) End",
        ),
        ("lone parenthesis", "Constraint X ( ( {a} is unused ) End"),
    ];
    for (what, src) in cases {
        let res = std::panic::catch_unwind(|| parse_library(src));
        match res {
            Ok(Ok(_)) => panic!("{what}: parsed successfully but should be rejected"),
            Ok(Err(_)) => {}
            Err(_) => panic!("{what}: parser panicked instead of returning an error"),
        }
    }
}
