//! Per-module analysis: materialize one job, push it through the full
//! Figure-1 pipeline ([`idiomatch_core::run_pipeline`]) and condense the
//! outcome into one [`ModuleRecord`].
//!
//! This function runs inside the driver's isolation sandbox: it is
//! *allowed* to panic or stall — the sandbox converts a panic into a
//! `Crash` record and a wall-clock overrun into a `Timeout` record. Two
//! fixture directives exist purely so the isolation machinery itself is
//! testable (the same role `progen`'s `--canary` plays for the
//! differential validator):
//!
//! * `// corpus: panic` — panics before compilation;
//! * `// corpus: hang` — sleeps far past any sane per-module budget.
//!
//! Both are inert outside directory corpora you author yourself.
//!
//! Progen modules (and directory modules carrying `// progen:expect` /
//! `// progen:forbid` directives) know their planted idioms by
//! construction, so the record additionally carries recall
//! (`planted`/`planted_hit`) and near-miss `false_positives` counts;
//! plain `.c` modules without the progen entry point fall back to
//! detection-only (no transform, `validated: false`).

use crate::record::{ModuleRecord, Taxonomy};
use crate::source::{Job, Payload};
use idioms::{DetectOptions, IdiomInstance, IdiomKind};
use progen::{generate, parse_case, setup, Spec, FUZZ_SEEDS};

/// Fixture directive: panic inside the sandbox.
pub const PANIC_DIRECTIVE: &str = "// corpus: panic";
/// Fixture directive: stall far past the per-module budget.
pub const HANG_DIRECTIVE: &str = "// corpus: hang";

/// Analyzes one job to a record. May panic or stall (see module docs);
/// the caller's sandbox contains both. The record's `shard` and
/// `latency_ms` are filled in by the driver.
pub(crate) fn analyze_job(job: &Job) -> ModuleRecord {
    match &job.payload {
        Payload::Progen(seed) => {
            let spec = generate(*seed);
            run_full(&job.id, &spec.render(), &spec.expected(), &spec.forbidden())
        }
        Payload::File(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    return ModuleRecord::empty(
                        &job.id,
                        0,
                        Taxonomy::ParseError,
                        format!("read failed: {e}"),
                    )
                }
            };
            for line in text.lines() {
                let l = line.trim();
                assert!(
                    l != PANIC_DIRECTIVE,
                    "injected panic (corpus fixture directive)"
                );
                if l == HANG_DIRECTIVE {
                    // 60 s in small slices: long enough to overrun any
                    // realistic budget, bounded so an abandoned sandbox
                    // thread still winds down before machine-scale runs
                    // finish.
                    for _ in 0..1200 {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                    return ModuleRecord::empty(
                        &job.id,
                        0,
                        Taxonomy::Ok,
                        "hang fixture outlived its 60s stall".into(),
                    );
                }
            }
            // Expectation directives are optional for directory corpora.
            let (expects, forbids) = match parse_case(&text) {
                Ok(case) => (case.expects, case.forbids),
                Err(_) => (Vec::new(), Vec::new()),
            };
            let module = match minicc::compile(&text, &job.id) {
                Ok(m) => m,
                Err(e) => {
                    return ModuleRecord::empty(&job.id, 0, Taxonomy::ParseError, e.to_string())
                }
            };
            if module.function(Spec::ENTRY).is_some() {
                run_full(&job.id, &text, &expects, &forbids)
            } else {
                detect_only(&job.id, &module, &expects, &forbids)
            }
        }
    }
}

/// Full pipeline: compile → detect → replace every instance → multi-seed
/// differential validation. Requires the progen entry point and input
/// shape ([`Spec::ENTRY`] + [`setup`]).
fn run_full(
    id: &str,
    source: &str,
    expects: &[(String, IdiomKind)],
    forbids: &[(String, IdiomKind)],
) -> ModuleRecord {
    let out = match idiomatch_core::run_pipeline(
        source,
        id,
        Spec::ENTRY,
        setup,
        &FUZZ_SEEDS,
        &DetectOptions::default(),
    ) {
        Ok(o) => o,
        Err(e) => return ModuleRecord::empty(id, 0, Taxonomy::ParseError, e.to_string()),
    };
    let mut rec = ModuleRecord::empty(id, 0, Taxonomy::Ok, String::new());
    fill_counts(&mut rec, &out.instances, out.solve_steps, expects, forbids);
    rec.pruned_pairs = out.pruned_pairs;
    rec.compile_ms = out.timings.compile_s * 1e3;
    rec.exec_ms = out.timings.validate_s * 1e3;
    rec.replaced = out.xform.replaced() as u64;
    // Legality evidence census: every committed replacement carries a
    // verdict (rejections abort the rewrite, so only Proven /
    // AssumedRestrict appear here) and a parallel-safety certificate.
    for o in &out.xform.outcomes {
        if let xform::Outcome::Replaced(r) = &o.outcome {
            match r.verdict.kind {
                analysis::VerdictKind::Proven => rec.legality_proven += 1,
                analysis::VerdictKind::AssumedRestrict => rec.legality_assumed += 1,
                analysis::VerdictKind::Rejected => {
                    unreachable!("a rejected verdict never commits a replacement")
                }
            }
            *rec.certificates
                .entry(r.certificate.safety.as_str().to_owned())
                .or_default() += 1;
        }
    }
    if !out.verify_errors.is_empty() {
        rec.outcome = Taxonomy::ValidationDivergence;
        rec.detail = format!(
            "transformed module failed the IR verifier: {}",
            out.verify_errors.join("; ")
        );
    } else if let Some(f) = out.incomplete_functions.first() {
        rec.outcome = Taxonomy::Truncated;
        rec.detail = format!("solver budget exhausted in {f}");
    } else {
        match out.validation {
            Ok(_) => rec.validated = true,
            Err(e) => {
                rec.outcome = Taxonomy::ValidationDivergence;
                rec.detail = e.to_string();
            }
        }
    }
    rec
}

/// Detection-only fallback for plain `.c` modules without the progen
/// entry point: instance counts and solver steps are recorded, nothing
/// is transformed, and `validated` stays `false`.
fn detect_only(
    id: &str,
    module: &ssair::Module,
    expects: &[(String, IdiomKind)],
    forbids: &[(String, IdiomKind)],
) -> ModuleRecord {
    let fs: Vec<&ssair::Function> = module.functions.iter().collect();
    let detections = idioms::detect_functions(&fs, &DetectOptions::default());
    let incomplete = fs
        .iter()
        .zip(&detections)
        .find(|(_, d)| !d.complete)
        .map(|(f, _)| f.name.clone());
    let solve_steps: u64 = detections.iter().map(|d| d.steps).sum();
    let pruned_pairs: u64 = detections.iter().map(|d| d.pruned_pairs).sum();
    let instances: Vec<IdiomInstance> = detections.into_iter().flat_map(|d| d.instances).collect();
    let mut rec = ModuleRecord::empty(id, 0, Taxonomy::Ok, String::new());
    fill_counts(&mut rec, &instances, solve_steps, expects, forbids);
    rec.pruned_pairs = pruned_pairs;
    if let Some(f) = incomplete {
        rec.outcome = Taxonomy::Truncated;
        rec.detail = format!("solver budget exhausted in {f}");
    }
    rec
}

/// Instance census + expectation bookkeeping shared by both paths.
fn fill_counts(
    rec: &mut ModuleRecord,
    instances: &[IdiomInstance],
    solve_steps: u64,
    expects: &[(String, IdiomKind)],
    forbids: &[(String, IdiomKind)],
) {
    for inst in instances {
        *rec.instances
            .entry(inst.kind.constraint_name().to_owned())
            .or_default() += 1;
    }
    rec.detected = instances.len() as u64;
    rec.solve_steps = solve_steps;
    let found = |function: &String, kind: IdiomKind| {
        instances
            .iter()
            .any(|i| &i.function == function && i.kind == kind)
    };
    rec.planted = expects.len() as u64;
    rec.planted_hit = expects.iter().filter(|(f, k)| found(f, *k)).count() as u64;
    rec.false_positives = forbids.iter().filter(|(f, k)| found(f, *k)).count() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;

    /// A progen module round-trips to a fully-validated `Ok` record with
    /// perfect recall by construction.
    #[test]
    fn progen_job_yields_validated_record_with_full_recall() {
        let source = Source::progen(1, 7);
        let rec = analyze_job(&source.job(0));
        assert_eq!(rec.module, "progen-7");
        assert_eq!(rec.outcome, Taxonomy::Ok, "detail: {}", rec.detail);
        assert!(rec.validated);
        let spec = generate(7);
        assert_eq!(rec.planted, spec.expected().len() as u64);
        assert_eq!(rec.planted_hit, rec.planted, "full recall");
        assert_eq!(rec.false_positives, 0);
        assert!(rec.detected >= rec.planted);
        assert_eq!(
            rec.instances.values().sum::<u64>(),
            rec.detected,
            "census sums to the detected total"
        );
        assert_eq!(
            rec.legality_proven + rec.legality_assumed,
            rec.replaced,
            "every committed replacement carries a verdict"
        );
        assert_eq!(
            rec.certificates.values().sum::<u64>(),
            rec.replaced,
            "every committed replacement carries a certificate"
        );
        assert!(rec.solve_steps > 0);
    }

    /// A plain `.c` file without the progen entry falls back to
    /// detection-only; a broken file maps to `ParseError`.
    #[test]
    fn dir_jobs_fall_back_to_detect_only_and_classify_parse_errors() {
        let dir = std::env::temp_dir().join(format!("corpus_analyze_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("red.c"),
            "double s(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) a += x[i]; return a; }",
        )
        .unwrap();
        std::fs::write(dir.join("broken.c"), "double s(double* x { oops").unwrap();
        let source = Source::dir(&dir).unwrap();
        let broken = analyze_job(&source.job(0));
        assert_eq!(broken.outcome, Taxonomy::ParseError);
        assert!(!broken.detail.is_empty());
        let red = analyze_job(&source.job(1));
        assert_eq!(red.outcome, Taxonomy::Ok);
        assert!(!red.validated, "detect-only path never validates");
        assert_eq!(red.replaced, 0);
        assert_eq!(red.instances.get("Reduction"), Some(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
