//! The corpus source layer: where the modules of a batch run come from.
//!
//! A [`Source`] is an *indexable description* of a corpus, not the corpus
//! itself — a 10,000-program progen corpus is never materialized. Workers
//! call [`Source::job`] with an ordinal and materialize that one module
//! (generate + render a progen spec, or read one `.c` file) inside their
//! own isolation sandbox, so a module that is pathological to even
//! *build* still yields a taxonomy record instead of sinking the driver.
//!
//! The [`Source::descriptor`] string identifies the corpus for
//! checkpointing: a resume against a different corpus (count, seed
//! range, or changed directory contents) is rejected instead of silently
//! merging records from two different runs.

use crate::CorpusError;
use std::path::PathBuf;

/// A corpus of modules to analyze.
#[derive(Debug, Clone)]
pub enum Source {
    /// A deterministic seeded progen corpus: `count` generated programs
    /// with seeds `seed_start..seed_start + count`, materialized lazily.
    Progen {
        /// Number of programs.
        count: usize,
        /// First seed.
        seed_start: u64,
    },
    /// Every `*.c` file directly under `root`, in sorted name order.
    Dir {
        /// The scanned directory.
        root: PathBuf,
        /// Sorted file names (names only; contents are read per job, in
        /// the worker's sandbox).
        files: Vec<String>,
    },
}

/// One unit of work: the `ordinal`-th module of the corpus.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the corpus (drives shard assignment).
    pub ordinal: usize,
    /// Stable module id (`progen-<seed>` or the file name).
    pub id: String,
    /// How to materialize the module.
    pub(crate) payload: Payload,
}

#[derive(Debug, Clone)]
pub(crate) enum Payload {
    /// Generate `progen::generate(seed)` and render it.
    Progen(u64),
    /// Read this file.
    File(PathBuf),
}

impl Source {
    /// A seeded progen corpus.
    #[must_use]
    pub fn progen(count: usize, seed_start: u64) -> Source {
        Source::Progen { count, seed_start }
    }

    /// Scans `root` for `*.c` files (non-recursive, sorted by name).
    ///
    /// # Errors
    /// IO failure, or an empty scan — a corpus of zero modules is almost
    /// certainly a mistyped path.
    pub fn dir(root: impl Into<PathBuf>) -> Result<Source, CorpusError> {
        let root = root.into();
        let mut files: Vec<String> = std::fs::read_dir(&root)
            .map_err(|e| CorpusError::Source(format!("cannot scan {}: {e}", root.display())))?
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "c"))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(CorpusError::Source(format!(
                "no .c files under {}",
                root.display()
            )));
        }
        Ok(Source::Dir { root, files })
    }

    /// Number of modules in the corpus.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Source::Progen { count, .. } => *count,
            Source::Dir { files, .. } => files.len(),
        }
    }

    /// `true` for an empty corpus.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The checkpoint identity of this corpus. Two runs may share a
    /// checkpoint only when their descriptors match exactly; for
    /// directory corpora the sorted file-name list is fingerprinted so
    /// adding/removing/renaming files invalidates old checkpoints.
    #[must_use]
    pub fn descriptor(&self) -> String {
        match self {
            Source::Progen { count, seed_start } => {
                format!("progen:count={count}:seed_start={seed_start}")
            }
            Source::Dir { root, files } => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for name in files {
                    for b in name.bytes().chain([0]) {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                }
                format!("dir:{}:files={}:fnv={h:016x}", root.display(), files.len())
            }
        }
    }

    /// The `ordinal`-th job.
    ///
    /// # Panics
    /// Panics when `ordinal` is out of range — shard bounds are computed
    /// from [`Source::len`], so this is driver-internal misuse.
    #[must_use]
    pub fn job(&self, ordinal: usize) -> Job {
        assert!(ordinal < self.len(), "job {ordinal} out of range");
        match self {
            Source::Progen { seed_start, .. } => {
                let seed = seed_start + ordinal as u64;
                Job {
                    ordinal,
                    id: format!("progen-{seed}"),
                    payload: Payload::Progen(seed),
                }
            }
            Source::Dir { root, files } => Job {
                ordinal,
                id: files[ordinal].clone(),
                payload: Payload::File(root.join(&files[ordinal])),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progen_jobs_are_seeded_in_order() {
        let s = Source::progen(3, 100);
        assert_eq!(s.len(), 3);
        assert_eq!(s.job(0).id, "progen-100");
        assert_eq!(s.job(2).id, "progen-102");
        assert_eq!(s.descriptor(), "progen:count=3:seed_start=100");
    }

    #[test]
    fn dir_source_is_sorted_and_fingerprinted() {
        let dir = std::env::temp_dir().join(format!("corpus_src_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.c"), "int b;").unwrap();
        std::fs::write(dir.join("a.c"), "int a;").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let s = Source::dir(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.job(0).id, "a.c");
        assert_eq!(s.job(1).id, "b.c");
        let d1 = s.descriptor();
        std::fs::write(dir.join("c.c"), "int c;").unwrap();
        let d2 = Source::dir(&dir).unwrap().descriptor();
        assert_ne!(d1, d2, "changed contents must change the descriptor");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!("corpus_src_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Source::dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
