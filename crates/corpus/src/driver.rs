//! The batch driver: a sharded work queue over a [`Source`], a worker
//! pool with per-module crash/timeout isolation, an in-order JSONL
//! writer, and a resumable checkpoint.
//!
//! ## Architecture
//!
//! The corpus is split into fixed-size **shards** of consecutive module
//! ordinals. Workers claim shard indices from one atomic counter,
//! analyze each module of the shard inside an isolation sandbox, and
//! send the shard's rendered records to a dedicated **writer** thread.
//! The writer flushes shards strictly in shard order (out-of-order
//! completions wait in a small reorder buffer), so the records file is
//! byte-deterministic for a given corpus and configuration regardless of
//! worker count, interleaving — or how many times the run was
//! interrupted and resumed.
//!
//! After every flushed shard the writer atomically replaces the
//! **checkpoint** file (`next_shard` + the records file's byte length).
//! A resumed run validates the checkpoint against the corpus descriptor,
//! truncates any partial tail the previous process wrote beyond the last
//! checkpoint, and continues with the next unflushed shard — no module
//! is ever analyzed twice *and recorded twice*: work from shards past
//! the final checkpoint of a killed run is simply redone.
//!
//! ## Isolation
//!
//! Each module is analyzed on a fresh sandbox thread. A panic is caught
//! (`catch_unwind`) and becomes a `Crash` record; the default panic
//! hook's stderr spew is suppressed for sandbox threads only. A module
//! that exceeds the wall-clock budget yields a `Timeout` record and its
//! sandbox thread is **abandoned** (Rust threads cannot be killed; the
//! runaway finishes in the background and its result is discarded) —
//! the worker immediately moves on, so one pathological module costs one
//! timeout, not the batch.
//!
//! The compiled idiom library and skeleton constraints are `'static`
//! (built once behind `idioms::library()`); [`run`] forces them before
//! spawning workers so every sandbox shares the same read-only compiled
//! library instead of racing to build it.

use crate::analyze::analyze_job;
use crate::record::{ModuleRecord, Parser, Taxonomy};
use crate::source::{Job, Source};
use crate::CorpusError;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Name of the per-module sandbox threads (the panic-hook silencer keys
/// off it).
const SANDBOX_THREAD: &str = "corpus-sandbox";

/// Configuration of one batch run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The corpus to analyze.
    pub source: Source,
    /// Worker threads (min 1; sandbox threads come on top).
    pub workers: usize,
    /// Modules per shard (the checkpoint granularity).
    pub shard_size: usize,
    /// Per-module wall-clock budget.
    pub timeout: Duration,
    /// The append-only JSONL records file.
    pub records_path: PathBuf,
    /// The checkpoint file (atomically replaced per flushed shard).
    pub checkpoint_path: PathBuf,
    /// `true`: continue from an existing checkpoint when present and
    /// compatible. `false`: always start fresh (truncates both files).
    pub resume: bool,
    /// `false` writes every record's `latency_ms` as `0.000`, making the
    /// records file byte-deterministic across runs (what the
    /// checkpoint/resume equivalence test relies on).
    pub record_latency: bool,
    /// Stop after flushing this many shards *in this call* — the test
    /// hook that simulates a mid-corpus kill with a clean checkpoint.
    pub max_shards: Option<usize>,
    /// Emit progress lines to stderr.
    pub progress: bool,
}

impl RunConfig {
    /// A config with the default worker count (available parallelism),
    /// shard size 32 and a 10 s per-module budget, with the records and
    /// checkpoint files placed under `state_dir`.
    #[must_use]
    pub fn new(source: Source, state_dir: impl AsRef<Path>) -> RunConfig {
        let dir = state_dir.as_ref();
        RunConfig {
            source,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            shard_size: 32,
            timeout: Duration::from_secs(10),
            records_path: dir.join("records.jsonl"),
            checkpoint_path: dir.join("checkpoint.json"),
            resume: false,
            record_latency: true,
            max_shards: None,
            progress: false,
        }
    }
}

/// What one [`run`] call did and what is on disk afterwards.
#[derive(Debug)]
pub struct RunSummary {
    /// Every record in the (merged) records file, parsed back from disk
    /// — totals always reflect persisted state, not in-memory state.
    pub records: Vec<ModuleRecord>,
    /// Total shards of the corpus.
    pub total_shards: usize,
    /// Shards on disk after this call (`== total_shards` iff complete).
    pub flushed_shards: usize,
    /// Modules analyzed by *this* call.
    pub analyzed: usize,
    /// Records inherited from the checkpoint (analyzed by earlier runs).
    pub resumed_records: usize,
    /// Wall-clock seconds of this call.
    pub wall_s: f64,
    /// `true` when every shard of the corpus is on disk.
    pub complete: bool,
    /// Sandbox threads abandoned by *this* call after blowing their
    /// wall-clock budget. Each one may still be burning a core in the
    /// background; a leaking corpus run shows up here (and as a stable
    /// field in `BENCH_corpus.json`) instead of as mysterious slowness.
    pub abandoned_threads: usize,
}

impl RunSummary {
    /// Taxonomy census over all records (every variant present, zeros
    /// included).
    #[must_use]
    pub fn taxonomy(&self) -> BTreeMap<Taxonomy, u64> {
        let mut out: BTreeMap<Taxonomy, u64> = Taxonomy::ALL.into_iter().map(|t| (t, 0)).collect();
        for r in &self.records {
            *out.get_mut(&r.outcome).expect("all variants present") += 1;
        }
        out
    }
}

/// The checkpoint file: identifies the corpus and the exact prefix of
/// the records file that is complete.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Checkpoint {
    corpus: String,
    total_shards: u64,
    next_shard: u64,
    records_bytes: u64,
}

impl Checkpoint {
    fn render(&self) -> String {
        format!(
            "{{\"version\":1,\"corpus\":{:?},\"total_shards\":{},\"next_shard\":{},\"records_bytes\":{}}}\n",
            self.corpus, self.total_shards, self.next_shard, self.records_bytes
        )
    }

    fn parse(text: &str) -> Result<Checkpoint, String> {
        let mut cp = Checkpoint {
            corpus: String::new(),
            total_shards: 0,
            next_shard: 0,
            records_bytes: 0,
        };
        let mut p = Parser::new(text.trim_end());
        p.expect('{')?;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "version" => {
                    let v = p.u64()?;
                    if v != 1 {
                        return Err(format!("unsupported checkpoint version {v}"));
                    }
                }
                "corpus" => cp.corpus = p.string()?,
                "total_shards" => cp.total_shards = p.u64()?,
                "next_shard" => cp.next_shard = p.u64()?,
                "records_bytes" => cp.records_bytes = p.u64()?,
                other => return Err(format!("unknown checkpoint field {other:?}")),
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        p.end()?;
        Ok(cp)
    }
}

/// Atomically replaces `path` with `content` (write temp + rename).
fn replace_file(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// Suppresses the default panic hook for sandbox threads only: a
/// contained module crash is a *record*, not a stderr backtrace. All
/// other threads keep the previously-installed behaviour.
fn install_panic_silencer() {
    static SILENCER: std::sync::Once = std::sync::Once::new();
    SILENCER.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() == Some(SANDBOX_THREAD) {
                return;
            }
            prev(info);
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

/// Analyzes one job inside the isolation sandbox: a fresh thread, panic
/// containment, and a wall-clock budget. Always returns a record, plus
/// the abandoned thread's handle when the budget expired (the caller
/// counts the leak; joining it would re-inherit the hang).
fn analyze_isolated(
    job: Job,
    shard: u64,
    timeout: Duration,
    record_latency: bool,
) -> (ModuleRecord, Option<std::thread::JoinHandle<()>>) {
    let id = job.id.clone();
    let (tx, rx) = mpsc::channel();
    let t0 = Instant::now();
    let spawned = std::thread::Builder::new()
        .name(SANDBOX_THREAD.into())
        .spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(|| analyze_job(&job)));
            // The receiver is gone when the budget already expired; the
            // abandoned result is intentionally discarded.
            let _ = tx.send(out);
        });
    let mut abandoned = None;
    let mut rec = match spawned {
        Err(e) => ModuleRecord::empty(
            &id,
            shard,
            Taxonomy::Crash,
            format!("sandbox spawn failed: {e}"),
        ),
        Ok(handle) => match rx.recv_timeout(timeout) {
            Ok(out) => {
                // The sandbox already sent its result: reap the thread so
                // completed analyses never accumulate detached threads.
                let _ = handle.join();
                match out {
                    Ok(mut rec) => {
                        rec.shard = shard;
                        rec
                    }
                    Err(payload) => {
                        ModuleRecord::empty(&id, shard, Taxonomy::Crash, panic_message(&*payload))
                    }
                }
            }
            Err(_) => {
                abandoned = Some(handle);
                ModuleRecord::empty(
                    &id,
                    shard,
                    Taxonomy::Timeout,
                    format!(
                        "exceeded the {} ms budget; sandbox thread abandoned",
                        timeout.as_millis()
                    ),
                )
            }
        },
    };
    rec.latency_ms = if record_latency {
        t0.elapsed().as_secs_f64() * 1e3
    } else {
        0.0
    };
    if !record_latency {
        // The per-stage splits are wall-clock too; byte-deterministic
        // runs zero them alongside `latency_ms`.
        rec.compile_ms = 0.0;
        rec.exec_ms = 0.0;
    }
    (rec, abandoned)
}

/// Runs (or resumes) a batch analysis over the configured corpus.
///
/// # Errors
/// IO failures, an incompatible or corrupt checkpoint, or a records file
/// that does not parse back (which would make every reported total a
/// lie).
pub fn run(cfg: &RunConfig) -> Result<RunSummary, CorpusError> {
    let t0 = Instant::now();
    let n = cfg.source.len();
    let shard_size = cfg.shard_size.max(1);
    let total_shards = n.div_ceil(shard_size);
    let descriptor = format!("{}|shard_size={shard_size}", cfg.source.descriptor());
    install_panic_silencer();
    // Force the compile-once idiom library before any worker races for
    // it: every sandbox then shares the same read-only `'static` data.
    let _ = idioms::library();
    let _ = idioms::skeleton_constraints();

    for path in [&cfg.records_path, &cfg.checkpoint_path] {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
    }

    // Establish the starting point: a validated checkpoint, or fresh.
    let start_shard = if cfg.resume && cfg.checkpoint_path.is_file() {
        let cp = Checkpoint::parse(&std::fs::read_to_string(&cfg.checkpoint_path)?)
            .map_err(CorpusError::Checkpoint)?;
        if cp.corpus != descriptor {
            return Err(CorpusError::Checkpoint(format!(
                "checkpoint belongs to corpus {:?}, this run is {descriptor:?}; \
                 start fresh or point at matching state files",
                cp.corpus
            )));
        }
        if cp.total_shards != total_shards as u64 || cp.next_shard > cp.total_shards {
            return Err(CorpusError::Checkpoint(format!(
                "checkpoint shard accounting is inconsistent: {cp:?}"
            )));
        }
        let len = std::fs::metadata(&cfg.records_path)?.len();
        if len < cp.records_bytes {
            return Err(CorpusError::Checkpoint(format!(
                "records file is shorter ({len} B) than the checkpoint claims ({} B)",
                cp.records_bytes
            )));
        }
        if len > cp.records_bytes {
            // A partial tail from an interrupted flush: drop it; those
            // shards will be re-analyzed.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&cfg.records_path)?;
            f.set_len(cp.records_bytes)?;
        }
        cp.next_shard as usize
    } else {
        std::fs::write(&cfg.records_path, "")?;
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
        0
    };
    let resume_bytes = std::fs::metadata(&cfg.records_path)?.len();

    let end_shard = cfg
        .max_shards
        .map_or(total_shards, |k| total_shards.min(start_shard + k));
    let next = AtomicUsize::new(start_shard);
    let analyzed = AtomicUsize::new(0);
    let abandoned = AtomicUsize::new(0);
    let workers = cfg.workers.max(1);

    let flushed_shards = std::thread::scope(|s| -> Result<usize, CorpusError> {
        let (tx, rx) = mpsc::channel::<(usize, Vec<String>)>();
        let descriptor = &descriptor;
        let writer = s.spawn(move || -> Result<usize, CorpusError> {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&cfg.records_path)?;
            let mut bytes = resume_bytes;
            let mut pending: BTreeMap<usize, Vec<String>> = BTreeMap::new();
            let mut next_write = start_shard;
            while let Ok((shard, lines)) = rx.recv() {
                pending.insert(shard, lines);
                while let Some(lines) = pending.remove(&next_write) {
                    let mut buf = lines.join("\n");
                    buf.push('\n');
                    file.write_all(buf.as_bytes())?;
                    file.flush()?;
                    bytes += buf.len() as u64;
                    next_write += 1;
                    let cp = Checkpoint {
                        corpus: descriptor.clone(),
                        total_shards: total_shards as u64,
                        next_shard: next_write as u64,
                        records_bytes: bytes,
                    };
                    replace_file(&cfg.checkpoint_path, &cp.render())?;
                    if cfg.progress && (next_write % 25 == 0 || next_write == end_shard) {
                        eprintln!(
                            "corpus: {next_write}/{total_shards} shards ({} modules, {:.1}s)",
                            (next_write * shard_size).min(n),
                            t0.elapsed().as_secs_f64()
                        );
                    }
                }
            }
            Ok(next_write)
        });
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, analyzed, abandoned) = (&next, &analyzed, &abandoned);
            s.spawn(move || loop {
                let shard = next.fetch_add(1, Ordering::Relaxed);
                if shard >= end_shard {
                    break;
                }
                let lo = shard * shard_size;
                let hi = (lo + shard_size).min(n);
                let mut lines = Vec::with_capacity(hi - lo);
                for ordinal in lo..hi {
                    let job = cfg.source.job(ordinal);
                    let (rec, leaked) =
                        analyze_isolated(job, shard as u64, cfg.timeout, cfg.record_latency);
                    if leaked.is_some() {
                        // Dropping the handle detaches the hung thread;
                        // the count is what makes the leak observable.
                        abandoned.fetch_add(1, Ordering::Relaxed);
                    }
                    lines.push(rec.to_jsonl());
                }
                analyzed.fetch_add(hi - lo, Ordering::Relaxed);
                if tx.send((shard, lines)).is_err() {
                    break; // writer failed; stop producing
                }
            });
        }
        drop(tx);
        writer.join().expect("writer thread does not panic")
    })?;

    // Report from what is actually persisted.
    let text = std::fs::read_to_string(&cfg.records_path)?;
    let mut records = Vec::new();
    for (k, line) in text.lines().enumerate() {
        records.push(
            ModuleRecord::parse_jsonl(line)
                .map_err(|e| CorpusError::Records(format!("records line {}: {e}", k + 1)))?,
        );
    }
    let complete = flushed_shards == total_shards;
    if complete {
        // A finished corpus needs no resume point; a stale checkpoint
        // would only confuse the next run over these state files.
        let _ = std::fs::remove_file(&cfg.checkpoint_path);
    }
    let analyzed = analyzed.load(Ordering::Relaxed);
    Ok(RunSummary {
        resumed_records: records.len() - analyzed,
        records,
        total_shards,
        flushed_shards,
        analyzed,
        wall_s: t0.elapsed().as_secs_f64(),
        complete,
        abandoned_threads: abandoned.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_round_trips_and_rejects_garbage() {
        let cp = Checkpoint {
            corpus: "progen:count=8:seed_start=0|shard_size=4".into(),
            total_shards: 2,
            next_shard: 1,
            records_bytes: 512,
        };
        assert_eq!(Checkpoint::parse(&cp.render()).unwrap(), cp);
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("{\"version\":2}").is_err());
        let truncated = cp.render();
        assert!(Checkpoint::parse(&truncated[..truncated.len() - 4]).is_err());
    }

    /// The writer flushes shards in order even when completions arrive
    /// out of order, so the records file is deterministic under any
    /// worker interleaving. Exercised end-to-end with several workers on
    /// a small real corpus.
    #[test]
    fn records_file_is_identical_across_worker_counts() {
        let base = std::env::temp_dir().join(format!("corpus_driver_det_{}", std::process::id()));
        let mut outputs = Vec::new();
        for workers in [1, 3] {
            let dir = base.join(format!("w{workers}"));
            let mut cfg = RunConfig::new(Source::progen(6, 40), &dir);
            cfg.workers = workers;
            cfg.shard_size = 2;
            cfg.record_latency = false;
            let summary = run(&cfg).expect("run succeeds");
            assert!(summary.complete);
            assert_eq!(summary.records.len(), 6);
            outputs.push(std::fs::read_to_string(&cfg.records_path).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "byte-identical across pools");
        let _ = std::fs::remove_dir_all(&base);
    }

    /// A run that blows every budget reports exactly how many sandbox
    /// threads it abandoned — a clean run reports zero (checked by the
    /// worker-count test above via `BENCH_corpus.json`'s stable field).
    #[test]
    fn abandoned_sandbox_threads_are_counted() {
        let dir = std::env::temp_dir().join(format!("corpus_driver_leak_{}", std::process::id()));
        let mut cfg = RunConfig::new(Source::progen(3, 900), &dir);
        cfg.timeout = Duration::from_nanos(1);
        cfg.record_latency = false;
        let summary = run(&cfg).expect("run succeeds");
        assert!(summary.complete);
        assert_eq!(summary.records.len(), 3);
        assert!(summary
            .records
            .iter()
            .all(|r| r.outcome == Taxonomy::Timeout));
        assert_eq!(summary.abandoned_threads, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
