//! Per-module result records and their JSON-lines wire format.
//!
//! Every analyzed module yields exactly one [`ModuleRecord`], appended as
//! one line of JSON to the run's records file. The line format is
//! hand-rolled (the workspace has no networked dependencies; the vendored
//! `serde` is a marker stand-in) but fully round-trippable: the driver
//! parses the merged records file back at the end of a run — and after a
//! checkpoint resume — so totals, percentiles and the failure taxonomy in
//! `BENCH_corpus.json` always come from what is actually on disk.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The failure taxonomy of the batch service: why a module did not make
/// it through the full detect → replace → validate pipeline. The wire
/// names are pinned by a round-trip test — a checkpointed run written by
/// one build must be resumable by the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Taxonomy {
    /// Full pipeline completed (detection complete, every transform
    /// committed or cleanly skipped, differential validation passed or
    /// was not applicable).
    Ok,
    /// The module failed to read or compile through the frontend.
    ParseError,
    /// Detection hit a solver budget; instance counts are a lower bound.
    Truncated,
    /// The transformed module diverged from the original under some
    /// input seed (a real miscompile — the record's detail names it).
    ValidationDivergence,
    /// Analysis exceeded the per-module wall-clock budget and was
    /// abandoned.
    Timeout,
    /// Analysis panicked; the worker contained it and moved on.
    Crash,
}

impl Taxonomy {
    /// Every variant, in record order (the `BENCH_corpus.json` taxonomy
    /// object lists all of them, zeros included).
    pub const ALL: [Taxonomy; 6] = [
        Taxonomy::Ok,
        Taxonomy::ParseError,
        Taxonomy::Truncated,
        Taxonomy::ValidationDivergence,
        Taxonomy::Timeout,
        Taxonomy::Crash,
    ];

    /// The stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Taxonomy::Ok => "ok",
            Taxonomy::ParseError => "parse_error",
            Taxonomy::Truncated => "truncated",
            Taxonomy::ValidationDivergence => "validation_divergence",
            Taxonomy::Timeout => "timeout",
            Taxonomy::Crash => "crash",
        }
    }

    /// Parses a wire name back.
    #[must_use]
    pub fn parse(s: &str) -> Option<Taxonomy> {
        Taxonomy::ALL.into_iter().find(|t| t.as_str() == s)
    }
}

impl std::fmt::Display for Taxonomy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One module's analysis outcome — one JSONL line of the records file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleRecord {
    /// Stable module id (`progen-<seed>` or the file name).
    pub module: String,
    /// The shard this module belongs to.
    pub shard: u64,
    /// Service outcome.
    pub outcome: Taxonomy,
    /// Failure detail (error message, diverging seed/array, panic
    /// payload); empty for `Ok`.
    pub detail: String,
    /// Detected instances per idiom kind (constraint names, non-zero
    /// kinds only — the map is sorted so lines are deterministic).
    pub instances: BTreeMap<String, u64>,
    /// Total detected instances.
    pub detected: u64,
    /// Instances actually replaced by the transformer.
    pub replaced: u64,
    /// Replaced instances whose legality verdict was fully proven by the
    /// dependence/alias analysis (no restrict assumption needed).
    pub legality_proven: u64,
    /// Replaced instances that were legal only under the
    /// restrict-parameter assumption. Always
    /// `legality_proven + legality_assumed == replaced` — a rejected
    /// verdict aborts the rewrite, so it never counts as replaced.
    pub legality_assumed: u64,
    /// Parallel-safety certificate census over replaced instances, keyed
    /// by the certificate wire name (`independent_iterations`,
    /// `reduction_only`, `serial`; non-zero entries only).
    pub certificates: BTreeMap<String, u64>,
    /// Idiom instances the corpus planted in this module by construction
    /// (progen sources and `// progen:expect` directives); 0 when the
    /// module carries no expectations.
    pub planted: u64,
    /// Planted instances that detection actually found (recall
    /// numerator).
    pub planted_hit: u64,
    /// Forbidden near-miss kinds that were falsely reported.
    pub false_positives: u64,
    /// Total solver assignment steps.
    pub solve_steps: u64,
    /// Idiom×function pairs the fingerprint prepass proved matchless and
    /// skipped without solving.
    pub pruned_pairs: u64,
    /// `true` when multi-seed differential validation ran and passed
    /// (detect-only modules record `false` with outcome `Ok`).
    pub validated: bool,
    /// Frontend compile milliseconds within `latency_ms` (written as
    /// `0.000` under byte-deterministic output, like `latency_ms`).
    pub compile_ms: f64,
    /// Execution milliseconds within `latency_ms`: the multi-seed
    /// differential validation on the bytecode VM (zeroed like
    /// `latency_ms` under byte-deterministic output).
    pub exec_ms: f64,
    /// Wall-clock analysis latency in milliseconds (written as `0.000`
    /// when the run is configured for byte-deterministic output).
    pub latency_ms: f64,
}

impl ModuleRecord {
    /// A zeroed record for `module` in `shard` — failure paths fill in
    /// only the outcome and detail.
    #[must_use]
    pub fn empty(module: &str, shard: u64, outcome: Taxonomy, detail: String) -> ModuleRecord {
        ModuleRecord {
            module: module.to_owned(),
            shard,
            outcome,
            detail,
            instances: BTreeMap::new(),
            detected: 0,
            replaced: 0,
            legality_proven: 0,
            legality_assumed: 0,
            certificates: BTreeMap::new(),
            planted: 0,
            planted_hit: 0,
            false_positives: 0,
            solve_steps: 0,
            pruned_pairs: 0,
            validated: false,
            compile_ms: 0.0,
            exec_ms: 0.0,
            latency_ms: 0.0,
        }
    }

    /// Renders the record as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let map_body = |m: &BTreeMap<String, u64>| {
            let pairs: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}:{v}", escape(k)))
                .collect();
            pairs.join(",")
        };
        format!(
            "{{\"module\":{},\"shard\":{},\"outcome\":{},\"detail\":{},\"instances\":{{{}}},\"detected\":{},\"replaced\":{},\"legality_proven\":{},\"legality_assumed\":{},\"certificates\":{{{}}},\"planted\":{},\"planted_hit\":{},\"false_positives\":{},\"solve_steps\":{},\"pruned_pairs\":{},\"validated\":{},\"compile_ms\":{:.3},\"exec_ms\":{:.3},\"latency_ms\":{:.3}}}",
            escape(&self.module),
            self.shard,
            escape(self.outcome.as_str()),
            escape(&self.detail),
            map_body(&self.instances),
            self.detected,
            self.replaced,
            self.legality_proven,
            self.legality_assumed,
            map_body(&self.certificates),
            self.planted,
            self.planted_hit,
            self.false_positives,
            self.solve_steps,
            self.pruned_pairs,
            self.validated,
            self.compile_ms,
            self.exec_ms,
            self.latency_ms,
        )
    }

    /// Parses one JSONL line back into a record.
    ///
    /// # Errors
    /// A description of the malformed construct.
    pub fn parse_jsonl(line: &str) -> Result<ModuleRecord, String> {
        let mut p = Parser::new(line);
        p.expect('{')?;
        let mut rec = ModuleRecord::empty("", 0, Taxonomy::Ok, String::new());
        let mut outcome_seen = false;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "module" => rec.module = p.string()?,
                "shard" => rec.shard = p.u64()?,
                "outcome" => {
                    let s = p.string()?;
                    rec.outcome =
                        Taxonomy::parse(&s).ok_or_else(|| format!("unknown outcome {s:?}"))?;
                    outcome_seen = true;
                }
                "detail" => rec.detail = p.string()?,
                "instances" => rec.instances = parse_u64_map(&mut p)?,
                "detected" => rec.detected = p.u64()?,
                "replaced" => rec.replaced = p.u64()?,
                "legality_proven" => rec.legality_proven = p.u64()?,
                "legality_assumed" => rec.legality_assumed = p.u64()?,
                "certificates" => rec.certificates = parse_u64_map(&mut p)?,
                "planted" => rec.planted = p.u64()?,
                "planted_hit" => rec.planted_hit = p.u64()?,
                "false_positives" => rec.false_positives = p.u64()?,
                "solve_steps" => rec.solve_steps = p.u64()?,
                "pruned_pairs" => rec.pruned_pairs = p.u64()?,
                "validated" => rec.validated = p.bool()?,
                "compile_ms" => rec.compile_ms = p.f64()?,
                "exec_ms" => rec.exec_ms = p.f64()?,
                "latency_ms" => rec.latency_ms = p.f64()?,
                other => return Err(format!("unknown record field {other:?}")),
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        p.end()?;
        if rec.module.is_empty() || !outcome_seen {
            return Err("record missing module or outcome".into());
        }
        Ok(rec)
    }
}

/// Parses a `{"key":u64,...}` object (the `instances` / `certificates`
/// census maps).
fn parse_u64_map(p: &mut Parser) -> Result<BTreeMap<String, u64>, String> {
    let mut map = BTreeMap::new();
    p.expect('{')?;
    if p.peek_is('}') {
        p.expect('}')?;
        return Ok(map);
    }
    loop {
        let k = p.string()?;
        p.expect(':')?;
        let v = p.u64()?;
        map.insert(k, v);
        if !p.comma_or('}')? {
            return Ok(map);
        }
    }
}

/// JSON-escapes a string (quotes included in the output).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal cursor over one JSONL line. Only the constructs the record
/// format emits are supported; anything else is a parse error (a
/// truncated trailing line after an interrupted run must be *rejected*,
/// which is what lets the checkpoint's byte offset discard it safely).
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn peek_is(&self, c: char) -> bool {
        self.peek() == Some(c as u8)
    }

    pub(crate) fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek_is(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    /// Consumes `,` (returning `true`) or `close` (returning `false`).
    pub(crate) fn comma_or(&mut self, close: char) -> Result<bool, String> {
        match self.peek() {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(c) if c == close as u8 => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(format!("expected ',' or {close:?} at byte {}", self.pos)),
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number_str(&mut self) -> Result<&'a str, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b == b'.' || b == b'-' || b == b'e' || b == b'+')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        self.number_str()?.parse().map_err(|e| format!("{e}"))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        self.number_str()?.parse().map_err(|e| format!("{e}"))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, String> {
        for (lit, v) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                return Ok(v);
            }
        }
        Err(format!("expected a bool at byte {}", self.pos))
    }

    pub(crate) fn end(&mut self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes after record at {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The taxonomy wire names are a persistence format: checkpointed
    /// runs and committed `BENCH_corpus.json` artifacts depend on them,
    /// so this test pins every name exactly and round-trips each variant.
    #[test]
    fn taxonomy_serde_round_trip_pins_wire_names() {
        let expected = [
            (Taxonomy::Ok, "ok"),
            (Taxonomy::ParseError, "parse_error"),
            (Taxonomy::Truncated, "truncated"),
            (Taxonomy::ValidationDivergence, "validation_divergence"),
            (Taxonomy::Timeout, "timeout"),
            (Taxonomy::Crash, "crash"),
        ];
        assert_eq!(expected.len(), Taxonomy::ALL.len());
        for (t, name) in expected {
            assert_eq!(t.as_str(), name);
            assert_eq!(Taxonomy::parse(name), Some(t), "round trip of {name}");
        }
        assert_eq!(Taxonomy::parse("segfault"), None);
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let mut rec = ModuleRecord::empty(
            "progen-42",
            3,
            Taxonomy::ValidationDivergence,
            "array #1 diverged: \"x\"\\path\nline2".into(),
        );
        rec.instances.insert("GEMM".into(), 1);
        rec.instances.insert("Reduction".into(), 4);
        rec.detected = 5;
        rec.replaced = 5;
        rec.legality_proven = 4;
        rec.legality_assumed = 1;
        rec.certificates.insert("independent_iterations".into(), 1);
        rec.certificates.insert("reduction_only".into(), 4);
        rec.planted = 5;
        rec.planted_hit = 5;
        rec.solve_steps = 1234;
        rec.pruned_pairs = 7;
        rec.validated = false;
        rec.compile_ms = 1.25;
        rec.exec_ms = 2.5;
        rec.latency_ms = 6.125;
        let line = rec.to_jsonl();
        assert!(!line.contains('\n'), "one record = one line: {line}");
        let back = ModuleRecord::parse_jsonl(&line).expect("parses");
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_instances_and_zero_latency_round_trip() {
        let rec = ModuleRecord::empty("m.c", 0, Taxonomy::Crash, "panicked at 'boom'".into());
        let line = rec.to_jsonl();
        assert!(line.contains("\"instances\":{}"), "{line}");
        assert!(line.contains("\"certificates\":{}"), "{line}");
        assert!(line.ends_with("\"latency_ms\":0.000}"), "{line}");
        assert_eq!(ModuleRecord::parse_jsonl(&line).unwrap(), rec);
    }

    #[test]
    fn truncated_or_garbled_lines_are_rejected() {
        let line = ModuleRecord::empty("m", 0, Taxonomy::Ok, String::new()).to_jsonl();
        // A half-written trailing line (interrupted run) must not parse.
        assert!(ModuleRecord::parse_jsonl(&line[..line.len() - 5]).is_err());
        assert!(ModuleRecord::parse_jsonl("").is_err());
        assert!(ModuleRecord::parse_jsonl("{}").is_err());
        assert!(ModuleRecord::parse_jsonl(&format!("{line}garbage")).is_err());
        let unknown = line.replace("\"outcome\":\"ok\"", "\"outcome\":\"nope\"");
        assert!(ModuleRecord::parse_jsonl(&unknown).is_err());
    }
}
