//! # corpus — the batch analysis service
//!
//! The paper's pitch is finding compute idioms in *legacy code at
//! scale*; this crate turns the one-shot pipeline into a long-running
//! batch service that chews through thousands of modules:
//!
//! * [`Source`] — where modules come from: a directory of `.c` files or
//!   a deterministic seeded progen corpus of N programs, streamed (one
//!   module materialized per job) rather than held in memory;
//! * [`run`] — the driver: a sharded work queue over the corpus, a
//!   configurable worker pool sharing the compile-once idiom library,
//!   per-module **crash** (`catch_unwind`) and **timeout** (wall-clock
//!   budget, abandoned sandbox thread) isolation, an append-only
//!   JSON-lines records file flushed in deterministic shard order, and a
//!   checkpoint that makes an interrupted run resume exactly where it
//!   left off;
//! * [`ModuleRecord`] / [`Taxonomy`] — one record per module: per-idiom
//!   instance counts, solver steps, detect/replace/validate outcome,
//!   recall bookkeeping for planted corpora, latency, and a pinned
//!   failure taxonomy (`ok` / `parse_error` / `truncated` /
//!   `validation_divergence` / `timeout` / `crash`).
//!
//! The `corpus` binary in `crates/bench` drives this crate from the
//! command line and condenses a finished run into `BENCH_corpus.json`
//! (throughput, p50/p95/p99 per-module latency, taxonomy census).

mod analyze;
mod driver;
mod record;
mod source;

pub use analyze::{HANG_DIRECTIVE, PANIC_DIRECTIVE};
pub use driver::{run, RunConfig, RunSummary};
pub use record::{ModuleRecord, Taxonomy};
pub use source::{Job, Source};

/// Why a batch run could not proceed. Per-module failures never surface
/// here — they become taxonomy records; this type is for faults of the
/// *service* itself (IO, an incompatible checkpoint, a records file that
/// no longer parses).
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure on the records/checkpoint/source paths.
    Io(String),
    /// The checkpoint is corrupt or belongs to a different corpus.
    Checkpoint(String),
    /// The persisted records file does not parse back.
    Records(String),
    /// The corpus source is unusable (unreadable or empty directory).
    Source(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "io error: {e}"),
            CorpusError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CorpusError::Records(e) => write!(f, "records error: {e}"),
            CorpusError::Source(e) => write!(f, "source error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> CorpusError {
        CorpusError::Io(e.to_string())
    }
}
