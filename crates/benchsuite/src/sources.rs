//! The 21 benchmark reconstructions. Each entry documents which idioms it
//! carries (matching the paper's Figure 16 population) and why the
//! baseline detectors succeed or fail on them.

use crate::{csr, fill_f64, fill_i32_mod, mix, zeros_f64, zeros_i32, Benchmark, Suite, GRID, N};
use interp::Value;

/// All 21 benchmarks in the paper's order (NAS then Parboil).
#[must_use]
pub fn all() -> Vec<Benchmark> {
    vec![
        // ----------------- NAS -----------------
        Benchmark {
            name: "BT",
            suite: Suite::Nas,
            // 6 plain FP reductions (ICC-detectable) + a dominant
            // block-tridiagonal sweep with loop-carried dependences.
            source: r#"
double bt_dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i] * y[i];
    return s;
}
double bt_sum(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i];
    return s;
}
double bt_sq(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i] * x[i];
    return s;
}
double bt_wsum(double* x, double* w, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += w[i] * x[i];
    return s;
}
double bt_diff(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i] - y[i];
    return s;
}
double bt_prod(double* x, int n) {
    double s = 1.0;
    for (int i = 0; i < n; i++) s = s * x[i];
    return s;
}
void bt_sweep(double* x, int n, int steps) {
    for (int t = 0; t < steps; t++) {
        for (int i = 1; i < n; i++) x[i] = x[i] - 0.31 * x[i-1];
        for (int i = n - 2; i >= 0; i--) x[i] = x[i] - 0.27 * x[i+1];
    }
}
double bt_run(double* x, double* y, double* w, int n) {
    double r = bt_dot(x, y, n) + bt_sum(x, n) + bt_sq(y, n);
    r = r + bt_wsum(x, w, n) + bt_diff(x, y, n) + bt_prod(w, n);
    bt_sweep(x, n, 60);
    return r;
}
"#,
            entry: "bt_run",
            setup: |mem, seed| {
                let x = fill_f64(mem, N, mix(seed, 1));
                let y = fill_f64(mem, N, mix(seed, 2));
                let w = fill_f64(mem, N, mix(seed, 3));
                vec![Value::P(x), Value::P(y), Value::P(w), Value::I(N as i64)]
            },
            invocations: 200.0,
            scale: 4000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "CG",
            suite: Suite::Nas,
            // The conjugate-gradient core: 2 CSR SPMVs (Figure 4) + 4
            // plain FP reductions (dot products / norms). Dominated by
            // the sparse multiplications — non-affine for both baselines.
            source: r#"
void cg_spmv(double* a, int* rowstr, int* colidx, double* z, double* r, int m) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++)
            d = d + a[k] * z[colidx[k]];
        r[j] = d;
    }
}
void cg_spmv2(double* a, int* rowstr, int* colidx, double* p, double* q, int m) {
    for (int j = 0; j < m; j++) {
        double acc = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++)
            acc = acc + a[k] * p[colidx[k]];
        q[j] = acc;
    }
}
double cg_dot(double* x, double* y, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i] * y[i];
    return s;
}
double cg_norm(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i] * x[i];
    return s;
}
double cg_rsum(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += x[i];
    return s;
}
double cg_wdot(double* x, double* y, double* w, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += w[i] * x[i] * y[i];
    return s;
}
double cg_run(double* a, int* rowstr, int* colidx, double* z, double* r,
              double* p, double* q, double* w, int m) {
    cg_spmv(a, rowstr, colidx, z, r, m);
    cg_spmv2(a, rowstr, colidx, p, q, m);
    double s = cg_dot(r, q, m) + cg_norm(r, m) + cg_rsum(q, m) + cg_wdot(r, q, w, m);
    return s;
}
"#,
            entry: "cg_run",
            setup: |mem, seed| {
                let (vals, rs, ci) = csr(mem, N, 8, seed);
                let z = fill_f64(mem, N, mix(seed, 4));
                let r = zeros_f64(mem, N);
                let p = fill_f64(mem, N, mix(seed, 5));
                let q = zeros_f64(mem, N);
                let w = fill_f64(mem, N, mix(seed, 6));
                vec![
                    Value::P(vals),
                    Value::P(rs),
                    Value::P(ci),
                    Value::P(z),
                    Value::P(r),
                    Value::P(p),
                    Value::P(q),
                    Value::P(w),
                    Value::I(N as i64),
                ]
            },
            invocations: 1875.0,
            scale: 20_000.0,
            covered: true,
            lazy: true,
        },
        Benchmark {
            name: "DC",
            suite: Suite::Nas,
            // Data-cube: 1 histogram (view counting) + 1 plain *integer*
            // reduction (one of Polly's 3 — integer sums need no FP
            // reassociation) + a dominant sort-like data-dependent phase.
            source: r#"
void dc_count(int* keys, int* views, int n) {
    for (int i = 0; i < n; i++) views[keys[i]] = views[keys[i]] + 1;
}
int dc_total(int* counts, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += counts[i];
    return s;
}
void dc_shuffle(int* keys, int* tmp, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 0; i < n; i++) tmp[keys[i] % n] = keys[i] + t;
        for (int i = 1; i < n; i++) keys[i] = keys[i] + tmp[i-1] % 7;
    }
}
int dc_run(int* keys, int* views, int* tmp, int n) {
    dc_count(keys, views, n);
    int s = dc_total(views, n);
    dc_shuffle(keys, tmp, n, 40);
    return s;
}
"#,
            entry: "dc_run",
            setup: |mem, seed| {
                let keys = fill_i32_mod(mem, N, 64, mix(seed, 7));
                let views = zeros_i32(mem, 64);
                let tmp = zeros_i32(mem, N);
                vec![
                    Value::P(keys),
                    Value::P(views),
                    Value::P(tmp),
                    Value::I(N as i64),
                ]
            },
            invocations: 30.0,
            scale: 3000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "EP",
            suite: Suite::Nas,
            // Embarrassingly parallel: the Gaussian-pair histogram is
            // about half the runtime (the paper's outlier in Figure 17);
            // 2 plain FP reductions for the sx/sy sums.
            source: r#"
void ep_histogram(double* xs, double* ys, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        double ax = fabs(xs[i]);
        double ay = fabs(ys[i]);
        double m = fmax(ax, ay);
        int l = (int)(m * 9.99);
        bins[l] = bins[l] + 1;
    }
}
double ep_sx(double* xs, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += xs[i];
    return s;
}
double ep_sy(double* ys, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += ys[i];
    return s;
}
void ep_generate(double* xs, double* ys, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 1; i < n; i++) xs[i] = xs[i] * 0.9 + xs[i-1] * 0.099;
        for (int i = 1; i < n; i++) ys[i] = ys[i] * 0.9 + ys[i-1] * 0.098;
    }
}
double ep_run(double* xs, double* ys, int* bins, int n) {
    ep_generate(xs, ys, n, 1);
    ep_histogram(xs, ys, bins, n);
    return ep_sx(xs, n) + ep_sy(ys, n);
}
"#,
            entry: "ep_run",
            setup: |mem, seed| {
                let xs = fill_f64(mem, 4 * N, mix(seed, 8));
                let ys = fill_f64(mem, 4 * N, mix(seed, 9));
                let bins = zeros_i32(mem, 10);
                vec![
                    Value::P(xs),
                    Value::P(ys),
                    Value::P(bins),
                    Value::I(4 * N as i64),
                ]
            },
            invocations: 1.0,
            scale: 120_000.0,
            covered: true,
            lazy: false,
        },
        Benchmark {
            name: "FT",
            suite: Suite::Nas,
            // FFT driver: 1 plain checksum reduction + 2 complex
            // reductions with sin/cos kernels (IDL-only) + a dominant
            // butterfly phase with strided, data-dependent twiddling.
            source: r#"
double ft_checksum(double* re, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += re[i];
    return s;
}
double ft_twiddle_energy(double* re, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += re[i] * cos(re[i]);
    return s;
}
double ft_phase(double* im, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += sin(im[i]);
    return s;
}
void ft_butterfly(double* re, double* im, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 1; i < n; i++) {
            re[i] = re[i] + 0.5 * im[i-1];
            im[i] = im[i] - 0.5 * re[i-1];
        }
    }
}
double ft_run(double* re, double* im, int n) {
    ft_butterfly(re, im, n, 45);
    return ft_checksum(re, n) + ft_twiddle_energy(re, n) + ft_phase(im, n);
}
"#,
            entry: "ft_run",
            setup: |mem, seed| {
                let re = fill_f64(mem, N, mix(seed, 10));
                let im = fill_f64(mem, N, mix(seed, 11));
                vec![Value::P(re), Value::P(im), Value::I(N as i64)]
            },
            invocations: 6.0,
            scale: 9000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "IS",
            suite: Suite::Nas,
            // Integer sort: key-counting histogram + 1 plain integer
            // reduction (Polly's second integer reduction). The histogram
            // dominates; bucket scatter is data-dependent.
            source: r#"
void is_count(int* keys, int* counts, int n) {
    for (int i = 0; i < n; i++) counts[keys[i]] = counts[keys[i]] + 1;
}
int is_keysum(int* keys, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += keys[i];
    return s;
}
void is_scatter(int* keys, int* ranks, int* out, int n) {
    for (int i = 0; i < n; i++) {
        int slot = (keys[i] + i) % 256;
        out[ranks[slot] % n] = keys[i];
        ranks[slot] = ranks[slot] + 1;
    }
}
int is_run(int* keys, int* counts, int* ranks, int* out, int n) {
    is_count(keys, counts, n);
    is_count(keys, counts, n);
    is_count(keys, counts, n);
    int s = is_keysum(keys, n);
    is_scatter(keys, ranks, out, n);
    return s;
}
"#,
            entry: "is_run",
            setup: |mem, seed| {
                let keys = fill_i32_mod(mem, 4 * N, 256, mix(seed, 12));
                let counts = zeros_i32(mem, 256);
                let ranks = zeros_i32(mem, 256);
                let out = zeros_i32(mem, 4 * N);
                vec![
                    Value::P(keys),
                    Value::P(counts),
                    Value::P(ranks),
                    Value::P(out),
                    Value::I(4 * N as i64),
                ]
            },
            invocations: 10.0,
            scale: 40_000.0,
            covered: true,
            lazy: false,
        },
        Benchmark {
            name: "LU",
            suite: Suite::Nas,
            // 6 reductions (4 plain + 2 with sqrt/fabs kernels) + a
            // dominant SSOR sweep with forward/backward dependences.
            source: r#"
double lu_r1(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]; return s; }
double lu_r2(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]*y[i]; return s; }
double lu_r3(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]*x[i]; return s; }
double lu_r4(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]-y[i]; return s; }
double lu_rms(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += sqrt(fabs(x[i])); return s; }
double lu_maxabs(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s = fmax(s, fabs(x[i])); return s; }
void lu_ssor(double* v, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 1; i < n; i++) v[i] = v[i] - 0.4 * v[i-1];
        for (int i = n - 2; i >= 0; i--) v[i] = v[i] - 0.4 * v[i+1];
    }
}
double lu_run(double* v, double* w, int n) {
    double s = lu_r1(v, n) + lu_r2(v, w, n) + lu_r3(w, n) + lu_r4(v, w, n);
    s = s + lu_rms(v, n) + lu_maxabs(w, n);
    lu_ssor(v, n, 70);
    return s;
}
"#,
            entry: "lu_run",
            setup: |mem, seed| {
                let v = fill_f64(mem, N, mix(seed, 13));
                let w = fill_f64(mem, N, mix(seed, 14));
                vec![Value::P(v), Value::P(w), Value::I(N as i64)]
            },
            invocations: 250.0,
            scale: 5000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "MG",
            suite: Suite::Nas,
            // Multigrid: 3 stencils (2 affine Jacobi-style smoothers Polly
            // also captures, 1 with a sqrt kernel that breaks the SCoP) +
            // 1 complex norm reduction. Stencils dominate.
            source: r#"
void mg_smooth(double* out, double* in_, int n) {
    for (int i = 1; i < n - 1; i++)
        for (int j = 1; j < n - 1; j++)
            out[i*n+j] = 0.25 * (in_[(i-1)*n+j] + in_[(i+1)*n+j]
                                 + in_[i*n+(j-1)] + in_[i*n+(j+1)]);
}
void mg_resid(double* out, double* in_, int n) {
    for (int i = 1; i < n - 1; i++)
        for (int j = 1; j < n - 1; j++)
            out[i*n+j] = in_[i*n+j] - 0.2 * (in_[(i-1)*n+j] + in_[(i+1)*n+j]
                                             + in_[i*n+(j-1)] + in_[i*n+(j+1)] + in_[i*n+j]);
}
void mg_damped(double* out, double* in_, int n) {
    for (int i = 1; i < n - 1; i++)
        for (int j = 1; j < n - 1; j++)
            out[i*n+j] = sqrt(fabs(0.5 * in_[i*n+j] + 0.25 * (in_[(i-1)*n+j] + in_[(i+1)*n+j])));
}
double mg_norm(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s = fmax(s, fabs(x[i]));
    return s;
}
double mg_run(double* a, double* b, int n) {
    mg_smooth(b, a, n);
    mg_resid(a, b, n);
    mg_damped(b, a, n);
    return mg_norm(b, n * n);
}
"#,
            entry: "mg_run",
            setup: |mem, seed| {
                let a = fill_f64(mem, GRID * GRID, mix(seed, 15));
                let b = zeros_f64(mem, GRID * GRID);
                vec![Value::P(a), Value::P(b), Value::I(GRID as i64)]
            },
            invocations: 20.0,
            scale: 60_000.0,
            covered: true,
            lazy: false,
        },
        Benchmark {
            name: "SP",
            suite: Suite::Nas,
            // 6 reductions (4 plain, 2 complex) + dominant scalar
            // pentadiagonal sweeps.
            source: r#"
double sp_r1(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]; return s; }
double sp_r2(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]*x[i]; return s; }
double sp_r3(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]*y[i]; return s; }
double sp_r4(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += 2.0*x[i] + y[i]; return s; }
double sp_err(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += pow(x[i]-y[i], 2.0); return s; }
double sp_linf(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s = fmax(s, fabs(x[i])); return s; }
void sp_sweep(double* v, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 2; i < n; i++) v[i] = v[i] - 0.2*v[i-1] - 0.1*v[i-2];
    }
}
double sp_run(double* v, double* w, int n) {
    double s = sp_r1(v, n) + sp_r2(w, n) + sp_r3(v, w, n) + sp_r4(v, w, n);
    s = s + sp_err(v, w, n) + sp_linf(v, n);
    sp_sweep(v, n, 90);
    return s;
}
"#,
            entry: "sp_run",
            setup: |mem, seed| {
                let v = fill_f64(mem, N, mix(seed, 16));
                let w = fill_f64(mem, N, mix(seed, 17));
                vec![Value::P(v), Value::P(w), Value::I(N as i64)]
            },
            invocations: 400.0,
            scale: 4500.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "UA",
            suite: Suite::Nas,
            // Unstructured adaptive mesh: 6 reductions (3 plain, 3
            // complex) + dominant irregular gather/scatter over the mesh.
            source: r#"
double ua_r1(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]; return s; }
double ua_r2(double* x, double* y, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]*y[i]; return s; }
double ua_r3(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += x[i]*x[i]; return s; }
double ua_c1(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += exp(x[i] * 0.01); return s; }
double ua_c2(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s = fmax(s, x[i]); return s; }
double ua_c3(double* x, int n) { double s = 0.0; for (int i = 0; i < n; i++) s += log(1.5 + fabs(x[i])); return s; }
void ua_gather(double* v, int* map, double* tmp, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 0; i < n; i++) tmp[i] = v[map[i]];
        for (int i = 1; i < n; i++) v[i] = v[i] + 0.1 * tmp[i-1];
    }
}
double ua_run(double* v, double* w, int* map, double* tmp, int n) {
    double s = ua_r1(v, n) + ua_r2(v, w, n) + ua_r3(w, n);
    s = s + ua_c1(v, n) + ua_c2(w, n) + ua_c3(v, n);
    ua_gather(v, map, tmp, n, 35);
    return s;
}
"#,
            entry: "ua_run",
            setup: |mem, seed| {
                let v = fill_f64(mem, N, mix(seed, 18));
                let w = fill_f64(mem, N, mix(seed, 19));
                let map = fill_i32_mod(mem, N, N as i32, mix(seed, 20));
                let tmp = zeros_f64(mem, N);
                vec![
                    Value::P(v),
                    Value::P(w),
                    Value::P(map),
                    Value::P(tmp),
                    Value::I(N as i64),
                ]
            },
            invocations: 120.0,
            scale: 6000.0,
            covered: false,
            lazy: false,
        },
        // ----------------- Parboil -----------------
        Benchmark {
            name: "bfs",
            suite: Suite::Parboil,
            // 1 plain integer reduction (Polly's third) + dominant
            // frontier expansion with indirect neighbour lists.
            source: r#"
int bfs_frontier_size(int* flags, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += flags[i];
    return s;
}
void bfs_expand(int* edges, int* offsets, int* dist, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int u = 0; u < n; u++) {
            for (int e = offsets[u]; e < offsets[u+1]; e++) {
                int v = edges[e];
                if (dist[v] > dist[u] + 1) { dist[v] = dist[u] + 1; }
            }
        }
    }
}
int bfs_run(int* edges, int* offsets, int* dist, int* flags, int n) {
    bfs_expand(edges, offsets, dist, n, 12);
    return bfs_frontier_size(flags, n);
}
"#,
            entry: "bfs_run",
            setup: |mem, seed| {
                let rows = N;
                let mut offs = Vec::with_capacity(rows + 1);
                let mut edges = Vec::new();
                offs.push(0i32);
                for r in 0..rows {
                    for j in 0..4 {
                        edges.push(((r * 17 + j * 31 + 1) % rows) as i32);
                    }
                    offs.push(edges.len() as i32);
                }
                let e = mem.alloc_i32_slice(&edges);
                let o = mem.alloc_i32_slice(&offs);
                let dist: Vec<i32> = (0..rows as i32)
                    .map(|i| if i == 0 { 0 } else { 1000 })
                    .collect();
                let d = mem.alloc_i32_slice(&dist);
                let flags = fill_i32_mod(mem, rows, 2, mix(seed, 21));
                vec![
                    Value::P(e),
                    Value::P(o),
                    Value::P(d),
                    Value::P(flags),
                    Value::I(rows as i64),
                ]
            },
            invocations: 15.0,
            scale: 2500.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "cutcp",
            suite: Suite::Parboil,
            // 1 complex reduction (1/sqrt potential kernel) + dominant
            // cutoff-radius lattice loop with data-dependent control.
            source: r#"
double cutcp_energy(double* d2, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += 1.0 / sqrt(1.0 + d2[i]);
    return s;
}
void cutcp_lattice(double* grid, double* atoms, int* cells, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 0; i < n; i++) {
            int c = cells[i];
            if (atoms[c] > 0.0) { grid[c] = atoms[i] * 0.01 + grid[i] * 0.5; }
        }
        for (int i = 1; i < n; i++) grid[i] = grid[i] + 0.05 * grid[i-1];
    }
}
double cutcp_run(double* grid, double* atoms, double* d2, int* cells, int n) {
    cutcp_lattice(grid, atoms, cells, n, 25);
    return cutcp_energy(d2, n);
}
"#,
            entry: "cutcp_run",
            setup: |mem, seed| {
                let grid = zeros_f64(mem, N);
                let atoms = fill_f64(mem, N, mix(seed, 22));
                let d2 = fill_f64(mem, N, mix(seed, 23));
                let cells = fill_i32_mod(mem, N, N as i32, mix(seed, 24));
                vec![
                    Value::P(grid),
                    Value::P(atoms),
                    Value::P(d2),
                    Value::P(cells),
                    Value::I(N as i64),
                ]
            },
            invocations: 10.0,
            scale: 7000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "histo",
            suite: Suite::Parboil,
            // The canonical histogram benchmark: the binning loop IS the
            // program.
            source: r#"
void histo_bin(int* img, int* bins, int n) {
    for (int i = 0; i < n; i++) bins[img[i]] = bins[img[i]] + 1;
}
void histo_run(int* img, int* bins, int n) {
    histo_bin(img, bins, n);
    histo_bin(img, bins, n);
    histo_bin(img, bins, n);
    histo_bin(img, bins, n);
}
"#,
            entry: "histo_run",
            setup: |mem, seed| {
                let img = fill_i32_mod(mem, 8 * N, 1024, mix(seed, 25));
                let bins = zeros_i32(mem, 1024);
                vec![Value::P(img), Value::P(bins), Value::I(8 * N as i64)]
            },
            invocations: 4.0,
            scale: 18_000.0,
            covered: true,
            lazy: false,
        },
        Benchmark {
            name: "lbm",
            suite: Suite::Parboil,
            // Lattice-Boltzmann: two streaming stencils over distinct
            // distributions (both affine: Polly sees them too). Iterative:
            // lazy copying is what makes the GPU worthwhile (Figure 18).
            source: r#"
void lbm_stream_east(double* dst, double* src, int n) {
    for (int i = 1; i < n - 1; i++)
        dst[i] = 0.9 * src[i] + 0.05 * src[i-1] + 0.05 * src[i+1];
}
void lbm_collide(double* dst, double* src, int n) {
    for (int i = 2; i < n - 2; i++)
        dst[i] = src[i] + 0.1 * (src[i-2] - 2.0 * src[i] + src[i+2]);
}
void lbm_run(double* f0, double* f1, int n) {
    lbm_stream_east(f1, f0, n);
    lbm_collide(f0, f1, n);
    lbm_stream_east(f1, f0, n);
    lbm_collide(f0, f1, n);
}
"#,
            entry: "lbm_run",
            setup: |mem, seed| {
                let f0 = fill_f64(mem, 8 * N, mix(seed, 26));
                let f1 = zeros_f64(mem, 8 * N);
                vec![Value::P(f0), Value::P(f1), Value::I(8 * N as i64)]
            },
            invocations: 1000.0,
            scale: 12_000.0,
            covered: true,
            lazy: true,
        },
        Benchmark {
            name: "mri-g",
            suite: Suite::Parboil,
            // Gridding: 2 complex reductions (sin/cos phase kernels) +
            // dominant irregular sample scatter.
            source: r#"
double mrig_phase_re(double* k, double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += cos(k[i] * x[i]);
    return s;
}
double mrig_phase_im(double* k, double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += sin(k[i] * x[i]);
    return s;
}
void mrig_scatter(double* grid, double* sam, int* pos, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 0; i < n; i++) grid[pos[i]] = grid[pos[i]] + sam[i] * (0.01 * (double)t);
        for (int i = 1; i < n; i++) grid[i] = grid[i] * 0.99 + grid[i-1] * 0.01;
    }
}
double mrig_run(double* grid, double* sam, double* k, double* x, int* pos, int n) {
    mrig_scatter(grid, sam, pos, n, 18);
    return mrig_phase_re(k, x, n) + mrig_phase_im(k, x, n);
}
"#,
            entry: "mrig_run",
            setup: |mem, seed| {
                let grid = zeros_f64(mem, N);
                let sam = fill_f64(mem, N, mix(seed, 27));
                let k = fill_f64(mem, N, mix(seed, 28));
                let x = fill_f64(mem, N, mix(seed, 29));
                let pos = fill_i32_mod(mem, N, N as i32, mix(seed, 30));
                vec![
                    Value::P(grid),
                    Value::P(sam),
                    Value::P(k),
                    Value::P(x),
                    Value::P(pos),
                    Value::I(N as i64),
                ]
            },
            invocations: 8.0,
            scale: 8000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "mri-q",
            suite: Suite::Parboil,
            // Q-matrix: 2 complex reductions (the phase accumulation) +
            // dominant per-voxel loop with trigonometry over all samples.
            source: r#"
double mriq_re(double* phi, double* d, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += phi[i] * cos(d[i]);
    return s;
}
double mriq_im(double* phi, double* d, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += phi[i] * sin(d[i]);
    return s;
}
void mriq_voxels(double* q, double* phi, double* d, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 1; i < n; i++)
            q[i] = q[i-1] * 0.5 + phi[i] * cos(d[i] * (double)t);
    }
}
double mriq_run(double* q, double* phi, double* d, int n) {
    mriq_voxels(q, phi, d, n, 14);
    return mriq_re(phi, d, n) + mriq_im(phi, d, n);
}
"#,
            entry: "mriq_run",
            setup: |mem, seed| {
                let q = zeros_f64(mem, N);
                let phi = fill_f64(mem, N, mix(seed, 31));
                let d = fill_f64(mem, N, mix(seed, 32));
                vec![Value::P(q), Value::P(phi), Value::P(d), Value::I(N as i64)]
            },
            invocations: 5.0,
            scale: 10_000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "sad",
            suite: Suite::Parboil,
            // Sum-of-absolute-differences: 2 reductions with select-based
            // abs kernels (IDL takes them; ICC's recognizer does not) +
            // dominant block search with data-dependent argmin.
            source: r#"
double sad_block(double* cur, double* ref_, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        double d = cur[i] - ref_[i];
        s += d > 0.0 ? d : -d;
    }
    return s;
}
double sad_weighted(double* cur, double* ref_, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) {
        double d = 2.0 * cur[i] - ref_[i];
        s += d > 0.0 ? d : -d;
    }
    return s;
}
void sad_search(double* cur, double* ref_, double* best, int n, int rounds) {
    for (int t = 0; t < rounds; t++) {
        for (int i = 1; i < n; i++) {
            double d = cur[i] - ref_[i-1];
            if (d < best[i-1]) { best[i] = d; } else { best[i] = best[i-1] * 0.999; }
        }
    }
}
double sad_run(double* cur, double* ref_, double* best, int n) {
    sad_search(cur, ref_, best, n, 30);
    return sad_block(cur, ref_, n) + sad_weighted(cur, ref_, n);
}
"#,
            entry: "sad_run",
            setup: |mem, seed| {
                let cur = fill_f64(mem, N, mix(seed, 33));
                let r = fill_f64(mem, N, mix(seed, 34));
                let best = fill_f64(mem, N, mix(seed, 35));
                vec![
                    Value::P(cur),
                    Value::P(r),
                    Value::P(best),
                    Value::I(N as i64),
                ]
            },
            invocations: 12.0,
            scale: 6000.0,
            covered: false,
            lazy: false,
        },
        Benchmark {
            name: "sgemm",
            suite: Suite::Parboil,
            // The dense matrix multiplication (first form of Figure 8,
            // stored accumulator): the whole program.
            source: r#"
void sgemm_kernel(double* A, double* B, double* C, int m, int n, int k) {
    for (int mm = 0; mm < m; mm++) {
        for (int nn = 0; nn < n; nn++) {
            double c = 0.0;
            for (int i = 0; i < k; i++)
                c += A[mm + i * m] * B[nn + i * n];
            C[mm + nn * m] = c;
        }
    }
}
void sgemm_run(double* A, double* B, double* C, int m) {
    sgemm_kernel(A, B, C, m, m, m);
}
"#,
            entry: "sgemm_run",
            setup: |mem, seed| {
                let a = fill_f64(mem, GRID * GRID, mix(seed, 36));
                let b = fill_f64(mem, GRID * GRID, mix(seed, 37));
                let c = zeros_f64(mem, GRID * GRID);
                vec![Value::P(a), Value::P(b), Value::P(c), Value::I(GRID as i64)]
            },
            invocations: 1.0,
            scale: 20_000.0,
            covered: true,
            lazy: false,
        },
        Benchmark {
            name: "spmv",
            suite: Suite::Parboil,
            // CSR sparse matrix-vector product (the paper notes its
            // unusual format needed the custom libSPMV); iterative.
            source: r#"
void spmv_kernel(double* val, int* rowstr, int* colidx, double* x, double* y, int m) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++)
            d = d + val[k] * x[colidx[k]];
        y[j] = d;
    }
}
void spmv_run(double* val, int* rowstr, int* colidx, double* x, double* y, int m) {
    spmv_kernel(val, rowstr, colidx, x, y, m);
    spmv_kernel(val, rowstr, colidx, y, x, m);
}
"#,
            entry: "spmv_run",
            setup: |mem, seed| {
                let (vals, rs, ci) = csr(mem, N, 6, seed);
                let x = fill_f64(mem, N, mix(seed, 38));
                let y = zeros_f64(mem, N);
                vec![
                    Value::P(vals),
                    Value::P(rs),
                    Value::P(ci),
                    Value::P(x),
                    Value::P(y),
                    Value::I(N as i64),
                ]
            },
            invocations: 500.0,
            scale: 15_000.0,
            covered: true,
            lazy: true,
        },
        Benchmark {
            name: "stencil",
            suite: Suite::Parboil,
            // The 7-point (here 5-point) Jacobi grid benchmark; iterative.
            source: r#"
void stencil_kernel(double* out, double* in_, int n) {
    for (int i = 1; i < n - 1; i++)
        for (int j = 1; j < n - 1; j++)
            out[i*n+j] = 0.2 * (in_[i*n+j] + in_[(i-1)*n+j] + in_[(i+1)*n+j]
                                + in_[i*n+(j-1)] + in_[i*n+(j+1)]);
}
void stencil_run(double* a, double* b, int n) {
    stencil_kernel(b, a, n);
    stencil_kernel(a, b, n);
}
"#,
            entry: "stencil_run",
            setup: |mem, seed| {
                let a = fill_f64(mem, GRID * GRID, mix(seed, 39));
                let b = zeros_f64(mem, GRID * GRID);
                vec![Value::P(a), Value::P(b), Value::I(GRID as i64)]
            },
            invocations: 500.0,
            scale: 100_000.0,
            covered: true,
            lazy: true,
        },
        Benchmark {
            name: "tpacf",
            suite: Suite::Parboil,
            // Two-point angular correlation: the bin-update histogram
            // dominates; plus one sqrt-kernel reduction. The CPU wins in
            // Figure 18 — transfers dominate the small kernels.
            source: r#"
void tpacf_bins(double* dots, int* bins, int n) {
    for (int i = 0; i < n; i++) {
        int b = (int)(fabs(dots[i]) * 31.0);
        bins[b] = bins[b] + 1;
    }
}
double tpacf_norm(double* x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += sqrt(fabs(x[i]));
    return s;
}
double tpacf_run(double* dots, int* bins, int n) {
    tpacf_bins(dots, bins, n);
    tpacf_bins(dots, bins, n);
    return tpacf_norm(dots, n);
}
"#,
            entry: "tpacf_run",
            setup: |mem, seed| {
                let dots = fill_f64(mem, 4 * N, mix(seed, 40));
                let bins = zeros_i32(mem, 32);
                vec![Value::P(dots), Value::P(bins), Value::I(4 * N as i64)]
            },
            // tpacf issues one tiny kernel per point-pair batch: launch
            // overhead is why the GPU loses here (paper §8.3).
            invocations: 50_000.0,
            scale: 400_000.0,
            covered: true,
            lazy: false,
        },
    ]
}
