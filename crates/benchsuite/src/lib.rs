//! # benchsuite — the 21 NAS / Parboil benchmark reconstructions (§7)
//!
//! The paper evaluates on the SNU NPB C translation of NAS (BT CG DC EP FT
//! IS LU MG SP UA) and all Parboil benchmarks (bfs cutcp histo lbm mri-g
//! mri-q sad sgemm spmv stencil tpacf). The original suites cannot be
//! shipped here, so each program is a kernel-level reconstruction in the
//! minicc C subset that preserves what the evaluation measures:
//!
//! * the idiom population of Figure 16 (which idioms appear where: 45
//!   scalar reductions, 5 histograms, 6 stencils, 1 dense matrix op,
//!   3 sparse ops — 60 in total), including the *reason* each baseline
//!   detector succeeds or fails on it (integer vs FP reductions for
//!   Polly's reassociation limit, call/select kernels for ICC, indirect
//!   accesses for both);
//! * the bimodal runtime-coverage distribution of Figure 17 (the ten
//!   covered benchmarks are dominated by their idioms; the rest have
//!   dominant non-idiomatic kernels — recurrences, data-dependent
//!   control — that no replacement may touch);
//! * realistic workload shapes for the performance model (`scale` lifts
//!   the interpreter-sized arrays to the paper's input classes,
//!   `invocations` models the outer iteration of CG/lbm/spmv/stencil that
//!   makes lazy copying essential in Figure 18).

use interp::{Memory, Value};

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// NAS Parallel Benchmarks (SNU NPB sequential C).
    Nas,
    /// Parboil.
    Parboil,
}

/// One reconstructed benchmark.
pub struct Benchmark {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// minicc source of the whole program.
    pub source: &'static str,
    /// Entry function executed for profiling/coverage.
    pub entry: &'static str,
    /// Allocates inputs for one *input seed* and returns the entry
    /// arguments. [`CANONICAL_SEED`] reproduces the fixed workload the
    /// profiling/coverage numbers are reported on; any other seed
    /// deterministically generates a fresh input vector of the same shape
    /// (array sizes, sparsity structure and index ranges are
    /// seed-independent — only the data varies), which is what lets the
    /// differential validator exercise each benchmark under several
    /// inputs instead of one fixed workload.
    pub setup: fn(&mut Memory, u64) -> Vec<Value>,
    /// Kernel launches over a full program run (outer iterations).
    pub invocations: f64,
    /// Work multiplier from interpreter-sized inputs to the paper's
    /// input class.
    pub scale: f64,
    /// Whether the paper's Figure 17/18 treats this benchmark as
    /// idiom-dominated ("covered").
    pub covered: bool,
    /// Whether the paper applied the lazy-copying runtime optimization
    /// (the red bars of Figure 18: CG, lbm, spmv, stencil).
    pub lazy: bool,
}

const N: usize = 512; // canonical 1-D array length
const GRID: usize = 24; // canonical 2-D grid edge

/// The input seed of the canonical (paper-shaped) workload.
pub const CANONICAL_SEED: u64 = 0;

/// Default seed set for differential validation: the canonical workload
/// plus two randomized input vectors.
pub const VALIDATION_SEEDS: [u64; 3] = [CANONICAL_SEED, 0x5EED_0001, 0x5EED_0002];

/// Mixes the benchmark-level input `seed` into a per-array `salt`
/// (splitmix-style odd-constant multiply) so every array gets an
/// independent stream and seed 0 reproduces the historical fixed data.
///
/// Shared with `progen`: generated programs seed their inputs through the
/// same helpers the hand-reconstructed suite uses, so multi-seed
/// differential validation behaves identically on both program sources.
#[must_use]
pub fn mix(seed: u64, salt: u64) -> u64 {
    salt.wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Allocates an `n`-element `double` array of seeded values in
/// `[-0.5, 0.5)` and returns its base address.
pub fn fill_f64(mem: &mut Memory, n: usize, seed: u64) -> u64 {
    let data: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) as f64) / (u32::MAX as f64) - 0.5
        })
        .collect();
    mem.alloc_f64_slice(&data)
}

/// Allocates an `n`-element `int` array of seeded values in
/// `[0, modulo)` (histogram keys, index vectors) and returns its base.
pub fn fill_i32_mod(mem: &mut Memory, n: usize, modulo: i32, seed: u64) -> u64 {
    let data: Vec<i32> = (0..n)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(2862933555777941757)
                .wrapping_add(seed);
            ((x >> 33) as i32).rem_euclid(modulo)
        })
        .collect();
    mem.alloc_i32_slice(&data)
}

/// Allocates an `n`-element zeroed `double` array (output buffers).
pub fn zeros_f64(mem: &mut Memory, n: usize) -> u64 {
    mem.alloc_f64_slice(&vec![0.0; n])
}

/// Allocates an `n`-element zeroed `int` array (bins, output buffers).
pub fn zeros_i32(mem: &mut Memory, n: usize) -> u64 {
    mem.alloc_i32_slice(&vec![0; n])
}

/// A CSR matrix with `rows` rows and about `per_row` entries per row,
/// returned as `(values, rowstr, colidx)` base addresses.
/// The sparsity structure is seed-independent; the values are seeded.
pub fn csr(mem: &mut Memory, rows: usize, per_row: usize, seed: u64) -> (u64, u64, u64) {
    let mut rowstr = Vec::with_capacity(rows + 1);
    let mut colidx = Vec::new();
    rowstr.push(0i32);
    for r in 0..rows {
        let k = 1 + (r * 7 + 3) % (2 * per_row);
        for j in 0..k {
            colidx.push(((r * 13 + j * 29) % rows) as i32);
        }
        rowstr.push(colidx.len() as i32);
    }
    let nnz = colidx.len();
    let vals = fill_f64(mem, nnz, mix(seed, 77));
    let rs = mem.alloc_i32_slice(&rowstr);
    let ci = mem.alloc_i32_slice(&colidx);
    (vals, rs, ci)
}

mod sources;
pub use sources::all;

#[cfg(test)]
mod tests {
    use super::*;
    use idioms::IdiomKind;
    use std::collections::BTreeMap;

    #[test]
    fn all_benchmarks_compile_and_run() {
        for b in all() {
            let module =
                minicc::compile(b.source, b.name).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            ssair::verify::verify_module(&module)
                .unwrap_or_else(|e| panic!("{}: {:?}", b.name, e[0]));
            let mut vm = interp::Machine::new(&module);
            let args = (b.setup)(&mut vm.mem, CANONICAL_SEED);
            vm.run(b.entry, &args)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn seeded_setups_vary_data_but_not_shape() {
        for b in all() {
            let mut m0 = interp::Memory::new();
            let mut m1 = interp::Memory::new();
            let a0 = (b.setup)(&mut m0, CANONICAL_SEED);
            let a1 = (b.setup)(&mut m1, 0x5EED_0001);
            // Same argument shapes and allocation layout ...
            assert_eq!(a0.len(), a1.len(), "{}", b.name);
            assert_eq!(m0.size(), m1.size(), "{}", b.name);
            assert_eq!(m0.allocations(), m1.allocations(), "{}", b.name);
            // ... but at least one array holds different data.
            let differs = m0.allocations().iter().any(|al| {
                (0..al.size_bytes() as u64).any(|off| {
                    m0.load_i8(al.base + off).unwrap() != m1.load_i8(al.base + off).unwrap()
                })
            });
            assert!(differs, "{}: seeds must change the input data", b.name);
        }
    }

    #[test]
    fn idiom_population_matches_the_paper_table_1() {
        // Paper Table 1, IDL row: 45 scalar reductions, 5 histogram
        // reductions, 6 stencils, 1 matrix op, 3 sparse matrix ops.
        let mut by_class: BTreeMap<&str, usize> = BTreeMap::new();
        for b in all() {
            let module = minicc::compile(b.source, b.name).unwrap();
            for inst in idioms::detect_module(&module) {
                *by_class.entry(inst.kind.class_label()).or_default() += 1;
            }
        }
        assert_eq!(
            by_class.get("Scalar Reduction").copied().unwrap_or(0),
            45,
            "{by_class:?}"
        );
        assert_eq!(
            by_class.get("Histogram Reduction").copied().unwrap_or(0),
            5,
            "{by_class:?}"
        );
        assert_eq!(
            by_class.get("Stencil").copied().unwrap_or(0),
            6,
            "{by_class:?}"
        );
        assert_eq!(
            by_class.get("Matrix Op.").copied().unwrap_or(0),
            1,
            "{by_class:?}"
        );
        assert_eq!(
            by_class.get("Sparse Matrix Op.").copied().unwrap_or(0),
            3,
            "{by_class:?}"
        );
    }

    #[test]
    fn baseline_population_matches_the_paper_table_1() {
        // Paper Table 1: Polly 3 reductions + 5 stencils; ICC 28 reductions.
        let (mut polly_red, mut polly_st, mut icc_red) = (0, 0, 0);
        for b in all() {
            let module = minicc::compile(b.source, b.name).unwrap();
            for f in &module.functions {
                let p = baselines::polly_detect(f);
                polly_red += p.reductions();
                polly_st += p.stencils();
                icc_red += baselines::icc_detect(f).reductions();
            }
        }
        assert_eq!(polly_red, 3, "Polly reductions");
        assert_eq!(polly_st, 5, "Polly stencils");
        assert_eq!(icc_red, 28, "ICC reductions");
    }

    #[test]
    fn covered_benchmarks_have_dominant_idiom_coverage() {
        for b in all() {
            let module = minicc::compile(b.source, b.name).unwrap();
            let mut vm = interp::Machine::new(&module);
            let args = (b.setup)(&mut vm.mem, CANONICAL_SEED);
            vm.run(b.entry, &args).unwrap();
            // Coverage: cost inside detected idiom regions / total cost.
            let mut covered_cost = 0.0;
            let mut total = 0.0;
            for f in &module.functions {
                total += vm.profile.total_cost(f);
                for inst in idioms::detect(f) {
                    covered_cost += vm.profile.region_cost(f, |v| {
                        inst.blocks.iter().any(|&blk| {
                            module
                                .function(&f.name)
                                .unwrap()
                                .block(blk)
                                .instrs
                                .contains(&v)
                        })
                    });
                }
            }
            let cov = covered_cost / total.max(1.0);
            if b.covered && b.name != "EP" {
                assert!(cov > 0.5, "{}: coverage {cov:.2} should dominate", b.name);
            }
            if b.name == "EP" {
                assert!(
                    cov > 0.25 && cov < 0.85,
                    "{}: coverage {cov:.2} ~ 50%",
                    b.name
                );
            }
            if !b.covered {
                assert!(cov < 0.5, "{}: coverage {cov:.2} should be minor", b.name);
            }
        }
    }

    #[test]
    fn parallel_driver_matches_serial_detection_over_the_whole_suite() {
        // The parallel module driver must be byte-identical to the serial
        // per-function loop on every benchmark of the suite: same
        // instances, same order, same bindings.
        for b in all() {
            let module = minicc::compile(b.source, b.name).unwrap();
            let serial: Vec<idioms::IdiomInstance> =
                module.functions.iter().flat_map(idioms::detect).collect();
            let parallel = idioms::detect_module(&module);
            assert_eq!(serial, parallel, "{}: parallel != serial", b.name);
        }
    }

    #[test]
    fn suite_detection_is_complete_under_default_budgets() {
        // The default budgets must be generous enough that no benchmark's
        // detection is silently truncated (the Table-1 counts are real).
        for b in all() {
            let module = minicc::compile(b.source, b.name).unwrap();
            for (f, d) in module
                .functions
                .iter()
                .map(|f| (f, idioms::detect_with(f, &idioms::DetectOptions::default())))
            {
                assert!(d.complete, "{}::{} detection truncated", b.name, f.name);
            }
        }
    }

    #[test]
    fn truncated_suite_detection_surfaces_incompleteness_and_recovers() {
        // Module-scale budget exhaustion: with a tiny step budget the
        // solver must cut off cleanly — `complete == false` on at least
        // one function, never a panic — and an undercount must never
        // masquerade as the true population. A full-budget rerun of the
        // same modules must then restore the paper's 60 instances.
        let modules: Vec<ssair::Module> = all()
            .iter()
            .map(|b| minicc::compile(b.source, b.name).unwrap())
            .collect();
        let tiny = idioms::DetectOptions {
            max_steps: 50,
            ..idioms::DetectOptions::default()
        };
        let mut truncated = 0usize;
        let mut tiny_instances = 0usize;
        for m in &modules {
            for f in &m.functions {
                let d = idioms::detect_with(f, &tiny);
                if !d.complete {
                    truncated += 1;
                    // Documented budget accounting (see idioms::detect_kinds_with):
                    // per kind at most max_steps for the seeded attempt plus
                    // max_steps for the unseeded fallback, plus max_steps per
                    // distinct skeleton key for the shared prepass.
                    let bound = tiny.max_steps
                        * (2 * idioms::IdiomKind::ALL.len() as u64
                            + idioms::skeleton_key_count() as u64);
                    assert!(
                        d.steps <= bound,
                        "{}: budget must bound the work, spent {} (bound {bound})",
                        f.name,
                        d.steps
                    );
                }
                tiny_instances += d.instances.len();
            }
        }
        assert!(
            truncated > 0,
            "a 50-step budget must truncate somewhere across the suite"
        );
        let full_instances: usize = modules.iter().map(|m| idioms::detect_module(m).len()).sum();
        assert_eq!(full_instances, 60, "full budget restores the population");
        assert!(
            tiny_instances < full_instances,
            "the undercount ({tiny_instances}) must stay visible below the true population"
        );
    }

    #[test]
    fn spmv_benchmarks_detect_sparse_ops() {
        for name in ["CG", "spmv"] {
            let b = all().into_iter().find(|b| b.name == name).unwrap();
            let module = minicc::compile(b.source, b.name).unwrap();
            let found = module
                .functions
                .iter()
                .flat_map(idioms::detect)
                .any(|i| i.kind == IdiomKind::Spmv);
            assert!(found, "{name} must contain SPMV");
        }
    }
}
