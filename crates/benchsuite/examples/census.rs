fn main() {
    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).unwrap();
        for inst in idioms::detect_module(&module) {
            println!("{:10} {:20} {:?}", b.name, inst.function, inst.kind);
        }
    }
}
