fn main() {
    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).unwrap();
        for f in &module.functions {
            for inst in idioms::detect(f) {
                println!("{:10} {:20} {:?}", b.name, f.name, inst.kind);
            }
        }
    }
}
