//! # idioms — the idiom library (paper §4)
//!
//! This crate ships the IDL sources of every idiom the paper detects —
//! generalized matrix multiplication, sparse matrix-vector multiplication
//! over CSR, generalized scalar reductions, generalized histograms, and
//! 1D/2D stencils — together with the building blocks they inherit
//! (`For`, `ForNest`, `VectorRead/Store`, `MatrixRead/Store`, `ReadRange`,
//! `DotProductLoop`, index/offset chains). The whole library is plain IDL
//! text (see `idl/*.idl`), staying within the paper's "≈500 lines of IDL"
//! budget, and is compiled through the `idl` crate and searched with the
//! `solver` crate.
//!
//! [`detect`] runs every idiom over a function and post-processes raw
//! solver solutions into deduplicated [`IdiomInstance`]s;
//! [`detect_module`] fans the per-function searches out over scoped
//! threads (functions are independent) and re-assembles the results in
//! deterministic module order, and [`detect_with`] additionally reports
//! solver cost and whether any search was truncated by a limit
//! ([`Detection`]). Post-processing:
//!
//! * solver symmetries (commuted operands, transposed matrix roles)
//!   collapse onto one instance per anchor instruction;
//! * structurally-contained matches of lower-priority idioms are
//!   suppressed (the dot-product loop inside a GEMM *is* a scalar
//!   reduction, but the paper reports it as GEMM).

pub use analysis::{ParallelSafety, SafetyCertificate};
use idl::{CompiledConstraint, Library, VarId};
use solver::{RowsOutcome, Solution, SolveOptions, SolveOutcome, Solver};
use ssair::analysis::AffineMap;
use ssair::{BlockId, Function, Module, ValueId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The building-block IDL source (paper §4.1).
pub const BUILDING_BLOCKS_IDL: &str = include_str!("../idl/building_blocks.idl");
/// The top-level idiom IDL source (paper §4.2, Figures 10–14).
pub const IDIOMS_IDL: &str = include_str!("../idl/idioms.idl");

/// The idiom classes of the paper's evaluation (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdiomKind {
    /// Dense matrix multiplication (`GEMM`).
    Gemm,
    /// Sparse matrix-vector multiplication over CSR (`SPMV`).
    Spmv,
    /// Two-dimensional stencil.
    Stencil2D,
    /// One-dimensional stencil.
    Stencil1D,
    /// Generalized histogram (indirect read-modify-write).
    Histogram,
    /// Generalized scalar reduction.
    Reduction,
}

impl IdiomKind {
    /// All kinds in detection-priority order (most specific first).
    pub const ALL: [IdiomKind; 6] = [
        IdiomKind::Gemm,
        IdiomKind::Spmv,
        IdiomKind::Stencil2D,
        IdiomKind::Stencil1D,
        IdiomKind::Histogram,
        IdiomKind::Reduction,
    ];

    /// The IDL constraint name.
    #[must_use]
    pub fn constraint_name(self) -> &'static str {
        match self {
            IdiomKind::Gemm => "GEMM",
            IdiomKind::Spmv => "SPMV",
            IdiomKind::Stencil2D => "Stencil2D",
            IdiomKind::Stencil1D => "Stencil1D",
            IdiomKind::Histogram => "Histogram",
            IdiomKind::Reduction => "Reduction",
        }
    }

    /// The idiom class label used in Table 1 / Figure 16.
    #[must_use]
    pub fn class_label(self) -> &'static str {
        match self {
            IdiomKind::Gemm => "Matrix Op.",
            IdiomKind::Spmv => "Sparse Matrix Op.",
            IdiomKind::Stencil1D | IdiomKind::Stencil2D => "Stencil",
            IdiomKind::Histogram => "Histogram Reduction",
            IdiomKind::Reduction => "Scalar Reduction",
        }
    }

    fn anchor_var(self) -> &'static str {
        match self {
            IdiomKind::Gemm => "output.store",
            IdiomKind::Spmv => "output.store",
            IdiomKind::Stencil2D | IdiomKind::Stencil1D => "write.store",
            IdiomKind::Histogram => "store",
            IdiomKind::Reduction => "acc",
        }
    }

    /// The binding name of the outermost loop's iterator phi — the value
    /// that anchors the replacement region.
    #[must_use]
    pub fn outer_iterator_var(self) -> &'static str {
        match self {
            IdiomKind::Gemm | IdiomKind::Stencil2D => "loop[0].iterator",
            _ => "iterator",
        }
    }
}

/// The parsed idiom library (building blocks + idioms), shared process-wide.
pub fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        let mut src = String::from(BUILDING_BLOCKS_IDL);
        src.push('\n');
        src.push_str(IDIOMS_IDL);
        idl::parse_library(&src).expect("the bundled idiom library parses")
    })
}

/// The compiled constraint for one idiom kind (compiled once, process-wide).
pub fn compiled(kind: IdiomKind) -> &'static CompiledConstraint {
    static CACHE: OnceLock<BTreeMap<IdiomKind, CompiledConstraint>> = OnceLock::new();
    let map = CACHE.get_or_init(|| {
        IdiomKind::ALL
            .iter()
            .map(|&k| {
                let c = idl::compile(library(), k.constraint_name())
                    .expect("the bundled idiom library compiles");
                (k, c)
            })
            .collect()
    });
    &map[&kind]
}

/// Total line count of the bundled IDL (the paper reports ≈500 lines for
/// its full idiom set; ours is kept in the same budget).
#[must_use]
pub fn idl_line_count() -> usize {
    BUILDING_BLOCKS_IDL.lines().count() + IDIOMS_IDL.lines().count()
}

/// Cache key of one shared loop skeleton *chain*: the reconstructed IDL
/// clause text of every marker in the chain, joined with `" and "`
/// (e.g. `"inherits For and inherits LoopAccumulator"`). Idioms whose
/// compiled constraints carry the same chain text share one cache entry.
pub type SkeletonKey = String;

/// The per-idiom skeleton chain, precomputed once: the cache key, the
/// idiom-side variables the chain binds (deduplicated in first-occurrence
/// order — exactly the seed prefix of the idiom's variable ordering), and
/// for each such variable the column of the standalone chain constraint's
/// solution rows that carries its value.
struct ChainInfo {
    key: SkeletonKey,
    seed_vars: Vec<VarId>,
    columns: Vec<usize>,
}

fn chain_info(kind: IdiomKind) -> Option<&'static ChainInfo> {
    static CACHE: OnceLock<BTreeMap<IdiomKind, ChainInfo>> = OnceLock::new();
    let map = CACHE.get_or_init(|| {
        let mut map = BTreeMap::new();
        for kind in IdiomKind::ALL {
            let c = compiled(kind);
            if c.skeletons.is_empty() {
                continue;
            }
            let key: SkeletonKey = c
                .skeletons
                .iter()
                .map(idl::SkeletonRef::clause)
                .collect::<Vec<_>>()
                .join(" and ");
            let mut seed_vars: Vec<VarId> = Vec::new();
            for s in &c.skeletons {
                for &v in &s.vars {
                    if !seed_vars.contains(&v) {
                        seed_vars.push(v);
                    }
                }
            }
            // The standalone chain constraint reuses the idiom's flattened
            // variable names (the clauses are reconstructed with the same
            // renames/rebase), so columns are resolved by name.
            let standalone = &skeleton_constraints()[&key];
            let columns: Vec<usize> = seed_vars
                .iter()
                .map(|&v| {
                    let name = c.var_name(v);
                    standalone
                        .variables
                        .iter()
                        .position(|&w| standalone.var_name(w) == name)
                        .unwrap_or_else(|| {
                            panic!(
                                "skeleton chain of {kind:?}: variable {name:?} \
                                 missing from standalone chain {key:?}"
                            )
                        })
                })
                .collect();
            assert_eq!(
                standalone.variables.len(),
                seed_vars.len(),
                "skeleton chain of {kind:?}: standalone variables must align \
                 with the chain markers"
            );
            map.insert(
                kind,
                ChainInfo {
                    key,
                    seed_vars,
                    columns,
                },
            );
        }
        map
    });
    map.get(&kind)
}

/// The standalone-compiled skeleton chains the idiom library shares,
/// compiled once process-wide. Each entry is the chain's clause text
/// re-parsed against the building-block library as
/// `Constraint __Skeleton ( <clauses> ) End` — the expansion is the same
/// subtree the idiom embeds, under the same flattened variable names.
pub fn skeleton_constraints() -> &'static BTreeMap<SkeletonKey, CompiledConstraint> {
    static CACHE: OnceLock<BTreeMap<SkeletonKey, CompiledConstraint>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut map = BTreeMap::new();
        for kind in IdiomKind::ALL {
            let c = compiled(kind);
            if c.skeletons.is_empty() {
                continue;
            }
            let clauses: Vec<String> = c.skeletons.iter().map(idl::SkeletonRef::clause).collect();
            let key: SkeletonKey = clauses.join(" and ");
            if map.contains_key(&key) {
                continue;
            }
            let src = format!("{BUILDING_BLOCKS_IDL}\nConstraint __Skeleton ( {key} ) End");
            let lib = idl::parse_library(&src).expect("skeleton wrapper parses");
            let sc = idl::compile(&lib, "__Skeleton").expect("skeleton wrapper compiles");
            map.insert(key, sc);
        }
        // Also ship every composite chain's leading clause as its own
        // standalone (e.g. `inherits ForNest(N=3)` from the GEMM chain):
        // that makes it a seedable prefix for `chain_prefix`, and pure
        // nest prefixes are then synthesized from `For` rows without a
        // search (see `SkeletonCache::nest_rows`).
        let prefixes: Vec<SkeletonKey> = map
            .values()
            .filter(|c| c.skeletons.len() >= 2)
            .map(|c| c.skeletons[0].clause())
            .filter(|k| !map.contains_key(k))
            .collect();
        for key in prefixes {
            let src = format!("{BUILDING_BLOCKS_IDL}\nConstraint __Skeleton ( {key} ) End");
            let lib = idl::parse_library(&src).expect("skeleton prefix parses");
            let sc = idl::compile(&lib, "__Skeleton").expect("skeleton prefix compiles");
            map.insert(key, sc);
        }
        map
    })
}

/// Number of distinct skeleton cache keys across the idiom library (the
/// prepass solves at most this many extra searches per function — the
/// bound tests use for budget accounting).
#[must_use]
pub fn skeleton_key_count() -> usize {
    skeleton_constraints().len()
}

/// Per-function cache of solved loop skeletons: for each key, the
/// solution rows aligned with the standalone block's `variables` —
/// or `None` when the skeleton solve itself was truncated (consumers
/// then fall back to the unseeded search, preserving the exact PR-2
/// budget semantics).
struct SkeletonCache {
    solved: HashMap<SkeletonKey, Option<Vec<Vec<ValueId>>>>,
    /// Steps spent solving skeletons (accounted once per function,
    /// reported separately in [`Detection::skeleton_steps`]).
    steps: u64,
}

impl SkeletonCache {
    fn new() -> SkeletonCache {
        SkeletonCache {
            solved: HashMap::new(),
            steps: 0,
        }
    }

    /// Solutions for `key` on `solver`'s function, solving on first use.
    fn get(
        &mut self,
        solver: &Solver,
        key: &SkeletonKey,
        max_steps: u64,
    ) -> Option<&Vec<Vec<ValueId>>> {
        if !self.solved.contains_key(key) {
            if let Some(rows) = self.nest_rows(solver, key, max_steps) {
                self.solved.insert(key.clone(), Some(rows));
            }
        }
        if !self.solved.contains_key(key) {
            let c = &skeleton_constraints()[key];
            let opts = SolveOptions {
                // No solution cap: the row count is bounded by the
                // step budget, and a capped skeleton would poison
                // every consumer.
                max_solutions: usize::MAX,
                max_steps,
            };
            let out = self.solve_chain(solver, key, c, &opts);
            self.steps += out.steps;
            let rows = out.complete.then_some(out.rows);
            self.solved.insert(key.clone(), rows);
        }
        self.solved[key].as_ref()
    }

    /// Solves one standalone chain constraint, seeding a composite chain
    /// from its leading marker's plain chain when the library also ships
    /// that prefix as its own key (e.g. `For + LoopAccumulator` seeds
    /// from the cached `For` rows instead of re-proving the loop shape).
    /// Sound and exact for the same reason idiom seeding is: every
    /// composite solution satisfies the leading clause, so its projection
    /// onto the clause's variables — an order prefix, by the chain
    /// ordering seed — appears among the prefix chain's complete rows.
    fn solve_chain(
        &mut self,
        solver: &Solver,
        key: &SkeletonKey,
        c: &CompiledConstraint,
        opts: &SolveOptions,
    ) -> RowsOutcome {
        if let Some(prefix) = chain_prefix(key) {
            let seeds: Option<Vec<Vec<(VarId, ValueId)>>> =
                self.get(solver, &prefix.key, opts.max_steps).map(|rows| {
                    rows.iter()
                        .map(|row| {
                            prefix
                                .seed_vars
                                .iter()
                                .copied()
                                .zip(prefix.columns.iter().map(|&col| row[col]))
                                .collect()
                        })
                        .collect()
                });
            if let Some(seeds) = seeds {
                let seeded = solver.solve_seeded_rows(c, &seeds, &c.variables, opts);
                if seeded.complete {
                    return seeded;
                }
                // Truncated: rerun unseeded (same budget semantics as the
                // cache-free path), billing the seeded attempt's steps.
                let mut fallback = solver.solve_rows(c, &c.variables, opts);
                fallback.steps += seeded.steps;
                return fallback;
            }
        }
        solver.solve_rows(c, &c.variables, opts)
    }

    /// Synthesizes the rows of a pure loop-nest chain
    /// (`inherits ForNest(N=k)`) from already-cached rows, with zero
    /// solver steps: a `ForNest(k)` expansion is exactly
    /// `ForNest(k-1) ∧ For ∧` the two nesting legs between loops `k-2`
    /// and `k-1`, so its solution set is the filtered cross product —
    /// each candidate pair is kept iff the outer iterator strictly
    /// dominates the inner one and the outer comparison strictly
    /// post-dominates the inner one (the atoms' exact value-level
    /// semantics, via the solver's dominance helpers). Projection onto
    /// the constituent blocks is complete for the same reason chain
    /// seeding is sound. Returns `None` when `key` is not a pure nest
    /// chain or a constituent solve was truncated — callers then fall
    /// back to the ordinary search with unchanged budget semantics.
    fn nest_rows(
        &mut self,
        solver: &Solver,
        key: &SkeletonKey,
        max_steps: u64,
    ) -> Option<Vec<Vec<ValueId>>> {
        let plan = nest_plan(key)?;
        let prev = self.get(solver, &plan.prev_key, max_steps)?.clone();
        let fors = self
            .get(solver, &"inherits For".to_string(), max_steps)?
            .clone();
        let mut rows = Vec::new();
        for p in &prev {
            for r in &fors {
                if solver.value_strictly_dominates(p[plan.prev_it], r[plan.for_it])
                    && solver.value_strictly_post_dominates(p[plan.prev_cmp], r[plan.for_cmp])
                {
                    rows.push(
                        plan.map
                            .iter()
                            .map(|&(from_for, col)| if from_for { r[col] } else { p[col] })
                            .collect(),
                    );
                }
            }
        }
        Some(rows)
    }
}

/// Column plan for synthesizing `ForNest(k)` rows (see
/// [`SkeletonCache::nest_rows`]): where each variable of the nest
/// standalone comes from (`ForNest(k-1)` row or `For` row), plus the
/// columns the two nesting legs test.
struct NestPlan {
    prev_key: SkeletonKey,
    /// Per target column: `(true, c)` = column `c` of the `For` row
    /// (loop `k-1`), `(false, c)` = column `c` of the prefix row.
    map: Vec<(bool, usize)>,
    prev_it: usize,
    prev_cmp: usize,
    for_it: usize,
    for_cmp: usize,
}

/// The synthesis plan of a pure nest chain key, computed once
/// process-wide; `None` for every other key.
fn nest_plan(key: &SkeletonKey) -> Option<&'static NestPlan> {
    static CACHE: OnceLock<BTreeMap<SkeletonKey, Option<NestPlan>>> = OnceLock::new();
    let map = CACHE.get_or_init(|| {
        skeleton_constraints()
            .keys()
            .map(|key| (key.clone(), build_nest_plan(key)))
            .collect()
    });
    map.get(key)?.as_ref()
}

fn build_nest_plan(key: &SkeletonKey) -> Option<NestPlan> {
    let k: u32 = key
        .strip_prefix("inherits ForNest(N=")?
        .strip_suffix(')')?
        .parse()
        .ok()?;
    if k < 2 {
        return None;
    }
    let prev_key: SkeletonKey = if k == 2 {
        "inherits For".to_string()
    } else {
        format!("inherits ForNest(N={})", k - 1)
    };
    let target = skeleton_constraints().get(key)?;
    let prev = skeleton_constraints().get(&prev_key)?;
    let fors = skeleton_constraints().get(&"inherits For".to_string())?;
    let col_of = |c: &idl::CompiledConstraint, name: &str| -> Option<usize> {
        c.variables.iter().position(|&v| c.var_name(v) == name)
    };
    let inner_prefix = format!("loop[{}].", k - 1);
    let map: Vec<(bool, usize)> = target
        .variables
        .iter()
        .map(|&v| {
            let name = target.var_name(v);
            if let Some(plain) = name.strip_prefix(&inner_prefix) {
                (
                    true,
                    col_of(fors, plain).expect("nest inner variable maps to For"),
                )
            } else {
                // Prefix rows: exact name for k ≥ 3, `loop[0].`-stripped
                // for the k = 2 case where the prefix is plain `For`.
                let col =
                    col_of(prev, name).or_else(|| col_of(prev, name.strip_prefix("loop[0].")?));
                (
                    false,
                    col.expect("nest prefix variable maps to the prefix chain"),
                )
            }
        })
        .collect();
    let outer = format!("loop[{}].", k - 2);
    let prev_col = |plain: &str| -> usize {
        col_of(prev, &format!("{outer}{plain}"))
            .or_else(|| col_of(prev, plain))
            .expect("nesting-leg variable present in the prefix chain")
    };
    Some(NestPlan {
        prev_it: prev_col("iterator"),
        prev_cmp: prev_col("comparison"),
        for_it: col_of(fors, "iterator").expect("For has an iterator"),
        for_cmp: col_of(fors, "comparison").expect("For has a comparison"),
        prev_key,
        map,
    })
}

/// The seeding prefix of a composite standalone chain constraint: its
/// first marker's clause, when that clause is itself a library chain key.
/// Computed once per composite key, process-wide.
fn chain_prefix(key: &SkeletonKey) -> Option<&'static ChainInfo> {
    static CACHE: OnceLock<BTreeMap<SkeletonKey, Option<ChainInfo>>> = OnceLock::new();
    let map = CACHE.get_or_init(|| {
        skeleton_constraints()
            .iter()
            .map(|(key, c)| {
                let info = (c.skeletons.len() >= 2)
                    .then(|| {
                        let first = &c.skeletons[0];
                        let prefix_key: SkeletonKey = first.clause();
                        let standalone = skeleton_constraints().get(&prefix_key)?;
                        let mut seed_vars: Vec<VarId> = Vec::new();
                        for &v in &first.vars {
                            if !seed_vars.contains(&v) {
                                seed_vars.push(v);
                            }
                        }
                        // Same name-resolution as `chain_info`: the prefix
                        // standalone reuses the clause's flattened names.
                        let columns: Vec<usize> = seed_vars
                            .iter()
                            .map(|&v| {
                                let name = c.var_name(v);
                                standalone
                                    .variables
                                    .iter()
                                    .position(|&w| standalone.var_name(w) == name)
                                    .unwrap_or_else(|| {
                                        panic!(
                                            "chain prefix {prefix_key:?}: variable \
                                             {name:?} missing from the standalone"
                                        )
                                    })
                            })
                            .collect();
                        assert_eq!(standalone.variables.len(), seed_vars.len());
                        Some(ChainInfo {
                            key: prefix_key,
                            seed_vars,
                            columns,
                        })
                    })
                    .flatten();
                (key.clone(), info)
            })
            .collect()
    });
    map[key].as_ref()
}

/// One detected idiom instance in a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdiomInstance {
    /// The idiom class.
    pub kind: IdiomKind,
    /// Function the instance was found in.
    pub function: String,
    /// The full solver bindings (Figure 5 of the paper).
    pub bindings: BTreeMap<String, ValueId>,
    /// The anchoring instruction (the store that is deleted on
    /// replacement, or the accumulator phi for scalar reductions).
    pub anchor: ValueId,
    /// Blocks of the outermost matched loop — the replacement region and
    /// the unit of runtime-coverage accounting.
    pub blocks: Vec<BlockId>,
    /// The provisional parallel-safety certificate of the region
    /// (`analysis::classify_region` with intra-function facts only — no
    /// call-site alias facts, which need the whole module and are folded
    /// in by the transform driver).
    pub certificate: SafetyCertificate,
}

impl IdiomInstance {
    /// Binding lookup.
    #[must_use]
    pub fn value(&self, var: &str) -> Option<ValueId> {
        self.bindings.get(var).copied()
    }

    /// All bound members of the family `name` (e.g. `read_value`), in
    /// index order.
    #[must_use]
    pub fn family(&self, name: &str) -> Vec<ValueId> {
        let prefix = format!("{name}[");
        let mut found: Vec<(usize, ValueId)> = Vec::new();
        for (k, &v) in &self.bindings {
            if let Some(rest) = k.strip_prefix(&prefix) {
                if let Some(close) = rest.find(']') {
                    if rest[close + 1..].is_empty() {
                        if let Ok(i) = rest[..close].parse() {
                            found.push((i, v));
                        }
                    }
                }
            }
        }
        found.sort_by_key(|&(i, _)| i);
        found.into_iter().map(|(_, v)| v).collect()
    }

    /// Recomputes [`IdiomInstance::blocks`] against the *current* state of
    /// `f`.
    ///
    /// Block ids are compacted when a replacement excises a loop
    /// (`remove_unreachable_blocks`), so an instance detected before an
    /// earlier replacement in the same function must refresh its region
    /// before being applied. Value ids are stable across excision, which
    /// is why re-anchoring on the outer iterator phi works. Returns
    /// `false` (leaving `blocks` untouched) when the iterator is no
    /// longer placed in `f` — i.e. the instance's loop no longer exists.
    pub fn refresh_blocks(&mut self, f: &Function) -> bool {
        let Some(iter) = self.value(self.kind.outer_iterator_var()) else {
            return false;
        };
        let Some(header) = f.find_block_of(iter) else {
            return false;
        };
        let cfg = ssair::analysis::Cfg::new(f);
        let dom = ssair::analysis::DomTree::dominators(&cfg);
        let loops = ssair::analysis::LoopForest::new(&cfg, &dom);
        self.blocks = loops
            .loop_with_header(header)
            .map(|l| l.blocks.clone())
            .unwrap_or_else(|| vec![header]);
        true
    }
}

/// Detection limits.
#[derive(Debug, Clone)]
pub struct DetectOptions {
    /// Per-idiom cap on raw solver solutions.
    pub max_solutions: usize,
    /// Solver step budget per idiom per function.
    pub max_steps: u64,
    /// Suppress lower-priority matches contained in higher-priority ones
    /// (paper reports the most specific idiom per region).
    pub suppress_contained: bool,
    /// Solve the shared loop-skeleton chains once per function and seed
    /// every idiom's search from the cached solutions. `false` selects
    /// the compatibility slow path (each idiom re-enumerates its loop
    /// headers) — detection output is identical either way, which the
    /// differential tests pin.
    pub skeleton_prepass: bool,
    /// Fingerprint each function once and skip every idiom whose
    /// requirement signature ([`analysis::IdiomRequirements`]) the
    /// fingerprint cannot satisfy — the pair is proven matchless with
    /// zero solver steps. `false` selects the compatibility path; the
    /// instance output is identical either way (requirements are
    /// *necessary* conditions), which the differential tests pin.
    pub fingerprint_prepass: bool,
}

impl Default for DetectOptions {
    fn default() -> DetectOptions {
        DetectOptions {
            max_solutions: 128,
            max_steps: 20_000_000,
            suppress_contained: true,
            skeleton_prepass: true,
            fingerprint_prepass: true,
        }
    }
}

/// The outcome of running the full idiom library over one function.
///
/// Detection that hits a solver limit (`max_solutions`/`max_steps`) may
/// silently miss instances; `complete` surfaces that truncation so
/// callers can widen the budget or flag the result, instead of treating
/// an undercount as the true population.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Deduplicated, priority-filtered instances.
    pub instances: Vec<IdiomInstance>,
    /// `false` if any idiom's search was cut off by a limit.
    pub complete: bool,
    /// Total solver assignment steps across all idioms, *including*
    /// `skeleton_steps`.
    pub steps: u64,
    /// Solver steps per idiom kind (the per-idiom cost profile; excludes
    /// the shared skeleton prepass).
    pub steps_by_kind: BTreeMap<IdiomKind, u64>,
    /// Steps spent solving the shared loop skeletons, accounted once per
    /// function (not split across the consuming idioms).
    pub skeleton_steps: u64,
    /// Idiom×function pairs the fingerprint prepass proved matchless and
    /// skipped without touching the solver.
    pub pruned_pairs: u64,
}

impl Detection {
    /// Instance count per parallel-safety class (the certificate census
    /// the benchmark artifacts record).
    #[must_use]
    pub fn certificate_counts(&self) -> BTreeMap<ParallelSafety, u64> {
        let mut counts = BTreeMap::new();
        for inst in &self.instances {
            *counts.entry(inst.certificate.safety).or_insert(0) += 1;
        }
        counts
    }
}

/// Runs the full idiom library over `f` and returns deduplicated,
/// priority-filtered instances.
#[must_use]
pub fn detect(f: &Function) -> Vec<IdiomInstance> {
    detect_with(f, &DetectOptions::default()).instances
}

/// [`detect`] with explicit limits, reporting completeness and cost.
#[must_use]
pub fn detect_with(f: &Function, opts: &DetectOptions) -> Detection {
    detect_kinds_with(f, &IdiomKind::ALL, opts)
}

/// [`detect_with`] restricted to a subset of idiom kinds (the per-idiom
/// benchmarks time each kind in isolation through this).
///
/// Budget accounting: each kind's search gets `opts.max_steps`; the
/// skeleton prepass spends at most `opts.max_steps` per distinct
/// skeleton key (charged once per function, reported in
/// [`Detection::skeleton_steps`]); and a seeded search that hits a limit
/// falls back to one unseeded search under the same per-kind budget. A
/// detection pass over `k` kinds is therefore bounded by
/// `(2·k + skeleton_key_count()) · max_steps` total steps.
#[must_use]
pub fn detect_kinds_with(f: &Function, kinds: &[IdiomKind], opts: &DetectOptions) -> Detection {
    let solver = Solver::new(f);
    let solve_opts = SolveOptions {
        max_solutions: opts.max_solutions,
        max_steps: opts.max_steps,
    };
    // The solver already computed every analysis detection needs.
    let an = solver.analyses();
    let affine = AffineMap::new(f, an);
    let fingerprint = opts
        .fingerprint_prepass
        .then(|| analysis::FunctionFingerprint::with_loops(f, &an.loops));
    let mut skeletons = SkeletonCache::new();
    let mut out: Vec<IdiomInstance> = Vec::new();
    let mut complete = true;
    let mut steps = 0u64;
    let mut steps_by_kind = BTreeMap::new();
    let mut pruned_pairs = 0u64;
    for &kind in kinds {
        if let Some(fp) = &fingerprint {
            if !requirements(kind).admitted_by(fp) {
                // Proven matchless: a necessary condition of the idiom is
                // absent from the function. Zero solver steps, and the
                // search stays complete — "no instances" is exact.
                pruned_pairs += 1;
                steps_by_kind.insert(kind, 0);
                continue;
            }
        }
        let c = compiled(kind);
        let res = solve_idiom(&solver, c, kind, opts, &solve_opts, &mut skeletons);
        complete &= res.complete;
        steps += res.steps;
        steps_by_kind.insert(kind, res.steps);
        let mut seen_anchor: Vec<ValueId> = Vec::new();
        for sol in &res.solutions {
            let Some(inst) = instance_from_solution(f, an, &affine, kind, sol) else {
                continue;
            };
            if seen_anchor.contains(&inst.anchor) {
                continue; // operand-order / transposition symmetry
            }
            if opts.suppress_contained
                && out.iter().any(|prev| {
                    prev.kind != kind && inst.blocks.iter().all(|b| prev.blocks.contains(b))
                })
            {
                continue; // e.g. the dot-product reduction inside a GEMM
            }
            seen_anchor.push(inst.anchor);
            out.push(inst);
        }
    }
    Detection {
        instances: out,
        complete,
        steps: steps + skeletons.steps,
        steps_by_kind,
        skeleton_steps: skeletons.steps,
        pruned_pairs,
    }
}

/// The requirement signature of one idiom kind (derived once,
/// process-wide, from the compiled constraint).
pub fn requirements(kind: IdiomKind) -> &'static analysis::IdiomRequirements {
    static CACHE: OnceLock<BTreeMap<IdiomKind, analysis::IdiomRequirements>> = OnceLock::new();
    let map = CACHE.get_or_init(|| {
        IdiomKind::ALL
            .iter()
            .map(|&k| (k, analysis::IdiomRequirements::of(compiled(k))))
            .collect()
    });
    &map[&kind]
}

/// Solves one idiom, seeding from the per-function skeleton cache when
/// possible.
///
/// The seeded search enumerates exactly the unseeded solution set (the
/// solver returns both in canonical order, so the outcomes are
/// byte-identical) *when everything completes*; any truncation — of the
/// skeleton solve or of the seeded search itself — falls back to the
/// plain search so limit semantics stay exactly as without the cache.
fn solve_idiom(
    solver: &Solver,
    c: &CompiledConstraint,
    kind: IdiomKind,
    opts: &DetectOptions,
    solve_opts: &SolveOptions,
    skeletons: &mut SkeletonCache,
) -> SolveOutcome {
    if opts.skeleton_prepass {
        if let Some(chain) = chain_info(kind) {
            if let Some(rows) = skeletons.get(solver, &chain.key, opts.max_steps) {
                let seeds: Vec<Vec<(VarId, ValueId)>> = rows
                    .iter()
                    .map(|row| {
                        chain
                            .seed_vars
                            .iter()
                            .copied()
                            .zip(chain.columns.iter().map(|&col| row[col]))
                            .collect()
                    })
                    .collect();
                let seeded = solver.solve_seeded_outcome(c, &seeds, solve_opts);
                if seeded.complete {
                    return seeded;
                }
                // Truncated: rerun unseeded so limit behaviour matches
                // the cache-free path exactly, but keep the seeded
                // attempt's steps in the bill — the work was done.
                let mut fallback = solver.solve_outcome(c, solve_opts);
                fallback.steps += seeded.steps;
                return fallback;
            }
        }
    }
    solver.solve_outcome(c, solve_opts)
}

/// Runs detection over every function of `m` in parallel and returns the
/// instances in function order — byte-identical to running [`detect`] on
/// each function serially, because per-function detection is independent
/// and results are stitched back in module order.
#[must_use]
pub fn detect_module(m: &Module) -> Vec<IdiomInstance> {
    detect_module_with(m, &DetectOptions::default())
}

/// [`detect_module`] with explicit limits.
#[must_use]
pub fn detect_module_with(m: &Module, opts: &DetectOptions) -> Vec<IdiomInstance> {
    let fs: Vec<&Function> = m.functions.iter().collect();
    detect_functions(&fs, opts)
        .into_iter()
        .flat_map(|d| d.instances)
        .collect()
}

/// The parallel detection driver: fans `detect_with` out over `fs` with
/// scoped threads (no extra dependencies) and returns one [`Detection`]
/// per function, in input order. Functions are handed out through a
/// shared counter so long functions don't serialize behind short ones.
#[must_use]
pub fn detect_functions(fs: &[&Function], opts: &DetectOptions) -> Vec<Detection> {
    // Compile the idiom library (and derive the skeleton chains and
    // requirement signatures) once, before fanning out, so workers don't
    // contend on the lazy-init locks.
    for kind in IdiomKind::ALL {
        let _ = compiled(kind);
        let _ = chain_info(kind);
        let _ = requirements(kind);
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(fs.len());
    if workers <= 1 {
        return fs.iter().map(|f| detect_with(f, opts)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Detection>>> = fs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(f) = fs.get(i) else { break };
                let d = detect_with(f, opts);
                *slots[i].lock().expect("no poisoned result slot") = Some(d);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned result slot")
                .expect("every function slot filled")
        })
        .collect()
}

fn instance_from_solution(
    f: &Function,
    an: &ssair::analysis::Analyses,
    affine: &AffineMap,
    kind: IdiomKind,
    sol: &Solution,
) -> Option<IdiomInstance> {
    let anchor = *sol.bindings.get(kind.anchor_var())?;
    let outer_iter = *sol.bindings.get(kind.outer_iterator_var())?;
    let header = an.layout.block_of(outer_iter)?;
    let blocks = an
        .loops
        .loop_with_header(header)
        .map(|l| l.blocks.clone())
        .unwrap_or_else(|| vec![header]);
    let certificate = analysis::classify_region(f, an, affine, &blocks, outer_iter, None);
    Some(IdiomInstance {
        kind,
        function: f.name.clone(),
        bindings: sol.bindings.clone(),
        anchor,
        blocks,
        certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_parses_and_compiles() {
        let lib = library();
        assert!(lib.get("For").is_some());
        assert!(lib.get("GEMM").is_some());
        for kind in IdiomKind::ALL {
            let c = compiled(kind);
            assert!(!c.variables.is_empty(), "{kind:?} has variables");
        }
    }

    #[test]
    fn idl_budget_is_paper_sized() {
        let lines = idl_line_count();
        assert!(
            lines <= 520,
            "idiom library must stay near the paper's ~500 lines, got {lines}"
        );
    }
}
