//! # idioms — the idiom library (paper §4)
//!
//! This crate ships the IDL sources of every idiom the paper detects —
//! generalized matrix multiplication, sparse matrix-vector multiplication
//! over CSR, generalized scalar reductions, generalized histograms, and
//! 1D/2D stencils — together with the building blocks they inherit
//! (`For`, `ForNest`, `VectorRead/Store`, `MatrixRead/Store`, `ReadRange`,
//! `DotProductLoop`, index/offset chains). The whole library is plain IDL
//! text (see `idl/*.idl`), staying within the paper's "≈500 lines of IDL"
//! budget, and is compiled through the `idl` crate and searched with the
//! `solver` crate.
//!
//! [`detect`] runs every idiom over a function and post-processes raw
//! solver solutions into deduplicated [`IdiomInstance`]s;
//! [`detect_module`] fans the per-function searches out over scoped
//! threads (functions are independent) and re-assembles the results in
//! deterministic module order, and [`detect_with`] additionally reports
//! solver cost and whether any search was truncated by a limit
//! ([`Detection`]). Post-processing:
//!
//! * solver symmetries (commuted operands, transposed matrix roles)
//!   collapse onto one instance per anchor instruction;
//! * structurally-contained matches of lower-priority idioms are
//!   suppressed (the dot-product loop inside a GEMM *is* a scalar
//!   reduction, but the paper reports it as GEMM).

use idl::{CompiledConstraint, Library, VarId};
use solver::{Solution, SolveOptions, SolveOutcome, Solver};
use ssair::{BlockId, Function, Module, ValueId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The building-block IDL source (paper §4.1).
pub const BUILDING_BLOCKS_IDL: &str = include_str!("../idl/building_blocks.idl");
/// The top-level idiom IDL source (paper §4.2, Figures 10–14).
pub const IDIOMS_IDL: &str = include_str!("../idl/idioms.idl");

/// The idiom classes of the paper's evaluation (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdiomKind {
    /// Dense matrix multiplication (`GEMM`).
    Gemm,
    /// Sparse matrix-vector multiplication over CSR (`SPMV`).
    Spmv,
    /// Two-dimensional stencil.
    Stencil2D,
    /// One-dimensional stencil.
    Stencil1D,
    /// Generalized histogram (indirect read-modify-write).
    Histogram,
    /// Generalized scalar reduction.
    Reduction,
}

impl IdiomKind {
    /// All kinds in detection-priority order (most specific first).
    pub const ALL: [IdiomKind; 6] = [
        IdiomKind::Gemm,
        IdiomKind::Spmv,
        IdiomKind::Stencil2D,
        IdiomKind::Stencil1D,
        IdiomKind::Histogram,
        IdiomKind::Reduction,
    ];

    /// The IDL constraint name.
    #[must_use]
    pub fn constraint_name(self) -> &'static str {
        match self {
            IdiomKind::Gemm => "GEMM",
            IdiomKind::Spmv => "SPMV",
            IdiomKind::Stencil2D => "Stencil2D",
            IdiomKind::Stencil1D => "Stencil1D",
            IdiomKind::Histogram => "Histogram",
            IdiomKind::Reduction => "Reduction",
        }
    }

    /// The idiom class label used in Table 1 / Figure 16.
    #[must_use]
    pub fn class_label(self) -> &'static str {
        match self {
            IdiomKind::Gemm => "Matrix Op.",
            IdiomKind::Spmv => "Sparse Matrix Op.",
            IdiomKind::Stencil1D | IdiomKind::Stencil2D => "Stencil",
            IdiomKind::Histogram => "Histogram Reduction",
            IdiomKind::Reduction => "Scalar Reduction",
        }
    }

    fn anchor_var(self) -> &'static str {
        match self {
            IdiomKind::Gemm => "output.store",
            IdiomKind::Spmv => "output.store",
            IdiomKind::Stencil2D | IdiomKind::Stencil1D => "write.store",
            IdiomKind::Histogram => "store",
            IdiomKind::Reduction => "acc",
        }
    }

    /// The binding name of the outermost loop's iterator phi — the value
    /// that anchors the replacement region.
    #[must_use]
    pub fn outer_iterator_var(self) -> &'static str {
        match self {
            IdiomKind::Gemm | IdiomKind::Stencil2D => "loop[0].iterator",
            _ => "iterator",
        }
    }
}

/// The parsed idiom library (building blocks + idioms), shared process-wide.
pub fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        let mut src = String::from(BUILDING_BLOCKS_IDL);
        src.push('\n');
        src.push_str(IDIOMS_IDL);
        idl::parse_library(&src).expect("the bundled idiom library parses")
    })
}

/// The compiled constraint for one idiom kind (compiled once, process-wide).
pub fn compiled(kind: IdiomKind) -> &'static CompiledConstraint {
    static CACHE: OnceLock<BTreeMap<IdiomKind, CompiledConstraint>> = OnceLock::new();
    let map = CACHE.get_or_init(|| {
        IdiomKind::ALL
            .iter()
            .map(|&k| {
                let c = idl::compile(library(), k.constraint_name())
                    .expect("the bundled idiom library compiles");
                (k, c)
            })
            .collect()
    });
    &map[&kind]
}

/// Total line count of the bundled IDL (the paper reports ≈500 lines for
/// its full idiom set; ours is kept in the same budget).
#[must_use]
pub fn idl_line_count() -> usize {
    BUILDING_BLOCKS_IDL.lines().count() + IDIOMS_IDL.lines().count()
}

/// Cache key of one shared loop skeleton: the building-block name plus
/// its compile-time parameters (`("ForNest", [("N", 3)])`).
pub type SkeletonKey = (String, Vec<(String, i64)>);

/// The standalone-compiled skeleton blocks the idiom library shares
/// (today: `For`, `ForNest(N=2)`, `ForNest(N=3)`), compiled once
/// process-wide. Each entry's `variables` align positionally with the
/// `vars` of every [`idl::SkeletonRef`] carrying the same key.
pub fn skeleton_constraints() -> &'static BTreeMap<SkeletonKey, CompiledConstraint> {
    static CACHE: OnceLock<BTreeMap<SkeletonKey, CompiledConstraint>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut map = BTreeMap::new();
        for kind in IdiomKind::ALL {
            let Some(marker) = compiled(kind).skeletons.first() else {
                continue;
            };
            let key: SkeletonKey = (marker.block.clone(), marker.params.clone());
            if map.contains_key(&key) {
                continue;
            }
            // Synthesize `Constraint __Skeleton ( inherits <block>(<params>) )`
            // against the building-block library: its expansion is the
            // same tree the idiom embeds (modulo renaming), so variables
            // align positionally with every marker of this key.
            let args = if marker.params.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> = marker
                    .params
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                format!("({})", kv.join(", "))
            };
            let src = format!(
                "{BUILDING_BLOCKS_IDL}\nConstraint __Skeleton ( inherits {}{args} ) End",
                marker.block
            );
            let lib = idl::parse_library(&src).expect("skeleton wrapper parses");
            let c = idl::compile(&lib, "__Skeleton").expect("skeleton wrapper compiles");
            assert_eq!(
                c.variables.len(),
                marker.vars.len(),
                "skeleton {key:?}: standalone variables must align with the marker"
            );
            map.insert(key, c);
        }
        map
    })
}

/// Number of distinct skeleton cache keys across the idiom library (the
/// prepass solves at most this many extra searches per function — the
/// bound tests use for budget accounting).
#[must_use]
pub fn skeleton_key_count() -> usize {
    skeleton_constraints().len()
}

/// Per-function cache of solved loop skeletons: for each key, the
/// solution rows aligned with the standalone block's `variables` —
/// or `None` when the skeleton solve itself was truncated (consumers
/// then fall back to the unseeded search, preserving the exact PR-2
/// budget semantics).
struct SkeletonCache {
    solved: HashMap<SkeletonKey, Option<Vec<Vec<ValueId>>>>,
    /// Steps spent solving skeletons (accounted once per function,
    /// reported separately in [`Detection::skeleton_steps`]).
    steps: u64,
}

impl SkeletonCache {
    fn new() -> SkeletonCache {
        SkeletonCache {
            solved: HashMap::new(),
            steps: 0,
        }
    }

    /// Solutions for `key` on `solver`'s function, solving on first use.
    fn get(
        &mut self,
        solver: &Solver,
        key: &SkeletonKey,
        max_steps: u64,
    ) -> Option<&Vec<Vec<ValueId>>> {
        if !self.solved.contains_key(key) {
            let c = &skeleton_constraints()[key];
            let out = solver.solve_outcome(
                c,
                &SolveOptions {
                    // No solution cap: the row count is bounded by the
                    // step budget, and a capped skeleton would poison
                    // every consumer.
                    max_solutions: usize::MAX,
                    max_steps,
                },
            );
            self.steps += out.steps;
            let rows = out.complete.then(|| {
                out.solutions
                    .iter()
                    .map(|sol| {
                        c.variables
                            .iter()
                            .map(|&v| sol.bindings[c.var_name(v)])
                            .collect()
                    })
                    .collect()
            });
            self.solved.insert(key.clone(), rows);
        }
        self.solved[key].as_ref()
    }
}

/// One detected idiom instance in a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdiomInstance {
    /// The idiom class.
    pub kind: IdiomKind,
    /// Function the instance was found in.
    pub function: String,
    /// The full solver bindings (Figure 5 of the paper).
    pub bindings: BTreeMap<String, ValueId>,
    /// The anchoring instruction (the store that is deleted on
    /// replacement, or the accumulator phi for scalar reductions).
    pub anchor: ValueId,
    /// Blocks of the outermost matched loop — the replacement region and
    /// the unit of runtime-coverage accounting.
    pub blocks: Vec<BlockId>,
}

impl IdiomInstance {
    /// Binding lookup.
    #[must_use]
    pub fn value(&self, var: &str) -> Option<ValueId> {
        self.bindings.get(var).copied()
    }

    /// All bound members of the family `name` (e.g. `read_value`), in
    /// index order.
    #[must_use]
    pub fn family(&self, name: &str) -> Vec<ValueId> {
        let prefix = format!("{name}[");
        let mut found: Vec<(usize, ValueId)> = Vec::new();
        for (k, &v) in &self.bindings {
            if let Some(rest) = k.strip_prefix(&prefix) {
                if let Some(close) = rest.find(']') {
                    if rest[close + 1..].is_empty() {
                        if let Ok(i) = rest[..close].parse() {
                            found.push((i, v));
                        }
                    }
                }
            }
        }
        found.sort_by_key(|&(i, _)| i);
        found.into_iter().map(|(_, v)| v).collect()
    }

    /// Recomputes [`IdiomInstance::blocks`] against the *current* state of
    /// `f`.
    ///
    /// Block ids are compacted when a replacement excises a loop
    /// (`remove_unreachable_blocks`), so an instance detected before an
    /// earlier replacement in the same function must refresh its region
    /// before being applied. Value ids are stable across excision, which
    /// is why re-anchoring on the outer iterator phi works. Returns
    /// `false` (leaving `blocks` untouched) when the iterator is no
    /// longer placed in `f` — i.e. the instance's loop no longer exists.
    pub fn refresh_blocks(&mut self, f: &Function) -> bool {
        let Some(iter) = self.value(self.kind.outer_iterator_var()) else {
            return false;
        };
        let Some(header) = f.find_block_of(iter) else {
            return false;
        };
        let cfg = ssair::analysis::Cfg::new(f);
        let dom = ssair::analysis::DomTree::dominators(&cfg);
        let loops = ssair::analysis::LoopForest::new(&cfg, &dom);
        self.blocks = loops
            .loop_with_header(header)
            .map(|l| l.blocks.clone())
            .unwrap_or_else(|| vec![header]);
        true
    }
}

/// Detection limits.
#[derive(Debug, Clone)]
pub struct DetectOptions {
    /// Per-idiom cap on raw solver solutions.
    pub max_solutions: usize,
    /// Solver step budget per idiom per function.
    pub max_steps: u64,
    /// Suppress lower-priority matches contained in higher-priority ones
    /// (paper reports the most specific idiom per region).
    pub suppress_contained: bool,
    /// Solve the shared `For`/`ForNest` loop skeletons once per function
    /// and seed every idiom's search from the cached solutions. `false`
    /// selects the compatibility slow path (each idiom re-enumerates its
    /// loop headers) — detection output is identical either way, which
    /// the differential tests pin.
    pub skeleton_prepass: bool,
}

impl Default for DetectOptions {
    fn default() -> DetectOptions {
        DetectOptions {
            max_solutions: 128,
            max_steps: 20_000_000,
            suppress_contained: true,
            skeleton_prepass: true,
        }
    }
}

/// The outcome of running the full idiom library over one function.
///
/// Detection that hits a solver limit (`max_solutions`/`max_steps`) may
/// silently miss instances; `complete` surfaces that truncation so
/// callers can widen the budget or flag the result, instead of treating
/// an undercount as the true population.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Deduplicated, priority-filtered instances.
    pub instances: Vec<IdiomInstance>,
    /// `false` if any idiom's search was cut off by a limit.
    pub complete: bool,
    /// Total solver assignment steps across all idioms, *including*
    /// `skeleton_steps`.
    pub steps: u64,
    /// Solver steps per idiom kind (the per-idiom cost profile; excludes
    /// the shared skeleton prepass).
    pub steps_by_kind: BTreeMap<IdiomKind, u64>,
    /// Steps spent solving the shared loop skeletons, accounted once per
    /// function (not split across the consuming idioms).
    pub skeleton_steps: u64,
}

/// Runs the full idiom library over `f` and returns deduplicated,
/// priority-filtered instances.
#[must_use]
pub fn detect(f: &Function) -> Vec<IdiomInstance> {
    detect_with(f, &DetectOptions::default()).instances
}

/// [`detect`] with explicit limits, reporting completeness and cost.
#[must_use]
pub fn detect_with(f: &Function, opts: &DetectOptions) -> Detection {
    detect_kinds_with(f, &IdiomKind::ALL, opts)
}

/// [`detect_with`] restricted to a subset of idiom kinds (the per-idiom
/// benchmarks time each kind in isolation through this).
///
/// Budget accounting: each kind's search gets `opts.max_steps`; the
/// skeleton prepass spends at most `opts.max_steps` per distinct
/// skeleton key (charged once per function, reported in
/// [`Detection::skeleton_steps`]); and a seeded search that hits a limit
/// falls back to one unseeded search under the same per-kind budget. A
/// detection pass over `k` kinds is therefore bounded by
/// `(2·k + skeleton_key_count()) · max_steps` total steps.
#[must_use]
pub fn detect_kinds_with(f: &Function, kinds: &[IdiomKind], opts: &DetectOptions) -> Detection {
    let solver = Solver::new(f);
    let solve_opts = SolveOptions {
        max_solutions: opts.max_solutions,
        max_steps: opts.max_steps,
    };
    // The solver already computed every analysis detection needs.
    let an = solver.analyses();
    let mut skeletons = SkeletonCache::new();
    let mut out: Vec<IdiomInstance> = Vec::new();
    let mut complete = true;
    let mut steps = 0u64;
    let mut steps_by_kind = BTreeMap::new();
    for &kind in kinds {
        let c = compiled(kind);
        let res = solve_idiom(&solver, c, opts, &solve_opts, &mut skeletons);
        complete &= res.complete;
        steps += res.steps;
        steps_by_kind.insert(kind, res.steps);
        let mut seen_anchor: Vec<ValueId> = Vec::new();
        for sol in &res.solutions {
            let Some(inst) = instance_from_solution(f, an, kind, sol) else {
                continue;
            };
            if seen_anchor.contains(&inst.anchor) {
                continue; // operand-order / transposition symmetry
            }
            if opts.suppress_contained
                && out.iter().any(|prev| {
                    prev.kind != kind && inst.blocks.iter().all(|b| prev.blocks.contains(b))
                })
            {
                continue; // e.g. the dot-product reduction inside a GEMM
            }
            seen_anchor.push(inst.anchor);
            out.push(inst);
        }
    }
    Detection {
        instances: out,
        complete,
        steps: steps + skeletons.steps,
        steps_by_kind,
        skeleton_steps: skeletons.steps,
    }
}

/// Solves one idiom, seeding from the per-function skeleton cache when
/// possible.
///
/// The seeded search enumerates exactly the unseeded solution set (the
/// solver returns both in canonical order, so the outcomes are
/// byte-identical) *when everything completes*; any truncation — of the
/// skeleton solve or of the seeded search itself — falls back to the
/// plain search so limit semantics stay exactly as without the cache.
fn solve_idiom(
    solver: &Solver,
    c: &CompiledConstraint,
    opts: &DetectOptions,
    solve_opts: &SolveOptions,
    skeletons: &mut SkeletonCache,
) -> SolveOutcome {
    if opts.skeleton_prepass {
        if let Some(marker) = c.skeletons.first() {
            let key: SkeletonKey = (marker.block.clone(), marker.params.clone());
            if let Some(rows) = skeletons.get(solver, &key, opts.max_steps) {
                let seeds: Vec<Vec<(VarId, ValueId)>> = rows
                    .iter()
                    .map(|row| {
                        marker
                            .vars
                            .iter()
                            .copied()
                            .zip(row.iter().copied())
                            .collect()
                    })
                    .collect();
                let seeded = solver.solve_seeded_outcome(c, &seeds, solve_opts);
                if seeded.complete {
                    return seeded;
                }
                // Truncated: rerun unseeded so limit behaviour matches
                // the cache-free path exactly, but keep the seeded
                // attempt's steps in the bill — the work was done.
                let mut fallback = solver.solve_outcome(c, solve_opts);
                fallback.steps += seeded.steps;
                return fallback;
            }
        }
    }
    solver.solve_outcome(c, solve_opts)
}

/// Runs detection over every function of `m` in parallel and returns the
/// instances in function order — byte-identical to running [`detect`] on
/// each function serially, because per-function detection is independent
/// and results are stitched back in module order.
#[must_use]
pub fn detect_module(m: &Module) -> Vec<IdiomInstance> {
    detect_module_with(m, &DetectOptions::default())
}

/// [`detect_module`] with explicit limits.
#[must_use]
pub fn detect_module_with(m: &Module, opts: &DetectOptions) -> Vec<IdiomInstance> {
    let fs: Vec<&Function> = m.functions.iter().collect();
    detect_functions(&fs, opts)
        .into_iter()
        .flat_map(|d| d.instances)
        .collect()
}

/// The parallel detection driver: fans `detect_with` out over `fs` with
/// scoped threads (no extra dependencies) and returns one [`Detection`]
/// per function, in input order. Functions are handed out through a
/// shared counter so long functions don't serialize behind short ones.
#[must_use]
pub fn detect_functions(fs: &[&Function], opts: &DetectOptions) -> Vec<Detection> {
    // Compile the idiom library once, before fanning out, so workers
    // don't contend on the lazy-init lock.
    for kind in IdiomKind::ALL {
        let _ = compiled(kind);
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(fs.len());
    if workers <= 1 {
        return fs.iter().map(|f| detect_with(f, opts)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Detection>>> = fs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(f) = fs.get(i) else { break };
                let d = detect_with(f, opts);
                *slots[i].lock().expect("no poisoned result slot") = Some(d);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned result slot")
                .expect("every function slot filled")
        })
        .collect()
}

fn instance_from_solution(
    f: &Function,
    an: &ssair::analysis::Analyses,
    kind: IdiomKind,
    sol: &Solution,
) -> Option<IdiomInstance> {
    let anchor = *sol.bindings.get(kind.anchor_var())?;
    let outer_iter = *sol.bindings.get(kind.outer_iterator_var())?;
    let header = an.layout.block_of(outer_iter)?;
    let blocks = an
        .loops
        .loop_with_header(header)
        .map(|l| l.blocks.clone())
        .unwrap_or_else(|| vec![header]);
    Some(IdiomInstance {
        kind,
        function: f.name.clone(),
        bindings: sol.bindings.clone(),
        anchor,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_parses_and_compiles() {
        let lib = library();
        assert!(lib.get("For").is_some());
        assert!(lib.get("GEMM").is_some());
        for kind in IdiomKind::ALL {
            let c = compiled(kind);
            assert!(!c.variables.is_empty(), "{kind:?} has variables");
        }
    }

    #[test]
    fn idl_budget_is_paper_sized() {
        let lines = idl_line_count();
        assert!(
            lines <= 520,
            "idiom library must stay near the paper's ~500 lines, got {lines}"
        );
    }
}
