//! Edge-case detection tests: robustness properties the paper claims
//! (§3 "work in the presence of ... the myriad different ways users can
//! write the same, common algorithms") and deliberate non-matches.

use idioms::{detect, IdiomKind};

fn kinds_in(src: &str) -> Vec<IdiomKind> {
    let m = minicc::compile(src, "t").expect("compiles");
    m.functions
        .iter()
        .flat_map(|f| detect(f).into_iter().map(|i| i.kind))
        .collect()
}

#[test]
fn reversed_comparison_still_matches() {
    // `n > i` instead of `i < n`.
    let kinds = kinds_in(
        "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; n > i; i++) a += x[i];
            return a;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn long_iterators_match_without_sext() {
    let kinds = kinds_in(
        "double s(double* x, long n) {
            double a = 0.0;
            for (long i = 0; i < n; i++) a += x[i];
            return a;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn strided_loops_are_still_counted_loops() {
    // Non-unit compile-time step: the For block accepts it (detection);
    // the replacement backend separately refuses (see xform tests).
    let kinds = kinds_in(
        "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i += 2) a += x[i];
            return a;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn while_loop_spelling_matches_too() {
    let kinds = kinds_in(
        "double s(double* x, int n) {
            double a = 0.0;
            int i = 0;
            while (i < n) { a += x[i]; i++; }
            return a;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn float_typed_reduction_matches() {
    let kinds = kinds_in(
        "float s(float* x, int n) {
            float a = 0.0f;
            for (int i = 0; i < n; i++) a += x[i];
            return a;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn downward_loops_do_not_match_the_for_block() {
    // The canonical For requires an add increment; `i--` sweeps are the
    // non-idiomatic recurrences of the benchmark fillers.
    let kinds = kinds_in(
        "double s(double* x, int n) {
            double a = 0.0;
            for (int i = n - 1; i >= 0; i--) a += x[i];
            return a;
        }",
    );
    assert!(kinds.is_empty(), "got {kinds:?}");
}

#[test]
fn guarded_accumulation_does_not_match_pure_reduction() {
    // An if-guarded update produces a merge phi: the kernel slice is not
    // pure, so the generalized reduction does not fire (ternary selects
    // do match — see the sad benchmark).
    let kinds = kinds_in(
        "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i++) { if (x[i] > 0.0) { a += x[i]; } }
            return a;
        }",
    );
    assert!(!kinds.contains(&IdiomKind::Reduction), "got {kinds:?}");
}

#[test]
fn select_based_accumulation_does_match() {
    let kinds = kinds_in(
        "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i++) a += x[i] > 0.0 ? x[i] : 0.0;
            return a;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn transposed_gemm_matches() {
    // B accessed transposed relative to Figure 8's forms.
    let kinds = kinds_in(
        "void g(double* A, double* B, double* C, int n) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++) {
                    double c = 0.0;
                    for (int k = 0; k < n; k++) c += A[i*n+k] * B[j*n+k];
                    C[i*n+j] = c;
                }
        }",
    );
    assert!(kinds.contains(&IdiomKind::Gemm), "got {kinds:?}");
}

#[test]
fn five_point_asymmetric_stencil_matches() {
    let kinds = kinds_in(
        "void st(double* o, double* a, int n) {
            for (int i = 2; i < n - 2; i++)
                o[i] = 0.1*a[i-2] + 0.2*a[i-1] + 0.4*a[i] + 0.2*a[i+1] + 0.1*a[i+2];
        }",
    );
    assert!(kinds.contains(&IdiomKind::Stencil1D), "got {kinds:?}");
}

#[test]
fn in_place_stencil_is_rejected() {
    // Reading the written array breaks the stencil's dataflow contract.
    let kinds = kinds_in(
        "void st(double* a, int n) {
            for (int i = 1; i < n - 1; i++) a[i] = 0.5 * (a[i-1] + a[i+1]);
        }",
    );
    assert!(!kinds.contains(&IdiomKind::Stencil1D), "got {kinds:?}");
}

#[test]
fn histogram_with_computed_kernel_matches() {
    let kinds = kinds_in(
        "void h(double* v, int* bins, int n) {
            for (int i = 0; i < n; i++) {
                int b = (int)(fabs(v[i]) * 10.0);
                bins[b] = bins[b] + 2;
            }
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Histogram]);
}

#[test]
fn histogram_indexed_by_iterator_is_not_a_histogram() {
    // bins[i] += v[i] is a plain parallel update, not an indirect
    // read-modify-write; the index kernel must be a function of the reads.
    let kinds = kinds_in(
        "void h(double* v, double* bins, int n) {
            for (int i = 0; i < n; i++) bins[i] = bins[i] + v[i];
        }",
    );
    assert!(!kinds.contains(&IdiomKind::Histogram), "got {kinds:?}");
}

#[test]
fn the_paper_sese_building_block_solves() {
    // Figure 9: the single-entry single-exit region constraint, run
    // directly against a canonical loop. The loop body span (first body
    // instruction .. latch branch) forms a SESE region between the
    // preheader branch and the loop successor.
    let src = r#"
Constraint SESE
( {precursor} is branch instruction and
  {precursor} has control flow to {begin} and
  {end} is branch instruction and
  {end} has control flow to {successor} and
  {begin} control flow dominates {end} and
  {end} control flow post dominates {begin} and
  {precursor} strictly control flow dominates {begin} and
  {successor} strictly control flow post dominates {end} and
  all control flow from {begin} to {precursor} passes through {end} and
  all control flow from {successor} to {end} passes through {begin})
End
"#;
    let lib = idl::parse_library(src).unwrap();
    let c = idl::compile(&lib, "SESE").unwrap();
    let m = minicc::compile(
        "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i++) a += x[i];
            return a;
        }",
        "t",
    )
    .unwrap();
    let f = m.function("s").unwrap();
    let sols = solver::Solver::new(f).solve(&c, &solver::SolveOptions::default());
    assert!(
        !sols.is_empty(),
        "the loop contains at least one SESE region"
    );
    // Every reported region satisfies the definition's dominance facts.
    let an = ssair::analysis::Analyses::new(f);
    for s in &sols {
        let begin = s.bindings["begin"];
        let end = s.bindings["end"];
        assert!(an.inst_dominates(begin, end));
        assert!(an.inst_post_dominates(end, begin));
    }
}
