//! End-to-end detection tests: C source → minicc → optimized SSA →
//! idiom detection. These are the executable versions of the paper's §4
//! claims, including the Figure 8 semantic-equivalence example.

use idioms::{detect, IdiomKind};

fn kinds_in(src: &str) -> Vec<IdiomKind> {
    let m = minicc::compile(src, "t").expect("compiles");
    let mut out = Vec::new();
    for f in &m.functions {
        for inst in detect(f) {
            out.push(inst.kind);
        }
    }
    out
}

#[test]
fn detects_scalar_sum_reduction() {
    let kinds = kinds_in(
        "double sum(double* x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s += x[i];
            return s;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn detects_dot_product_as_reduction() {
    let kinds = kinds_in(
        "double dot(double* x, double* y, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s += x[i] * y[i];
            return s;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn detects_complex_reduction_with_kernel() {
    // Max-abs reduction through pure intrinsics: ICC-style dependence
    // analysis handles plain sums; the IDL kernel formulation also takes
    // this (paper §4.2 "generalized reductions").
    let kinds = kinds_in(
        "double norm(double* x, int n) {
            double m = 0.0;
            for (int i = 0; i < n; i++) m = fmax(m, fabs(x[i]));
            return m;
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Reduction]);
}

#[test]
fn detects_gemm_form_one_of_figure_8() {
    // First form of Figure 8: pointer arithmetic, alpha/beta epilogue.
    let kinds = kinds_in(
        "void sgemm(double* A, double* B, double* C, int m, int n, int k,
                    double alpha, double beta, int lda, int ldb, int ldc) {
            for (int mm = 0; mm < m; mm++) {
                for (int nn = 0; nn < n; nn++) {
                    double c = 0.0;
                    for (int i = 0; i < k; i++) {
                        double a = A[mm + i * lda];
                        double b = B[nn + i * ldb];
                        c += a * b;
                    }
                    C[mm + nn * ldc] = C[mm + nn * ldc] * beta + alpha * c;
                }
            }
        }",
    );
    assert!(kinds.contains(&IdiomKind::Gemm), "got {kinds:?}");
}

#[test]
fn detects_gemm_form_two_of_figure_8() {
    // Second form: 2D-style indexing, in-place accumulation (promoted to a
    // register by the optimizer, exactly like clang -O2).
    let kinds = kinds_in(
        "void mm(double* M1, double* M2, double* M3, int n) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++) {
                    M3[i*n+j] = 0.0;
                    for (int k = 0; k < n; k++)
                        M3[i*n+j] += M1[i*n+k] * M2[k*n+j];
                }
        }",
    );
    assert!(kinds.contains(&IdiomKind::Gemm), "got {kinds:?}");
}

#[test]
fn detects_spmv_csr() {
    // The NAS CG kernel of Figure 4.
    let kinds = kinds_in(
        "void spmv(double* a, int* rowstr, int* colidx, double* z, double* r, int m) {
            for (int j = 0; j < m; j++) {
                double d = 0.0;
                for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                    d = d + a[k] * z[colidx[k]];
                r[j] = d;
            }
        }",
    );
    assert!(kinds.contains(&IdiomKind::Spmv), "got {kinds:?}");
    assert!(
        !kinds.contains(&IdiomKind::Reduction),
        "inner dot product is part of the SPMV"
    );
}

#[test]
fn detects_histogram() {
    let kinds = kinds_in(
        "void histo(int* img, int* bins, int n) {
            for (int i = 0; i < n; i++) {
                bins[img[i]] = bins[img[i]] + 1;
            }
        }",
    );
    assert_eq!(kinds, vec![IdiomKind::Histogram]);
}

#[test]
fn detects_stencil_1d() {
    let kinds = kinds_in(
        "void blur(double* out, double* in, int n) {
            for (int i = 1; i < n - 1; i++)
                out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1];
        }",
    );
    assert!(kinds.contains(&IdiomKind::Stencil1D), "got {kinds:?}");
}

#[test]
fn detects_stencil_2d() {
    let kinds = kinds_in(
        "void jacobi(double* out, double* in, int n) {
            for (int i = 1; i < n - 1; i++)
                for (int j = 1; j < n - 1; j++)
                    out[i*n+j] = 0.2 * (in[i*n+j] + in[(i-1)*n+j] + in[(i+1)*n+j]
                                        + in[i*n+(j-1)] + in[i*n+(j+1)]);
        }",
    );
    assert!(kinds.contains(&IdiomKind::Stencil2D), "got {kinds:?}");
}

#[test]
fn rejects_non_idiomatic_loops() {
    // A loop-carried recurrence (prefix dependence) is not a reduction,
    // histogram or stencil.
    let kinds = kinds_in(
        "void scan(double* x, int n) {
            for (int i = 1; i < n; i++) x[i] = x[i] + x[i-1];
        }",
    );
    assert!(kinds.is_empty(), "got {kinds:?}");
}

#[test]
fn rejects_impure_reduction_kernels() {
    // The update writes memory through a second store: not a pure kernel.
    let kinds = kinds_in(
        "double weird(double* x, double* log_, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += x[i]; log_[i] = s; }
            return s;
        }",
    );
    // The reduction *is* structurally present; what must NOT match is a
    // stencil or histogram. The extraction-time side-effect check (xform)
    // rejects the replacement; see crates/xform tests.
    assert!(!kinds.contains(&IdiomKind::Histogram));
    assert!(!kinds.contains(&IdiomKind::Stencil1D));
}

#[test]
fn multiple_reductions_in_one_function_all_found() {
    let kinds = kinds_in(
        "double two(double* x, double* y, int n) {
            double a = 0.0;
            double b = 1.0;
            for (int i = 0; i < n; i++) a += x[i];
            for (int j = 0; j < n; j++) b = b * y[j];
            return a + b;
        }",
    );
    let reductions = kinds.iter().filter(|&&k| k == IdiomKind::Reduction).count();
    assert_eq!(reductions, 2, "got {kinds:?}");
}

#[test]
fn bindings_expose_the_figure_5_variables() {
    let m = minicc::compile(
        "void spmv(double* a, int* rowstr, int* colidx, double* z, double* r, int m) {
            for (int j = 0; j < m; j++) {
                double d = 0.0;
                for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                    d = d + a[k] * z[colidx[k]];
                r[j] = d;
            }
        }",
        "t",
    )
    .unwrap();
    let f = m.function("spmv").unwrap();
    let insts = detect(f);
    let spmv = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Spmv)
        .expect("spmv found");
    // The variables of the paper's Figure 5 solution table are all bound.
    for var in [
        "iterator",
        "inner.iter_begin",
        "inner.iter_end",
        "inner.iterator",
        "idx_read.value",
        "indir_read.value",
        "output.address",
        "idx_read.base_pointer",
        "seq_read.base_pointer",
        "indir_read.base_pointer",
    ] {
        assert!(spmv.value(var).is_some(), "missing binding for {var}");
    }
}

#[test]
fn detect_module_matches_the_serial_per_function_loop() {
    // The parallel driver must be observably identical to the serial
    // loop: same instances, same order, same bindings.
    let m = minicc::compile(
        "double mixed(double* x, double* y, int* bins, int* key, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s += x[i];
            for (int i = 0; i < n; i++) bins[key[i]] += 1;
            for (int i = 1; i < n - 1; i++) y[i] = x[i-1] + x[i] + x[i+1];
            return s;
        }
        double dot(double* x, double* y, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s += x[i] * y[i];
            return s;
        }
        double plain(double* x, int n) {
            double last = 0.0;
            for (int i = 0; i < n; i++) last = x[i];
            return last;
        }",
        "t",
    )
    .unwrap();
    let serial: Vec<_> = m.functions.iter().flat_map(detect).collect();
    let parallel = idioms::detect_module(&m);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.kind, p.kind);
        assert_eq!(s.function, p.function);
        assert_eq!(s.anchor, p.anchor);
        assert_eq!(s.blocks, p.blocks);
        assert_eq!(s.bindings, p.bindings);
    }
}

#[test]
fn detect_with_surfaces_truncation() {
    let m = minicc::compile(
        "double many(double* x, double* y, double* z, int n) {
            double a = 0.0; double b = 0.0; double c = 0.0;
            for (int i = 0; i < n; i++) a += x[i];
            for (int i = 0; i < n; i++) b += y[i];
            for (int i = 0; i < n; i++) c += z[i];
            return a + b + c;
        }",
        "t",
    )
    .unwrap();
    let f = m.function("many").unwrap();
    let full = idioms::detect_with(f, &idioms::DetectOptions::default());
    assert!(full.complete, "generous limits: enumeration finishes");
    assert_eq!(full.instances.len(), 3);
    assert!(full.steps > 0);
    assert_eq!(full.steps_by_kind.len(), 6, "one entry per idiom kind");
    assert_eq!(
        full.steps,
        full.skeleton_steps + full.steps_by_kind.values().sum::<u64>(),
        "total is the shared skeleton prepass plus the per-kind costs"
    );
    assert!(
        full.skeleton_steps > 0,
        "the loop-skeleton prepass runs by default"
    );
    // A starved budget must be reported, not silently undercounted.
    let starved = idioms::detect_with(
        f,
        &idioms::DetectOptions {
            max_steps: 10,
            ..idioms::DetectOptions::default()
        },
    );
    assert!(
        !starved.complete,
        "step-starved detection reports truncation"
    );
    assert!(starved.instances.len() < 3);
}

#[test]
fn fingerprint_prepass_prunes_obvious_non_matches_with_zero_steps() {
    // Loop-free: every idiom requires at least one loop, so all six
    // idiom×function pairs are pruned before the solver ever runs.
    let m = minicc::compile(
        "double clamp(double x, double lo, double hi) {
            if (x < lo) return lo;
            if (x > hi) return hi;
            return x;
        }",
        "t",
    )
    .unwrap();
    let f = m.function("clamp").unwrap();
    let d = idioms::detect_with(f, &idioms::DetectOptions::default());
    assert!(d.complete);
    assert!(d.instances.is_empty());
    assert_eq!(d.pruned_pairs, 6, "all six kinds pruned");
    assert_eq!(d.steps, 0, "pruned pairs must cost zero solver steps");
    assert_eq!(d.steps_by_kind.len(), 6, "pruned kinds still report (as 0)");

    // A store-free loop keeps Reduction in play (its store-free spine)
    // but prunes every store-anchored idiom.
    let m = minicc::compile(
        "double sum(double* x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s += x[i];
            return s;
        }",
        "t",
    )
    .unwrap();
    let f = m.function("sum").unwrap();
    let d = idioms::detect_with(f, &idioms::DetectOptions::default());
    assert!(d.complete);
    assert_eq!(d.instances.len(), 1);
    assert!(
        d.pruned_pairs >= 4,
        "store/depth requirements prune most kinds, got {}",
        d.pruned_pairs
    );
    let disabled = idioms::detect_with(
        f,
        &idioms::DetectOptions {
            fingerprint_prepass: false,
            ..idioms::DetectOptions::default()
        },
    );
    assert_eq!(disabled.pruned_pairs, 0);
    assert_eq!(
        d.instances, disabled.instances,
        "pruning never loses matches"
    );
}
