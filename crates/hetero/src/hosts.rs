//! Functional executors for the fixed-function library entry points.
//!
//! These are the "vendor libraries" of the simulation: registering them
//! with an [`interp::Machine`] makes transformed programs executable (the
//! timing of the simulated devices is handled separately by
//! [`crate::model`], and the parallel thread-pool variants live in
//! [`crate::exec`]).
//!
//! All element addressing goes through checked signed arithmetic
//! ([`elem_addr`]): a negative index or stride — a corrupted `rowptr`,
//! or hostile layout facts from a bad replacement — fails with a
//! descriptive error instead of wrapping to a huge `u64` offset.

use interp::{HostRegistry, Memory, ReadView, Value};
use std::sync::Arc;

/// Address of signed element `idx` (of `width` bytes) at `base`.
///
/// Rejects negative indices and overflowing offsets; `base + width * idx`
/// with `idx as u64` would wrap a negative index to the top of the
/// address space and turn a data corruption into a wild read.
pub(crate) fn elem_addr(base: u64, idx: i64, width: u64) -> Result<u64, String> {
    if idx < 0 {
        return Err(format!("negative element index {idx} (base {base})"));
    }
    (idx as u64)
        .checked_mul(width)
        .and_then(|off| base.checked_add(off))
        .ok_or_else(|| format!("address overflow: {base} + {width} * {idx}"))
}

/// The loads a kernel body needs, abstracted over the full [`Memory`]
/// (serial hosts) and a [`ReadView`] with the output carved out
/// (parallel workers). Keeping one body for both is what makes the
/// bitwise serial/parallel oracle meaningful: the arithmetic is the
/// same code, only the partitioning differs.
pub(crate) trait KernelLoads {
    fn ld_f64(&self, addr: u64) -> Result<f64, String>;
    fn ld_i32(&self, addr: u64) -> Result<i64, String>;
    fn ld_i64(&self, addr: u64) -> Result<i64, String>;
}

impl KernelLoads for Memory {
    fn ld_f64(&self, addr: u64) -> Result<f64, String> {
        self.load_f64(addr)
    }
    fn ld_i32(&self, addr: u64) -> Result<i64, String> {
        self.load_i32(addr)
    }
    fn ld_i64(&self, addr: u64) -> Result<i64, String> {
        self.load_i64(addr)
    }
}

impl KernelLoads for ReadView<'_> {
    fn ld_f64(&self, addr: u64) -> Result<f64, String> {
        self.load_f64(addr)
    }
    fn ld_i32(&self, addr: u64) -> Result<i64, String> {
        self.load_i32(addr)
    }
    fn ld_i64(&self, addr: u64) -> Result<i64, String> {
        self.load_i64(addr)
    }
}

pub(crate) fn load_idx<L: KernelLoads>(
    src: &L,
    base: u64,
    k: i64,
    width: i64,
) -> Result<i64, String> {
    if width == 4 {
        src.ld_i32(elem_addr(base, k, 4)?)
    } else {
        src.ld_i64(elem_addr(base, k, 8)?)
    }
}

/// Rejects calls with the wrong argument count — a corrupted replacement
/// must fail its validation run, not index out of bounds and abort.
fn arity(name: &str, args: &[Value], n: usize) -> Result<(), String> {
    if args.len() == n {
        Ok(())
    } else {
        Err(format!("{name} expects {n} arguments, got {}", args.len()))
    }
}

/// Parsed `gemm_f64` arguments (see [`register_all`] for the contract).
pub(crate) struct GemmArgs {
    pub a: u64,
    pub b: u64,
    pub c: u64,
    pub m: i64,
    pub n: i64,
    pub k: i64,
    pub sa: i64,
    pub sb: i64,
    pub sc: i64,
    pub ar: i64,
    pub br: i64,
    pub cr: i64,
    pub beta: f64,
}

pub(crate) fn parse_gemm(args: &[Value]) -> Result<GemmArgs, String> {
    arity("gemm_f64", args, 13)?;
    Ok(GemmArgs {
        a: args[0].try_p()?,
        b: args[1].try_p()?,
        c: args[2].try_p()?,
        m: args[3].try_i()?,
        n: args[4].try_i()?,
        k: args[5].try_i()?,
        sa: args[6].try_i()?,
        sb: args[7].try_i()?,
        sc: args[8].try_i()?,
        ar: args[9].try_i()?,
        br: args[10].try_i()?,
        cr: args[11].try_i()?,
        beta: args[12].try_f()?,
    })
}

/// Element address under the solution's orientation facts:
/// `idx = row*stride + col` when row-scaled, else `col*stride + row` —
/// computed with checked signed arithmetic so negative strides fail
/// descriptively.
pub(crate) fn gemm_addr(
    base: u64,
    col: i64,
    row: i64,
    stride: i64,
    row_scaled: i64,
) -> Result<u64, String> {
    let idx = if row_scaled != 0 {
        row.checked_mul(stride).and_then(|t| t.checked_add(col))
    } else {
        col.checked_mul(stride).and_then(|t| t.checked_add(row))
    }
    .ok_or_else(|| format!("index overflow: stride {stride} at ({col}, {row})"))?;
    elem_addr(base, idx, 8)
}

/// The dot product for output element `(i0, i1)` — the full serial
/// accumulation chain, shared verbatim by the serial host and every
/// parallel worker (bitwise determinism).
pub(crate) fn gemm_acc<L: KernelLoads>(
    g: &GemmArgs,
    src: &L,
    i0: i64,
    i1: i64,
) -> Result<f64, String> {
    let mut acc = 0.0;
    for kk in 0..g.k {
        let av = src.ld_f64(gemm_addr(g.a, i0, kk, g.sa, g.ar)?)?;
        let bv = src.ld_f64(gemm_addr(g.b, i1, kk, g.sb, g.br)?)?;
        acc += av * bv;
    }
    Ok(acc)
}

/// The `beta * C` term. Only `+0.0` short-circuits (the BLAS "don't use
/// C" contract); `-0.0` differs bitwise and takes the multiply path, so
/// a NaN or infinity in `C` propagates per IEEE semantics instead of
/// silently reading as zero. The caller has always loaded `cur` — the
/// `C` address is bounds-probed on every path, including `beta == 0`.
pub(crate) fn beta_old(cur: f64, beta: f64) -> f64 {
    if beta.to_bits() == 0.0f64.to_bits() {
        0.0
    } else {
        cur * beta
    }
}

/// The sequential `gemm_f64` executor (also the parallel backend's
/// oracle; see [`crate::exec`]).
pub fn gemm_serial(mem: &mut Memory, args: &[Value]) -> Result<Value, String> {
    let g = parse_gemm(args)?;
    for i0 in 0..g.m {
        for i1 in 0..g.n {
            let acc = gemm_acc(&g, mem, i0, i1)?;
            let ca = gemm_addr(g.c, i0, i1, g.sc, g.cr)?;
            let cur = mem.load_f64(ca)?;
            mem.store_f64(ca, acc + beta_old(cur, g.beta))?;
        }
    }
    Ok(Value::I(0))
}

/// Parsed `csrmv_f64` arguments.
pub(crate) struct CsrArgs {
    pub vals: u64,
    pub rowptr: u64,
    pub colidx: u64,
    pub x: u64,
    pub y: u64,
    pub m: i64,
    pub rw: i64,
    pub cw: i64,
}

pub(crate) fn parse_csrmv(args: &[Value]) -> Result<CsrArgs, String> {
    arity("csrmv_f64", args, 8)?;
    Ok(CsrArgs {
        vals: args[0].try_p()?,
        rowptr: args[1].try_p()?,
        colidx: args[2].try_p()?,
        x: args[3].try_p()?,
        y: args[4].try_p()?,
        m: args[5].try_i()?,
        rw: args[6].try_i()?,
        cw: args[7].try_i()?,
    })
}

/// One row's sparse dot product, in `rowptr` order — shared by the
/// serial host and every parallel worker.
pub(crate) fn csrmv_row<L: KernelLoads>(s: &CsrArgs, src: &L, j: i64) -> Result<f64, String> {
    let lo = load_idx(src, s.rowptr, j, s.rw)?;
    let hi = load_idx(src, s.rowptr, j + 1, s.rw)?;
    let mut d = 0.0;
    for kk in lo..hi {
        let col = load_idx(src, s.colidx, kk, s.cw)?;
        d += src.ld_f64(elem_addr(s.vals, kk, 8)?)? * src.ld_f64(elem_addr(s.x, col, 8)?)?;
    }
    Ok(d)
}

/// The sequential `csrmv_f64` executor.
pub fn csrmv_serial(mem: &mut Memory, args: &[Value]) -> Result<Value, String> {
    let s = parse_csrmv(args)?;
    for j in 0..s.m {
        let d = csrmv_row(&s, mem, j)?;
        mem.store_f64(elem_addr(s.y, j, 8)?, d)?;
    }
    Ok(Value::I(0))
}

/// Registers `gemm_f64` and `csrmv_f64` with the machine.
///
/// `gemm_f64(a, b, c, m, n, k, sa, sb, sc, a_row_scaled, b_row_scaled,
/// c_row_scaled, beta)` computes
/// `C[addr(i0,i1)] = beta*C[...] + Σ_k A[addr(i0,k)] * B[addr(i1,k)]`
/// where `addr(col,row) = row*stride+col` when row-scaled, else
/// `col*stride+row` — mirroring the orientation facts the constraint
/// solution provides (paper Figure 6 inserts solution variables into the
/// call template the same way).
///
/// `csrmv_f64(vals, rowptr, colidx, x, y, m, rowptr_width, colidx_width)`
/// is the cuSPARSE `csrmv` equivalent of the paper's Figure 6.
///
/// Generic over [`HostRegistry`] so the same registration serves the
/// tree-walking `Machine` and the bytecode `Vm`.
pub fn register_all<'m>(vm: &mut impl HostRegistry<'m>) {
    vm.register_host("gemm_f64", Arc::new(gemm_serial));
    vm.register_host("csrmv_f64", Arc::new(csrmv_serial));
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::Machine;

    #[test]
    fn gemm_host_matches_naive_oracle() {
        let (mm, nn, kk) = (3usize, 4usize, 5usize);
        let a: Vec<f64> = (0..mm * kk).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..nn * kk).map(|i| 1.0 - i as f64 * 0.25).collect();
        // Layout facts passed to the entry point: all three matrices use
        // idx = col*stride + row (row_scaled = 0), A/B stride k, C stride n.
        // Oracle comparison through the public interpreter path:
        let text = r#"
define void @run(double* %a, double* %b, double* %c, i64 %m, i64 %n, i64 %k) {
entry:
  call void @gemm_f64(double* %a, double* %b, double* %c, i64 %m, i64 %n, i64 %k, i64 %k, i64 %k, i64 %n, i64 0, i64 0, i64 0, double 0.0)
  ret void
}
"#;
        let m2 = ssair::parser::parse_module(text).unwrap();
        let mut vm3 = Machine::new(&m2);
        register_all(&mut vm3);
        let ap = vm3.mem.alloc_f64_slice(&a);
        let bp = vm3.mem.alloc_f64_slice(&b);
        let cp = vm3.mem.alloc_f64_slice(&vec![0.0; mm * nn]);
        vm3.run(
            "run",
            &[
                Value::P(ap),
                Value::P(bp),
                Value::P(cp),
                Value::I(mm as i64),
                Value::I(nn as i64),
                Value::I(kk as i64),
            ],
        )
        .unwrap();
        let got = vm3.mem.read_f64_slice(cp, mm * nn);
        for i0 in 0..mm {
            for i1 in 0..nn {
                let mut acc = 0.0;
                for x in 0..kk {
                    acc += a[i0 * kk + x] * b[i1 * kk + x];
                }
                assert!((got[i0 * nn + i1] - acc).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn csrmv_host_matches_naive_oracle() {
        let text = r#"
define void @run(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m) {
entry:
  call void @csrmv_f64(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m, i64 4, i64 4)
  ret void
}
"#;
        let m = ssair::parser::parse_module(text).unwrap();
        let mut vm = Machine::new(&m);
        register_all(&mut vm);
        let rowstr = [0, 2, 3, 5];
        let colidx = [0, 2, 1, 0, 2];
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = [0.5, -1.0, 2.0];
        let vp = vm.mem.alloc_f64_slice(&vals);
        let rp = vm.mem.alloc_i32_slice(&rowstr);
        let cp = vm.mem.alloc_i32_slice(&colidx);
        let xp = vm.mem.alloc_f64_slice(&x);
        let yp = vm.mem.alloc_f64_slice(&[0.0; 3]);
        vm.run(
            "run",
            &[
                Value::P(vp),
                Value::P(rp),
                Value::P(cp),
                Value::P(xp),
                Value::P(yp),
                Value::I(3),
            ],
        )
        .unwrap();
        let y = vm.mem.read_f64_slice(yp, 3);
        assert_eq!(y, vec![1.0 * 0.5 + 2.0 * 2.0, -3.0, 4.0 * 0.5 + 5.0 * 2.0]);
    }

    fn csrmv_args(m: &mut Memory, rowptr: &[i32], colidx: &[i32], vals: &[f64]) -> Vec<Value> {
        let vp = m.alloc_f64_slice(vals);
        let rp = m.alloc_i32_slice(rowptr);
        let cp = m.alloc_i32_slice(colidx);
        let xp = m.alloc_f64_slice(&[1.0, 1.0, 1.0]);
        let yp = m.alloc_f64_slice(&[0.0; 3]);
        vec![
            Value::P(vp),
            Value::P(rp),
            Value::P(cp),
            Value::P(xp),
            Value::P(yp),
            Value::I(rowptr.len() as i64 - 1),
            Value::I(4),
            Value::I(4),
        ]
    }

    #[test]
    fn csrmv_rejects_negative_rowptr_entries() {
        // A corrupted rowptr with a negative entry used to wrap
        // `base + 4 * k as u64` to the top of the address space.
        let mut mem = Memory::new();
        let args = csrmv_args(&mut mem, &[0, -2, 3, 5], &[0, 2, 1, 0, 2], &[1.0; 5]);
        let err = csrmv_serial(&mut mem, &args).unwrap_err();
        assert!(err.contains("negative element index"), "{err}");
    }

    #[test]
    fn csrmv_rejects_negative_colidx_entries() {
        let mut mem = Memory::new();
        let args = csrmv_args(&mut mem, &[0, 2, 3, 5], &[0, -1, 1, 0, 2], &[1.0; 5]);
        let err = csrmv_serial(&mut mem, &args).unwrap_err();
        assert!(err.contains("negative element index"), "{err}");
    }

    fn gemm_args(mem: &mut Memory, sc: i64, beta: f64, c_init: &[f64]) -> Vec<Value> {
        let ap = mem.alloc_f64_slice(&[1.0, 2.0]);
        let bp = mem.alloc_f64_slice(&[3.0, 4.0]);
        let cp = mem.alloc_f64_slice(c_init);
        vec![
            Value::P(ap),
            Value::P(bp),
            Value::P(cp),
            Value::I(1),
            Value::I(1),
            Value::I(2),
            Value::I(2),
            Value::I(2),
            Value::I(sc),
            Value::I(0),
            Value::I(0),
            Value::I(0),
            Value::F(beta),
        ]
    }

    #[test]
    fn gemm_rejects_negative_strides() {
        // A hostile stride fact from a bad replacement: idx goes negative
        // for i0 > 0, which used to wrap instead of erroring. With m=n=1
        // the C index is 0*sc+0, so poison A's stride instead.
        let mut mem = Memory::new();
        let mut args = gemm_args(&mut mem, 1, 0.0, &[0.0]);
        args[6] = Value::I(-3); // sa: a index = i0 * -3 + kk → kk=1 gives... still >= 0 for i0=0
        args[3] = Value::I(2); // m=2 so i0=1 drives idx negative: 1*-3+0 = -3... col*stride+row = i0*sa+kk
        let err = gemm_serial(&mut mem, &args).unwrap_err();
        assert!(err.contains("negative element index"), "{err}");
    }

    #[test]
    fn gemm_beta_negative_zero_reads_c() {
        // beta == -0.0 compares equal to 0.0 but differs bitwise; the old
        // `beta != 0.0` guard skipped the C load, silently reading-as-zero
        // and swallowing a NaN/inf already in C. IEEE: inf * -0.0 = NaN.
        let mut mem = Memory::new();
        let args = gemm_args(&mut mem, 1, -0.0, &[f64::INFINITY]);
        let cp = args[2].try_p().unwrap();
        gemm_serial(&mut mem, &args).unwrap();
        assert!(mem.load_f64(cp).unwrap().is_nan());
        // +0.0 keeps the BLAS contract: C's value is not used.
        let mut mem2 = Memory::new();
        let args2 = gemm_args(&mut mem2, 1, 0.0, &[f64::INFINITY]);
        let cp2 = args2[2].try_p().unwrap();
        gemm_serial(&mut mem2, &args2).unwrap();
        assert_eq!(mem2.load_f64(cp2).unwrap(), 11.0);
    }

    #[test]
    fn gemm_probes_c_even_when_beta_is_zero() {
        // An out-of-bounds C pointer must fail on the beta == 0 path too.
        let mut mem = Memory::new();
        let mut args = gemm_args(&mut mem, 1, 0.0, &[0.0]);
        args[2] = Value::P(1 << 40);
        assert!(gemm_serial(&mut mem, &args).is_err());
    }
}
