//! Functional executors for the fixed-function library entry points.
//!
//! These are the "vendor libraries" of the simulation: registering them
//! with an [`interp::Machine`] makes transformed programs executable (the
//! timing of the simulated devices is handled separately by
//! [`crate::model`]).

use interp::{Machine, Memory, Value};
use std::rc::Rc;

fn load_idx(mem: &Memory, base: u64, k: i64, width: i64) -> Result<i64, String> {
    if width == 4 {
        mem.load_i32(base + 4 * k as u64)
    } else {
        mem.load_i64(base + 8 * k as u64)
    }
}

/// Rejects calls with the wrong argument count — a corrupted replacement
/// must fail its validation run, not index out of bounds and abort.
fn arity(name: &str, args: &[Value], n: usize) -> Result<(), String> {
    if args.len() == n {
        Ok(())
    } else {
        Err(format!("{name} expects {n} arguments, got {}", args.len()))
    }
}

/// Registers `gemm_f64` and `csrmv_f64` with the machine.
///
/// `gemm_f64(a, b, c, m, n, k, sa, sb, sc, a_row_scaled, b_row_scaled,
/// c_row_scaled, beta)` computes
/// `C[addr(i0,i1)] = beta*C[...] + Σ_k A[addr(i0,k)] * B[addr(i1,k)]`
/// where `addr(col,row) = row*stride+col` when row-scaled, else
/// `col*stride+row` — mirroring the orientation facts the constraint
/// solution provides (paper Figure 6 inserts solution variables into the
/// call template the same way).
///
/// `csrmv_f64(vals, rowptr, colidx, x, y, m, rowptr_width, colidx_width)`
/// is the cuSPARSE `csrmv` equivalent of the paper's Figure 6.
pub fn register_all(vm: &mut Machine<'_>) {
    vm.register_host(
        "gemm_f64",
        Rc::new(|mem, args| {
            arity("gemm_f64", args, 13)?;
            let (a, b, c) = (args[0].try_p()?, args[1].try_p()?, args[2].try_p()?);
            let (m, n, k) = (args[3].try_i()?, args[4].try_i()?, args[5].try_i()?);
            let (sa, sb, sc) = (args[6].try_i()?, args[7].try_i()?, args[8].try_i()?);
            let (ar, br, cr) = (args[9].try_i()?, args[10].try_i()?, args[11].try_i()?);
            let beta = args[12].try_f()?;
            let addr = |base: u64, col: i64, row: i64, stride: i64, row_scaled: i64| {
                let idx = if row_scaled != 0 {
                    row * stride + col
                } else {
                    col * stride + row
                };
                base + 8 * idx as u64
            };
            for i0 in 0..m {
                for i1 in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        let av = mem.load_f64(addr(a, i0, kk, sa, ar))?;
                        let bv = mem.load_f64(addr(b, i1, kk, sb, br))?;
                        acc += av * bv;
                    }
                    let ca = addr(c, i0, i1, sc, cr);
                    let old = if beta != 0.0 {
                        mem.load_f64(ca)? * beta
                    } else {
                        0.0
                    };
                    mem.store_f64(ca, acc + old)?;
                }
            }
            Ok(Value::I(0))
        }),
    );
    vm.register_host(
        "csrmv_f64",
        Rc::new(|mem, args| {
            arity("csrmv_f64", args, 8)?;
            let (vals, rowptr, colidx, x, y) = (
                args[0].try_p()?,
                args[1].try_p()?,
                args[2].try_p()?,
                args[3].try_p()?,
                args[4].try_p()?,
            );
            let m = args[5].try_i()?;
            let (rw, cw) = (args[6].try_i()?, args[7].try_i()?);
            for j in 0..m {
                let lo = load_idx(mem, rowptr, j, rw)?;
                let hi = load_idx(mem, rowptr, j + 1, rw)?;
                let mut d = 0.0;
                for kk in lo..hi {
                    let col = load_idx(mem, colidx, kk, cw)?;
                    d += mem.load_f64(vals + 8 * kk as u64)? * mem.load_f64(x + 8 * col as u64)?;
                }
                mem.store_f64(y + 8 * j as u64, d)?;
            }
            Ok(Value::I(0))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_host_matches_naive_oracle() {
        let (mm, nn, kk) = (3usize, 4usize, 5usize);
        let a: Vec<f64> = (0..mm * kk).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..nn * kk).map(|i| 1.0 - i as f64 * 0.25).collect();
        // Layout facts passed to the entry point: all three matrices use
        // idx = col*stride + row (row_scaled = 0), A/B stride k, C stride n.
        // Oracle comparison through the public interpreter path:
        let text = r#"
define void @run(double* %a, double* %b, double* %c, i64 %m, i64 %n, i64 %k) {
entry:
  call void @gemm_f64(double* %a, double* %b, double* %c, i64 %m, i64 %n, i64 %k, i64 %k, i64 %k, i64 %n, i64 0, i64 0, i64 0, double 0.0)
  ret void
}
"#;
        let m2 = ssair::parser::parse_module(text).unwrap();
        let mut vm3 = Machine::new(&m2);
        register_all(&mut vm3);
        let ap = vm3.mem.alloc_f64_slice(&a);
        let bp = vm3.mem.alloc_f64_slice(&b);
        let cp = vm3.mem.alloc_f64_slice(&vec![0.0; mm * nn]);
        vm3.run(
            "run",
            &[
                Value::P(ap),
                Value::P(bp),
                Value::P(cp),
                Value::I(mm as i64),
                Value::I(nn as i64),
                Value::I(kk as i64),
            ],
        )
        .unwrap();
        let got = vm3.mem.read_f64_slice(cp, mm * nn);
        for i0 in 0..mm {
            for i1 in 0..nn {
                let mut acc = 0.0;
                for x in 0..kk {
                    acc += a[i0 * kk + x] * b[i1 * kk + x];
                }
                assert!((got[i0 * nn + i1] - acc).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn csrmv_host_matches_naive_oracle() {
        let text = r#"
define void @run(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m) {
entry:
  call void @csrmv_f64(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m, i64 4, i64 4)
  ret void
}
"#;
        let m = ssair::parser::parse_module(text).unwrap();
        let mut vm = Machine::new(&m);
        register_all(&mut vm);
        let rowstr = [0, 2, 3, 5];
        let colidx = [0, 2, 1, 0, 2];
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = [0.5, -1.0, 2.0];
        let vp = vm.mem.alloc_f64_slice(&vals);
        let rp = vm.mem.alloc_i32_slice(&rowstr);
        let cp = vm.mem.alloc_i32_slice(&colidx);
        let xp = vm.mem.alloc_f64_slice(&x);
        let yp = vm.mem.alloc_f64_slice(&[0.0; 3]);
        vm.run(
            "run",
            &[
                Value::P(vp),
                Value::P(rp),
                Value::P(cp),
                Value::P(xp),
                Value::P(yp),
                Value::I(3),
            ],
        )
        .unwrap();
        let y = vm.mem.read_f64_slice(yp, 3);
        assert_eq!(y, vec![1.0 * 0.5 + 2.0 * 2.0, -3.0, 4.0 * 0.5 + 5.0 * 2.0]);
    }
}
