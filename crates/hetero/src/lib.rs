//! # hetero — simulated heterogeneous platforms and APIs (paper §5, §7)
//!
//! The paper evaluates on an AMD A10-7850K (4-core CPU + integrated R7
//! GPU) and an Nvidia GTX Titan X, targeting vendor libraries (MKL,
//! cuBLAS, clBLAS, CLBlast, cuSPARSE, clSPARSE, a custom libSPMV) and two
//! DSLs (Halide, Lift). None of that hardware is available here, so this
//! crate provides the substitution documented in `DESIGN.md`:
//!
//! * **functional executors** ([`hosts`]) — the library entry points
//!   (`gemm_f64`, `csrmv_f64`) are real implementations registered with
//!   the interpreter, so transformed programs compute correct results;
//! * **a performance model** ([`model`]) — each platform is a roofline
//!   (compute peak, memory bandwidth, transfer path, launch overhead) and
//!   each API has per-idiom efficiency factors encoding the paper's
//!   qualitative observations (Table 3): MKL wins CPU linear algebra,
//!   clBLAS beats CLBlast on the iGPU, Halide out-vectorizes Lift on CPU
//!   stencils, Halide has no working GPU backend, cuBLAS/cuSPARSE win on
//!   the discrete GPU, and the custom libSPMV runs everywhere.
//!
//! * **a parallel backend** ([`exec`]) — a scoped thread-pool executor
//!   that runs replaced kernels on real host threads, gated by the
//!   parallel-safety certificates stamped on each replacement, with the
//!   serial hosts as a bitwise oracle. This is where the repo's measured
//!   (not modeled) speedups come from (`BENCH_offload.json`).
//!
//! The lazy-copy runtime optimization (the red bars of Figure 18) is a
//! model knob: with it, array transfers are paid once per program phase
//! instead of once per kernel launch.

pub mod exec;
pub mod hosts;
pub mod model;

pub use exec::{ExecConfig, ExecStats, KernelBatch, ParallelCert};
pub use model::{
    best_configuration, best_configuration_certified, best_configuration_profiled, kernel_time_ms,
    kernel_time_ms_certified, platform_admits, sequential_time_ms, supported, Api, Platform,
    RegionProfile, Workload, OFFLOAD_COVERAGE_THRESHOLD,
};
