//! Scoped thread-pool execution of replaced kernels, gated by
//! parallel-safety certificates.
//!
//! This is the repo's stand-in for the paper's accelerator backends
//! (§7): instead of modeled GPU milliseconds, replaced regions run on
//! real host threads and are timed for real. Dispatch is keyed off the
//! region's [`SafetyCertificate`](idioms::SafetyCertificate):
//!
//! | certificate               | executor                                     |
//! |---------------------------|----------------------------------------------|
//! | `independent_iterations`  | rows/output-tiles partitioned across workers, each writing a disjoint [`OutWindow`](interp::OutWindow) |
//! | `reduction_only`          | per-worker partial accumulators, combined on the launching thread in ascending worker order |
//! | `serial`                  | sequential host; [`ParallelCert`] makes it unrepresentable at parallel entry points |
//!
//! **Bitwise determinism.** The oracle for every parallel run is the
//! serial host, compared bitwise. Floating-point addition does not
//! reassociate, so only *per-output-element* work is distributed: each
//! element's full accumulation chain (the `k` loop of GEMM, the row of
//! SPMV) runs in serial order on one worker. Scalar reductions
//! (`lift_red_*`) and histograms (`lift_histo_*`) have a single
//! accumulation chain and therefore degenerate to owner-computes — the
//! sequential executor — rather than trade bitwise equality for a
//! reassociated combine.

use crate::hosts::{
    beta_old, csrmv_row, csrmv_serial, elem_addr, gemm_acc, gemm_addr, gemm_serial, parse_csrmv,
    parse_gemm,
};
use idioms::ParallelSafety;
use interp::{compile_module, CompiledModule, HostFn, HostRegistry, Memory, Value, Vm};
use ssair::{Function, Module};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Thread-pool configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker count for every parallel launch (≥ 1).
    pub workers: usize,
}

impl ExecConfig {
    /// A pool of exactly `workers` threads.
    #[must_use]
    pub fn with_workers(workers: usize) -> ExecConfig {
        ExecConfig {
            workers: workers.max(1),
        }
    }
}

impl Default for ExecConfig {
    /// Default worker count: the machine's available parallelism.
    fn default() -> ExecConfig {
        ExecConfig::with_workers(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
    }
}

/// Execution counters, shared (`Arc`) between the registered executors
/// and the harness that wants to audit them.
#[derive(Debug, Default)]
pub struct ExecStats {
    parallel_launches: AtomicU64,
    sequential_launches: AtomicU64,
    serial_cert_parallel_entries: AtomicU64,
}

impl ExecStats {
    /// Kernel launches that ran on the thread pool.
    pub fn parallel_launches(&self) -> u64 {
        self.parallel_launches.load(Ordering::Relaxed)
    }

    /// Kernel launches routed to the sequential executor.
    pub fn sequential_launches(&self) -> u64 {
        self.sequential_launches.load(Ordering::Relaxed)
    }

    /// Times a `serial`-certified region reached a parallel entry point
    /// and was refused. Must be zero in any correct configuration; the
    /// determinism suite and the offload bench assert it.
    pub fn serial_cert_parallel_entries(&self) -> u64 {
        self.serial_cert_parallel_entries.load(Ordering::Relaxed)
    }
}

/// A certificate strong enough for parallel execution. `serial` has no
/// representation here, so a parallel executor cannot even be *built*
/// for a serial region — the `TryFrom` conversion is the compile-time
/// face of the guarantee, [`ParallelCert::admit`] the audited runtime
/// backstop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelCert {
    /// `independent_iterations`: disjoint output windows, no combine.
    Independent,
    /// `reduction_only`: partial accumulators + ordered combine.
    ReductionOnly,
}

impl TryFrom<ParallelSafety> for ParallelCert {
    type Error = String;

    fn try_from(safety: ParallelSafety) -> Result<ParallelCert, String> {
        match safety {
            ParallelSafety::IndependentIterations => Ok(ParallelCert::Independent),
            ParallelSafety::ReductionOnly => Ok(ParallelCert::ReductionOnly),
            ParallelSafety::Serial => {
                Err("serial-certified region must not enter a parallel executor".into())
            }
        }
    }
}

impl ParallelCert {
    /// Converts a safety classification at a parallel entry point,
    /// counting (and refusing) any `serial` certificate that shows up.
    pub fn admit(safety: ParallelSafety, stats: &ExecStats) -> Result<ParallelCert, String> {
        ParallelCert::try_from(safety).inspect_err(|_| {
            stats
                .serial_cert_parallel_entries
                .fetch_add(1, Ordering::Relaxed);
        })
    }
}

/// Partitions `[begin, end)` into at most `workers` contiguous chunks in
/// ascending order (never empty; a degenerate range yields one empty
/// chunk).
fn chunk_range(begin: i64, end: i64, workers: usize) -> Vec<(i64, i64)> {
    let total = end.saturating_sub(begin).max(0) as u64;
    let w = (workers.max(1) as u64).min(total.max(1));
    let base = total / w;
    let extra = total % w;
    let mut parts = Vec::with_capacity(w as usize);
    let mut lo = begin;
    for i in 0..w {
        let hi = lo + (base + u64::from(i < extra)) as i64;
        parts.push((lo, hi));
        lo = hi;
    }
    parts
}

/// Runs `callee` from the pre-compiled module on the calling thread
/// against the caller's memory (swapped in and out) — the sequential
/// executor. The bytecode was compiled once at registration; each launch
/// only pays the dispatch loop.
fn run_inline(
    code: &CompiledModule<'_>,
    callee: &str,
    mem: &mut Memory,
    args: &[Value],
) -> Result<Value, String> {
    let mut inner = Vm::new(code);
    inner.mem = std::mem::take(mem);
    let r = inner.run(callee, args).map_err(|e| e.message);
    *mem = std::mem::take(&mut inner.mem);
    r
}

/// Parallel `gemm_f64`: output rows (`i0`) are partitioned across
/// workers. With an independence certificate and an `i0`-major `C`
/// layout the workers write disjoint in-place [`interp::OutWindow`]s;
/// otherwise each worker fills a partial buffer and the launching thread
/// combines them in ascending worker order (identical to the serial
/// store order, hence bitwise identical).
pub fn gemm_parallel(
    cert: ParallelCert,
    workers: usize,
    mem: &mut Memory,
    args: &[Value],
) -> Result<Value, String> {
    let g = parse_gemm(args)?;
    if g.m <= 0 || g.n <= 0 {
        return gemm_serial(mem, args);
    }
    let parts = chunk_range(0, g.m, workers);
    if parts.len() <= 1 {
        return gemm_serial(mem, args);
    }

    let windowed = cert == ParallelCert::Independent && g.cr == 0 && g.sc > 0 && g.sc >= g.n;
    if windowed {
        // C rows are i0-major and non-overlapping: carve [c, addr(m-1, n-1)]
        // out of memory and split it at each chunk's first row.
        let last = (g.m - 1)
            .checked_mul(g.sc)
            .and_then(|t| t.checked_add(g.n))
            .ok_or_else(|| format!("index overflow: stride {} over {} rows", g.sc, g.m))?;
        let end = elem_addr(g.c, last, 8)?;
        let (view, window) = mem.split_out(g.c, (end - g.c) as usize)?;
        let mut wins = Vec::with_capacity(parts.len());
        let mut rest = window;
        for &(lo, _) in parts.iter().skip(1) {
            let (head, tail) = rest.split_at(gemm_addr(g.c, lo, 0, g.sc, 0)?)?;
            wins.push(head);
            rest = tail;
        }
        wins.push(rest);

        let results: Vec<Result<(), String>> = std::thread::scope(|s| {
            let view = &view;
            let g = &g;
            let handles: Vec<_> = parts
                .iter()
                .copied()
                .zip(wins)
                .map(|((lo, hi), mut win)| {
                    s.spawn(move || {
                        for i0 in lo..hi {
                            for i1 in 0..g.n {
                                let acc = gemm_acc(g, view, i0, i1)?;
                                let ca = gemm_addr(g.c, i0, i1, g.sc, g.cr)?;
                                let cur = win.load_f64(ca)?;
                                win.store_f64(ca, acc + beta_old(cur, g.beta))?;
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("parallel gemm worker panicked".into()))
                })
                .collect()
        });
        for r in results {
            r?;
        }
        return Ok(Value::I(0));
    }

    // Partial-accumulator path: the compute phase only reads memory; the
    // launching thread then replays the serial store order.
    let shared = &*mem;
    let results: Vec<Result<Vec<f64>, String>> = std::thread::scope(|s| {
        let g = &g;
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    let mut buf = Vec::with_capacity(((hi - lo) * g.n).max(0) as usize);
                    for i0 in lo..hi {
                        for i1 in 0..g.n {
                            buf.push(gemm_acc(g, shared, i0, i1)?);
                        }
                    }
                    Ok(buf)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("parallel gemm worker panicked".into()))
            })
            .collect()
    });
    for (&(lo, hi), r) in parts.iter().zip(results) {
        let buf = r?;
        let mut vals = buf.into_iter();
        for i0 in lo..hi {
            for i1 in 0..g.n {
                let acc = vals.next().expect("one partial per output element");
                let ca = gemm_addr(g.c, i0, i1, g.sc, g.cr)?;
                let cur = mem.load_f64(ca)?;
                mem.store_f64(ca, acc + beta_old(cur, g.beta))?;
            }
        }
    }
    Ok(Value::I(0))
}

/// Parallel `csrmv_f64`: rows partitioned across workers. `y` is
/// contiguous, so an independence certificate gets disjoint in-place
/// windows; a reduction certificate computes per-worker partial row
/// buffers combined in ascending order. Row dot products keep their
/// serial `rowptr` order either way.
pub fn csrmv_parallel(
    cert: ParallelCert,
    workers: usize,
    mem: &mut Memory,
    args: &[Value],
) -> Result<Value, String> {
    let sp = parse_csrmv(args)?;
    if sp.m <= 0 {
        return csrmv_serial(mem, args);
    }
    let parts = chunk_range(0, sp.m, workers);
    if parts.len() <= 1 {
        return csrmv_serial(mem, args);
    }

    match cert {
        ParallelCert::Independent => {
            let end = elem_addr(sp.y, sp.m, 8)?;
            let (view, window) = mem.split_out(sp.y, (end - sp.y) as usize)?;
            let mut wins = Vec::with_capacity(parts.len());
            let mut rest = window;
            for &(lo, _) in parts.iter().skip(1) {
                let (head, tail) = rest.split_at(elem_addr(sp.y, lo, 8)?)?;
                wins.push(head);
                rest = tail;
            }
            wins.push(rest);

            let results: Vec<Result<(), String>> = std::thread::scope(|s| {
                let view = &view;
                let sp = &sp;
                let handles: Vec<_> = parts
                    .iter()
                    .copied()
                    .zip(wins)
                    .map(|((lo, hi), mut win)| {
                        s.spawn(move || {
                            for j in lo..hi {
                                let d = csrmv_row(sp, view, j)?;
                                win.store_f64(elem_addr(sp.y, j, 8)?, d)?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err("parallel csrmv worker panicked".into()))
                    })
                    .collect()
            });
            for r in results {
                r?;
            }
        }
        ParallelCert::ReductionOnly => {
            let shared = &*mem;
            let results: Vec<Result<Vec<f64>, String>> = std::thread::scope(|s| {
                let sp = &sp;
                let handles: Vec<_> = parts
                    .iter()
                    .map(|&(lo, hi)| {
                        s.spawn(move || (lo..hi).map(|j| csrmv_row(sp, shared, j)).collect())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err("parallel csrmv worker panicked".into()))
                    })
                    .collect()
            });
            for (&(lo, _), r) in parts.iter().zip(results) {
                for (j, d) in (lo..).zip(r?) {
                    mem.store_f64(elem_addr(sp.y, j, 8)?, d)?;
                }
            }
        }
    }
    Ok(Value::I(0))
}

fn param_pos(f: &Function, name: &str) -> Option<usize> {
    f.params
        .iter()
        .position(|&p| f.value(p).name.as_deref() == Some(name))
}

/// Parallel executor for a generated stencil kernel (`halide_st1_*` /
/// `halide_st2_*`): the outer iteration range — located by parameter
/// name — is chunked across workers, each of which interprets its chunk
/// of the *same* kernel against a private clone of memory. The launching
/// thread merges the byte diffs back in ascending worker order; two
/// workers dirtying the same byte differently means the independence
/// certificate lied, and the launch fails instead of racing.
fn stencil_host<'m>(
    code: Arc<CompiledModule<'m>>,
    callee: String,
    range: (&'static str, &'static str),
    workers: usize,
    safety: ParallelSafety,
    stats: Arc<ExecStats>,
) -> HostFn<'m> {
    Arc::new(move |mem, args| {
        ParallelCert::admit(safety, &stats)?;
        stats.parallel_launches.fetch_add(1, Ordering::Relaxed);
        let f = code
            .module()
            .function(&callee)
            .ok_or_else(|| format!("unknown kernel {callee}"))?;
        let bi = param_pos(f, range.0)
            .ok_or_else(|| format!("{callee} has no parameter %{}", range.0))?;
        let ei = param_pos(f, range.1)
            .ok_or_else(|| format!("{callee} has no parameter %{}", range.1))?;
        if args.len() != f.params.len() {
            return Err(format!(
                "{callee} expects {} arguments, got {}",
                f.params.len(),
                args.len()
            ));
        }
        let parts = chunk_range(args[bi].try_i()?, args[ei].try_i()?, workers);
        if parts.len() <= 1 {
            return run_inline(&code, &callee, mem, args);
        }

        let baseline = mem.clone();
        let results: Vec<Result<Memory, String>> = std::thread::scope(|s| {
            let baseline = &baseline;
            let callee = &callee;
            let code = &code;
            let handles: Vec<_> = parts
                .iter()
                .map(|&(lo, hi)| {
                    let mut cargs = args.to_vec();
                    s.spawn(move || {
                        cargs[bi] = Value::I(lo);
                        cargs[ei] = Value::I(hi);
                        let mut inner = Vm::new(code);
                        inner.mem = baseline.clone();
                        inner.run(callee, &cargs).map_err(|e| e.message)?;
                        Ok(std::mem::take(&mut inner.mem))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("parallel stencil worker panicked".into()))
                })
                .collect()
        });

        let base_bytes = baseline.bytes();
        let mut claimed = vec![false; base_bytes.len()];
        let out = mem.bytes_mut();
        for r in results {
            let wmem = r?;
            let wb = wmem.bytes();
            for i in 0..base_bytes.len().min(wb.len()) {
                if wb[i] != base_bytes[i] {
                    if claimed[i] && out[i] != wb[i] {
                        return Err(format!(
                            "overlapping parallel writes at address {i} — \
                             independence certificate violated for {callee}"
                        ));
                    }
                    claimed[i] = true;
                    out[i] = wb[i];
                }
            }
        }
        Ok(Value::I(0))
    })
}

/// The sequential executor: interprets the kernel inline and counts the
/// launch. Used for `serial` certificates and for kernels whose single
/// accumulation chain makes bitwise-deterministic parallelism impossible
/// (scalar reductions, histograms).
fn sequential_host<'m>(
    code: Arc<CompiledModule<'m>>,
    callee: String,
    stats: Arc<ExecStats>,
) -> HostFn<'m> {
    Arc::new(move |mem, args| {
        stats.sequential_launches.fetch_add(1, Ordering::Relaxed);
        run_inline(&code, &callee, mem, args)
    })
}

/// Registers an executor for every certified callee of a transformed
/// module, keyed off its parallel-safety certificate:
/// `independent_iterations`/`reduction_only` regions get the thread-pool
/// executors, `serial` regions (and single-accumulator kernels, which
/// cannot be split without reassociating float adds) get the sequential
/// one. `certs` is typically
/// [`ModuleXform::certificates`](../xform/struct.ModuleXform.html).
///
/// The module is lowered to bytecode once here; every registered host
/// shares that [`CompiledModule`], so repeated kernel launches pay only
/// the dispatch loop. Generic over [`HostRegistry`], so hosts install on
/// a walker `Machine` or a bytecode `Vm` alike.
pub fn register_parallel<'m>(
    vm: &mut impl HostRegistry<'m>,
    module: &'m Module,
    certs: &BTreeMap<String, ParallelSafety>,
    cfg: &ExecConfig,
    stats: &Arc<ExecStats>,
) {
    let workers = cfg.workers.max(1);
    let code = Arc::new(compile_module(module));
    for (callee, &safety) in certs {
        let name = callee.clone();
        let st = Arc::clone(stats);
        let host: HostFn<'m> = match ParallelCert::try_from(safety) {
            Err(_) => sequential_host(Arc::clone(&code), name.clone(), st),
            Ok(_) if name == "gemm_f64" => Arc::new(move |mem, args| {
                let cert = ParallelCert::admit(safety, &st)?;
                st.parallel_launches.fetch_add(1, Ordering::Relaxed);
                gemm_parallel(cert, workers, mem, args)
            }),
            Ok(_) if name == "csrmv_f64" => Arc::new(move |mem, args| {
                let cert = ParallelCert::admit(safety, &st)?;
                st.parallel_launches.fetch_add(1, Ordering::Relaxed);
                csrmv_parallel(cert, workers, mem, args)
            }),
            Ok(ParallelCert::Independent) if name.starts_with("halide_st1_") => stencil_host(
                Arc::clone(&code),
                name.clone(),
                ("begin", "end"),
                workers,
                safety,
                st,
            ),
            Ok(ParallelCert::Independent) if name.starts_with("halide_st2_") => stencil_host(
                Arc::clone(&code),
                name.clone(),
                ("b0r", "e0r"),
                workers,
                safety,
                st,
            ),
            // lift_red_* / lift_histo_*: one accumulation chain; bitwise
            // determinism forbids splitting it (owner-computes).
            Ok(_) => sequential_host(Arc::clone(&code), name.clone(), st),
        };
        vm.register_host(&name, host);
    }
}

/// A queue of independent jobs (typically: one module's kernel calls, or
/// one corpus shard) fanned out across a scoped pool. Results come back
/// in submission order; job pickup is an atomic work-list, so the pool
/// load-balances uneven jobs.
pub struct KernelBatch<'j, T> {
    jobs: Vec<Job<'j, T>>,
}

/// One enqueued [`KernelBatch`] job.
type Job<'j, T> = Box<dyn FnOnce() -> T + Send + 'j>;

impl<'j, T: Send + 'j> KernelBatch<'j, T> {
    /// An empty batch.
    #[must_use]
    pub fn new() -> KernelBatch<'j, T> {
        KernelBatch { jobs: Vec::new() }
    }

    /// Enqueues a job.
    pub fn push(&mut self, job: impl FnOnce() -> T + Send + 'j) {
        self.jobs.push(Box::new(job));
    }

    /// Jobs enqueued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job across `workers` threads; returns the results in
    /// submission order.
    pub fn run(self, workers: usize) -> Vec<T> {
        let n = self.jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let jobs: Vec<Mutex<Option<Job<'j, T>>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers.clamp(1, n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i]
                        .lock()
                        .expect("job slot lock")
                        .take()
                        .expect("each job runs once");
                    let r = job();
                    *results[i].lock().expect("result slot lock") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot lock")
                    .expect("every job completed")
            })
            .collect()
    }
}

impl<'j, T: Send + 'j> Default for KernelBatch<'j, T> {
    fn default() -> KernelBatch<'j, T> {
        KernelBatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosts::register_all;
    use interp::Machine;

    #[test]
    fn serial_certificates_are_unrepresentable_as_parallel() {
        assert!(ParallelCert::try_from(ParallelSafety::Serial).is_err());
        let stats = ExecStats::default();
        assert!(ParallelCert::admit(ParallelSafety::Serial, &stats).is_err());
        assert_eq!(stats.serial_cert_parallel_entries(), 1);
        assert!(ParallelCert::admit(ParallelSafety::IndependentIterations, &stats).is_ok());
        assert_eq!(stats.serial_cert_parallel_entries(), 1);
    }

    #[test]
    fn chunk_range_covers_and_orders() {
        assert_eq!(chunk_range(0, 10, 4), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(chunk_range(2, 5, 8), vec![(2, 3), (3, 4), (4, 5)]);
        assert_eq!(chunk_range(5, 5, 4), vec![(5, 5)]);
        assert_eq!(chunk_range(7, 3, 4), vec![(7, 7)]);
    }

    fn gemm_fixture(mem: &mut Memory, m: usize, n: usize, k: usize, beta: f64) -> Vec<Value> {
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.7).cos()).collect();
        let c: Vec<f64> = (0..m * n).map(|i| i as f64 * 0.01 - 1.0).collect();
        let (ap, bp, cp) = (
            mem.alloc_f64_slice(&a),
            mem.alloc_f64_slice(&b),
            mem.alloc_f64_slice(&c),
        );
        vec![
            Value::P(ap),
            Value::P(bp),
            Value::P(cp),
            Value::I(m as i64),
            Value::I(n as i64),
            Value::I(k as i64),
            Value::I(k as i64),
            Value::I(k as i64),
            Value::I(n as i64),
            Value::I(0),
            Value::I(0),
            Value::I(0),
            Value::F(beta),
        ]
    }

    #[test]
    fn parallel_gemm_is_bitwise_equal_to_serial() {
        for cert in [ParallelCert::Independent, ParallelCert::ReductionOnly] {
            for workers in [1usize, 3, 4, 9] {
                let mut m1 = Memory::new();
                let args1 = gemm_fixture(&mut m1, 7, 5, 6, 0.5);
                gemm_serial(&mut m1, &args1).unwrap();
                let mut m2 = Memory::new();
                let args2 = gemm_fixture(&mut m2, 7, 5, 6, 0.5);
                gemm_parallel(cert, workers, &mut m2, &args2).unwrap();
                assert_eq!(m1.bytes(), m2.bytes(), "{cert:?} at {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_gemm_column_major_c_uses_ordered_combine() {
        // cr != 0 defeats the in-place window layout check, forcing the
        // partial-buffer path; the result must still match serial bitwise.
        let make = |mem: &mut Memory| {
            let mut a = gemm_fixture(mem, 6, 4, 5, -0.25);
            a[8] = Value::I(6); // sc = m for a column-major C
            a[11] = Value::I(1); // cr = 1
            a
        };
        let mut m1 = Memory::new();
        let a1 = make(&mut m1);
        gemm_serial(&mut m1, &a1).unwrap();
        let mut m2 = Memory::new();
        let a2 = make(&mut m2);
        gemm_parallel(ParallelCert::Independent, 4, &mut m2, &a2).unwrap();
        assert_eq!(m1.bytes(), m2.bytes());
    }

    fn csrmv_fixture(mem: &mut Memory, rows: usize) -> Vec<Value> {
        let mut rowptr = vec![0i32];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for j in 0..rows {
            for t in 0..(j % 4) {
                colidx.push(((j + t * 3) % rows) as i32);
                vals.push((j * 7 + t) as f64 * 0.3 - 1.0);
            }
            rowptr.push(colidx.len() as i32);
        }
        let x: Vec<f64> = (0..rows).map(|i| (i as f64 * 1.3).sin()).collect();
        let (vp, rp, cp, xp) = (
            mem.alloc_f64_slice(&vals),
            mem.alloc_i32_slice(&rowptr),
            mem.alloc_i32_slice(&colidx),
            mem.alloc_f64_slice(&x),
        );
        let yp = mem.alloc_f64_slice(&vec![0.0; rows]);
        vec![
            Value::P(vp),
            Value::P(rp),
            Value::P(cp),
            Value::P(xp),
            Value::P(yp),
            Value::I(rows as i64),
            Value::I(4),
            Value::I(4),
        ]
    }

    #[test]
    fn parallel_csrmv_is_bitwise_equal_to_serial() {
        for cert in [ParallelCert::Independent, ParallelCert::ReductionOnly] {
            for workers in [1usize, 2, 4, 7] {
                let mut m1 = Memory::new();
                let a1 = csrmv_fixture(&mut m1, 23);
                csrmv_serial(&mut m1, &a1).unwrap();
                let mut m2 = Memory::new();
                let a2 = csrmv_fixture(&mut m2, 23);
                csrmv_parallel(cert, workers, &mut m2, &a2).unwrap();
                assert_eq!(m1.bytes(), m2.bytes(), "{cert:?} at {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_gemm_refuses_aliased_output() {
        // Point A at the C buffer: the windowed executor's read view must
        // refuse the in-window load instead of racing on it.
        let mut mem = Memory::new();
        let mut args = gemm_fixture(&mut mem, 4, 4, 4, 0.0);
        args[0] = args[2];
        let err = gemm_parallel(ParallelCert::Independent, 2, &mut mem, &args).unwrap_err();
        assert!(err.contains("independence certificate"), "{err}");
    }

    #[test]
    fn register_parallel_routes_serial_certificates_sequentially() {
        let text = r#"
define void @run(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m) {
entry:
  call void @csrmv_f64(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m, i64 4, i64 4)
  ret void
}
define void @csrmv_f64(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m, i64 %rw, i64 %cw) {
entry:
  ret void
}
"#;
        let module = ssair::parser::parse_module(text).unwrap();
        let mut certs = BTreeMap::new();
        certs.insert("csrmv_f64".to_string(), ParallelSafety::Serial);
        let stats = Arc::new(ExecStats::default());
        let mut vm = Machine::new(&module);
        register_parallel(
            &mut vm,
            &module,
            &certs,
            &ExecConfig::with_workers(4),
            &stats,
        );
        let mut m0 = Memory::new();
        let args = csrmv_fixture(&mut m0, 5);
        vm.mem = m0;
        vm.run("run", &args[..6]).unwrap();
        assert_eq!(stats.sequential_launches(), 1);
        assert_eq!(stats.parallel_launches(), 0);
        assert_eq!(stats.serial_cert_parallel_entries(), 0);
    }

    #[test]
    fn register_parallel_runs_library_kernels_on_the_pool() {
        let text = r#"
define void @run(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m) {
entry:
  call void @csrmv_f64(double* %v, i32* %r, i32* %c, double* %x, double* %y, i64 %m, i64 4, i64 4)
  ret void
}
"#;
        let module = ssair::parser::parse_module(text).unwrap();
        let mut certs = BTreeMap::new();
        certs.insert(
            "csrmv_f64".to_string(),
            ParallelSafety::IndependentIterations,
        );
        let stats = Arc::new(ExecStats::default());
        let mut vm = Machine::new(&module);
        register_parallel(
            &mut vm,
            &module,
            &certs,
            &ExecConfig::with_workers(4),
            &stats,
        );
        let mut m0 = Memory::new();
        let args = csrmv_fixture(&mut m0, 17);
        vm.mem = m0;
        vm.run("run", &args[..6]).unwrap();
        assert_eq!(stats.parallel_launches(), 1);

        // Oracle: serial host on identical inputs, bitwise.
        let mut vm2 = Machine::new(&module);
        register_all(&mut vm2);
        let mut m1 = Memory::new();
        let args2 = csrmv_fixture(&mut m1, 17);
        vm2.mem = m1;
        vm2.run("run", &args2[..6]).unwrap();
        assert_eq!(vm.mem.bytes(), vm2.mem.bytes());
    }

    #[test]
    fn kernel_batch_returns_results_in_submission_order() {
        let mut batch = KernelBatch::new();
        for i in 0..50u64 {
            batch.push(move || i * i);
        }
        assert_eq!(batch.len(), 50);
        let got = batch.run(8);
        let want: Vec<u64> = (0..50).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn kernel_batch_borrows_shared_state() {
        let inputs: Vec<u64> = (0..16).collect();
        let mut batch = KernelBatch::new();
        for i in 0..inputs.len() {
            let inputs = &inputs;
            batch.push(move || inputs[i] + 1);
        }
        assert_eq!(batch.run(4), (1..=16).collect::<Vec<u64>>());
    }
}
