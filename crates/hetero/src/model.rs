//! The platform/API performance model.
//!
//! Calibration (documented in DESIGN.md): the sequential baseline charges
//! abstract cost units (from `interp::Profile`) at 3.7 G units/s — a
//! single A10-7850K core. Devices are rooflines; APIs scale them with
//! per-idiom efficiency factors. Absolute numbers are a simulation; the
//! *shape* — platform winners, crossovers, the importance of lazy copying
//! — is what reproduces Table 3 / Figures 18-19.

use idioms::{IdiomKind, ParallelSafety};
use serde::Serialize;

/// Execution platforms of the paper's evaluation (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Platform {
    /// 4-core AMD A10-7850K CPU.
    Cpu,
    /// The integrated Radeon R7 (shared memory, zero-copy capable).
    IGpu,
    /// Nvidia GTX Titan X over PCIe.
    Gpu,
}

impl Platform {
    /// All platforms, CPU first.
    pub const ALL: [Platform; 3] = [Platform::Cpu, Platform::IGpu, Platform::Gpu];

    /// Display label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Platform::Cpu => "CPU",
            Platform::IGpu => "iGPU",
            Platform::Gpu => "GPU",
        }
    }

    /// (peak GFLOP/s, memory bandwidth GB/s, transfer bandwidth GB/s or
    /// `None` for shared memory, launch overhead µs).
    fn specs(self) -> (f64, f64, Option<f64>, f64) {
        match self {
            Platform::Cpu => (40.0, 20.0, None, 2.0),
            Platform::IGpu => (300.0, 15.0, None, 20.0),
            Platform::Gpu => (3000.0, 280.0, Some(12.0), 30.0),
        }
    }
}

/// Heterogeneous APIs (paper §5): vendor libraries, the custom libSPMV,
/// the two DSLs, and the handwritten reference implementations used by
/// Figure 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Api {
    /// Intel MKL (CPU linear algebra).
    Mkl,
    /// Nvidia cuBLAS (GPU GEMM).
    CuBlas,
    /// AMD clBLAS (OpenCL GEMM).
    ClBlas,
    /// CLBlast (OpenCL GEMM).
    ClBlast,
    /// Nvidia cuSPARSE (GPU SPMV).
    CuSparse,
    /// clSPARSE (OpenCL SPMV).
    ClSparse,
    /// The paper's custom SPMV library for the unusual sparse format.
    LibSpmv,
    /// Halide (stencils/histograms; CPU only — the paper's Halide version
    /// "failed to generate valid GPU code", Table 3).
    Halide,
    /// Lift (reductions, stencils, linear algebra; all platforms).
    Lift,
    /// Handwritten OpenMP reference (Figure 19, CPU).
    OpenMpRef,
    /// Handwritten OpenCL reference (Figure 19, GPU).
    OpenClRef,
}

impl Api {
    /// All automatically-targetable APIs (the Figure 19 references are
    /// queried explicitly).
    pub const AUTO: [Api; 9] = [
        Api::Mkl,
        Api::CuBlas,
        Api::ClBlas,
        Api::ClBlast,
        Api::CuSparse,
        Api::ClSparse,
        Api::LibSpmv,
        Api::Halide,
        Api::Lift,
    ];

    /// Display label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Api::Mkl => "MKL",
            Api::CuBlas => "cuBLAS",
            Api::ClBlas => "clBLAS",
            Api::ClBlast => "CLBlast",
            Api::CuSparse => "cuSPARSE",
            Api::ClSparse => "clSPARSE",
            Api::LibSpmv => "libSPMV",
            Api::Halide => "Halide",
            Api::Lift => "Lift",
            Api::OpenMpRef => "OpenMP",
            Api::OpenClRef => "OpenCL",
        }
    }
}

/// The idiom-class groups the model distinguishes.
fn class(kind: IdiomKind) -> &'static str {
    match kind {
        IdiomKind::Gemm => "gemm",
        IdiomKind::Spmv => "spmv",
        IdiomKind::Stencil1D | IdiomKind::Stencil2D => "stencil",
        IdiomKind::Histogram => "histogram",
        IdiomKind::Reduction => "reduction",
    }
}

/// Efficiency (fraction of the platform roofline achieved) of `api`
/// running idiom `kind` on `platform`, or `None` when the combination is
/// unsupported. Each entry encodes a Table-3 observation; see the crate
/// docs.
#[must_use]
pub fn supported(api: Api, platform: Platform, kind: IdiomKind) -> Option<f64> {
    use Api::*;
    use Platform::*;
    let c = class(kind);
    let eff = match (api, platform, c) {
        // MKL: best CPU linear algebra (Table 3: sgemm CPU 53.5ms vs
        // clBLAS-class numbers; CG CPU row).
        (Mkl, Cpu, "gemm") => 0.85,
        (Mkl, Cpu, "spmv") => 0.60,
        // cuBLAS: dominant GPU GEMM (sgemm 5.99 ms).
        (CuBlas, Gpu, "gemm") => 0.95,
        // clBLAS beats CLBlast on the iGPU (14.73 vs 19.03), CLBlast is
        // ahead on the discrete GPU.
        (ClBlas, IGpu, "gemm") => 0.70,
        (ClBlas, Gpu, "gemm") => 0.45,
        (ClBlast, IGpu, "gemm") => 0.55,
        (ClBlast, Gpu, "gemm") => 0.55,
        // Sparse libraries (CG: cuSPARSE 113.5 ms vs clSPARSE 644).
        (CuSparse, Gpu, "spmv") => 0.90,
        (ClSparse, IGpu, "spmv") => 0.70,
        // The custom libSPMV runs on all three platforms (spmv row).
        (LibSpmv, Cpu, "spmv") => 0.50,
        (LibSpmv, IGpu, "spmv") => 0.65,
        (LibSpmv, Gpu, "spmv") => 0.80,
        // Halide: CPU-only; stencils vectorize better than Lift's CPU
        // code (stencil CPU 5760 vs 21951); also used for the IS
        // bucket-style histogram (IS CPU 426.95).
        (Halide, Cpu, "stencil") => 0.80,
        (Halide, Cpu, "histogram") => 0.30,
        (Halide, Cpu, "gemm") => 0.30,
        // Lift: everywhere, strongest on GPU reductions/stencils
        // (IS GPU 99.95, stencil GPU 279).
        (Lift, Cpu, "reduction") => 0.50,
        (Lift, Cpu, "histogram") => 0.25,
        (Lift, Cpu, "stencil") => 0.25,
        (Lift, Cpu, "gemm") => 0.15,
        (Lift, IGpu, "reduction") => 0.60,
        (Lift, IGpu, "histogram") => 0.55,
        (Lift, IGpu, "stencil") => 0.55,
        (Lift, IGpu, "gemm") => 0.45,
        (Lift, Gpu, "reduction") => 0.75,
        (Lift, Gpu, "histogram") => 0.65,
        (Lift, Gpu, "stencil") => 0.70,
        (Lift, Gpu, "gemm") => 0.60,
        // Figure 19 references.
        (OpenMpRef, Cpu, _) => 0.75,
        (OpenClRef, Gpu, _) => 0.70,
        _ => return None,
    };
    Some(eff)
}

/// The dynamic work of one idiom region over the whole program run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Workload {
    /// Floating-point operations executed in the region (total).
    pub flops: f64,
    /// Bytes moved by region loads/stores (total).
    pub bytes: f64,
    /// Bytes that must cross to the device per transfer (array footprint).
    pub transfer_bytes: f64,
    /// Number of kernel launches (region entries over the program run).
    pub launches: f64,
}

/// Modeled kernel time in milliseconds for the given configuration, or
/// `None` if unsupported. `lazy_copy` pays the transfer once instead of
/// per launch (the paper's §8.3 runtime optimization).
#[must_use]
pub fn kernel_time_ms(
    api: Api,
    platform: Platform,
    kind: IdiomKind,
    w: &Workload,
    lazy_copy: bool,
) -> Option<f64> {
    let eff = supported(api, platform, kind)?;
    let (gflops, gbs, pcie, launch_us) = platform.specs();
    let t_compute = w.flops / (eff * gflops * 1e9);
    let t_mem = w.bytes / (eff * gbs * 1e9);
    let t_kernel = t_compute.max(t_mem);
    let t_launch = w.launches * launch_us * 1e-6;
    let t_transfer = match pcie {
        Some(bw) => {
            let per_phase = 2.0 * w.transfer_bytes / (bw * 1e9); // to + from device
            if lazy_copy {
                per_phase
            } else {
                per_phase * w.launches.max(1.0)
            }
        }
        None => 0.0, // shared memory: zero copy
    };
    Some((t_kernel + t_launch + t_transfer) * 1e3)
}

/// Sequential milliseconds for `cost_units` abstract units (one 3.7 GHz
/// scalar core retiring one unit per cycle).
#[must_use]
pub fn sequential_time_ms(cost_units: f64) -> f64 {
    cost_units / 3.7e6
}

/// Whether `platform` may legally execute a region carrying the given
/// parallel-safety class. The GPU hosts run every work-item concurrently,
/// so they require a certificate stronger than serial (reduction-only
/// regions are admitted: the simulated APIs all provide tree-reduction /
/// atomic-accumulate support). The CPU host can always fall back to
/// in-order execution.
#[must_use]
pub fn platform_admits(platform: Platform, safety: ParallelSafety) -> bool {
    match platform {
        Platform::Cpu => true,
        Platform::IGpu | Platform::Gpu => safety != ParallelSafety::Serial,
    }
}

/// [`kernel_time_ms`] gated by the region's parallel-safety certificate:
/// `None` when `platform` is not admissible for `safety`, regardless of
/// API support.
#[must_use]
pub fn kernel_time_ms_certified(
    api: Api,
    platform: Platform,
    kind: IdiomKind,
    w: &Workload,
    lazy_copy: bool,
    safety: ParallelSafety,
) -> Option<f64> {
    if !platform_admits(platform, safety) {
        return None;
    }
    kernel_time_ms(api, platform, kind, w, lazy_copy)
}

/// The fastest (api, time) for `kind` on `platform`, if any API applies.
#[must_use]
pub fn best_configuration(
    platform: Platform,
    kind: IdiomKind,
    w: &Workload,
    lazy_copy: bool,
) -> Option<(Api, f64)> {
    Api::AUTO
        .iter()
        .filter_map(|&api| kernel_time_ms(api, platform, kind, w, lazy_copy).map(|t| (api, t)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// [`best_configuration`] under the certificate gate: a serial-certified
/// region never gets a parallel-host configuration.
#[must_use]
pub fn best_configuration_certified(
    platform: Platform,
    kind: IdiomKind,
    w: &Workload,
    lazy_copy: bool,
    safety: ParallelSafety,
) -> Option<(Api, f64)> {
    if !platform_admits(platform, safety) {
        return None;
    }
    best_configuration(platform, kind, w, lazy_copy)
}

/// Minimum share of a program's measured dynamic cost a region must
/// account for before offloading it is worthwhile (Figure 17's coverage
/// logic: regions that dominate runtime are the ones worth moving; a
/// region below this threshold can at best shave that fraction off the
/// program, which launch overhead eats).
pub const OFFLOAD_COVERAGE_THRESHOLD: f64 = 0.10;

/// Measured execution counts for one replaced region, taken from an
/// [`interp::Profile`] run — the profile-guided alternative to a static
/// [`Workload`] guess.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RegionProfile {
    /// Weighted cost units attributed to the region's instructions.
    pub cost_units: f64,
    /// Weighted cost units of the whole program run.
    pub total_cost_units: f64,
    /// Floating-point operations counted inside the region.
    pub flops: f64,
    /// Bytes moved by the region's loads and stores.
    pub bytes: f64,
    /// Region entries over the run (kernel launches).
    pub launches: f64,
}

impl RegionProfile {
    /// The region's share of the program's measured dynamic cost
    /// (Figure 17's per-benchmark coverage bar).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_cost_units > 0.0 {
            self.cost_units / self.total_cost_units
        } else {
            0.0
        }
    }

    /// Whether the measured coverage justifies offloading at all.
    #[must_use]
    pub fn clears_threshold(&self) -> bool {
        self.coverage() >= OFFLOAD_COVERAGE_THRESHOLD
    }

    /// The measured counts as a [`Workload`] for the roofline model.
    /// Transfers move the region's array footprint once per launch, so
    /// the per-transfer size is the measured bytes averaged over
    /// launches.
    #[must_use]
    pub fn workload(&self) -> Workload {
        Workload {
            flops: self.flops,
            bytes: self.bytes,
            transfer_bytes: self.bytes / self.launches.max(1.0),
            launches: self.launches.max(1.0),
        }
    }

    /// Modeled sequential time of the region itself.
    #[must_use]
    pub fn sequential_time_ms(&self) -> f64 {
        sequential_time_ms(self.cost_units)
    }
}

/// Profile-guided [`best_configuration_certified`]: consumes measured
/// region counts instead of a static workload guess and refuses to
/// offload regions whose measured dynamic-cost share is below
/// [`OFFLOAD_COVERAGE_THRESHOLD`].
#[must_use]
pub fn best_configuration_profiled(
    platform: Platform,
    kind: IdiomKind,
    profile: &RegionProfile,
    lazy_copy: bool,
    safety: ParallelSafety,
) -> Option<(Api, f64)> {
    if !profile.clears_threshold() {
        return None;
    }
    best_configuration_certified(platform, kind, &profile.workload(), lazy_copy, safety)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_workload() -> Workload {
        // 1024^3 MACs, called once.
        let n = 1024.0_f64;
        Workload {
            flops: 2.0 * n * n * n,
            bytes: 3.0 * n * n * 8.0 * 8.0, // tiled traffic proxy
            transfer_bytes: 3.0 * n * n * 8.0,
            launches: 1.0,
        }
    }

    #[test]
    fn api_support_matrix_matches_the_paper() {
        use idioms::IdiomKind::*;
        // Halide has no GPU backend (Table 3 note).
        assert!(supported(Api::Halide, Platform::Gpu, Stencil2D).is_none());
        assert!(supported(Api::Halide, Platform::Cpu, Stencil2D).is_some());
        // cuSPARSE only targets the Nvidia GPU.
        assert!(supported(Api::CuSparse, Platform::IGpu, Spmv).is_none());
        assert!(supported(Api::CuSparse, Platform::Gpu, Spmv).is_some());
        // libSPMV runs on all three platforms.
        for p in Platform::ALL {
            assert!(supported(Api::LibSpmv, p, Spmv).is_some());
        }
        // MKL is CPU-only.
        assert!(supported(Api::Mkl, Platform::Gpu, Gemm).is_none());
    }

    #[test]
    fn gemm_winners_per_platform() {
        let w = gemm_workload();
        let (cpu_api, cpu_t) =
            best_configuration(Platform::Cpu, idioms::IdiomKind::Gemm, &w, true).unwrap();
        let (igpu_api, igpu_t) =
            best_configuration(Platform::IGpu, idioms::IdiomKind::Gemm, &w, true).unwrap();
        let (gpu_api, gpu_t) =
            best_configuration(Platform::Gpu, idioms::IdiomKind::Gemm, &w, true).unwrap();
        assert_eq!(cpu_api, Api::Mkl, "MKL wins CPU linear algebra");
        assert_eq!(igpu_api, Api::ClBlas, "clBLAS wins iGPU GEMM");
        assert_eq!(gpu_api, Api::CuBlas, "cuBLAS wins GPU GEMM");
        assert!(
            gpu_t < igpu_t && igpu_t < cpu_t,
            "compute-bound GEMM loves the dGPU"
        );
    }

    #[test]
    fn transfer_bound_kernels_prefer_near_memory_and_lazy_copy_matters() {
        // A small reduction launched many times (CG-style iteration).
        let w = Workload {
            flops: 2e6,
            bytes: 1.6e7,
            transfer_bytes: 8e6,
            launches: 1000.0,
        };
        let eager = kernel_time_ms(
            Api::Lift,
            Platform::Gpu,
            idioms::IdiomKind::Reduction,
            &w,
            false,
        )
        .unwrap();
        let lazy = kernel_time_ms(
            Api::Lift,
            Platform::Gpu,
            idioms::IdiomKind::Reduction,
            &w,
            true,
        )
        .unwrap();
        assert!(
            eager / lazy > 20.0,
            "lazy copying is crucial: {eager} vs {lazy}"
        );
        // Without lazy copy, the iGPU (zero-copy) beats the dGPU.
        let igpu = kernel_time_ms(
            Api::Lift,
            Platform::IGpu,
            idioms::IdiomKind::Reduction,
            &w,
            false,
        )
        .unwrap();
        assert!(igpu < eager, "shared memory avoids the PCIe tax");
    }

    #[test]
    fn serial_certificates_never_reach_a_parallel_host() {
        let w = gemm_workload();
        for p in [Platform::IGpu, Platform::Gpu] {
            assert!(!platform_admits(p, ParallelSafety::Serial));
            assert!(best_configuration_certified(
                p,
                idioms::IdiomKind::Gemm,
                &w,
                true,
                ParallelSafety::Serial
            )
            .is_none());
            assert!(kernel_time_ms_certified(
                Api::Lift,
                p,
                idioms::IdiomKind::Reduction,
                &w,
                true,
                ParallelSafety::Serial
            )
            .is_none());
        }
        // The CPU host can always fall back to in-order execution, and
        // reduction-only regions are admitted everywhere.
        assert!(platform_admits(Platform::Cpu, ParallelSafety::Serial));
        for p in Platform::ALL {
            assert!(platform_admits(p, ParallelSafety::ReductionOnly));
            assert!(platform_admits(p, ParallelSafety::IndependentIterations));
        }
        // The gated query degrades to the ungated one when admitted.
        assert_eq!(
            best_configuration_certified(
                Platform::Gpu,
                idioms::IdiomKind::Gemm,
                &w,
                true,
                ParallelSafety::IndependentIterations
            )
            .map(|(api, _)| api),
            Some(Api::CuBlas)
        );
    }

    #[test]
    fn sequential_scale_is_sane() {
        // 3.7e9 units ≈ one second of one core.
        assert!((sequential_time_ms(3.7e9) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn profiled_offload_is_coverage_gated() {
        // A GEMM that dominates the measured run: offloads like the
        // static query would.
        let hot = RegionProfile {
            cost_units: 9.0e9,
            total_cost_units: 1.0e10,
            flops: 2.0 * 1024f64.powi(3),
            bytes: 3.0 * 1024.0 * 1024.0 * 8.0,
            launches: 1.0,
        };
        assert!((hot.coverage() - 0.9).abs() < 1e-12);
        assert!(hot.clears_threshold());
        let got = best_configuration_profiled(
            Platform::Gpu,
            idioms::IdiomKind::Gemm,
            &hot,
            true,
            ParallelSafety::IndependentIterations,
        );
        assert_eq!(got.map(|(api, _)| api), Some(Api::CuBlas));

        // The same region in a program where it is 1% of the measured
        // cost: below the Figure 17 coverage threshold, never offloaded.
        let cold = RegionProfile {
            total_cost_units: 9.0e11,
            ..hot
        };
        assert!(!cold.clears_threshold());
        assert!(best_configuration_profiled(
            Platform::Gpu,
            idioms::IdiomKind::Gemm,
            &cold,
            true,
            ParallelSafety::IndependentIterations,
        )
        .is_none());

        // And the certificate gate still composes: serial never offloads
        // to a GPU no matter how hot the region measured.
        assert!(best_configuration_profiled(
            Platform::Gpu,
            idioms::IdiomKind::Gemm,
            &hot,
            true,
            ParallelSafety::Serial,
        )
        .is_none());
    }

    #[test]
    fn profiled_workload_averages_transfer_over_launches() {
        let p = RegionProfile {
            cost_units: 1.0,
            total_cost_units: 1.0,
            flops: 100.0,
            bytes: 8000.0,
            launches: 10.0,
        };
        let w = p.workload();
        assert_eq!(w.transfer_bytes, 800.0);
        assert_eq!(w.launches, 10.0);
        // Degenerate profile (no launches recorded) stays finite.
        let z = RegionProfile::default();
        assert_eq!(z.coverage(), 0.0);
        assert!(z.workload().transfer_bytes.abs() < 1e-12);
    }

    #[test]
    fn speedup_shape_for_spmv_matches_cg() {
        // CG-like: SPMV dominates; modeled GPU speedup lands in the same
        // decade as the paper's 17x.
        let w = Workload {
            flops: 3.8e9,
            bytes: 3.0e10,
            transfer_bytes: 2.3e8,
            launches: 1900.0,
        };
        let seq_ms = sequential_time_ms(2.4e10);
        let (api, gpu_ms) =
            best_configuration(Platform::Gpu, idioms::IdiomKind::Spmv, &w, true).unwrap();
        assert_eq!(api, Api::CuSparse);
        let speedup = seq_ms / gpu_ms;
        assert!(speedup > 5.0 && speedup < 60.0, "speedup {speedup}");
    }
}
