//! # interp — an interpreter and profiler for ssair modules
//!
//! The reproduction needs to *execute* the benchmark programs for three
//! purposes:
//!
//! 1. **correctness validation** — after the idiom replacement phase, the
//!    transformed program (with heterogeneous API calls) must compute the
//!    same results as the original (tested end-to-end in `/tests`);
//! 2. **runtime coverage** (paper Figure 17) — the per-instruction
//!    execution counts of the [`Profile`] determine what fraction of the
//!    sequential work happens inside detected idiom regions;
//! 3. **the sequential cost model** (paper Figure 18 / Table 3 baselines)
//!    — the `hetero` crate converts profile counts into modeled sequential
//!    milliseconds.
//!
//! The machine is a straightforward SSA evaluator over a byte-addressable
//! memory. Calls resolve in order to: registered *host functions* (the
//! simulated heterogeneous APIs installed by the `hetero` crate), the math
//! intrinsics, then module functions.

mod machine;
mod memory;
mod profile;

pub use machine::{ExecError, HostFn, Machine, Value};
pub use memory::{Allocation, Memory, OutWindow, ReadView};
pub use profile::Profile;
