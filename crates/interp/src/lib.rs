//! # interp — an interpreter and profiler for ssair modules
//!
//! The reproduction needs to *execute* the benchmark programs for three
//! purposes:
//!
//! 1. **correctness validation** — after the idiom replacement phase, the
//!    transformed program (with heterogeneous API calls) must compute the
//!    same results as the original (tested end-to-end in `/tests`);
//! 2. **runtime coverage** (paper Figure 17) — the per-instruction
//!    execution counts of the [`Profile`] determine what fraction of the
//!    sequential work happens inside detected idiom regions;
//! 3. **the sequential cost model** (paper Figure 18 / Table 3 baselines)
//!    — the `hetero` crate converts profile counts into modeled sequential
//!    milliseconds.
//!
//! Two executors share one semantics. The tree-walking [`Machine`] is a
//! straightforward SSA evaluator over a byte-addressable memory and serves
//! as the debug oracle; the production path lowers each module once with
//! [`compile_module`] into a flat register bytecode and executes it many
//! times with the [`Vm`] — same results, same errors, same step
//! accounting, differential-tested bit-for-bit. Calls resolve in order
//! to: registered *host functions* (the simulated heterogeneous APIs
//! installed by the `hetero` crate), the math intrinsics, then module
//! functions.

mod bytecode;
mod machine;
mod memory;
mod profile;
mod vm;

pub use bytecode::{compile_module, CompiledModule};
pub use machine::{ExecError, HostFn, HostRegistry, Machine, Value};
pub use memory::{Allocation, Memory, OutWindow, ReadView};
pub use profile::Profile;
pub use vm::Vm;
