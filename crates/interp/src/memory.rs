//! Byte-addressable linear memory with typed accessors.
//!
//! Address 0 is reserved as null; allocations are 8-byte aligned. The
//! memory is the single shared address space of a simulated run — the
//! "host" arrays of a benchmark live here, and the simulated heterogeneous
//! APIs read and write them directly (data-transfer *cost* is modeled
//! separately by `hetero`; correctness uses this one space).

use ssair::Type;

/// One typed allocation, as recorded by [`Memory::alloc`].
///
/// The differential validator replays a benchmark's `setup` on two
/// machines and then compares exactly these arrays element-wise; the
/// record is what makes that comparison typed and in-bounds by
/// construction (no whole-memory byte scans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Base address.
    pub base: u64,
    /// Element type.
    pub elem: Type,
    /// Number of elements.
    pub count: usize,
}

impl Allocation {
    /// Size of the allocation in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.elem.size_bytes() * self.count
    }
}

/// Linear memory.
pub struct Memory {
    bytes: Vec<u8>,
    allocations: Vec<Allocation>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// Creates an empty memory (address 0 reserved).
    #[must_use]
    pub fn new() -> Memory {
        Memory {
            bytes: vec![0; 8],
            allocations: Vec::new(),
        }
    }

    /// Current size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Every typed allocation made so far, in allocation order. Untyped
    /// [`Memory::alloc_bytes`] calls are not recorded.
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Allocates `n` bytes, zero-initialized, 8-byte aligned.
    pub fn alloc_bytes(&mut self, n: usize) -> u64 {
        let addr = (self.bytes.len() + 7) & !7;
        self.bytes.resize(addr + n, 0);
        addr as u64
    }

    /// Allocates an array of `n` elements of `ty` and records it (see
    /// [`Memory::allocations`]).
    pub fn alloc(&mut self, ty: &Type, n: usize) -> u64 {
        let base = self.alloc_bytes(ty.size_bytes() * n);
        self.allocations.push(Allocation {
            base,
            elem: ty.clone(),
            count: n,
        });
        base
    }

    fn check(&self, addr: u64, n: usize) -> Result<usize, String> {
        let a = addr as usize;
        if addr == 0 {
            return Err("null pointer access".into());
        }
        if a + n > self.bytes.len() {
            return Err(format!("out-of-bounds access at {addr} (+{n})"));
        }
        Ok(a)
    }

    /// Loads an `i64` (or pointer) value.
    pub fn load_i64(&self, addr: u64) -> Result<i64, String> {
        let a = self.check(addr, 8)?;
        Ok(i64::from_le_bytes(
            self.bytes[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Stores an `i64` (or pointer) value.
    pub fn store_i64(&mut self, addr: u64, v: i64) -> Result<(), String> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Loads an `i32` value (sign-preserved in `i64`).
    pub fn load_i32(&self, addr: u64) -> Result<i64, String> {
        let a = self.check(addr, 4)?;
        Ok(i64::from(i32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("4 bytes"),
        )))
    }

    /// Stores an `i32` value (truncating).
    pub fn store_i32(&mut self, addr: u64, v: i64) -> Result<(), String> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&(v as i32).to_le_bytes());
        Ok(())
    }

    /// Loads an `i1` value.
    pub fn load_i8(&self, addr: u64) -> Result<i64, String> {
        let a = self.check(addr, 1)?;
        Ok(i64::from(self.bytes[a]))
    }

    /// Stores an `i1` value.
    pub fn store_i8(&mut self, addr: u64, v: i64) -> Result<(), String> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = (v & 1) as u8;
        Ok(())
    }

    /// Loads an `f64`.
    pub fn load_f64(&self, addr: u64) -> Result<f64, String> {
        let a = self.check(addr, 8)?;
        Ok(f64::from_le_bytes(
            self.bytes[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Stores an `f64`.
    pub fn store_f64(&mut self, addr: u64, v: f64) -> Result<(), String> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Loads an `f32` widened to `f64`.
    pub fn load_f32(&self, addr: u64) -> Result<f64, String> {
        let a = self.check(addr, 4)?;
        Ok(f64::from(f32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("4 bytes"),
        )))
    }

    /// Stores an `f32` (narrowing).
    pub fn store_f32(&mut self, addr: u64, v: f64) -> Result<(), String> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&(v as f32).to_le_bytes());
        Ok(())
    }

    // ----- bulk helpers for harnesses and tests -----

    /// Allocates and fills an `f64` array; returns its address.
    pub fn alloc_f64_slice(&mut self, data: &[f64]) -> u64 {
        let addr = self.alloc(&Type::F64, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_f64(addr + 8 * i as u64, v).expect("in bounds");
        }
        addr
    }

    /// Allocates and fills an `f32` array; returns its address.
    pub fn alloc_f32_slice(&mut self, data: &[f32]) -> u64 {
        let addr = self.alloc(&Type::F32, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_f32(addr + 4 * i as u64, f64::from(v))
                .expect("in bounds");
        }
        addr
    }

    /// Allocates and fills an `i32` array; returns its address.
    pub fn alloc_i32_slice(&mut self, data: &[i32]) -> u64 {
        let addr = self.alloc(&Type::I32, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_i32(addr + 4 * i as u64, i64::from(v))
                .expect("in bounds");
        }
        addr
    }

    /// Allocates and fills an `i64` array; returns its address.
    pub fn alloc_i64_slice(&mut self, data: &[i64]) -> u64 {
        let addr = self.alloc(&Type::I64, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_i64(addr + 8 * i as u64, v).expect("in bounds");
        }
        addr
    }

    /// Reads back an `f64` array.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.load_f64(addr + 8 * i as u64).expect("in bounds"))
            .collect()
    }

    /// Reads back an `f32` array (widened).
    pub fn read_f32_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.load_f32(addr + 4 * i as u64).expect("in bounds"))
            .collect()
    }

    /// Reads back an `i32` array.
    pub fn read_i32_slice(&self, addr: u64, n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| self.load_i32(addr + 4 * i as u64).expect("in bounds"))
            .collect()
    }

    /// Reads back an `i64` array.
    pub fn read_i64_slice(&self, addr: u64, n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| self.load_i64(addr + 8 * i as u64).expect("in bounds"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut m = Memory::new();
        let a = m.alloc(&Type::F64, 2);
        m.store_f64(a, 1.5).unwrap();
        m.store_f64(a + 8, -2.5).unwrap();
        assert_eq!(m.load_f64(a).unwrap(), 1.5);
        assert_eq!(m.load_f64(a + 8).unwrap(), -2.5);
        let b = m.alloc(&Type::I32, 1);
        m.store_i32(b, -7).unwrap();
        assert_eq!(m.load_i32(b).unwrap(), -7);
    }

    #[test]
    fn rejects_null_and_out_of_bounds() {
        let mut m = Memory::new();
        assert!(m.load_f64(0).is_err());
        let a = m.alloc(&Type::F64, 1);
        assert!(m.load_f64(a + 8).is_err());
        assert!(m.store_i64(0, 1).is_err());
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut m = Memory::new();
        let a = m.alloc(&Type::I32, 3); // 12 bytes
        let b = m.alloc(&Type::F64, 1);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 12);
    }

    #[test]
    fn typed_allocations_are_recorded() {
        let mut m = Memory::new();
        let a = m.alloc_f64_slice(&[1.0, 2.0]);
        let b = m.alloc(&Type::I32, 3);
        let _raw = m.alloc_bytes(16); // untyped: not recorded
        assert_eq!(
            m.allocations(),
            &[
                Allocation {
                    base: a,
                    elem: Type::F64,
                    count: 2
                },
                Allocation {
                    base: b,
                    elem: Type::I32,
                    count: 3
                },
            ]
        );
        assert_eq!(m.allocations()[0].size_bytes(), 16);
    }

    #[test]
    fn slice_helpers_round_trip() {
        let mut m = Memory::new();
        let a = m.alloc_f64_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f64_slice(a, 3), vec![1.0, 2.0, 3.0]);
        let b = m.alloc_i32_slice(&[-1, 5]);
        assert_eq!(m.read_i32_slice(b, 2), vec![-1, 5]);
        let c = m.alloc_f32_slice(&[0.5]);
        assert_eq!(m.read_f32_slice(c, 1), vec![0.5]);
    }
}
