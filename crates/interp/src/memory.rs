//! Byte-addressable linear memory with typed accessors.
//!
//! Address 0 is reserved as null; allocations are 8-byte aligned. The
//! memory is the single shared address space of a simulated run — the
//! "host" arrays of a benchmark live here, and the simulated heterogeneous
//! APIs read and write them directly (data-transfer *cost* is modeled
//! separately by `hetero`; correctness uses this one space).

use ssair::Type;

/// One typed allocation, as recorded by [`Memory::alloc`].
///
/// The differential validator replays a benchmark's `setup` on two
/// machines and then compares exactly these arrays element-wise; the
/// record is what makes that comparison typed and in-bounds by
/// construction (no whole-memory byte scans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Base address.
    pub base: u64,
    /// Element type.
    pub elem: Type,
    /// Number of elements.
    pub count: usize,
}

impl Allocation {
    /// Size of the allocation in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.elem.size_bytes() * self.count
    }
}

/// Linear memory.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    allocations: Vec<Allocation>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// Creates an empty memory (address 0 reserved).
    #[must_use]
    pub fn new() -> Memory {
        Memory {
            bytes: vec![0; 8],
            allocations: Vec::new(),
        }
    }

    /// Current size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Every typed allocation made so far, in allocation order. Untyped
    /// [`Memory::alloc_bytes`] calls are not recorded.
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Allocates `n` bytes, zero-initialized, 8-byte aligned.
    pub fn alloc_bytes(&mut self, n: usize) -> u64 {
        let addr = (self.bytes.len() + 7) & !7;
        self.bytes.resize(addr + n, 0);
        addr as u64
    }

    /// Allocates an array of `n` elements of `ty` and records it (see
    /// [`Memory::allocations`]).
    pub fn alloc(&mut self, ty: &Type, n: usize) -> u64 {
        let base = self.alloc_bytes(ty.size_bytes() * n);
        self.allocations.push(Allocation {
            base,
            elem: ty.clone(),
            count: n,
        });
        base
    }

    fn check(&self, addr: u64, n: usize) -> Result<usize, String> {
        let a = addr as usize;
        if addr == 0 {
            return Err("null pointer access".into());
        }
        if a + n > self.bytes.len() {
            return Err(format!("out-of-bounds access at {addr} (+{n})"));
        }
        Ok(a)
    }

    /// Loads an `i64` (or pointer) value.
    pub fn load_i64(&self, addr: u64) -> Result<i64, String> {
        let a = self.check(addr, 8)?;
        Ok(i64::from_le_bytes(
            self.bytes[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Stores an `i64` (or pointer) value.
    pub fn store_i64(&mut self, addr: u64, v: i64) -> Result<(), String> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Loads an `i32` value (sign-preserved in `i64`).
    pub fn load_i32(&self, addr: u64) -> Result<i64, String> {
        let a = self.check(addr, 4)?;
        Ok(i64::from(i32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("4 bytes"),
        )))
    }

    /// Stores an `i32` value (truncating).
    pub fn store_i32(&mut self, addr: u64, v: i64) -> Result<(), String> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&(v as i32).to_le_bytes());
        Ok(())
    }

    /// Loads an `i1` value.
    pub fn load_i8(&self, addr: u64) -> Result<i64, String> {
        let a = self.check(addr, 1)?;
        Ok(i64::from(self.bytes[a]))
    }

    /// Stores an `i1` value.
    pub fn store_i8(&mut self, addr: u64, v: i64) -> Result<(), String> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = (v & 1) as u8;
        Ok(())
    }

    /// Loads an `f64`.
    pub fn load_f64(&self, addr: u64) -> Result<f64, String> {
        let a = self.check(addr, 8)?;
        Ok(f64::from_le_bytes(
            self.bytes[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Stores an `f64`.
    pub fn store_f64(&mut self, addr: u64, v: f64) -> Result<(), String> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Loads an `f32` widened to `f64`.
    pub fn load_f32(&self, addr: u64) -> Result<f64, String> {
        let a = self.check(addr, 4)?;
        Ok(f64::from(f32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("4 bytes"),
        )))
    }

    /// Stores an `f32` (narrowing).
    pub fn store_f32(&mut self, addr: u64, v: f64) -> Result<(), String> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&(v as f32).to_le_bytes());
        Ok(())
    }

    // ----- bulk helpers for harnesses and tests -----

    /// Allocates and fills an `f64` array; returns its address.
    pub fn alloc_f64_slice(&mut self, data: &[f64]) -> u64 {
        let addr = self.alloc(&Type::F64, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_f64(addr + 8 * i as u64, v).expect("in bounds");
        }
        addr
    }

    /// Allocates and fills an `f32` array; returns its address.
    pub fn alloc_f32_slice(&mut self, data: &[f32]) -> u64 {
        let addr = self.alloc(&Type::F32, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_f32(addr + 4 * i as u64, f64::from(v))
                .expect("in bounds");
        }
        addr
    }

    /// Allocates and fills an `i32` array; returns its address.
    pub fn alloc_i32_slice(&mut self, data: &[i32]) -> u64 {
        let addr = self.alloc(&Type::I32, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_i32(addr + 4 * i as u64, i64::from(v))
                .expect("in bounds");
        }
        addr
    }

    /// Allocates and fills an `i64` array; returns its address.
    pub fn alloc_i64_slice(&mut self, data: &[i64]) -> u64 {
        let addr = self.alloc(&Type::I64, data.len());
        for (i, &v) in data.iter().enumerate() {
            self.store_i64(addr + 8 * i as u64, v).expect("in bounds");
        }
        addr
    }

    /// Reads back an `f64` array.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.load_f64(addr + 8 * i as u64).expect("in bounds"))
            .collect()
    }

    /// Reads back an `f32` array (widened).
    pub fn read_f32_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| self.load_f32(addr + 4 * i as u64).expect("in bounds"))
            .collect()
    }

    /// Reads back an `i32` array.
    pub fn read_i32_slice(&self, addr: u64, n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| self.load_i32(addr + 4 * i as u64).expect("in bounds"))
            .collect()
    }

    /// Reads back an `i64` array.
    pub fn read_i64_slice(&self, addr: u64, n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| self.load_i64(addr + 8 * i as u64).expect("in bounds"))
            .collect()
    }

    // ----- parallel-backend support -----

    /// The raw byte image (for snapshotting and bitwise comparison).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw byte image. Used by parallel executors
    /// to merge disjoint worker writes back; the allocation table is
    /// unaffected.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Splits the memory into a shared read view of everything *outside*
    /// `[base, base + len)` and an exclusive output window over that
    /// range. The view is `Sync` (workers share it), the window is `Send`
    /// and can be further [`OutWindow::split_at`] into disjoint
    /// per-worker slices — together they are the threading contract of
    /// the parallel kernel hosts: concurrent reads anywhere except the
    /// output, exclusive writes inside it.
    pub fn split_out(
        &mut self,
        base: u64,
        len: usize,
    ) -> Result<(ReadView<'_>, OutWindow<'_>), String> {
        if base == 0 {
            return Err("null pointer output window".into());
        }
        let b = base as usize;
        if b + len > self.bytes.len() {
            return Err(format!("out-of-bounds output window at {base} (+{len})"));
        }
        let (lo, rest) = self.bytes.split_at_mut(b);
        let (win, hi) = rest.split_at_mut(len);
        Ok((
            ReadView {
                lo,
                hi,
                win_start: b,
                win_end: b + len,
            },
            OutWindow {
                bytes: win,
                start: b,
            },
        ))
    }
}

/// Read-only view of a [`Memory`] with one address range carved out (the
/// output window of a parallel kernel). Loads that land inside the
/// carved-out range fail with a descriptive error — an input overlapping
/// the output means the independence certificate was wrong, and the
/// parallel backend reports that instead of racing.
pub struct ReadView<'a> {
    lo: &'a [u8],
    hi: &'a [u8],
    win_start: usize,
    win_end: usize,
}

impl ReadView<'_> {
    fn slice(&self, addr: u64, n: usize) -> Result<&[u8], String> {
        if addr == 0 {
            return Err("null pointer access".into());
        }
        let a = addr as usize;
        if a + n <= self.win_start {
            return Ok(&self.lo[a..a + n]);
        }
        if a >= self.win_end {
            let off = a - self.win_end;
            if off + n > self.hi.len() {
                return Err(format!("out-of-bounds access at {addr} (+{n})"));
            }
            return Ok(&self.hi[off..off + n]);
        }
        Err(format!(
            "read at {addr} (+{n}) overlaps the parallel output window [{}, {}) — \
             input/output alias violates the independence certificate",
            self.win_start, self.win_end
        ))
    }

    /// Loads an `f64`.
    pub fn load_f64(&self, addr: u64) -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            self.slice(addr, 8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Loads an `i64` (or pointer) value.
    pub fn load_i64(&self, addr: u64) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.slice(addr, 8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Loads an `i32` value (sign-preserved in `i64`).
    pub fn load_i32(&self, addr: u64) -> Result<i64, String> {
        Ok(i64::from(i32::from_le_bytes(
            self.slice(addr, 4)?.try_into().expect("4 bytes"),
        )))
    }
}

/// Exclusive, bounds-checked window over one output range of a
/// [`Memory`]. Addresses are absolute (same address space as the parent
/// memory); [`OutWindow::split_at`] carves it into disjoint per-worker
/// windows.
pub struct OutWindow<'a> {
    bytes: &'a mut [u8],
    start: usize,
}

impl<'a> OutWindow<'a> {
    /// Absolute address of the first byte of the window.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.start as u64
    }

    /// Window length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn offset(&self, addr: u64, n: usize) -> Result<usize, String> {
        let a = addr as usize;
        if a < self.start || a + n > self.start + self.bytes.len() {
            return Err(format!(
                "access at {addr} (+{n}) outside the output window [{}, {})",
                self.start,
                self.start + self.bytes.len()
            ));
        }
        Ok(a - self.start)
    }

    /// Loads an `f64` from inside the window (absolute address).
    pub fn load_f64(&self, addr: u64) -> Result<f64, String> {
        let o = self.offset(addr, 8)?;
        Ok(f64::from_le_bytes(
            self.bytes[o..o + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Stores an `f64` inside the window (absolute address).
    pub fn store_f64(&mut self, addr: u64, v: f64) -> Result<(), String> {
        let o = self.offset(addr, 8)?;
        self.bytes[o..o + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Splits at absolute address `addr`, returning the windows
    /// `[base, addr)` and `[addr, base + len)`.
    pub fn split_at(self, addr: u64) -> Result<(OutWindow<'a>, OutWindow<'a>), String> {
        let a = addr as usize;
        if a < self.start || a > self.start + self.bytes.len() {
            return Err(format!(
                "split at {addr} outside the output window [{}, {})",
                self.start,
                self.start + self.bytes.len()
            ));
        }
        let mid = a - self.start;
        let (l, r) = self.bytes.split_at_mut(mid);
        Ok((
            OutWindow {
                bytes: l,
                start: self.start,
            },
            OutWindow { bytes: r, start: a },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut m = Memory::new();
        let a = m.alloc(&Type::F64, 2);
        m.store_f64(a, 1.5).unwrap();
        m.store_f64(a + 8, -2.5).unwrap();
        assert_eq!(m.load_f64(a).unwrap(), 1.5);
        assert_eq!(m.load_f64(a + 8).unwrap(), -2.5);
        let b = m.alloc(&Type::I32, 1);
        m.store_i32(b, -7).unwrap();
        assert_eq!(m.load_i32(b).unwrap(), -7);
    }

    #[test]
    fn rejects_null_and_out_of_bounds() {
        let mut m = Memory::new();
        assert!(m.load_f64(0).is_err());
        let a = m.alloc(&Type::F64, 1);
        assert!(m.load_f64(a + 8).is_err());
        assert!(m.store_i64(0, 1).is_err());
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut m = Memory::new();
        let a = m.alloc(&Type::I32, 3); // 12 bytes
        let b = m.alloc(&Type::F64, 1);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 12);
    }

    #[test]
    fn typed_allocations_are_recorded() {
        let mut m = Memory::new();
        let a = m.alloc_f64_slice(&[1.0, 2.0]);
        let b = m.alloc(&Type::I32, 3);
        let _raw = m.alloc_bytes(16); // untyped: not recorded
        assert_eq!(
            m.allocations(),
            &[
                Allocation {
                    base: a,
                    elem: Type::F64,
                    count: 2
                },
                Allocation {
                    base: b,
                    elem: Type::I32,
                    count: 3
                },
            ]
        );
        assert_eq!(m.allocations()[0].size_bytes(), 16);
    }

    #[test]
    fn split_out_gives_disjoint_view_and_window() {
        let mut m = Memory::new();
        let a = m.alloc_f64_slice(&[1.0, 2.0]);
        let out = m.alloc_f64_slice(&[0.0, 0.0, 0.0]);
        let (view, mut win) = m.split_out(out, 24).unwrap();
        // Reads outside the window succeed, including past it.
        assert_eq!(view.load_f64(a).unwrap(), 1.0);
        assert_eq!(view.load_f64(a + 8).unwrap(), 2.0);
        // Reads inside the window are refused (alias = broken certificate).
        let err = view.load_f64(out + 8).unwrap_err();
        assert!(err.contains("independence certificate"), "{err}");
        assert!(view.load_f64(0).is_err());
        // Window stores land in the parent memory.
        win.store_f64(out + 16, 7.5).unwrap();
        assert_eq!(win.load_f64(out + 16).unwrap(), 7.5);
        assert!(win.store_f64(a, 0.0).is_err());
        assert!(win.store_f64(out + 24, 0.0).is_err());
        assert_eq!(m.read_f64_slice(out, 3), vec![0.0, 0.0, 7.5]);
    }

    #[test]
    fn out_window_splits_into_disjoint_chunks() {
        let mut m = Memory::new();
        let out = m.alloc_f64_slice(&[0.0; 4]);
        let (_view, win) = m.split_out(out, 32).unwrap();
        let (mut l, mut r) = win.split_at(out + 16).unwrap();
        assert_eq!(l.base(), out);
        assert_eq!(l.len(), 16);
        assert_eq!(r.base(), out + 16);
        assert_eq!(r.len(), 16);
        l.store_f64(out + 8, 1.0).unwrap();
        r.store_f64(out + 16, 2.0).unwrap();
        assert!(l.store_f64(out + 16, 9.0).is_err());
        assert!(r.store_f64(out + 8, 9.0).is_err());
        assert_eq!(m.read_f64_slice(out, 4), vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn split_out_rejects_null_and_oob_windows() {
        let mut m = Memory::new();
        assert!(m.split_out(0, 8).is_err());
        let a = m.alloc_f64_slice(&[1.0]);
        assert!(m.split_out(a, 16).is_err());
    }

    #[test]
    fn memory_clone_is_independent() {
        let mut m = Memory::new();
        let a = m.alloc_f64_slice(&[1.0]);
        let mut c = m.clone();
        c.store_f64(a, 2.0).unwrap();
        assert_eq!(m.load_f64(a).unwrap(), 1.0);
        assert_eq!(c.load_f64(a).unwrap(), 2.0);
        assert_eq!(m.allocations(), c.allocations());
    }

    #[test]
    fn slice_helpers_round_trip() {
        let mut m = Memory::new();
        let a = m.alloc_f64_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f64_slice(a, 3), vec![1.0, 2.0, 3.0]);
        let b = m.alloc_i32_slice(&[-1, 5]);
        assert_eq!(m.read_i32_slice(b, 2), vec![-1, 5]);
        let c = m.alloc_f32_slice(&[0.5]);
        assert_eq!(m.read_f32_slice(c, 1), vec![0.5]);
    }
}
