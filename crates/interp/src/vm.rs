//! The register bytecode VM.
//!
//! Executes a [`CompiledModule`] with semantics bit-for-bit identical to
//! the tree-walking [`Machine`]: the same results, the same `ExecError`
//! messages, the same `max_steps` accounting (one step per executed
//! instruction, phi moves included), and — when profiling is enabled —
//! the same per-`ValueId` execution counts. Functions the compiler left
//! uncompiled run on an embedded fallback walker that shares this VM's
//! memory, step counter, host registry and profile, so mixed
//! compiled/walked call chains stay seamless.
//!
//! The walker in `machine.rs` remains the independent oracle; the
//! differential suite (`tests/vm_differential.rs` and the unit tests
//! below) pins the two against each other.

use crate::bytecode::{
    CallSite, CallTarget, CompiledFunction, CompiledModule, FloatOp, IntOp, Intrinsic, MemKind, Op,
    NO_VID,
};
use crate::machine::{ExecError, HostFn, HostRegistry, Value};
use crate::memory::Memory;
use crate::profile::Profile;
use ssair::{BlockId, FCmpPred, Function, ICmpPred, Opcode, Type, ValueId};
use std::collections::HashMap;

type Result<T> = std::result::Result<T, ExecError>;

fn err(msg: impl Into<String>) -> ExecError {
    ExecError {
        message: msg.into(),
    }
}

/// The bytecode executor. Create once per run from a shared
/// [`CompiledModule`]; the compile cost is paid once per module, not once
/// per seed or kernel launch.
pub struct Vm<'c> {
    compiled: &'c CompiledModule<'c>,
    /// The linear memory of the run.
    pub mem: Memory,
    /// Hosts by interned symbol — the fast path for compiled call sites.
    host_slots: Vec<Option<HostFn<'c>>>,
    /// Hosts by name — the fallback walker's registry (and names with no
    /// interned call site).
    hosts: HashMap<String, HostFn<'c>>,
    /// Abort knob for runaway programs.
    pub max_steps: u64,
    steps: u64,
    profiling: bool,
    /// Dense per-function execution counts, indexed by module function
    /// index then `ValueId` (only allocated when profiling).
    counts: Vec<Vec<u64>>,
}

impl<'c> Vm<'c> {
    /// Creates a VM over compiled code with fresh memory. Profiling is
    /// off by default (enable with [`Vm::set_profiling`]).
    #[must_use]
    pub fn new(compiled: &'c CompiledModule<'c>) -> Vm<'c> {
        Vm {
            compiled,
            mem: Memory::new(),
            host_slots: vec![None; compiled.symbols.len()],
            hosts: HashMap::new(),
            max_steps: 2_000_000_000,
            steps: 0,
            profiling: false,
            counts: Vec::new(),
        }
    }

    /// Registers a host function; calls to `name` dispatch to it before
    /// intrinsics and module functions are considered (the walker's
    /// order).
    pub fn register_host(&mut self, name: impl Into<String>, f: HostFn<'c>) {
        let name = name.into();
        if let Some(&sym) = self.compiled.sym_index.get(&name) {
            self.host_slots[sym as usize] = Some(f.clone());
        }
        self.hosts.insert(name, f);
    }

    /// Steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Turns per-instruction execution counting on or off. Leave it off
    /// on hot paths (validation seeds); turn it on for coverage/offload
    /// analysis.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// The collected execution counts as a [`Profile`], mapped back to
    /// `ValueId`s per function name (empty unless profiling was on).
    #[must_use]
    pub fn profile(&self) -> Profile {
        let mut p = Profile::new();
        for (i, counts) in self.counts.iter().enumerate() {
            p.add_counts(&self.compiled.module.functions[i].name, counts);
        }
        p
    }

    /// Runs `func` with `args`; returns its return value (`I(0)` for
    /// void).
    pub fn run(&mut self, func: &str, args: &[Value]) -> Result<Value> {
        let Some(&idx) = self.compiled.func_index.get(func) else {
            return Err(err(format!("no function named {func:?}")));
        };
        self.call_function(idx as usize, args)
    }

    fn call_function(&mut self, idx: usize, args: &[Value]) -> Result<Value> {
        let compiled = self.compiled;
        match &compiled.funcs[idx] {
            Some(cf) => self.exec_compiled(idx, cf, args),
            None => self.walk_function(idx, &compiled.module.functions[idx], args),
        }
    }

    #[inline]
    fn bump(&mut self, fidx: usize, vid: u32) {
        if self.counts.len() <= fidx {
            self.counts.resize(self.compiled.funcs.len(), Vec::new());
        }
        let c = &mut self.counts[fidx];
        if c.len() <= vid as usize {
            c.resize(
                self.compiled.module.functions[fidx]
                    .num_values()
                    .max(vid as usize + 1),
                0,
            );
        }
        c[vid as usize] += 1;
    }

    fn exec_compiled(
        &mut self,
        fidx: usize,
        cf: &'c CompiledFunction,
        args: &[Value],
    ) -> Result<Value> {
        if args.len() != cf.arity {
            return Err(err(format!(
                "@{} expects {} arguments, got {}",
                cf.name,
                cf.arity,
                args.len()
            )));
        }
        let mut regs = cf.init_regs.clone();
        for (&p, &a) in cf.params.iter().zip(args) {
            regs[p as usize] = a;
        }
        // Parallel-move scratch, reused across phi snippets (no per-edge
        // allocation).
        let mut scratch: Vec<Value> = Vec::new();
        let mut pc = 0usize;
        loop {
            if let Op::PhiMoves { moves, target } = &cf.code[pc] {
                scratch.clear();
                for mv in moves.iter() {
                    self.steps += 1;
                    if self.steps > self.max_steps {
                        return Err(err("step limit exceeded (infinite loop?)"));
                    }
                    scratch.push(regs[mv.src as usize]);
                    if self.profiling {
                        self.bump(fidx, mv.dst);
                    }
                }
                for (mv, &val) in moves.iter().zip(&scratch) {
                    regs[mv.dst as usize] = val;
                }
                pc = *target as usize;
                continue;
            }
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(err("step limit exceeded (infinite loop?)"));
            }
            if self.profiling {
                let vid = cf.vids[pc];
                if vid != NO_VID {
                    self.bump(fidx, vid);
                }
            }
            match &cf.code[pc] {
                Op::IntBin {
                    op,
                    wrap,
                    dst,
                    a,
                    b,
                } => {
                    let a = regs[*a as usize].try_i().map_err(err)?;
                    let b = regs[*b as usize].try_i().map_err(err)?;
                    let r = match op {
                        IntOp::Add => a.wrapping_add(b),
                        IntOp::Sub => a.wrapping_sub(b),
                        IntOp::Mul => a.wrapping_mul(b),
                        IntOp::Div => {
                            if b == 0 {
                                return Err(err("integer division by zero"));
                            }
                            a.wrapping_div(b)
                        }
                        IntOp::Rem => {
                            if b == 0 {
                                return Err(err("integer remainder by zero"));
                            }
                            a.wrapping_rem(b)
                        }
                        IntOp::And => a & b,
                        IntOp::Or => a | b,
                        IntOp::Xor => a ^ b,
                        IntOp::Shl => a.wrapping_shl(b as u32),
                        IntOp::AShr => a.wrapping_shr(b as u32),
                    };
                    regs[*dst as usize] = Value::I(wrap.apply(r));
                    pc += 1;
                }
                Op::FloatBin {
                    op,
                    round,
                    dst,
                    a,
                    b,
                } => {
                    let a = regs[*a as usize].try_f().map_err(err)?;
                    let b = regs[*b as usize].try_f().map_err(err)?;
                    let r = match op {
                        FloatOp::Add => a + b,
                        FloatOp::Sub => a - b,
                        FloatOp::Mul => a * b,
                        FloatOp::Div => a / b,
                    };
                    regs[*dst as usize] = Value::F(if *round { r as f32 as f64 } else { r });
                    pc += 1;
                }
                Op::ICmp { pred, dst, a, b } => {
                    let (a, b) = match (regs[*a as usize], regs[*b as usize]) {
                        (Value::P(x), Value::P(y)) => (x as i64, y as i64),
                        (x, y) => (x.try_i().map_err(err)?, y.try_i().map_err(err)?),
                    };
                    let r = match pred {
                        ICmpPred::Eq => a == b,
                        ICmpPred::Ne => a != b,
                        ICmpPred::Slt => a < b,
                        ICmpPred::Sle => a <= b,
                        ICmpPred::Sgt => a > b,
                        ICmpPred::Sge => a >= b,
                    };
                    regs[*dst as usize] = Value::I(i64::from(r));
                    pc += 1;
                }
                Op::FCmp { pred, dst, a, b } => {
                    let a = regs[*a as usize].try_f().map_err(err)?;
                    let b = regs[*b as usize].try_f().map_err(err)?;
                    let r = match pred {
                        FCmpPred::Oeq => a == b,
                        FCmpPred::One => a != b,
                        FCmpPred::Olt => a < b,
                        FCmpPred::Ole => a <= b,
                        FCmpPred::Ogt => a > b,
                        FCmpPred::Oge => a >= b,
                    };
                    regs[*dst as usize] = Value::I(i64::from(r));
                    pc += 1;
                }
                Op::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => {
                    let c = regs[*cond as usize].try_i().map_err(err)?;
                    regs[*dst as usize] = regs[if c != 0 { *on_true } else { *on_false } as usize];
                    pc += 1;
                }
                Op::Gep {
                    dst,
                    base,
                    idx,
                    elem,
                } => {
                    let base = regs[*base as usize].try_p().map_err(err)?;
                    let idx = regs[*idx as usize].try_i().map_err(err)?;
                    regs[*dst as usize] = Value::P((base as i64 + idx * elem) as u64);
                    pc += 1;
                }
                Op::Load { kind, dst, addr } => {
                    let addr = regs[*addr as usize].try_p().map_err(err)?;
                    let v = match kind {
                        MemKind::I8 => Value::I(self.mem.load_i8(addr).map_err(err)?),
                        MemKind::I32 => Value::I(self.mem.load_i32(addr).map_err(err)?),
                        MemKind::I64 => Value::I(self.mem.load_i64(addr).map_err(err)?),
                        MemKind::F32 => Value::F(self.mem.load_f32(addr).map_err(err)?),
                        MemKind::F64 => Value::F(self.mem.load_f64(addr).map_err(err)?),
                        MemKind::Ptr => Value::P(self.mem.load_i64(addr).map_err(err)? as u64),
                    };
                    regs[*dst as usize] = v;
                    pc += 1;
                }
                Op::Store { kind, val, addr } => {
                    let val = regs[*val as usize];
                    let addr = regs[*addr as usize].try_p().map_err(err)?;
                    let res = match kind {
                        MemKind::I8 => val.try_i().and_then(|x| self.mem.store_i8(addr, x)),
                        MemKind::I32 => val.try_i().and_then(|x| self.mem.store_i32(addr, x)),
                        MemKind::I64 => val.try_i().and_then(|x| self.mem.store_i64(addr, x)),
                        MemKind::F32 => val.try_f().and_then(|x| self.mem.store_f32(addr, x)),
                        MemKind::F64 => val.try_f().and_then(|x| self.mem.store_f64(addr, x)),
                        MemKind::Ptr => {
                            val.try_p().and_then(|x| self.mem.store_i64(addr, x as i64))
                        }
                    };
                    res.map_err(err)?;
                    pc += 1;
                }
                Op::Alloca { dst, n, elem } => {
                    let n = regs[*n as usize].try_i().map_err(err)?;
                    if n < 0 {
                        return Err(err("negative alloca size"));
                    }
                    regs[*dst as usize] = Value::P(self.mem.alloc(elem, n as usize));
                    pc += 1;
                }
                Op::IntCast { wrap, dst, src } => {
                    let x = regs[*src as usize].try_i().map_err(err)?;
                    regs[*dst as usize] = Value::I(wrap.apply(x));
                    pc += 1;
                }
                Op::SiToFp { round, dst, src } => {
                    let x = regs[*src as usize].try_i().map_err(err)? as f64;
                    regs[*dst as usize] = Value::F(if *round { x as f32 as f64 } else { x });
                    pc += 1;
                }
                Op::FpToSi { wrap, dst, src } => {
                    let x = regs[*src as usize].try_f().map_err(err)?;
                    regs[*dst as usize] = Value::I(wrap.apply(x as i64));
                    pc += 1;
                }
                Op::FpExt { dst, src } => {
                    let x = regs[*src as usize].try_f().map_err(err)?;
                    regs[*dst as usize] = Value::F(x);
                    pc += 1;
                }
                Op::FpTrunc { dst, src } => {
                    let x = regs[*src as usize].try_f().map_err(err)?;
                    regs[*dst as usize] = Value::F(x as f32 as f64);
                    pc += 1;
                }
                Op::Call { site } => {
                    let site = &cf.sites[*site as usize];
                    let mut args = Vec::with_capacity(site.args.len());
                    for &r in site.args.iter() {
                        args.push(regs[r as usize]);
                    }
                    regs[site.dst as usize] = self.dispatch_site(site, &args)?;
                    pc += 1;
                }
                Op::Jump { target } => pc = *target as usize,
                Op::CondJump {
                    cond,
                    on_true,
                    on_false,
                } => {
                    let c = regs[*cond as usize].try_i().map_err(err)?;
                    pc = if c != 0 { *on_true } else { *on_false } as usize;
                }
                Op::Ret { val } => {
                    return Ok(match val {
                        Some(r) => regs[*r as usize],
                        None => Value::I(0),
                    });
                }
                Op::PhiMoves { .. } => unreachable!("handled above"),
            }
        }
    }

    fn dispatch_site(&mut self, site: &CallSite, args: &[Value]) -> Result<Value> {
        if let Some(h) = &self.host_slots[site.sym as usize] {
            let h = h.clone();
            return h(&mut self.mem, args).map_err(err);
        }
        match site.target {
            CallTarget::Intrinsic(k) => k.eval(args).map_err(err),
            CallTarget::Function(idx) => self.call_function(idx as usize, args),
            CallTarget::Unknown => Err(err(format!(
                "call to unknown function {:?}",
                self.compiled.symbols[site.sym as usize]
            ))),
        }
    }

    /// Name-based dispatch for the fallback walker: hosts, then
    /// intrinsics, then module functions — which may themselves be
    /// compiled.
    fn dispatch_call(&mut self, callee: &str, args: &[Value]) -> Result<Value> {
        if let Some(h) = self.hosts.get(callee).cloned() {
            return h(&mut self.mem, args).map_err(err);
        }
        if let Some(k) = Intrinsic::by_name(callee) {
            return k.eval(args).map_err(err);
        }
        let Some(&idx) = self.compiled.func_index.get(callee) else {
            return Err(err(format!("call to unknown function {callee:?}")));
        };
        self.call_function(idx as usize, args)
    }

    // ---- The embedded fallback walker ----------------------------------
    //
    // A line-for-line mirror of `Machine::exec_function` (including its
    // quirks: mid-block phis never execute, a mid-block branch keeps
    // executing and the last one wins, non-instruction block entries are
    // skipped), sharing this VM's memory, steps, hosts and profile. Kept
    // duplicated on purpose: `machine.rs` must stay an *independent*
    // oracle, and the differential suite pins the two together.

    fn walk_function(&mut self, fidx: usize, f: &'c Function, args: &[Value]) -> Result<Value> {
        if args.len() != f.params.len() {
            return Err(err(format!(
                "@{} expects {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        let mut regs: Vec<Option<Value>> = vec![None; f.num_values()];
        for (&p, &a) in f.params.iter().zip(args) {
            regs[p.0 as usize] = Some(a);
        }
        let mut block = BlockId(0);
        let mut prev: Option<BlockId> = None;
        loop {
            let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
            for &v in &f.block(block).instrs {
                let Some(i) = f.instr(v) else { continue };
                if i.opcode != Opcode::Phi {
                    break;
                }
                self.steps += 1;
                if self.steps > self.max_steps {
                    return Err(err("step limit exceeded (infinite loop?)"));
                }
                let from =
                    prev.ok_or_else(|| err(format!("phi {} in entry block of @{}", v, f.name)))?;
                let k = i
                    .incoming
                    .iter()
                    .position(|&b| b == from)
                    .ok_or_else(|| err(format!("phi {v}: no incoming from {from}")))?;
                let val = self.walk_operand(f, &regs, i.operands[k])?;
                phi_updates.push((v, val));
                if self.profiling {
                    self.bump(fidx, v.0);
                }
            }
            for (v, val) in phi_updates {
                regs[v.0 as usize] = Some(val);
            }
            let mut next: Option<BlockId> = None;
            for &v in &f.block(block).instrs {
                let Some(i) = f.instr(v) else { continue };
                if i.opcode == Opcode::Phi {
                    continue;
                }
                self.steps += 1;
                if self.steps > self.max_steps {
                    return Err(err("step limit exceeded (infinite loop?)"));
                }
                if self.profiling {
                    self.bump(fidx, v.0);
                }
                match i.opcode {
                    Opcode::Br => {
                        next = Some(i.targets[0]);
                    }
                    Opcode::CondBr => {
                        let c = self
                            .walk_operand(f, &regs, i.operands[0])?
                            .try_i()
                            .map_err(err)?;
                        next = Some(if c != 0 { i.targets[0] } else { i.targets[1] });
                    }
                    Opcode::Ret => {
                        return match i.operands.first() {
                            Some(&r) => self.walk_operand(f, &regs, r),
                            None => Ok(Value::I(0)),
                        };
                    }
                    _ => {
                        let val = self.walk_instr(f, &mut regs, v)?;
                        regs[v.0 as usize] = Some(val);
                    }
                }
            }
            match next {
                Some(n) => {
                    prev = Some(block);
                    block = n;
                }
                None => {
                    return Err(err(format!("block {block} fell through in @{}", f.name)));
                }
            }
        }
    }

    fn walk_operand(&self, f: &Function, regs: &[Option<Value>], v: ValueId) -> Result<Value> {
        match &f.value(v).kind {
            ssair::ValueKind::ConstInt(c) => return Ok(Value::I(*c)),
            ssair::ValueKind::ConstFloat(c) => return Ok(Value::F(*c)),
            _ => {}
        }
        regs[v.0 as usize]
            .ok_or_else(|| err(format!("use of undefined value {} in @{}", v, f.name)))
    }

    fn walk_instr(
        &mut self,
        f: &'c Function,
        regs: &mut [Option<Value>],
        v: ValueId,
    ) -> Result<Value> {
        let i = f.instr(v).expect("instruction");
        let ty = &f.value(v).ty;
        let op = |k: usize| self.walk_operand(f, regs, i.operands[k]);
        let op_i = |k: usize| -> Result<i64> { op(k)?.try_i().map_err(err) };
        let op_f = |k: usize| -> Result<f64> { op(k)?.try_f().map_err(err) };
        let op_p = |k: usize| -> Result<u64> { op(k)?.try_p().map_err(err) };
        let wrap_int = |ty: &Type, x: i64| -> i64 {
            match ty {
                Type::I1 => x & 1,
                Type::I32 => i64::from(x as i32),
                _ => x,
            }
        };
        let wrap_float = |ty: &Type, x: f64| -> f64 {
            if *ty == Type::F32 {
                x as f32 as f64
            } else {
                x
            }
        };
        Ok(match i.opcode {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::SDiv
            | Opcode::SRem
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::AShr => {
                let a = op_i(0)?;
                let b = op_i(1)?;
                let r = match i.opcode {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::Mul => a.wrapping_mul(b),
                    Opcode::SDiv => {
                        if b == 0 {
                            return Err(err("integer division by zero"));
                        }
                        a.wrapping_div(b)
                    }
                    Opcode::SRem => {
                        if b == 0 {
                            return Err(err("integer remainder by zero"));
                        }
                        a.wrapping_rem(b)
                    }
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Shl => a.wrapping_shl(b as u32),
                    Opcode::AShr => a.wrapping_shr(b as u32),
                    _ => unreachable!(),
                };
                Value::I(wrap_int(ty, r))
            }
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                let a = op_f(0)?;
                let b = op_f(1)?;
                let r = match i.opcode {
                    Opcode::FAdd => a + b,
                    Opcode::FSub => a - b,
                    Opcode::FMul => a * b,
                    Opcode::FDiv => a / b,
                    _ => unreachable!(),
                };
                Value::F(wrap_float(ty, r))
            }
            Opcode::ICmp(pred) => {
                let a = op(0)?;
                let b = op(1)?;
                let (a, b) = match (a, b) {
                    (Value::P(x), Value::P(y)) => (x as i64, y as i64),
                    (x, y) => (x.try_i().map_err(err)?, y.try_i().map_err(err)?),
                };
                let r = match pred {
                    ICmpPred::Eq => a == b,
                    ICmpPred::Ne => a != b,
                    ICmpPred::Slt => a < b,
                    ICmpPred::Sle => a <= b,
                    ICmpPred::Sgt => a > b,
                    ICmpPred::Sge => a >= b,
                };
                Value::I(i64::from(r))
            }
            Opcode::FCmp(pred) => {
                let a = op_f(0)?;
                let b = op_f(1)?;
                let r = match pred {
                    FCmpPred::Oeq => a == b,
                    FCmpPred::One => a != b,
                    FCmpPred::Olt => a < b,
                    FCmpPred::Ole => a <= b,
                    FCmpPred::Ogt => a > b,
                    FCmpPred::Oge => a >= b,
                };
                Value::I(i64::from(r))
            }
            Opcode::Select => {
                if op_i(0)? != 0 {
                    op(1)?
                } else {
                    op(2)?
                }
            }
            Opcode::Gep => {
                let base = op_p(0)?;
                let idx = op_i(1)?;
                let elem = ty.pointee().expect("gep yields pointer").size_bytes() as i64;
                Value::P((base as i64 + idx * elem) as u64)
            }
            Opcode::Load => {
                let addr = op_p(0)?;
                match ty {
                    Type::I1 => Value::I(self.mem.load_i8(addr).map_err(err)?),
                    Type::I32 => Value::I(self.mem.load_i32(addr).map_err(err)?),
                    Type::I64 => Value::I(self.mem.load_i64(addr).map_err(err)?),
                    Type::F32 => Value::F(self.mem.load_f32(addr).map_err(err)?),
                    Type::F64 => Value::F(self.mem.load_f64(addr).map_err(err)?),
                    Type::Ptr(_) => Value::P(self.mem.load_i64(addr).map_err(err)? as u64),
                    Type::Void => return Err(err("load of void")),
                }
            }
            Opcode::Store => {
                let val = op(0)?;
                let addr = op_p(1)?;
                let res = match &f.value(i.operands[0]).ty {
                    Type::I1 => val.try_i().and_then(|x| self.mem.store_i8(addr, x)),
                    Type::I32 => val.try_i().and_then(|x| self.mem.store_i32(addr, x)),
                    Type::I64 => val.try_i().and_then(|x| self.mem.store_i64(addr, x)),
                    Type::F32 => val.try_f().and_then(|x| self.mem.store_f32(addr, x)),
                    Type::F64 => val.try_f().and_then(|x| self.mem.store_f64(addr, x)),
                    Type::Ptr(_) => val.try_p().and_then(|x| self.mem.store_i64(addr, x as i64)),
                    Type::Void => return Err(err("store of void")),
                };
                res.map_err(err)?;
                Value::I(0)
            }
            Opcode::Alloca => {
                let n = op_i(0)?;
                if n < 0 {
                    return Err(err("negative alloca size"));
                }
                let elem = ty.pointee().expect("alloca yields pointer");
                Value::P(self.mem.alloc(elem, n as usize))
            }
            Opcode::SExt | Opcode::ZExt => Value::I(wrap_int(ty, op_i(0)?)),
            Opcode::Trunc => Value::I(wrap_int(ty, op_i(0)?)),
            Opcode::SIToFP => Value::F(wrap_float(ty, op_i(0)? as f64)),
            Opcode::FPToSI => Value::I(wrap_int(ty, op_f(0)? as i64)),
            Opcode::FPExt => Value::F(op_f(0)?),
            Opcode::FPTrunc => Value::F(op_f(0)? as f32 as f64),
            Opcode::Call => {
                let callee = i
                    .callee
                    .as_deref()
                    .ok_or_else(|| err("call without callee"))?;
                let mut args = Vec::with_capacity(i.operands.len());
                for k in 0..i.operands.len() {
                    args.push(op(k)?);
                }
                self.dispatch_call(callee, &args)?
            }
            Opcode::Phi | Opcode::Br | Opcode::CondBr | Opcode::Ret => {
                unreachable!("handled by the block loop")
            }
        })
    }
}

impl<'c> HostRegistry<'c> for Vm<'c> {
    fn register_host(&mut self, name: &str, f: HostFn<'c>) {
        Vm::register_host(self, name, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile_module;
    use crate::machine::Machine;
    use std::sync::Arc;

    fn compile_text(text: &str) -> ssair::Module {
        ssair::parser::parse_module(text).expect("test IR parses")
    }

    /// Runs a function on both executors and asserts bitwise parity of
    /// the outcome (value or error message), the step counters and the
    /// full memory images.
    fn assert_parity(m: &ssair::Module, func: &str, args: &[Value]) {
        let mut walker = Machine::new(m);
        let wr = walker.run(func, args);
        let code = compile_module(m);
        let mut vm = Vm::new(&code);
        let vr = vm.run(func, args);
        match (&wr, &vr) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "return value diverged for @{func}"),
            (Err(a), Err(b)) => assert_eq!(a.message, b.message, "error diverged for @{func}"),
            _ => panic!("outcome kind diverged for @{func}: walker {wr:?} vs vm {vr:?}"),
        }
        assert_eq!(
            walker.steps(),
            vm.steps(),
            "step count diverged for @{func}"
        );
        assert_eq!(
            walker.mem.bytes(),
            vm.mem.bytes(),
            "memory image diverged for @{func}"
        );
    }

    #[test]
    fn arithmetic_loops_and_calls_match_the_walker() {
        let m = compile_text(
            r#"
define i64 @sq(i64 %x) {
entry:
  %r = mul i64 %x, %x
  ret i64 %r
}

define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %sqv = call i64 @sq(i64 %i)
  %acc.next = add i64 %acc, %sqv
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#,
        );
        assert_parity(&m, "sum", &[Value::I(10)]);
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        assert_eq!(vm.run("sum", &[Value::I(10)]).unwrap(), Value::I(285));
    }

    #[test]
    fn memory_effects_match_the_walker() {
        let m = compile_text(
            r#"
define double @fill(double* %p, i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %a = getelementptr double, double* %p, i64 %i
  %x = sitofp i64 %i to double
  store double %x, double* %a
  %i.next = add i64 %i, 1
  br label %header
exit:
  %last = getelementptr double, double* %p, i64 3
  %v = load double, double* %last
  ret double %v
}
"#,
        );
        let mut walker = Machine::new(&m);
        let wp = walker.mem.alloc_f64_slice(&[0.0; 8]);
        let wr = walker.run("fill", &[Value::P(wp), Value::I(8)]).unwrap();
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        let vp = vm.mem.alloc_f64_slice(&[0.0; 8]);
        let vr = vm.run("fill", &[Value::P(vp), Value::I(8)]).unwrap();
        assert_eq!(wr, vr);
        assert_eq!(walker.mem.bytes(), vm.mem.bytes());
        assert_eq!(walker.steps(), vm.steps());
    }

    #[test]
    fn error_paths_match_the_walker() {
        // Type confusion: an integer into a float intrinsic.
        let confusion = compile_text(
            "define double @f(i64 %x) {\nentry:\n  %r = call double @sqrt(i64 %x)\n  ret double %r\n}\n",
        );
        assert_parity(&confusion, "f", &[Value::I(4)]);
        // Division by zero.
        let div = compile_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = sdiv i32 %a, 0\n  ret i32 %x\n}\n",
        );
        assert_parity(&div, "f", &[Value::I(1)]);
        // Out-of-bounds access.
        let oob = compile_text(
            "define double @f(double* %p) {\nentry:\n  %a = getelementptr double, double* %p, i64 99\n  %v = load double, double* %a\n  ret double %v\n}\n",
        );
        assert_parity(&oob, "f", &[Value::P(8)]);
        // Unknown callee.
        let unknown = compile_text(
            "define double @f(double %x) {\nentry:\n  %r = call double @nope(double %x)\n  ret double %r\n}\n",
        );
        assert_parity(&unknown, "f", &[Value::F(1.0)]);
        // Wrong intrinsic arity.
        let arity = compile_text(
            "define double @f(double %x) {\nentry:\n  %r = call double @sqrt(double %x, double %x)\n  ret double %r\n}\n",
        );
        assert_parity(&arity, "f", &[Value::F(4.0)]);
    }

    #[test]
    fn step_limit_matches_the_walker_bitwise() {
        let m =
            compile_text("define void @spin() {\nentry:\n  br label %l\nl:\n  br label %l\n}\n");
        let mut walker = Machine::new(&m);
        walker.max_steps = 1000;
        let we = walker.run("spin", &[]).unwrap_err();
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        vm.max_steps = 1000;
        let ve = vm.run("spin", &[]).unwrap_err();
        assert_eq!(we.message, ve.message);
        assert_eq!(walker.steps(), vm.steps());
        assert!(we.message.contains("step limit"));
    }

    #[test]
    fn phi_steps_count_against_the_budget_identically() {
        // A phi-heavy loop: each iteration is 2 phi moves + 4 body
        // instructions. Both executors must hit the budget at the same
        // step count (the historical walker undercounted phis).
        let m = compile_text(
            r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#,
        );
        // Unbounded: same step totals.
        let mut walker = Machine::new(&m);
        walker.run("sum", &[Value::I(50)]).unwrap();
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        vm.run("sum", &[Value::I(50)]).unwrap();
        assert_eq!(walker.steps(), vm.steps());
        // Tight budget that lands inside the phi prefix: identical error
        // and identical final counter.
        for budget in [7, 8, 9, 13, 14] {
            let mut walker = Machine::new(&m);
            walker.max_steps = budget;
            let we = walker.run("sum", &[Value::I(50)]).unwrap_err();
            let mut vm = Vm::new(&code);
            vm.max_steps = budget;
            let ve = vm.run("sum", &[Value::I(50)]).unwrap_err();
            assert_eq!(we.message, ve.message, "budget {budget}");
            assert_eq!(walker.steps(), vm.steps(), "budget {budget}");
        }
    }

    #[test]
    fn profile_counts_match_the_walker() {
        let m = compile_text(
            r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#,
        );
        let mut walker = Machine::new(&m);
        walker.run("sum", &[Value::I(10)]).unwrap();
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        vm.set_profiling(true);
        vm.run("sum", &[Value::I(10)]).unwrap();
        let vp = vm.profile();
        let f = m.function("sum").unwrap();
        for v in f.value_ids() {
            assert_eq!(
                walker.profile.count("sum", v),
                vp.count("sum", v),
                "count diverged at {v}"
            );
        }
        // And the cost model sees identical numbers.
        assert_eq!(walker.profile.total_cost(f), vp.total_cost(f));
    }

    #[test]
    fn hosts_override_intrinsics_via_interned_slots() {
        let m = compile_text(
            "define double @f(double %x) {\nentry:\n  %r = call double @sqrt(double %x)\n  ret double %r\n}\n",
        );
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        vm.register_host(
            "sqrt",
            Arc::new(|_mem, args: &[Value]| Ok(Value::F(args[0].as_f() + 100.0))),
        );
        assert_eq!(vm.run("f", &[Value::F(4.0)]).unwrap(), Value::F(104.0));
        // Unregistered name resolves to the intrinsic as usual.
        let mut plain = Vm::new(&code);
        assert_eq!(plain.run("f", &[Value::F(4.0)]).unwrap(), Value::F(2.0));
    }

    #[test]
    fn fallback_walker_handles_uncompiled_functions_and_mixed_calls() {
        // @weird has a maybe-undefined use → stays on the fallback
        // walker; @main is compiled and calls it. The walker error must
        // surface unchanged through the mixed call chain.
        let m = compile_text(
            r#"
define i64 @weird(i64 %a) {
entry:
  %c = icmp sgt i64 %a, 0
  br i1 %c, label %then, label %join
then:
  %x = add i64 %a, 1
  br label %join
join:
  %r = add i64 %x, 2
  ret i64 %r
}

define i64 @main(i64 %a) {
entry:
  %r = call i64 @weird(i64 %a)
  ret i64 %r
}
"#,
        );
        let code = compile_module(&m);
        assert!(code.funcs[0].is_none());
        assert!(code.funcs[1].is_some());
        // Defined path: both executors agree on value and steps.
        assert_parity(&m, "main", &[Value::I(5)]);
        // Undefined path: the walker's runtime error, bit-for-bit.
        assert_parity(&m, "main", &[Value::I(-5)]);
    }

    #[test]
    fn no_function_named_matches_walker() {
        let m = compile_text("define i64 @f(i64 %a) {\nentry:\n  ret i64 %a\n}\n");
        let code = compile_module(&m);
        let mut vm = Vm::new(&code);
        let e = vm.run("missing", &[]).unwrap_err();
        let mut walker = Machine::new(&m);
        let we = walker.run("missing", &[]).unwrap_err();
        assert_eq!(e.message, we.message);
    }

    #[test]
    fn arity_error_matches_walker() {
        let m = compile_text("define i64 @f(i64 %a) {\nentry:\n  ret i64 %a\n}\n");
        assert_parity(&m, "f", &[]);
        assert_parity(&m, "f", &[Value::I(1), Value::I(2)]);
    }
}
