//! Per-instruction execution counts.
//!
//! The profile feeds two experiments: runtime coverage (Figure 17 — the
//! fraction of dynamic cost attributable to detected idiom regions) and the
//! sequential baseline of the performance model (Table 3 / Figure 18).
//! Costs are charged per opcode by [`Profile::cost_of`]: floating point and
//! integer ALU operations cost one unit, memory operations four (a
//! cache-friendly average), matching the coarse per-instruction CPI model
//! used for the calibration described in `DESIGN.md`.

use ssair::{Function, Opcode, ValueId};
use std::collections::HashMap;

/// Execution counts per function, indexed by value id.
#[derive(Debug, Default, Clone)]
pub struct Profile {
    counts: HashMap<String, Vec<u64>>,
}

impl Profile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Profile {
        Profile::default()
    }

    pub(crate) fn bump(&mut self, func: &Function, v: ValueId) {
        let c = self
            .counts
            .entry(func.name.clone())
            .or_insert_with(|| vec![0; func.num_values()]);
        if (v.0 as usize) >= c.len() {
            c.resize(v.0 as usize + 1, 0);
        }
        c[v.0 as usize] += 1;
    }

    /// The execution count of instruction `v` in `func`.
    #[must_use]
    pub fn count(&self, func: &str, v: ValueId) -> u64 {
        self.counts
            .get(func)
            .and_then(|c| c.get(v.0 as usize))
            .copied()
            .unwrap_or(0)
    }

    /// The abstract cost of one execution of `opcode`.
    #[must_use]
    pub fn cost_of(opcode: Opcode) -> f64 {
        match opcode {
            Opcode::Load | Opcode::Store => 4.0,
            Opcode::Call => 2.0,
            Opcode::FDiv | Opcode::SDiv | Opcode::SRem => 8.0,
            _ => 1.0,
        }
    }

    /// Total dynamic cost of one function under the per-opcode model.
    #[must_use]
    pub fn total_cost(&self, f: &Function) -> f64 {
        self.region_cost(f, |_| true)
    }

    /// Dynamic cost of the instructions selected by `in_region`.
    pub fn region_cost(&self, f: &Function, in_region: impl Fn(ValueId) -> bool) -> f64 {
        let Some(counts) = self.counts.get(&f.name) else {
            return 0.0;
        };
        let mut total = 0.0;
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                if !in_region(v) {
                    continue;
                }
                if let Some(op) = f.opcode(v) {
                    let n = counts.get(v.0 as usize).copied().unwrap_or(0);
                    total += Self::cost_of(op) * n as f64;
                }
            }
        }
        total
    }

    /// Dynamic floating-point operation count of the selected instructions
    /// (used by the roofline model for accelerator kernels).
    pub fn region_flops(&self, f: &Function, in_region: impl Fn(ValueId) -> bool) -> f64 {
        let Some(counts) = self.counts.get(&f.name) else {
            return 0.0;
        };
        let mut total = 0.0;
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                if !in_region(v) {
                    continue;
                }
                if matches!(
                    f.opcode(v),
                    Some(Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv)
                ) {
                    total += counts.get(v.0 as usize).copied().unwrap_or(0) as f64;
                }
            }
        }
        total
    }

    /// Dynamic bytes moved by loads/stores of the selected instructions.
    pub fn region_bytes(&self, f: &Function, in_region: impl Fn(ValueId) -> bool) -> f64 {
        let Some(counts) = self.counts.get(&f.name) else {
            return 0.0;
        };
        let mut total = 0.0;
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                if !in_region(v) {
                    continue;
                }
                let Some(i) = f.instr(v) else { continue };
                let width = match i.opcode {
                    Opcode::Load => f.value(v).ty.size_bytes(),
                    Opcode::Store => f.value(i.operands[0]).ty.size_bytes(),
                    _ => continue,
                };
                total += width as f64 * counts.get(v.0 as usize).copied().unwrap_or(0) as f64;
            }
        }
        total
    }

    /// Merges a dense per-value count vector (the bytecode VM's profile
    /// representation) into this profile under `func`'s name.
    pub(crate) fn add_counts(&mut self, func: &str, counts: &[u64]) {
        if counts.iter().all(|&c| c == 0) {
            return;
        }
        let mine = self.counts.entry(func.to_owned()).or_default();
        if mine.len() < counts.len() {
            mine.resize(counts.len(), 0);
        }
        for (i, &c) in counts.iter().enumerate() {
            mine[i] += c;
        }
    }

    /// Merges another profile into this one (summing counts).
    pub fn merge(&mut self, other: &Profile) {
        for (fname, cs) in &other.counts {
            let mine = self.counts.entry(fname.clone()).or_default();
            if mine.len() < cs.len() {
                mine.resize(cs.len(), 0);
            }
            for (i, &c) in cs.iter().enumerate() {
                mine[i] += c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_sane() {
        assert_eq!(Profile::cost_of(Opcode::FAdd), 1.0);
        assert_eq!(Profile::cost_of(Opcode::Load), 4.0);
        assert!(Profile::cost_of(Opcode::FDiv) > Profile::cost_of(Opcode::FMul));
    }

    #[test]
    fn merge_sums_counts() {
        let f = ssair::parser::parse_function_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  ret i32 %x\n}\n",
        )
        .unwrap();
        let x = f.block(ssair::BlockId(0)).instrs[0];
        let mut p1 = Profile::new();
        p1.bump(&f, x);
        let mut p2 = Profile::new();
        p2.bump(&f, x);
        p2.bump(&f, x);
        p1.merge(&p2);
        assert_eq!(p1.count("f", x), 3);
    }
}
