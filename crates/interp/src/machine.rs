//! The SSA evaluator.

use crate::memory::Memory;
use crate::profile::Profile;
use ssair::{BlockId, FCmpPred, Function, ICmpPred, Module, Opcode, Type, ValueId, ValueKind};
use std::collections::HashMap;
use std::sync::Arc;

/// A runtime value. Integers of all widths are kept sign-extended in `I`;
/// both float widths are kept in `F` (narrowing happens at stores and
/// truncation casts); pointers are memory addresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (i1/i32/i64).
    I(i64),
    /// Floating point (f32 values are stored rounded).
    F(f64),
    /// Pointer (address in [`Memory`]).
    P(u64),
}

impl Value {
    /// The integer payload, or an error describing the type confusion.
    ///
    /// The interpreter and the host-function executors use this (not the
    /// panicking accessors) so a type-confused call — e.g. a corrupted
    /// replacement passing a float where an API expects a length — fails
    /// the run with an [`ExecError`] instead of aborting the process.
    pub fn try_i(self) -> std::result::Result<i64, String> {
        match self {
            Value::I(v) => Ok(v),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }

    /// The float payload, or an error describing the type confusion.
    pub fn try_f(self) -> std::result::Result<f64, String> {
        match self {
            Value::F(v) => Ok(v),
            other => Err(format!("expected float, got {other:?}")),
        }
    }

    /// The pointer payload, or an error describing the type confusion.
    pub fn try_p(self) -> std::result::Result<u64, String> {
        match self {
            Value::P(v) => Ok(v),
            other => Err(format!("expected pointer, got {other:?}")),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    /// Panics if the value is not an integer. Use [`Value::try_i`] in any
    /// path that must survive malformed programs.
    #[must_use]
    pub fn as_i(self) -> i64 {
        self.try_i().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The float payload.
    ///
    /// # Panics
    /// Panics if the value is not a float. Use [`Value::try_f`] in any
    /// path that must survive malformed programs.
    #[must_use]
    pub fn as_f(self) -> f64 {
        self.try_f().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The pointer payload.
    ///
    /// # Panics
    /// Panics if the value is not a pointer. Use [`Value::try_p`] in any
    /// path that must survive malformed programs.
    #[must_use]
    pub fn as_p(self) -> u64 {
        self.try_p().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

type Result<T> = std::result::Result<T, ExecError>;

/// A host function: receives the machine's memory and argument values.
/// Returns the call's result value and the simulated "device work"
/// descriptor is the host function's own business (the `hetero` crate logs
/// kernel launches through captured state).
///
/// `Send + Sync` (behind `Arc`) so a registry can be shared with the
/// parallel kernel backend; the `'m` lifetime lets executors capture the
/// module they interpret chunks of.
pub type HostFn<'m> =
    Arc<dyn Fn(&mut Memory, &[Value]) -> std::result::Result<Value, String> + Send + Sync + 'm>;

/// Anything that can install host functions — the tree-walking
/// [`Machine`] and the bytecode [`crate::Vm`]. The `hetero` crate
/// registers its simulated heterogeneous APIs through this trait so the
/// same registration code serves either executor.
pub trait HostRegistry<'m> {
    /// Registers a host function under `name`; calls to it dispatch to
    /// the host before intrinsics and module functions are considered.
    fn register_host(&mut self, name: &str, f: HostFn<'m>);
}

/// The interpreter.
pub struct Machine<'m> {
    module: &'m Module,
    /// The linear memory of the run.
    pub mem: Memory,
    host: HashMap<String, HostFn<'m>>,
    /// Per-instruction execution counts.
    pub profile: Profile,
    /// Abort knob for runaway programs.
    pub max_steps: u64,
    steps: u64,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module` with fresh memory.
    #[must_use]
    pub fn new(module: &'m Module) -> Machine<'m> {
        Machine {
            module,
            mem: Memory::new(),
            host: HashMap::new(),
            profile: Profile::new(),
            max_steps: 2_000_000_000,
            steps: 0,
        }
    }

    /// Registers a host function; calls to `name` dispatch to it before
    /// intrinsics and module functions are considered.
    pub fn register_host(&mut self, name: impl Into<String>, f: HostFn<'m>) {
        self.host.insert(name.into(), f);
    }

    /// Steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs `func` with `args`; returns its return value (`I(0)` for void).
    pub fn run(&mut self, func: &str, args: &[Value]) -> Result<Value> {
        let f = self.module.function(func).ok_or_else(|| ExecError {
            message: format!("no function named {func:?}"),
        })?;
        self.exec_function(f, args)
    }

    fn err(msg: impl Into<String>) -> ExecError {
        ExecError {
            message: msg.into(),
        }
    }

    fn const_value(f: &Function, v: ValueId) -> Option<Value> {
        match &f.value(v).kind {
            ValueKind::ConstInt(c) => Some(Value::I(*c)),
            ValueKind::ConstFloat(c) => Some(Value::F(*c)),
            _ => None,
        }
    }

    fn exec_function(&mut self, f: &Function, args: &[Value]) -> Result<Value> {
        if args.len() != f.params.len() {
            return Err(Self::err(format!(
                "@{} expects {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        let mut regs: Vec<Option<Value>> = vec![None; f.num_values()];
        for (&p, &a) in f.params.iter().zip(args) {
            regs[p.0 as usize] = Some(a);
        }
        let mut block = BlockId(0);
        let mut prev: Option<BlockId> = None;
        loop {
            // Phis evaluate simultaneously on block entry. Each phi is a
            // real execution step: it counts against the runaway budget
            // exactly like a body instruction (and exactly like the
            // bytecode VM's parallel-move snippets).
            let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
            for &v in &f.block(block).instrs {
                let Some(i) = f.instr(v) else { continue };
                if i.opcode != Opcode::Phi {
                    break;
                }
                self.steps += 1;
                if self.steps > self.max_steps {
                    return Err(Self::err("step limit exceeded (infinite loop?)"));
                }
                let from = prev
                    .ok_or_else(|| Self::err(format!("phi {} in entry block of @{}", v, f.name)))?;
                let k = i
                    .incoming
                    .iter()
                    .position(|&b| b == from)
                    .ok_or_else(|| Self::err(format!("phi {v}: no incoming from {from}")))?;
                let val = self.operand(f, &regs, i.operands[k])?;
                phi_updates.push((v, val));
                self.profile.bump(f, v);
            }
            for (v, val) in phi_updates {
                regs[v.0 as usize] = Some(val);
            }
            // Straight-line body. `f` borrows from the `'m` module, not
            // from `self`, so the instruction list is iterated in place —
            // no per-block-iteration clone.
            let mut next: Option<BlockId> = None;
            for &v in &f.block(block).instrs {
                let Some(i) = f.instr(v) else { continue };
                if i.opcode == Opcode::Phi {
                    continue;
                }
                self.steps += 1;
                if self.steps > self.max_steps {
                    return Err(Self::err("step limit exceeded (infinite loop?)"));
                }
                self.profile.bump(f, v);
                match i.opcode {
                    Opcode::Br => {
                        next = Some(i.targets[0]);
                    }
                    Opcode::CondBr => {
                        let c = self
                            .operand(f, &regs, i.operands[0])?
                            .try_i()
                            .map_err(Self::err)?;
                        next = Some(if c != 0 { i.targets[0] } else { i.targets[1] });
                    }
                    Opcode::Ret => {
                        return match i.operands.first() {
                            Some(&r) => self.operand(f, &regs, r),
                            None => Ok(Value::I(0)),
                        };
                    }
                    _ => {
                        let val = self.exec_instr(f, &mut regs, v)?;
                        regs[v.0 as usize] = Some(val);
                    }
                }
            }
            match next {
                Some(n) => {
                    prev = Some(block);
                    block = n;
                }
                None => {
                    return Err(Self::err(format!(
                        "block {block} fell through in @{}",
                        f.name
                    )))
                }
            }
        }
    }

    fn operand(&self, f: &Function, regs: &[Option<Value>], v: ValueId) -> Result<Value> {
        if let Some(c) = Self::const_value(f, v) {
            return Ok(c);
        }
        regs[v.0 as usize]
            .ok_or_else(|| Self::err(format!("use of undefined value {} in @{}", v, f.name)))
    }

    fn exec_instr(
        &mut self,
        f: &Function,
        regs: &mut [Option<Value>],
        v: ValueId,
    ) -> Result<Value> {
        let i = f.instr(v).expect("instruction");
        let ty = &f.value(v).ty;
        let op = |k: usize| self.operand(f, regs, i.operands[k]);
        // Typed operand accessors: type confusion (a pointer where an
        // integer is expected, …) is an execution error, never a panic —
        // a broken replacement must fail its validation run, not kill the
        // whole suite process.
        let op_i = |k: usize| -> Result<i64> { op(k)?.try_i().map_err(Self::err) };
        let op_f = |k: usize| -> Result<f64> { op(k)?.try_f().map_err(Self::err) };
        let op_p = |k: usize| -> Result<u64> { op(k)?.try_p().map_err(Self::err) };
        let wrap_int = |ty: &Type, x: i64| -> i64 {
            match ty {
                Type::I1 => x & 1,
                Type::I32 => i64::from(x as i32),
                _ => x,
            }
        };
        let wrap_float = |ty: &Type, x: f64| -> f64 {
            if *ty == Type::F32 {
                x as f32 as f64
            } else {
                x
            }
        };
        Ok(match i.opcode {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::SDiv
            | Opcode::SRem
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::AShr => {
                let a = op_i(0)?;
                let b = op_i(1)?;
                let r = match i.opcode {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::Mul => a.wrapping_mul(b),
                    Opcode::SDiv => {
                        if b == 0 {
                            return Err(Self::err("integer division by zero"));
                        }
                        a.wrapping_div(b)
                    }
                    Opcode::SRem => {
                        if b == 0 {
                            return Err(Self::err("integer remainder by zero"));
                        }
                        a.wrapping_rem(b)
                    }
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Shl => a.wrapping_shl(b as u32),
                    Opcode::AShr => a.wrapping_shr(b as u32),
                    _ => unreachable!(),
                };
                Value::I(wrap_int(ty, r))
            }
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                let a = op_f(0)?;
                let b = op_f(1)?;
                let r = match i.opcode {
                    Opcode::FAdd => a + b,
                    Opcode::FSub => a - b,
                    Opcode::FMul => a * b,
                    Opcode::FDiv => a / b,
                    _ => unreachable!(),
                };
                Value::F(wrap_float(ty, r))
            }
            Opcode::ICmp(pred) => {
                let a = op(0)?;
                let b = op(1)?;
                let (a, b) = match (a, b) {
                    (Value::P(x), Value::P(y)) => (x as i64, y as i64),
                    (x, y) => (x.try_i().map_err(Self::err)?, y.try_i().map_err(Self::err)?),
                };
                let r = match pred {
                    ICmpPred::Eq => a == b,
                    ICmpPred::Ne => a != b,
                    ICmpPred::Slt => a < b,
                    ICmpPred::Sle => a <= b,
                    ICmpPred::Sgt => a > b,
                    ICmpPred::Sge => a >= b,
                };
                Value::I(i64::from(r))
            }
            Opcode::FCmp(pred) => {
                let a = op_f(0)?;
                let b = op_f(1)?;
                let r = match pred {
                    FCmpPred::Oeq => a == b,
                    FCmpPred::One => a != b,
                    FCmpPred::Olt => a < b,
                    FCmpPred::Ole => a <= b,
                    FCmpPred::Ogt => a > b,
                    FCmpPred::Oge => a >= b,
                };
                Value::I(i64::from(r))
            }
            Opcode::Select => {
                if op_i(0)? != 0 {
                    op(1)?
                } else {
                    op(2)?
                }
            }
            Opcode::Gep => {
                let base = op_p(0)?;
                let idx = op_i(1)?;
                let elem = ty.pointee().expect("gep yields pointer").size_bytes() as i64;
                Value::P((base as i64 + idx * elem) as u64)
            }
            Opcode::Load => {
                let addr = op_p(0)?;
                match ty {
                    Type::I1 => Value::I(self.mem.load_i8(addr).map_err(Self::err)?),
                    Type::I32 => Value::I(self.mem.load_i32(addr).map_err(Self::err)?),
                    Type::I64 => Value::I(self.mem.load_i64(addr).map_err(Self::err)?),
                    Type::F32 => Value::F(self.mem.load_f32(addr).map_err(Self::err)?),
                    Type::F64 => Value::F(self.mem.load_f64(addr).map_err(Self::err)?),
                    Type::Ptr(_) => Value::P(self.mem.load_i64(addr).map_err(Self::err)? as u64),
                    Type::Void => return Err(Self::err("load of void")),
                }
            }
            Opcode::Store => {
                let val = op(0)?;
                let addr = op_p(1)?;
                let res = match &f.value(i.operands[0]).ty {
                    Type::I1 => val.try_i().and_then(|x| self.mem.store_i8(addr, x)),
                    Type::I32 => val.try_i().and_then(|x| self.mem.store_i32(addr, x)),
                    Type::I64 => val.try_i().and_then(|x| self.mem.store_i64(addr, x)),
                    Type::F32 => val.try_f().and_then(|x| self.mem.store_f32(addr, x)),
                    Type::F64 => val.try_f().and_then(|x| self.mem.store_f64(addr, x)),
                    Type::Ptr(_) => val.try_p().and_then(|x| self.mem.store_i64(addr, x as i64)),
                    Type::Void => return Err(Self::err("store of void")),
                };
                res.map_err(Self::err)?;
                Value::I(0)
            }
            Opcode::Alloca => {
                let n = op_i(0)?;
                if n < 0 {
                    return Err(Self::err("negative alloca size"));
                }
                let elem = ty.pointee().expect("alloca yields pointer");
                Value::P(self.mem.alloc(elem, n as usize))
            }
            Opcode::SExt | Opcode::ZExt => Value::I(wrap_int(ty, op_i(0)?)),
            Opcode::Trunc => Value::I(wrap_int(ty, op_i(0)?)),
            Opcode::SIToFP => Value::F(wrap_float(ty, op_i(0)? as f64)),
            Opcode::FPToSI => Value::I(wrap_int(ty, op_f(0)? as i64)),
            Opcode::FPExt => Value::F(op_f(0)?),
            Opcode::FPTrunc => Value::F(op_f(0)? as f32 as f64),
            Opcode::Call => {
                let callee = i
                    .callee
                    .as_deref()
                    .ok_or_else(|| Self::err("call without callee"))?;
                let mut args = Vec::with_capacity(i.operands.len());
                for k in 0..i.operands.len() {
                    args.push(op(k)?);
                }
                self.dispatch_call(callee, &args)?
            }
            Opcode::Phi | Opcode::Br | Opcode::CondBr | Opcode::Ret => {
                unreachable!("handled by the block loop")
            }
        })
    }

    fn dispatch_call(&mut self, callee: &str, args: &[Value]) -> Result<Value> {
        if let Some(host) = self.host.get(callee).cloned() {
            return host(&mut self.mem, args).map_err(Self::err);
        }
        if let Some(v) = self.math_intrinsic(callee, args) {
            return v;
        }
        let module: &'m Module = self.module;
        let Some(f) = module.function(callee) else {
            return Err(Self::err(format!("call to unknown function {callee:?}")));
        };
        self.exec_function(f, args)
    }

    fn math_intrinsic(&mut self, name: &str, args: &[Value]) -> Option<Result<Value>> {
        let unary = |g: fn(f64) -> f64, args: &[Value]| -> Result<Value> {
            match args {
                [a] => Ok(Value::F(g(a.try_f().map_err(Self::err)?))),
                _ => Err(Self::err("unary math intrinsic expects 1 argument")),
            }
        };
        let binary = |g: fn(f64, f64) -> f64, args: &[Value]| -> Result<Value> {
            match args {
                [a, b] => Ok(Value::F(g(
                    a.try_f().map_err(Self::err)?,
                    b.try_f().map_err(Self::err)?,
                ))),
                _ => Err(Self::err("binary math intrinsic expects 2 arguments")),
            }
        };
        Some(match name {
            "sqrt" => unary(f64::sqrt, args),
            "fabs" => unary(f64::abs, args),
            "exp" => unary(f64::exp, args),
            "log" => unary(f64::ln, args),
            "sin" => unary(f64::sin, args),
            "cos" => unary(f64::cos, args),
            "pow" => binary(f64::powf, args),
            "fmin" => binary(f64::min, args),
            "fmax" => binary(f64::max, args),
            _ => return None,
        })
    }
}

impl<'m> HostRegistry<'m> for Machine<'m> {
    fn register_host(&mut self, name: &str, f: HostFn<'m>) {
        Machine::register_host(self, name, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicc_like::compile_text;

    /// Tiny helper module: tests compile IR text directly (the real minicc
    /// dependency would be circular in dev-dependencies).
    mod minicc_like {
        pub fn compile_text(text: &str) -> ssair::Module {
            ssair::parser::parse_module(text).expect("test IR parses")
        }
    }

    #[test]
    fn runs_arithmetic() {
        let m = compile_text(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n  %m = mul i32 %a, %b\n  %s = add i32 %m, %a\n  ret i32 %s\n}\n",
        );
        let mut vm = Machine::new(&m);
        let r = vm.run("f", &[Value::I(3), Value::I(4)]).unwrap();
        assert_eq!(r, Value::I(15));
    }

    #[test]
    fn runs_loops_with_phis() {
        let m = compile_text(
            r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#,
        );
        let mut vm = Machine::new(&m);
        let r = vm.run("sum", &[Value::I(10)]).unwrap();
        assert_eq!(r, Value::I(45));
        // Profile: the latch add ran 10 times.
        let f = m.function("sum").unwrap();
        let latch_add = f.block(BlockId(2)).instrs[0];
        assert_eq!(vm.profile.count("sum", latch_add), 10);
    }

    #[test]
    fn memory_round_trip_through_ir() {
        let m = compile_text(
            r#"
define double @swap_add(double* %p) {
entry:
  %a0 = getelementptr double, double* %p, i64 0
  %a1 = getelementptr double, double* %p, i64 1
  %x = load double, double* %a0
  %y = load double, double* %a1
  store double %y, double* %a0
  store double %x, double* %a1
  %s = fadd double %x, %y
  ret double %s
}
"#,
        );
        let mut vm = Machine::new(&m);
        let p = vm.mem.alloc_f64_slice(&[1.5, 2.5]);
        let r = vm.run("swap_add", &[Value::P(p)]).unwrap();
        assert_eq!(r, Value::F(4.0));
        assert_eq!(vm.mem.read_f64_slice(p, 2), vec![2.5, 1.5]);
    }

    #[test]
    fn i32_truncation_semantics() {
        let m = compile_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  ret i32 %x\n}\n",
        );
        let mut vm = Machine::new(&m);
        let r = vm.run("f", &[Value::I(i64::from(i32::MAX))]).unwrap();
        assert_eq!(r, Value::I(i64::from(i32::MIN)), "i32 wraps");
    }

    #[test]
    fn f32_rounding_semantics() {
        let m = compile_text(
            "define float @f(float %a) {\nentry:\n  %x = fadd float %a, 0.1\n  ret float %x\n}\n",
        );
        let mut vm = Machine::new(&m);
        let r = vm.run("f", &[Value::F(1.0)]).unwrap();
        assert_eq!(r, Value::F(f64::from(1.0f32 + 0.1f32)));
    }

    #[test]
    fn host_functions_take_priority() {
        let m = compile_text(
            "define double @f(double %x) {\nentry:\n  %r = call double @sqrt(double %x)\n  ret double %r\n}\n",
        );
        let mut vm = Machine::new(&m);
        vm.register_host(
            "sqrt",
            Arc::new(|_mem, args| Ok(Value::F(args[0].as_f() + 100.0))),
        );
        let r = vm.run("f", &[Value::F(4.0)]).unwrap();
        assert_eq!(r, Value::F(104.0), "host overrides the intrinsic");
    }

    #[test]
    fn intrinsics_work() {
        let m = compile_text(
            "define double @f(double %x) {\nentry:\n  %r = call double @sqrt(double %x)\n  %s = call double @fmax(double %r, double 3.0)\n  ret double %s\n}\n",
        );
        let mut vm = Machine::new(&m);
        assert_eq!(vm.run("f", &[Value::F(4.0)]).unwrap(), Value::F(3.0));
        assert_eq!(vm.run("f", &[Value::F(25.0)]).unwrap(), Value::F(5.0));
    }

    #[test]
    fn module_function_calls() {
        let m = compile_text(
            r#"
define i64 @sq(i64 %x) {
entry:
  %r = mul i64 %x, %x
  ret i64 %r
}

define i64 @f(i64 %x) {
entry:
  %a = call i64 @sq(i64 %x)
  %b = add i64 %a, 1
  ret i64 %b
}
"#,
        );
        let mut vm = Machine::new(&m);
        assert_eq!(vm.run("f", &[Value::I(5)]).unwrap(), Value::I(26));
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let m =
            compile_text("define void @spin() {\nentry:\n  br label %l\nl:\n  br label %l\n}\n");
        let mut vm = Machine::new(&m);
        vm.max_steps = 1000;
        let err = vm.run("spin", &[]).unwrap_err();
        assert!(err.message.contains("step limit"));
    }

    #[test]
    fn type_confusion_is_an_error_not_a_panic() {
        // A type-confused call (integer into an f64 intrinsic) must fail
        // the run with an ExecError so a bad replacement fails validation
        // instead of aborting the whole suite process.
        let m = compile_text(
            "define double @f(i64 %x) {\nentry:\n  %r = call double @sqrt(i64 %x)\n  ret double %r\n}\n",
        );
        let mut vm = Machine::new(&m);
        let err = vm.run("f", &[Value::I(4)]).unwrap_err();
        assert!(err.message.contains("expected float"), "{err}");
        // Same for a host function fed through the checked accessors.
        let m2 = compile_text(
            "define double @g(double %x) {\nentry:\n  %r = call double @h(double %x)\n  ret double %r\n}\n",
        );
        let mut vm2 = Machine::new(&m2);
        vm2.register_host(
            "h",
            Arc::new(|_mem, args| Ok(Value::F(args[0].try_p()? as f64))),
        );
        let err = vm2.run("g", &[Value::F(1.0)]).unwrap_err();
        assert!(err.message.contains("expected pointer"), "{err}");
    }

    #[test]
    fn checked_value_accessors_report_the_mismatch() {
        assert_eq!(Value::I(3).try_i(), Ok(3));
        assert!(Value::F(1.0).try_i().is_err());
        assert!(Value::I(1).try_f().is_err());
        assert!(Value::F(1.0).try_p().is_err());
        assert_eq!(Value::P(8).try_p(), Ok(8));
    }

    #[test]
    fn wrong_intrinsic_arity_is_an_error() {
        let m = compile_text(
            "define double @f(double %x) {\nentry:\n  %r = call double @sqrt(double %x, double %x)\n  ret double %r\n}\n",
        );
        let mut vm = Machine::new(&m);
        assert!(vm.run("f", &[Value::F(4.0)]).is_err());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let m = compile_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = sdiv i32 %a, 0\n  ret i32 %x\n}\n",
        );
        let mut vm = Machine::new(&m);
        assert!(vm.run("f", &[Value::I(1)]).is_err());
    }

    #[test]
    fn alloca_allocates_fresh_memory() {
        let m = compile_text(
            r#"
define double @f() {
entry:
  %buf = alloca double, i64 4
  %p = getelementptr double, double* %buf, i64 2
  store double 7.5, double* %p
  %v = load double, double* %p
  ret double %v
}
"#,
        );
        let mut vm = Machine::new(&m);
        assert_eq!(vm.run("f", &[]).unwrap(), Value::F(7.5));
    }
}
