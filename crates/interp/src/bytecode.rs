//! One-shot lowering of ssair functions to a flat register bytecode.
//!
//! Detection got fast by compiling once and executing many times (interned
//! symbols, dense ids, precomputed orders); this module applies the same
//! discipline to execution. A [`CompiledModule`] is built once per
//! [`Module`] and reused across every validation seed, the reversal oracle
//! and every host-dispatched kernel launch:
//!
//! * operands become plain indices into a dense `Vec<Value>` register file
//!   (no `Option` unwrap, no const-vs-reg match per operand) — constants
//!   are folded into the per-function `init_regs` template;
//! * phi nodes are eliminated into per-CFG-edge parallel-move snippets
//!   ([`Op::PhiMoves`]), so block entry is a handful of register moves;
//! * branch targets are pc offsets into one contiguous code array;
//! * type dispatch (`AddI` vs `AddF`, load/store width, i32 wrapping) is
//!   resolved at compile time into typed [`Op`] variants;
//! * call sites are pre-bound: the callee is interned to a symbol id (host
//!   lookup becomes a slot load, not a `HashMap<String, _>` probe) and
//!   statically resolved to an intrinsic or a module function index.
//!
//! **Fidelity over coverage.** The tree-walking [`crate::Machine`] is the
//! semantic oracle, quirks included, and the VM must match it bit-for-bit
//! (same results, same `ExecError` messages, same step accounting, same
//! panics on malformed IR). Any function whose shape the bytecode cannot
//! reproduce *exactly* — entry-block phis, mid-block phis or terminators
//! (which the walker silently skips or lets "last branch win"), phis not
//! covering every predecessor edge, void loads/stores, operands that are
//! not provably defined on every path (the walker reports those at
//! runtime) — is left uncompiled (`None`) and executed by the VM's
//! embedded fallback walker instead. Compilation never fails; it only
//! falls back.

use crate::machine::Value;
use ssair::{BlockId, FCmpPred, Function, ICmpPred, Module, Opcode, Type, ValueId, ValueKind};
use std::collections::HashMap;

/// Marker for "no source value" in [`CompiledFunction::vids`].
pub(crate) const NO_VID: u32 = u32::MAX;

/// Integer binary operators (operand extraction stays checked at runtime
/// so type confusion reports the walker's exact `ExecError`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum IntOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    AShr,
}

/// Result wrapping, resolved from the result type at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IntWrap {
    None,
    I1,
    I32,
}

impl IntWrap {
    pub(crate) fn of(ty: &Type) -> IntWrap {
        match ty {
            Type::I1 => IntWrap::I1,
            Type::I32 => IntWrap::I32,
            _ => IntWrap::None,
        }
    }

    #[inline]
    pub(crate) fn apply(self, x: i64) -> i64 {
        match self {
            IntWrap::None => x,
            IntWrap::I1 => x & 1,
            IntWrap::I32 => i64::from(x as i32),
        }
    }
}

/// Float binary operators.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FloatOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Memory access width/kind, resolved from the value type at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MemKind {
    I8,
    I32,
    I64,
    F32,
    F64,
    Ptr,
}

impl MemKind {
    fn of(ty: &Type) -> Option<MemKind> {
        Some(match ty {
            Type::I1 => MemKind::I8,
            Type::I32 => MemKind::I32,
            Type::I64 => MemKind::I64,
            Type::F32 => MemKind::F32,
            Type::F64 => MemKind::F64,
            Type::Ptr(_) => MemKind::Ptr,
            Type::Void => return None,
        })
    }
}

/// The math intrinsics the walker recognizes, pre-resolved at compile
/// time (arity/type errors stay runtime `ExecError`s, exactly like the
/// walker, because a host registration may shadow the intrinsic).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Intrinsic {
    Sqrt,
    Fabs,
    Exp,
    Log,
    Sin,
    Cos,
    Pow,
    Fmin,
    Fmax,
}

impl Intrinsic {
    pub(crate) fn by_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "fabs" => Intrinsic::Fabs,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "pow" => Intrinsic::Pow,
            "fmin" => Intrinsic::Fmin,
            "fmax" => Intrinsic::Fmax,
            _ => return None,
        })
    }

    /// Evaluates the intrinsic with the walker's exact arity/type errors.
    pub(crate) fn eval(self, args: &[Value]) -> Result<Value, String> {
        let unary = |g: fn(f64) -> f64| match args {
            [a] => Ok(Value::F(g(a.try_f()?))),
            _ => Err("unary math intrinsic expects 1 argument".to_owned()),
        };
        let binary = |g: fn(f64, f64) -> f64| match args {
            [a, b] => Ok(Value::F(g(a.try_f()?, b.try_f()?))),
            _ => Err("binary math intrinsic expects 2 arguments".to_owned()),
        };
        match self {
            Intrinsic::Sqrt => unary(f64::sqrt),
            Intrinsic::Fabs => unary(f64::abs),
            Intrinsic::Exp => unary(f64::exp),
            Intrinsic::Log => unary(f64::ln),
            Intrinsic::Sin => unary(f64::sin),
            Intrinsic::Cos => unary(f64::cos),
            Intrinsic::Pow => binary(f64::powf),
            Intrinsic::Fmin => binary(f64::min),
            Intrinsic::Fmax => binary(f64::max),
        }
    }
}

/// Where a call site statically resolves when no host overrides it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CallTarget {
    /// A math intrinsic (checked before module functions, like the
    /// walker's dispatch order).
    Intrinsic(Intrinsic),
    /// A module function, by index into [`Module::functions`].
    Function(u32),
    /// Nothing static matches: an error at execution time unless a host
    /// is registered under the symbol.
    Unknown,
}

/// A pre-bound call site.
#[derive(Debug)]
pub(crate) struct CallSite {
    /// Argument registers, in operand order.
    pub(crate) args: Box<[u32]>,
    /// Result register.
    pub(crate) dst: u32,
    /// Interned callee symbol (index into [`CompiledModule::symbols`]).
    pub(crate) sym: u32,
    /// Static resolution.
    pub(crate) target: CallTarget,
}

/// One phi move on a CFG edge: `dst` is the phi's own value id (also used
/// for profile bumps), `src` the register of its incoming operand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PhiMove {
    pub(crate) dst: u32,
    pub(crate) src: u32,
}

/// A bytecode instruction. One [`Op`] executes per walker step, so step
/// accounting stays identical by construction.
#[derive(Debug)]
pub(crate) enum Op {
    /// Integer binary op with compile-time result wrapping.
    IntBin {
        op: IntOp,
        wrap: IntWrap,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Float binary op; `round` narrows through f32 (result type F32).
    FloatBin {
        op: FloatOp,
        round: bool,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Integer/pointer comparison.
    ICmp {
        pred: ICmpPred,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Ordered float comparison.
    FCmp {
        pred: FCmpPred,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Ternary select.
    Select {
        dst: u32,
        cond: u32,
        on_true: u32,
        on_false: u32,
    },
    /// Pointer arithmetic with the element size precomputed.
    Gep {
        dst: u32,
        base: u32,
        idx: u32,
        elem: i64,
    },
    /// Typed memory load.
    Load { kind: MemKind, dst: u32, addr: u32 },
    /// Typed memory store (value register, then address register).
    Store { kind: MemKind, val: u32, addr: u32 },
    /// Stack allocation of `n` (a register) elements.
    Alloca { dst: u32, n: u32, elem: Type },
    /// SExt/ZExt/Trunc: re-wrap to the result width.
    IntCast { wrap: IntWrap, dst: u32, src: u32 },
    /// Signed int → float; `round` narrows through f32.
    SiToFp { round: bool, dst: u32, src: u32 },
    /// Float → signed int, wrapped to the result width.
    FpToSi { wrap: IntWrap, dst: u32, src: u32 },
    /// f32 → f64 (a checked move in this value model).
    FpExt { dst: u32, src: u32 },
    /// f64 → f32 narrowing.
    FpTrunc { dst: u32, src: u32 },
    /// Call through a pre-bound site.
    Call { site: u32 },
    /// Unconditional jump to a pc.
    Jump { target: u32 },
    /// Conditional jump (`cond` must hold an integer at runtime).
    CondJump {
        cond: u32,
        on_true: u32,
        on_false: u32,
    },
    /// Return the register (or `I(0)` for a bare `ret`).
    Ret { val: Option<u32> },
    /// Per-edge phi elimination: read every source, then write every
    /// destination (parallel-move semantics), then jump. Each move counts
    /// one step, exactly like one walker phi evaluation.
    PhiMoves { moves: Box<[PhiMove]>, target: u32 },
}

/// One function lowered to bytecode.
#[derive(Debug)]
pub(crate) struct CompiledFunction {
    /// Function name (for arity-error messages).
    pub(crate) name: Box<str>,
    /// Expected argument count.
    pub(crate) arity: usize,
    /// Parameter registers, in order.
    pub(crate) params: Box<[u32]>,
    /// Register-file template: constants prefilled, everything else
    /// `I(0)` (never read before a write, by the must-defined check).
    pub(crate) init_regs: Vec<Value>,
    /// The flat instruction stream. Entry is pc 0.
    pub(crate) code: Vec<Op>,
    /// pc → source [`ValueId`] for the optional profile ([`NO_VID`] for
    /// ops with no single source value, i.e. phi-move snippets).
    pub(crate) vids: Vec<u32>,
    /// Pre-bound call sites referenced by [`Op::Call`].
    pub(crate) sites: Vec<CallSite>,
}

/// A module lowered to bytecode, plus the interning tables the VM needs.
/// Build once with [`compile_module`], execute many times with
/// [`crate::Vm`].
pub struct CompiledModule<'m> {
    pub(crate) module: &'m Module,
    /// Per function (same order as [`Module::functions`]): the lowered
    /// code, or `None` when the function's shape requires the fallback
    /// walker for bit-exact semantics.
    pub(crate) funcs: Vec<Option<CompiledFunction>>,
    /// First function index per name (the walker's `Module::function`
    /// takes the first match too).
    pub(crate) func_index: HashMap<String, u32>,
    /// Interned callee symbols, module-wide.
    pub(crate) symbols: Vec<String>,
    /// Symbol name → id.
    pub(crate) sym_index: HashMap<String, u32>,
}

impl<'m> CompiledModule<'m> {
    /// The module this code was compiled from.
    #[must_use]
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// How many functions compiled to bytecode (the rest run on the
    /// fallback walker).
    #[must_use]
    pub fn compiled_count(&self) -> usize {
        self.funcs.iter().filter(|f| f.is_some()).count()
    }
}

/// Lowers every function of `module`. Never fails: functions whose shape
/// the bytecode cannot reproduce bit-for-bit are marked for the fallback
/// walker instead.
#[must_use]
pub fn compile_module(module: &Module) -> CompiledModule<'_> {
    let mut func_index = HashMap::new();
    for (i, f) in module.functions.iter().enumerate() {
        func_index.entry(f.name.clone()).or_insert(i as u32);
    }
    let mut interner = Interner {
        symbols: Vec::new(),
        map: HashMap::new(),
    };
    let funcs = module
        .functions
        .iter()
        .map(|f| compile_function(f, &func_index, &mut interner))
        .collect();
    CompiledModule {
        module,
        funcs,
        func_index,
        symbols: interner.symbols,
        sym_index: interner.map,
    }
}

struct Interner {
    symbols: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.symbols.len() as u32;
        self.symbols.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        id
    }
}

/// The phi prefix and body (incl. terminator) of one block, with every
/// structural eligibility condition already verified.
struct BlockShape {
    phis: Vec<ValueId>,
    body: Vec<ValueId>,
}

fn compile_function(
    f: &Function,
    func_index: &HashMap<String, u32>,
    interner: &mut Interner,
) -> Option<CompiledFunction> {
    let nb = f.num_blocks();
    if nb == 0 {
        return None;
    }
    // Structural pass: phis form a prefix, exactly one terminator and it
    // is last, every listed id is an instruction, no entry-block phis.
    let mut shapes: Vec<BlockShape> = Vec::with_capacity(nb);
    for b in f.block_ids() {
        let mut phis = Vec::new();
        let mut body = Vec::new();
        for &v in &f.block(b).instrs {
            let i = f.instr(v)?; // non-instruction id: the walker skips it
            match i.opcode {
                Opcode::Phi if body.is_empty() => phis.push(v),
                Opcode::Phi => return None, // mid-block phi: never executes
                _ => body.push(v),
            }
        }
        let (&last, rest) = body.split_last()?; // empty body falls through
        if !f.opcode(last)?.is_terminator() {
            return None; // fallthrough is a runtime error — walker's job
        }
        if rest
            .iter()
            .any(|&v| f.opcode(v).is_some_and(|o| o.is_terminator()))
        {
            return None; // mid-block branch: the walker keeps going
        }
        if b == BlockId(0) && !phis.is_empty() {
            return None; // entry phi is a runtime error — walker's job
        }
        shapes.push(BlockShape { phis, body });
    }

    // Per-instruction operand/target/type checks (anything the walker
    // would panic or error on at runtime stays on the walker).
    for shape in &shapes {
        for &v in &shape.body {
            check_instr(f, v, nb)?;
        }
    }

    // CFG edges exactly as the walker takes them: Br → targets[0],
    // CondBr → targets[0] and targets[1].
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); nb];
    for (bi, shape) in shapes.iter().enumerate() {
        let term = *shape.body.last().expect("checked non-empty");
        let i = f.instr(term).expect("checked instr");
        let targets: &[BlockId] = match i.opcode {
            Opcode::Br => &i.targets[..1],
            Opcode::CondBr => &i.targets[..2],
            _ => &[],
        };
        for &t in targets {
            let p = BlockId(bi as u32);
            if !preds[t.0 as usize].contains(&p) {
                preds[t.0 as usize].push(p);
            }
        }
    }

    // Every phi must cover every predecessor edge (a missing incoming is
    // a runtime error the walker reports only when the edge is taken).
    for (bi, shape) in shapes.iter().enumerate() {
        for &p in &preds[bi] {
            for &phi in &shape.phis {
                let i = f.instr(phi).expect("checked instr");
                let k = i.incoming.iter().position(|&b| b == p)?;
                if k >= i.operands.len() {
                    return None;
                }
            }
        }
    }

    // Must-defined dataflow: every operand read must be a constant or
    // provably written on every path, else the walker's "use of undefined
    // value" runtime error could be reachable.
    must_defined_ok(f, &shapes, &preds)?;

    // Emission. Pass 1: block bodies, with branch targets recorded as
    // (pc, edge) fixups; pass 2: per-edge phi-move snippets + patching.
    let mut code: Vec<Op> = Vec::new();
    let mut vids: Vec<u32> = Vec::new();
    let mut sites: Vec<CallSite> = Vec::new();
    let mut body_start: Vec<u32> = Vec::with_capacity(nb);
    // (pc, operand slot, from-block, to-block)
    let mut fixups: Vec<(usize, u8, BlockId, BlockId)> = Vec::new();
    for (bi, shape) in shapes.iter().enumerate() {
        body_start.push(code.len() as u32);
        let from = BlockId(bi as u32);
        for &v in &shape.body {
            let i = f.instr(v).expect("checked instr");
            let op = match i.opcode {
                Opcode::Br => {
                    fixups.push((code.len(), 0, from, i.targets[0]));
                    Op::Jump { target: u32::MAX }
                }
                Opcode::CondBr => {
                    fixups.push((code.len(), 0, from, i.targets[0]));
                    fixups.push((code.len(), 1, from, i.targets[1]));
                    Op::CondJump {
                        cond: i.operands[0].0,
                        on_true: u32::MAX,
                        on_false: u32::MAX,
                    }
                }
                Opcode::Ret => Op::Ret {
                    val: i.operands.first().map(|r| r.0),
                },
                _ => lower_instr(f, v, func_index, interner, &mut sites)
                    .expect("checked by check_instr"),
            };
            code.push(op);
            vids.push(v.0);
        }
    }
    // Pass 2: one snippet per (pred, phi-block) edge, shared by every
    // branch along it.
    let mut edge_pc: HashMap<(BlockId, BlockId), u32> = HashMap::new();
    for (pc, slot, from, to) in fixups {
        let target = if shapes[to.0 as usize].phis.is_empty() {
            body_start[to.0 as usize]
        } else {
            *edge_pc.entry((from, to)).or_insert_with(|| {
                let moves: Box<[PhiMove]> = shapes[to.0 as usize]
                    .phis
                    .iter()
                    .map(|&phi| {
                        let i = f.instr(phi).expect("checked instr");
                        let k = i
                            .incoming
                            .iter()
                            .position(|&b| b == from)
                            .expect("checked coverage");
                        PhiMove {
                            dst: phi.0,
                            src: i.operands[k].0,
                        }
                    })
                    .collect();
                let pc = code.len() as u32;
                code.push(Op::PhiMoves {
                    moves,
                    target: body_start[to.0 as usize],
                });
                vids.push(NO_VID);
                pc
            })
        };
        match &mut code[pc] {
            Op::Jump { target: t } => *t = target,
            Op::CondJump {
                on_true, on_false, ..
            } => {
                if slot == 0 {
                    *on_true = target;
                } else {
                    *on_false = target;
                }
            }
            _ => unreachable!("fixups only point at branches"),
        }
    }

    // Register-file template: constants prefilled.
    let mut init_regs = vec![Value::I(0); f.num_values()];
    for v in f.value_ids() {
        match f.value(v).kind {
            ValueKind::ConstInt(c) => init_regs[v.0 as usize] = Value::I(c),
            ValueKind::ConstFloat(c) => init_regs[v.0 as usize] = Value::F(c),
            _ => {}
        }
    }

    Some(CompiledFunction {
        name: f.name.as_str().into(),
        arity: f.params.len(),
        params: f.params.iter().map(|p| p.0).collect(),
        init_regs,
        code,
        vids,
        sites,
    })
}

/// Operand/target-count and result-type checks for one body instruction:
/// `None` means the walker would panic or raise a shape-dependent runtime
/// error here, so the function must stay on the walker.
fn check_instr(f: &Function, v: ValueId, nb: usize) -> Option<()> {
    let i = f.instr(v)?;
    let ty = &f.value(v).ty;
    let need = |n: usize| (i.operands.len() >= n).then_some(());
    match i.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::SDiv
        | Opcode::SRem
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::AShr
        | Opcode::FAdd
        | Opcode::FSub
        | Opcode::FMul
        | Opcode::FDiv
        | Opcode::ICmp(_)
        | Opcode::FCmp(_) => need(2),
        Opcode::Select => need(3),
        Opcode::Gep => {
            need(2)?;
            ty.pointee().map(|_| ())
        }
        Opcode::Load => {
            need(1)?;
            MemKind::of(ty).map(|_| ())
        }
        Opcode::Store => {
            need(2)?;
            MemKind::of(&f.value(i.operands[0]).ty).map(|_| ())
        }
        Opcode::Alloca => {
            need(1)?;
            ty.pointee().map(|_| ())
        }
        Opcode::SExt
        | Opcode::ZExt
        | Opcode::Trunc
        | Opcode::SIToFP
        | Opcode::FPToSI
        | Opcode::FPExt
        | Opcode::FPTrunc => need(1),
        Opcode::Call => i.callee.as_ref().map(|_| ()),
        Opcode::Br => (!i.targets.is_empty() && (i.targets[0].0 as usize) < nb).then_some(()),
        Opcode::CondBr => {
            need(1)?;
            (i.targets.len() >= 2
                && (i.targets[0].0 as usize) < nb
                && (i.targets[1].0 as usize) < nb)
                .then_some(())
        }
        Opcode::Ret => Some(()),
        Opcode::Phi => None, // phis never reach the body
    }
}

fn lower_instr(
    f: &Function,
    v: ValueId,
    func_index: &HashMap<String, u32>,
    interner: &mut Interner,
    sites: &mut Vec<CallSite>,
) -> Option<Op> {
    let i = f.instr(v)?;
    let ty = &f.value(v).ty;
    let dst = v.0;
    let r = |k: usize| i.operands[k].0;
    let int_bin = |op: IntOp| Op::IntBin {
        op,
        wrap: IntWrap::of(ty),
        dst,
        a: r(0),
        b: r(1),
    };
    let float_bin = |op: FloatOp| Op::FloatBin {
        op,
        round: *ty == Type::F32,
        dst,
        a: r(0),
        b: r(1),
    };
    Some(match i.opcode {
        Opcode::Add => int_bin(IntOp::Add),
        Opcode::Sub => int_bin(IntOp::Sub),
        Opcode::Mul => int_bin(IntOp::Mul),
        Opcode::SDiv => int_bin(IntOp::Div),
        Opcode::SRem => int_bin(IntOp::Rem),
        Opcode::And => int_bin(IntOp::And),
        Opcode::Or => int_bin(IntOp::Or),
        Opcode::Xor => int_bin(IntOp::Xor),
        Opcode::Shl => int_bin(IntOp::Shl),
        Opcode::AShr => int_bin(IntOp::AShr),
        Opcode::FAdd => float_bin(FloatOp::Add),
        Opcode::FSub => float_bin(FloatOp::Sub),
        Opcode::FMul => float_bin(FloatOp::Mul),
        Opcode::FDiv => float_bin(FloatOp::Div),
        Opcode::ICmp(pred) => Op::ICmp {
            pred,
            dst,
            a: r(0),
            b: r(1),
        },
        Opcode::FCmp(pred) => Op::FCmp {
            pred,
            dst,
            a: r(0),
            b: r(1),
        },
        Opcode::Select => Op::Select {
            dst,
            cond: r(0),
            on_true: r(1),
            on_false: r(2),
        },
        Opcode::Gep => Op::Gep {
            dst,
            base: r(0),
            idx: r(1),
            elem: ty.pointee()?.size_bytes() as i64,
        },
        Opcode::Load => Op::Load {
            kind: MemKind::of(ty)?,
            dst,
            addr: r(0),
        },
        Opcode::Store => Op::Store {
            kind: MemKind::of(&f.value(i.operands[0]).ty)?,
            val: r(0),
            addr: r(1),
        },
        Opcode::Alloca => Op::Alloca {
            dst,
            n: r(0),
            elem: ty.pointee()?.clone(),
        },
        Opcode::SExt | Opcode::ZExt | Opcode::Trunc => Op::IntCast {
            wrap: IntWrap::of(ty),
            dst,
            src: r(0),
        },
        Opcode::SIToFP => Op::SiToFp {
            round: *ty == Type::F32,
            dst,
            src: r(0),
        },
        Opcode::FPToSI => Op::FpToSi {
            wrap: IntWrap::of(ty),
            dst,
            src: r(0),
        },
        Opcode::FPExt => Op::FpExt { dst, src: r(0) },
        Opcode::FPTrunc => Op::FpTrunc { dst, src: r(0) },
        Opcode::Call => {
            let callee = i.callee.as_deref()?;
            let sym = interner.intern(callee);
            // Walker dispatch order with hosts factored out: intrinsics
            // shadow module functions of the same name.
            let target = match Intrinsic::by_name(callee) {
                Some(k) => CallTarget::Intrinsic(k),
                None => match func_index.get(callee) {
                    Some(&idx) => CallTarget::Function(idx),
                    None => CallTarget::Unknown,
                },
            };
            let site = sites.len() as u32;
            sites.push(CallSite {
                args: i.operands.iter().map(|o| o.0).collect(),
                dst,
                sym,
                target,
            });
            Op::Call { site }
        }
        Opcode::Phi | Opcode::Br | Opcode::CondBr | Opcode::Ret => return None,
    })
}

/// A dense bitset over value ids.
#[derive(Clone, PartialEq)]
struct Defined(Vec<u64>);

impl Defined {
    fn full(n: usize) -> Defined {
        Defined(vec![u64::MAX; n.div_ceil(64)])
    }
    fn empty(n: usize) -> Defined {
        Defined(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, v: ValueId) {
        self.0[v.0 as usize / 64] |= 1 << (v.0 % 64);
    }
    fn get(&self, v: ValueId) -> bool {
        self.0[v.0 as usize / 64] >> (v.0 % 64) & 1 != 0
    }
    fn intersect(&mut self, other: &Defined) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a &= b;
        }
    }
}

fn is_const(f: &Function, v: ValueId) -> bool {
    matches!(
        f.value(v).kind,
        ValueKind::ConstInt(_) | ValueKind::ConstFloat(_)
    )
}

/// Forward must-defined analysis (intersection over predecessors; the
/// entry starts from parameters + constants). Returns `None` when any
/// operand read — body operand, branch condition, return value, or phi
/// operand on its edge — is not provably defined there.
fn must_defined_ok(f: &Function, shapes: &[BlockShape], preds: &[Vec<BlockId>]) -> Option<()> {
    let n = f.num_values();
    let entry_in = {
        let mut d = Defined::empty(n);
        for &p in &f.params {
            d.set(p);
        }
        for v in f.value_ids() {
            if is_const(f, v) {
                d.set(v);
            }
        }
        d
    };
    let mut outs: Vec<Defined> = vec![Defined::full(n); shapes.len()];
    // Fixpoint: defined sets only shrink from ⊤, so this terminates.
    loop {
        let mut changed = false;
        for (bi, shape) in shapes.iter().enumerate() {
            let mut d = if bi == 0 {
                entry_in.clone()
            } else {
                let mut d = Defined::full(n);
                for &p in &preds[bi] {
                    d.intersect(&outs[p.0 as usize]);
                }
                d
            };
            for &phi in &shape.phis {
                d.set(phi);
            }
            for &v in &shape.body {
                d.set(v);
            }
            if d != outs[bi] {
                outs[bi] = d;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Use checks against the converged solution. Body operands are read
    // sequentially within the block, so track the running defined set.
    for (bi, shape) in shapes.iter().enumerate() {
        let mut d = if bi == 0 {
            entry_in.clone()
        } else {
            let mut d = Defined::full(n);
            for &p in &preds[bi] {
                d.intersect(&outs[p.0 as usize]);
            }
            d
        };
        for &phi in &shape.phis {
            d.set(phi);
        }
        for &v in &shape.body {
            let i = f.instr(v).expect("checked instr");
            let used: &[ValueId] = match i.opcode {
                // Br has no operands; CondBr reads only the condition;
                // Ret reads its optional operand.
                Opcode::Br => &[],
                Opcode::CondBr => &i.operands[..1],
                _ => &i.operands,
            };
            for &u in used {
                if !is_const(f, u) && !d.get(u) {
                    return None;
                }
            }
            d.set(v);
        }
        // Phi operands evaluate on the edge, reading end-of-predecessor
        // state.
        for &p in &preds[bi] {
            for &phi in &shape.phis {
                let i = f.instr(phi).expect("checked instr");
                let k = i
                    .incoming
                    .iter()
                    .position(|&b| b == p)
                    .expect("checked coverage");
                let u = i.operands[k];
                if !is_const(f, u) && !outs[p.0 as usize].get(u) {
                    return None;
                }
            }
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_text(text: &str) -> ssair::Module {
        ssair::parser::parse_module(text).expect("test IR parses")
    }

    #[test]
    fn straight_line_and_loop_functions_compile() {
        let m = compile_text(
            r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#,
        );
        let c = compile_module(&m);
        assert_eq!(c.compiled_count(), 1);
        let cf = c.funcs[0].as_ref().unwrap();
        // Two edges into the phi-bearing header → two move snippets.
        let snippets = cf
            .code
            .iter()
            .filter(|op| matches!(op, Op::PhiMoves { .. }))
            .count();
        assert_eq!(snippets, 2);
        // Every branch target was patched.
        for op in &cf.code {
            match op {
                Op::Jump { target } => assert_ne!(*target, u32::MAX),
                Op::CondJump {
                    on_true, on_false, ..
                } => {
                    assert_ne!(*on_true, u32::MAX);
                    assert_ne!(*on_false, u32::MAX);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn constants_are_prefilled_in_the_register_template() {
        let m = compile_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 7\n  ret i32 %x\n}\n",
        );
        let c = compile_module(&m);
        let cf = c.funcs[0].as_ref().unwrap();
        assert!(cf.init_regs.contains(&Value::I(7)));
    }

    #[test]
    fn entry_phi_falls_back_to_the_walker() {
        // An entry-block phi is a *runtime* walker error; the bytecode
        // tier must leave the function to the oracle.
        let mut m = compile_text(
            "define i64 @f(i64 %a) {\nentry:\n  %x = add i64 %a, 1\n  ret i64 %x\n}\n",
        );
        m.functions[0].append_phi(BlockId(0), Type::I64);
        let c = compile_module(&m);
        assert!(c.funcs[0].is_none(), "entry phi must fall back");
    }

    #[test]
    fn calls_are_prebound_and_symbols_interned() {
        let m = compile_text(
            r#"
define i64 @sq(i64 %x) {
entry:
  %r = mul i64 %x, %x
  ret i64 %r
}

define double @f(i64 %x, double %y) {
entry:
  %a = call i64 @sq(i64 %x)
  %b = call double @sqrt(double %y)
  %c = call double @mystery(double %y)
  ret double %c
}
"#,
        );
        let c = compile_module(&m);
        let cf = c.funcs[1].as_ref().unwrap();
        assert_eq!(cf.sites.len(), 3);
        assert!(matches!(cf.sites[0].target, CallTarget::Function(0)));
        assert!(matches!(cf.sites[1].target, CallTarget::Intrinsic(_)));
        assert!(matches!(cf.sites[2].target, CallTarget::Unknown));
        assert_eq!(c.symbols.len(), 3);
        assert_eq!(c.sym_index.len(), 3);
    }

    #[test]
    fn possibly_undefined_operand_falls_back() {
        // %x is only defined on the `then` path; the walker reports
        // "use of undefined value" at runtime when `join` reads it after
        // coming from `entry` — must-defined has to reject this.
        let m = compile_text(
            r#"
define i64 @f(i64 %a) {
entry:
  %c = icmp sgt i64 %a, 0
  br i1 %c, label %then, label %join
then:
  %x = add i64 %a, 1
  br label %join
join:
  %r = add i64 %x, 2
  ret i64 %r
}
"#,
        );
        let c = compile_module(&m);
        assert!(c.funcs[0].is_none(), "maybe-undefined use must fall back");
    }
}
