//! Loop-carried dependence testing, alias classification and
//! parallel-safety certificates.
//!
//! Built on the SCEV-lite affine forms of [`ssair::analysis::AffineMap`]:
//! memory accesses become `base + affine(index)` pairs, base pointers are
//! classified against each other ([`AliasClass`]), and same-base access
//! pairs go through ZIV / strong-SIV / GCD / delinearization tests
//! ([`disjoint_across`]) to decide whether two *different* iterations of
//! a given loop can touch the same element. The region-level summary is a
//! [`SafetyCertificate`]: independent-iterations, reduction-only (carried
//! accumulator or same-address read-modify-write), or serial.
//!
//! Certificates computed without module context treat distinct pointer
//! parameters under the restrict model (no-alias *assumed*). When the
//! whole module is available, [`ParamAliasFacts`] refines that: if every
//! call site passes provably distinct objects the assumption becomes a
//! proof, and if any call site passes the same object the pair is
//! demoted to may-alias — which is how the "same array twice" adversary
//! is kept off the parallel path.

use crate::legality::{address_root, classify_base, MemoryBase};
use ssair::analysis::{AffineIndex, AffineMap, Analyses, Bound, Coeff};
use ssair::{BlockId, Function, Module, Opcode, Type, ValueId};
use std::collections::{BTreeMap, BTreeSet};

/// The relation between two base pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasClass {
    /// Provably distinct objects (distinct `alloca`s, an `alloca` vs a
    /// parameter, incompatible pointee types, or call-site-proven
    /// distinct parameters).
    NoAliasProven,
    /// Distinct under the restrict-parameter assumption only.
    NoAliasAssumed,
    /// No information; overlap must be assumed.
    MayAlias,
    /// The same object (same root, or call-site-proven identical).
    MustAlias,
}

/// What a parallel executor may do with a replaced region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParallelSafety {
    /// Iterations of the region's outermost loop are independent: all
    /// stores land on provably per-iteration-disjoint addresses and no
    /// may-alias read/write pair crosses iterations.
    IndependentIterations,
    /// The only loop-carried state is an accumulator (a carried header
    /// phi or a same-address read-modify-write), so the region needs
    /// reduction support but nothing stronger.
    ReductionOnly,
    /// No parallel execution is justified.
    Serial,
}

impl ParallelSafety {
    /// The stable wire name used in BENCH artifacts and corpus records.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ParallelSafety::IndependentIterations => "independent_iterations",
            ParallelSafety::ReductionOnly => "reduction_only",
            ParallelSafety::Serial => "serial",
        }
    }

    /// Parses a wire name back.
    #[must_use]
    pub fn parse(s: &str) -> Option<ParallelSafety> {
        [
            ParallelSafety::IndependentIterations,
            ParallelSafety::ReductionOnly,
            ParallelSafety::Serial,
        ]
        .into_iter()
        .find(|p| p.as_str() == s)
    }
}

/// A parallel-safety certificate: the classification plus the fact that
/// justifies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyCertificate {
    /// The classification.
    pub safety: ParallelSafety,
    /// One human-readable justification.
    pub reason: String,
}

impl SafetyCertificate {
    /// A serial certificate with the given reason.
    #[must_use]
    pub fn serial(reason: impl Into<String>) -> SafetyCertificate {
        SafetyCertificate {
            safety: ParallelSafety::Serial,
            reason: reason.into(),
        }
    }
}

/// Call-site alias facts for pointer-parameter pairs, computed over a
/// whole module.
#[derive(Debug, Clone, Default)]
pub struct ParamAliasFacts {
    /// `(callee, param i, param j)` with `i < j` → the strongest fact
    /// the call sites support.
    pairs: BTreeMap<(String, usize, usize), PairFact>,
}

/// What the call sites of one pointer-parameter pair showed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairFact {
    /// Every call site passes provably distinct objects.
    AllDistinctProven,
    /// Call sites exist but at least one passes roots we cannot prove
    /// distinct (e.g. the caller's own distinct parameters).
    Unproven,
    /// At least one call site passes the same underlying object.
    SomeSame,
}

impl ParamAliasFacts {
    /// Scans every call in `m` and records, per callee pointer-parameter
    /// pair, whether the passed objects are provably distinct at every
    /// call site.
    #[must_use]
    pub fn of_module(m: &Module) -> ParamAliasFacts {
        let mut pairs: BTreeMap<(String, usize, usize), PairFact> = BTreeMap::new();
        for caller in &m.functions {
            for v in caller.value_ids() {
                let Some(i) = caller.instr(v) else { continue };
                if i.opcode != Opcode::Call {
                    continue;
                }
                let Some(callee) = i.callee.as_deref() else {
                    continue;
                };
                if m.function(callee).is_none() {
                    continue;
                }
                let args = &i.operands;
                for a in 0..args.len() {
                    if !caller.value(args[a]).ty.is_pointer() {
                        continue;
                    }
                    for b in a + 1..args.len() {
                        if !caller.value(args[b]).ty.is_pointer() {
                            continue;
                        }
                        let fact = call_site_fact(caller, args[a], args[b]);
                        let key = (callee.to_owned(), a, b);
                        let merged = match (pairs.get(&key), fact) {
                            (_, PairFact::SomeSame) | (Some(PairFact::SomeSame), _) => {
                                PairFact::SomeSame
                            }
                            (Some(PairFact::Unproven), _) | (_, PairFact::Unproven) => {
                                PairFact::Unproven
                            }
                            _ => PairFact::AllDistinctProven,
                        };
                        pairs.insert(key, merged);
                    }
                }
            }
        }
        ParamAliasFacts { pairs }
    }

    /// `true` when `m` contains at least one call site of `callee`.
    #[must_use]
    pub fn has_call_sites(&self, callee: &str) -> bool {
        self.pairs.keys().any(|(c, _, _)| c == callee)
    }

    fn lookup(&self, callee: &str, i: usize, j: usize) -> Option<PairFact> {
        let key = (callee.to_owned(), i.min(j), i.max(j));
        self.pairs.get(&key).copied()
    }
}

/// What one call site shows about two passed pointers.
fn call_site_fact(caller: &Function, a: ValueId, b: ValueId) -> PairFact {
    let (ra, rb) = (address_root(caller, a), address_root(caller, b));
    if ra == rb {
        return PairFact::SomeSame;
    }
    let (ca, cb) = (classify_base(caller, ra), classify_base(caller, rb));
    match (ca, cb) {
        // Two distinct allocas, or a local vs anything named, are
        // provably distinct storage.
        (MemoryBase::Alloca, MemoryBase::Alloca)
        | (MemoryBase::Alloca, MemoryBase::Param(_))
        | (MemoryBase::Param(_), MemoryBase::Alloca) => PairFact::AllDistinctProven,
        _ => PairFact::Unproven,
    }
}

/// Classifies two base pointers of `f` (function name needed for
/// call-site fact lookup). `facts` is `None` in per-function contexts;
/// passing module-wide facts upgrades or demotes parameter pairs.
#[must_use]
pub fn classify_alias(
    f: &Function,
    facts: Option<&ParamAliasFacts>,
    a: ValueId,
    b: ValueId,
) -> AliasClass {
    if a == b {
        return AliasClass::MustAlias;
    }
    let (ca, cb) = (classify_base(f, a), classify_base(f, b));
    // Distinct local storage never aliases anything else named.
    match (ca, cb) {
        (MemoryBase::Alloca, MemoryBase::Alloca)
        | (MemoryBase::Alloca, MemoryBase::Param(_))
        | (MemoryBase::Param(_), MemoryBase::Alloca) => return AliasClass::NoAliasProven,
        _ => {}
    }
    // Incompatible pointee types cannot name the same object in this
    // memory model (objects are typed arrays laid out by `setup`).
    if let (Type::Ptr(pa), Type::Ptr(pb)) = (&f.value(a).ty, &f.value(b).ty) {
        if pa != pb {
            return AliasClass::NoAliasProven;
        }
    }
    match (ca, cb) {
        (MemoryBase::Param(i), MemoryBase::Param(j)) => {
            match facts.and_then(|fx| fx.lookup(&f.name, i, j)) {
                Some(PairFact::AllDistinctProven) => AliasClass::NoAliasProven,
                Some(PairFact::SomeSame) => AliasClass::MustAlias,
                Some(PairFact::Unproven) | None => AliasClass::NoAliasAssumed,
            }
        }
        _ => AliasClass::MayAlias,
    }
}

/// A bound expressed linearly in one symbolic stride `S`: `m·S + c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinBound {
    m: i64,
    c: i64,
}

impl LinBound {
    const fn konst(c: i64) -> LinBound {
        LinBound { m: 0, c }
    }

    fn add(self, o: LinBound) -> LinBound {
        LinBound {
            m: self.m + o.m,
            c: self.c + o.c,
        }
    }

    fn neg(self) -> LinBound {
        LinBound {
            m: -self.m,
            c: -self.c,
        }
    }

    fn scale(self, k: i64) -> LinBound {
        LinBound {
            m: k * self.m,
            c: k * self.c,
        }
    }

    /// `self <= o` for every `S >= 1`.
    fn le_for_all(self, o: LinBound) -> bool {
        let (dm, dc) = (o.m - self.m, o.c - self.c);
        dm >= 0 && dm + dc >= 0
    }
}

/// Expresses `v`'s value as `m·S + c` when its affine form is constant
/// plus a multiple of the symbol `stride`.
fn lin_of(map: &AffineMap, f: &Function, v: ValueId, stride: ValueId) -> Option<LinBound> {
    let a = map.index_of(f, v);
    if !a.terms.is_empty() {
        return None;
    }
    let mut m = 0;
    for (&s, &k) in &a.syms {
        if s == stride {
            m = k;
        } else {
            return None;
        }
    }
    Some(LinBound { m, c: a.konst })
}

/// Tests whether two affine accesses (element-unit indexes off the
/// *same* base) are provably disjoint across *different* iterations of
/// the loop with index `loop_idx`: for all `i ≠ i'` (and inner
/// induction variables ranging freely over their guard ranges) the two
/// indexes differ.
///
/// Handles, in order: the GCD no-solution test, ZIV (no loop term on
/// either side), strong SIV with constant strides and constant-bounded
/// remainders, and the delinearized symbolic-stride case `±1·S·i + inner`
/// where every inner range is `[const, m·S + c)` — the `i*dim + j`
/// row-major shape.
#[must_use]
pub fn disjoint_across(
    f: &Function,
    an: &Analyses,
    map: &AffineMap,
    loop_idx: usize,
    a: &AffineIndex,
    b: &AffineIndex,
) -> bool {
    // Every opaque symbol must be invariant in the tested loop;
    // non-affine subscripts (`a[i*i]`) fail here.
    let syms_ok = |x: &AffineIndex| {
        x.syms
            .keys()
            .chain(x.terms.values().filter_map(|c| c.sym.as_ref()))
            .all(|&s| AffineMap::invariant_in(f, &an.loops, loop_idx, s))
    };
    if !syms_ok(a) || !syms_ok(b) {
        return false;
    }
    // The symbolic parts that do not vary between the two instances must
    // cancel exactly: remaining symbolic offsets are unbounded.
    if a.syms != b.syms {
        return false;
    }
    // Split each side's IV terms relative to the tested loop: the tested
    // IV itself, inner IVs (range freely between instances), and outer
    // IVs (equal in both instances — they cancel if coefficients match).
    let tested = |iv: ValueId| map.iv(iv).is_some_and(|i| i.loop_idx == loop_idx);
    let inner = |iv: ValueId| {
        map.iv(iv).is_some_and(|i| {
            i.loop_idx != loop_idx && !AffineMap::invariant_in(f, &an.loops, loop_idx, iv)
        })
    };
    let mut ca: Option<Coeff> = None;
    let mut cb: Option<Coeff> = None;
    let mut tested_iv: Option<ValueId> = None;
    let mut inner_coeffs: Vec<(ValueId, Option<Coeff>, Option<Coeff>)> = Vec::new();
    let all_ivs: BTreeSet<ValueId> = a.terms.keys().chain(b.terms.keys()).copied().collect();
    for iv in all_ivs {
        let ka = a.terms.get(&iv).copied();
        let kb = b.terms.get(&iv).copied();
        if tested(iv) {
            ca = ka;
            cb = kb;
            tested_iv = Some(iv);
        } else if inner(iv) {
            inner_coeffs.push((iv, ka, kb));
        } else {
            // Outer or invariant IV: equal in both instances, cancels
            // only with identical coefficients.
            if ka != kb {
                return false;
            }
        }
    }
    // Both sides need the same, non-zero stride on the tested IV.
    let (Some(ca), Some(cb)) = (ca, cb) else {
        // ZIV relative to this loop: neither index moves with the
        // iteration. Disjoint across iterations only if the two indexes
        // can never be equal at all.
        if ca.is_some() || cb.is_some() {
            return false;
        }
        let d = a.konst - b.konst;
        return inner_coeffs.is_empty() && d != 0;
    };
    if ca != cb || ca.k == 0 {
        return false;
    }
    let d = a.konst - b.konst;
    match ca.sym {
        None if inner_coeffs
            .iter()
            .any(|(_, ka, kb)| [ka, kb].into_iter().flatten().any(|c| c.sym.is_some())) =>
        {
            // Column-major dual of the delinearized case below:
            // `±1·i + S·(...)` with the tested IV `i` itself ranging over
            // `[lo, m·S + c)` and that span provably below `S`. Every
            // inner contribution is then an exact multiple of `S`, so a
            // collision would need `S | Δi` — impossible for
            // `0 < |Δi| < S`. This is `mo[i + j*dim]` with outer `i`.
            if ca.k.abs() != 1 || d != 0 {
                return false;
            }
            // Every inner term on both sides must be a multiple of one
            // shared stride symbol (constant or mixed-symbol inner terms
            // would break the divisibility argument).
            let mut stride_sym: Option<ValueId> = None;
            for (_, ka, kb) in &inner_coeffs {
                for c in [ka, kb].into_iter().flatten() {
                    match c.sym {
                        Some(s) if stride_sym.is_none() || stride_sym == Some(s) => {
                            stride_sym = Some(s);
                        }
                        _ => return false,
                    }
                }
            }
            let (Some(stride_sym), Some(tested_iv)) = (stride_sym, tested_iv) else {
                return false;
            };
            let Some(info) = map.iv(tested_iv) else {
                return false;
            };
            let (Bound::Const(lo), Bound::Sym(h)) = (info.range.lo, info.range.hi) else {
                return false;
            };
            let Some(hi) = lin_of(map, f, h, stride_sym) else {
                return false;
            };
            // A non-empty range `[lo, m·S + c)` with `m ≥ 1` forces
            // `S ≥ 1` whenever the loop runs at all (vacuous otherwise).
            if hi.m < 1 || lo + 1 - hi.c < hi.m {
                return false;
            }
            // `Δi` spans `[-(R), R]` with `R = (m·S + c - 1) - lo`;
            // need `R ≤ S - 1` for every `S ≥ 1`.
            let r = hi.add(LinBound::konst(-1 - lo));
            r.le_for_all(LinBound { m: 1, c: -1 })
        }
        None => {
            let inner_terms: Vec<(ValueId, i64, i64)> = inner_coeffs
                .iter()
                .map(|&(iv, ka, kb)| (iv, ka.map_or(0, |c| c.k), kb.map_or(0, |c| c.k)))
                .collect();
            let stride = ca.k.abs();
            // GCD test: `stride·Δi + Σ k·Δt + d = 0` has no integer
            // solution when gcd of all coefficients does not divide d.
            let mut g = stride;
            for &(_, ka, kb) in &inner_terms {
                g = gcd(g, gcd(ka.abs(), kb.abs()));
            }
            if g > 1 && d % g != 0 {
                return true;
            }
            // Strong SIV: bound the remainder by constant inner ranges.
            let (mut lo, mut hi) = (d, d);
            for &(iv, ka, kb) in &inner_terms {
                let r = map
                    .iv(iv)
                    .map_or(ssair::analysis::VRange::UNKNOWN, |i| i.range);
                let (Bound::Const(rlo), Bound::Const(rhi)) = (r.lo, r.hi) else {
                    return false;
                };
                if rhi <= rlo {
                    return true; // empty range: the access never executes
                }
                for (k, sign) in [(ka, 1), (kb, -1)] {
                    let k = k * sign;
                    let (tlo, thi) = if k >= 0 {
                        (k * rlo, k * (rhi - 1))
                    } else {
                        (k * (rhi - 1), k * rlo)
                    };
                    lo += tlo;
                    hi += thi;
                }
            }
            // |remainder| < stride ⇒ a non-zero iteration distance can
            // never be compensated.
            lo > -stride && hi < stride
        }
        Some(stride_sym) => {
            // Delinearized case: stride = ±1·S. Prove |remainder| < S
            // for all S ≥ 1, and that execution of the accesses implies
            // S ≥ 1 (via at least one inner range reaching m·S + c).
            if ca.k.abs() != 1 {
                return false;
            }
            // Symbolic coefficients on inner IVs are out of scope here
            // (the guard above already routed pure multiples of `S` with
            // a constant-stride tested IV to the dual case).
            let mut inner_terms: Vec<(ValueId, i64, i64)> = Vec::new();
            for &(iv, ka, kb) in &inner_coeffs {
                if [ka, kb].into_iter().flatten().any(|c| c.sym.is_some()) {
                    return false;
                }
                inner_terms.push((iv, ka.map_or(0, |c| c.k), kb.map_or(0, |c| c.k)));
            }
            let (mut lo, mut hi) = (LinBound::konst(d), LinBound::konst(d));
            let mut implies_positive_stride = false;
            for &(iv, ka, kb) in &inner_terms {
                let Some(info) = map.iv(iv) else { return false };
                let (blo, bhi) = match (info.range.lo, info.range.hi) {
                    (Bound::Const(l), Bound::Sym(h)) => {
                        let Some(h) = lin_of(map, f, h, stride_sym) else {
                            return false;
                        };
                        (LinBound::konst(l), h)
                    }
                    (Bound::Const(l), Bound::Const(h)) => (LinBound::konst(l), LinBound::konst(h)),
                    _ => return false,
                };
                // Non-empty range [blo, bhi) with bhi linear in S and
                // m ≥ 1 forces S ≥ (blo + 1 - c) / m ≥ 1.
                if bhi.m >= 1 && blo.c + 1 - bhi.c >= bhi.m {
                    implies_positive_stride = true;
                }
                let top = bhi.add(LinBound::konst(-1)); // inclusive max
                for k in [ka, -kb] {
                    // A term k·t with t ∈ [blo, top] contributes
                    // [k·blo, k·top] (flipped for negative k).
                    if k > 0 {
                        lo = lo.add(blo.scale(k));
                        hi = hi.add(top.scale(k));
                    } else if k < 0 {
                        lo = lo.add(top.scale(k));
                        hi = hi.add(blo.scale(k));
                    }
                }
            }
            if !implies_positive_stride {
                return false;
            }
            // Need -(S-1) ≤ lo and hi ≤ S-1 for all S ≥ 1.
            let s_minus_1 = LinBound { m: 1, c: -1 };
            s_minus_1.neg().le_for_all(lo) && hi.le_for_all(s_minus_1)
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// One memory access of a region, in affine form.
#[derive(Debug, Clone)]
struct Access {
    /// The load/store instruction.
    inst: ValueId,
    /// The pointer operand.
    ptr: ValueId,
    /// The root object.
    root: ValueId,
    /// The affine index off the root, when the whole `gep` chain folded.
    index: Option<AffineIndex>,
    /// `true` for stores.
    is_store: bool,
}

/// Classifies a replacement region (the blocks of a detected instance,
/// iterated by the loop whose header contains `outer_iv`) into a
/// [`SafetyCertificate`].
#[must_use]
pub fn classify_region(
    f: &Function,
    an: &Analyses,
    map: &AffineMap,
    blocks: &[BlockId],
    outer_iv: ValueId,
    facts: Option<&ParamAliasFacts>,
) -> SafetyCertificate {
    let Some(iv) = map.iv(outer_iv) else {
        return SafetyCertificate::serial(format!(
            "anchor {} is not a recognised induction variable",
            f.display_name(outer_iv)
        ));
    };
    let loop_idx = iv.loop_idx;
    let header = iv.header;
    // Carried (non-IV) phis in the outermost header are accumulators.
    let mut carried: Vec<ValueId> = Vec::new();
    if blocks.contains(&header) {
        for &v in &f.block(header).instrs {
            if f.opcode(v) == Some(Opcode::Phi) && map.iv(v).is_none() {
                carried.push(v);
            }
        }
    }
    // Collect the region's accesses.
    let mut accesses: Vec<Access> = Vec::new();
    for &b in blocks {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            let (ptr, is_store) = match i.opcode {
                Opcode::Load => (i.operands[0], false),
                Opcode::Store => (i.operands[1], true),
                _ => continue,
            };
            accesses.push(Access {
                inst: v,
                ptr,
                root: address_root(f, ptr),
                index: map.address_of(f, ptr).map(|a| a.index),
                is_store,
            });
        }
    }
    // A store is RMW when its stored value is derived from a load of the
    // same address in the region.
    let rmw_load_of = |st: &Access| -> Option<ValueId> {
        let val = f.instr(st.inst)?.operands[0];
        let mut seen = BTreeSet::new();
        let mut stack = vec![val];
        while let Some(v) = stack.pop() {
            if !seen.insert(v) || seen.len() > 64 {
                continue;
            }
            if let Some(i) = f.instr(v) {
                if i.opcode == Opcode::Load
                    && (i.operands[0] == st.ptr
                        || (st.index.is_some()
                            && map.address_of(f, i.operands[0]).map(|a| a.index) == st.index
                            && address_root(f, i.operands[0]) == st.root))
                {
                    return Some(v);
                }
                stack.extend(i.operands.iter().copied());
            }
        }
        None
    };
    let mut rmw_loads: BTreeSet<ValueId> = BTreeSet::new();
    let mut rmw_stores: BTreeSet<ValueId> = BTreeSet::new();
    for st in accesses.iter().filter(|a| a.is_store) {
        if let Some(l) = rmw_load_of(st) {
            rmw_loads.insert(l);
            rmw_stores.insert(st.inst);
        }
    }
    // Every store must be either per-iteration disjoint from all other
    // accesses it may share an object with, or part of an RMW pair.
    let mut needs_reduction = !carried.is_empty();
    let mut reduction_reason = carried
        .first()
        .map(|&v| format!("loop-carried accumulator {}", f.display_name(v)));
    for st in accesses.iter().filter(|a| a.is_store) {
        for other in &accesses {
            if other.inst == st.inst && !other.is_store {
                continue;
            }
            if !other.is_store && rmw_loads.contains(&other.inst) {
                continue; // the RMW companion load
            }
            let same_object = if st.root == other.root {
                true
            } else {
                match classify_alias(f, facts, st.root, other.root) {
                    AliasClass::NoAliasProven | AliasClass::NoAliasAssumed => false,
                    AliasClass::MayAlias | AliasClass::MustAlias => true,
                }
            };
            if !same_object {
                continue;
            }
            let disjoint = match (&st.index, &other.index) {
                (Some(a), Some(b)) if st.root == other.root => {
                    disjoint_across(f, an, map, loop_idx, a, b)
                }
                // May-alias across *different* roots, or a non-affine
                // chain: nothing provable.
                _ => false,
            };
            if disjoint {
                continue;
            }
            if rmw_stores.contains(&st.inst) && (other.inst == st.inst || !other.is_store) {
                // Same-address accumulate (histogram-style).
                needs_reduction = true;
                reduction_reason.get_or_insert_with(|| {
                    format!("read-modify-write through {}", f.display_name(st.root))
                });
                continue;
            }
            return SafetyCertificate::serial(format!(
                "store {} may overlap {} across iterations of {}",
                f.display_name(st.inst),
                f.display_name(other.inst),
                f.display_name(outer_iv)
            ));
        }
    }
    if needs_reduction {
        SafetyCertificate {
            safety: ParallelSafety::ReductionOnly,
            reason: reduction_reason.unwrap_or_else(|| "accumulating region".into()),
        }
    } else {
        SafetyCertificate {
            safety: ParallelSafety::IndependentIterations,
            reason: format!(
                "all stores per-iteration disjoint over {}",
                f.display_name(outer_iv)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssair::parser::parse_function_text;

    fn prep(src: &str) -> (Function, Analyses) {
        let f = parse_function_text(src).unwrap();
        let an = Analyses::new(&f);
        (f, an)
    }

    fn get(f: &Function, name: &str) -> ValueId {
        f.named(name).unwrap()
    }

    const STENCIL: &str = r#"
define void @sten(double* %in, double* %out, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 1, %entry ], [ %i.next, %b ]
  %nm1 = sub i64 %n, 1
  %c = icmp slt i64 %i, %nm1
  br i1 %c, label %b, label %x
b:
  %im1 = sub i64 %i, 1
  %p0 = getelementptr double, double* %in, i64 %im1
  %v0 = load double, double* %p0
  %p1 = getelementptr double, double* %in, i64 %i
  %v1 = load double, double* %p1
  %s = fadd double %v0, %v1
  %q = getelementptr double, double* %out, i64 %i
  store double %s, double* %q
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}
"#;

    #[test]
    fn stencil_region_is_independent_iterations() {
        let (f, an) = prep(STENCIL);
        let map = AffineMap::new(&f, &an);
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(
            cert.safety,
            ParallelSafety::IndependentIterations,
            "{}",
            cert.reason
        );
    }

    #[test]
    fn same_array_twice_at_a_call_site_demotes_the_pair() {
        let (f, an) = prep(STENCIL);
        let map = AffineMap::new(&f, &an);
        // Build a module whose only call passes the same array twice.
        let mut m = Module::new("adv");
        m.functions.push(f.clone());
        let mut entry = Function::new("entry", &[], Type::Void);
        let b = entry.add_block("entry");
        let n = entry.const_int(Type::I64, 8);
        let count = entry.const_int(Type::I64, 64);
        let arr = entry.append_simple(b, Type::F64.ptr_to(), Opcode::Alloca, vec![count]);
        entry.append_call(b, Type::Void, "sten", vec![arr, arr, n]);
        entry.append_ret(b, None);
        m.functions.push(entry);
        let facts = ParamAliasFacts::of_module(&m);
        let f = m.function("sten").unwrap();
        let (inp, out) = (get(f, "in"), get(f, "out"));
        assert_eq!(
            classify_alias(f, Some(&facts), inp, out),
            AliasClass::MustAlias
        );
        // Without facts the restrict model assumes distinctness...
        assert_eq!(
            classify_alias(f, None, inp, out),
            AliasClass::NoAliasAssumed
        );
        // ...and with them the region is no longer parallel-safe.
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(f, &an, &map, &blocks, get(f, "i"), Some(&facts));
        assert_eq!(cert.safety, ParallelSafety::Serial, "{}", cert.reason);
    }

    #[test]
    fn distinct_allocas_at_all_call_sites_prove_the_pair() {
        let f = parse_function_text(STENCIL).unwrap();
        let mut m = Module::new("ok");
        m.functions.push(f);
        let mut entry = Function::new("entry", &[], Type::Void);
        let b = entry.add_block("entry");
        let n = entry.const_int(Type::I64, 8);
        let count = entry.const_int(Type::I64, 64);
        let a1 = entry.append_simple(b, Type::F64.ptr_to(), Opcode::Alloca, vec![count]);
        let a2 = entry.append_simple(b, Type::F64.ptr_to(), Opcode::Alloca, vec![count]);
        entry.append_call(b, Type::Void, "sten", vec![a1, a2, n]);
        entry.append_ret(b, None);
        m.functions.push(entry);
        let facts = ParamAliasFacts::of_module(&m);
        let f = m.function("sten").unwrap();
        assert_eq!(
            classify_alias(f, Some(&facts), get(f, "in"), get(f, "out")),
            AliasClass::NoAliasProven
        );
    }

    #[test]
    fn non_affine_subscript_is_serial() {
        let (f, an) = prep(
            r#"
define void @sq(double* %a, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %ii = mul i64 %i, %i
  %p = getelementptr double, double* %a, i64 %ii
  store double 1.0, double* %p
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(cert.safety, ParallelSafety::Serial, "{}", cert.reason);
    }

    #[test]
    fn row_major_store_is_disjoint_across_outer_iterations() {
        let (f, an) = prep(
            r#"
define void @mm(double* %mo, i64 %dim) {
entry:
  br label %oh
oh:
  %i = phi i64 [ 0, %entry ], [ %i.next, %ol ]
  %oc = icmp slt i64 %i, %dim
  br i1 %oc, label %ih0, label %done
ih0:
  br label %ih
ih:
  %j = phi i64 [ 0, %ih0 ], [ %j.next, %il ]
  %ic = icmp slt i64 %j, %dim
  br i1 %ic, label %il, label %ol
il:
  %row = mul i64 %i, %dim
  %idx = add i64 %row, %j
  %p = getelementptr double, double* %mo, i64 %idx
  %old = load double, double* %p
  %new = fadd double %old, 1.0
  store double %new, double* %p
  %j.next = add i64 %j, 1
  br label %ih
ol:
  %i.next = add i64 %i, 1
  br label %oh
done:
  ret void
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let idx = map.address_of(&f, get(&f, "p")).unwrap().index;
        let outer = map.iv(get(&f, "i")).unwrap().loop_idx;
        assert!(disjoint_across(&f, &an, &map, outer, &idx, &idx));
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(
            cert.safety,
            ParallelSafety::IndependentIterations,
            "{}",
            cert.reason
        );
    }

    #[test]
    fn column_major_store_is_disjoint_across_outer_iterations() {
        // The Parboil sgemm shape: `mo[i + j*dim]` with outer `i`. The
        // tested IV carries the *unit* stride and the inner IV the
        // symbolic one, so disjointness needs the outer guard range
        // `i ∈ [0, dim)` — a collision would require `dim | Δi`.
        let (f, an) = prep(
            r#"
define void @mmc(double* %mo, i64 %dim) {
entry:
  br label %oh
oh:
  %i = phi i64 [ 0, %entry ], [ %i.next, %ol ]
  %oc = icmp slt i64 %i, %dim
  br i1 %oc, label %ih0, label %done
ih0:
  br label %ih
ih:
  %j = phi i64 [ 0, %ih0 ], [ %j.next, %il ]
  %ic = icmp slt i64 %j, %dim
  br i1 %ic, label %il, label %ol
il:
  %col = mul i64 %j, %dim
  %idx = add i64 %i, %col
  %p = getelementptr double, double* %mo, i64 %idx
  %old = load double, double* %p
  %new = fadd double %old, 1.0
  store double %new, double* %p
  %j.next = add i64 %j, 1
  br label %ih
ol:
  %i.next = add i64 %i, 1
  br label %oh
done:
  ret void
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let idx = map.address_of(&f, get(&f, "p")).unwrap().index;
        let outer = map.iv(get(&f, "i")).unwrap().loop_idx;
        assert!(disjoint_across(&f, &an, &map, outer, &idx, &idx));
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(
            cert.safety,
            ParallelSafety::IndependentIterations,
            "{}",
            cert.reason
        );
    }

    #[test]
    fn column_major_store_with_offset_base_stays_conservative() {
        // `mo[i + j*dim + 1]` store vs `mo[i + j*dim]` load: the konst
        // difference is non-zero, so the divisibility argument does not
        // apply and the dual case must refuse.
        let (f, an) = prep(
            r#"
define void @mmo(double* %mo, i64 %dim) {
entry:
  br label %oh
oh:
  %i = phi i64 [ 0, %entry ], [ %i.next, %ol ]
  %oc = icmp slt i64 %i, %dim
  br i1 %oc, label %ih0, label %done
ih0:
  br label %ih
ih:
  %j = phi i64 [ 0, %ih0 ], [ %j.next, %il ]
  %ic = icmp slt i64 %j, %dim
  br i1 %ic, label %il, label %ol
il:
  %col = mul i64 %j, %dim
  %idx = add i64 %i, %col
  %idx1 = add i64 %idx, 1
  %p = getelementptr double, double* %mo, i64 %idx
  %v = load double, double* %p
  %q = getelementptr double, double* %mo, i64 %idx1
  store double %v, double* %q
  %j.next = add i64 %j, 1
  br label %ih
ol:
  %i.next = add i64 %i, 1
  br label %oh
done:
  ret void
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let st = map.address_of(&f, get(&f, "q")).unwrap().index;
        let ld = map.address_of(&f, get(&f, "p")).unwrap().index;
        let outer = map.iv(get(&f, "i")).unwrap().loop_idx;
        // `i1 + 1 = i2 + (j2-j1)·dim` has solutions (e.g. Δj=0, Δi=-1),
        // so the pair must stay "may overlap".
        assert!(!disjoint_across(&f, &an, &map, outer, &st, &ld));
    }

    #[test]
    fn triangular_transpose_overlap_is_serial() {
        let (f, an) = prep(
            r#"
define void @tri(double* %mo, i64 %dim) {
entry:
  br label %oh
oh:
  %i = phi i64 [ 0, %entry ], [ %i.next, %ol ]
  %oc = icmp slt i64 %i, %dim
  br i1 %oc, label %ih0, label %done
ih0:
  br label %ih
ih:
  %j = phi i64 [ 0, %ih0 ], [ %j.next, %il ]
  %ic = icmp slt i64 %j, %i
  br i1 %ic, label %il, label %ol
il:
  %row = mul i64 %i, %dim
  %idx = add i64 %row, %j
  %trow = mul i64 %j, %dim
  %tidx = add i64 %trow, %i
  %tp = getelementptr double, double* %mo, i64 %tidx
  %tv = load double, double* %tp
  %p = getelementptr double, double* %mo, i64 %idx
  store double %tv, double* %p
  %j.next = add i64 %j, 1
  br label %ih
ol:
  %i.next = add i64 %i, 1
  br label %oh
done:
  ret void
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(cert.safety, ParallelSafety::Serial, "{}", cert.reason);
    }

    #[test]
    fn carried_accumulator_is_reduction_only() {
        let (f, an) = prep(
            r#"
define double @sum(double* %x, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %acc = phi double [ 0.0, %entry ], [ %acc.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x2
b:
  %p = getelementptr double, double* %x, i64 %i
  %v = load double, double* %p
  %acc.next = fadd double %acc, %v
  %i.next = add i64 %i, 1
  br label %h
x2:
  ret double %acc
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(
            cert.safety,
            ParallelSafety::ReductionOnly,
            "{}",
            cert.reason
        );
    }

    #[test]
    fn histogram_rmw_is_reduction_only() {
        let (f, an) = prep(
            r#"
define void @hist(i64* %bins, i64* %data, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %dp = getelementptr i64, i64* %data, i64 %i
  %d = load i64, i64* %dp
  %bp = getelementptr i64, i64* %bins, i64 %d
  %old = load i64, i64* %bp
  %new = add i64 %old, 1
  store i64 %new, i64* %bp
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}
"#,
        );
        let map = AffineMap::new(&f, &an);
        let blocks: Vec<BlockId> = f.block_ids().collect();
        let cert = classify_region(&f, &an, &map, &blocks, get(&f, "i"), None);
        assert_eq!(
            cert.safety,
            ParallelSafety::ReductionOnly,
            "{}",
            cert.reason
        );
    }

    #[test]
    fn parallel_safety_wire_names_round_trip() {
        for p in [
            ParallelSafety::IndependentIterations,
            ParallelSafety::ReductionOnly,
            ParallelSafety::Serial,
        ] {
            assert_eq!(ParallelSafety::parse(p.as_str()), Some(p));
        }
        assert_eq!(ParallelSafety::parse("vectorized"), None);
    }
}
