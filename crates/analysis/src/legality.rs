//! Static replacement-legality checking (§6.3), built on the
//! restrict-parameter aliasing model: every memory object is named by
//! its base pointer (a function argument or an `alloca`), and distinct
//! base pointers do not alias. Before a replacement commits, the region
//! about to be excised must be *pure outside its reported reads and
//! writes* — every store lands in a reported output object, every live
//! load comes from a reported input (or output, for read-modify-write
//! idioms), and every call is a pure math intrinsic.

use crate::depend::{classify_alias, disjoint_across, AliasClass, ParamAliasFacts};
use ssair::analysis::{AffineMap, Analyses};
use ssair::{BlockId, Function, Opcode, ValueId, ValueKind};
use std::collections::BTreeSet;

/// What kind of memory object a base pointer names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryBase {
    /// The `index`-th formal parameter — a caller-owned object.
    Param(usize),
    /// A function-local `alloca` — storage no parameter can alias.
    Alloca,
    /// Anything else (a loaded pointer, a call result, a constant): not
    /// a named object, so the restrict model cannot speak about it.
    Unknown,
}

/// Classifies the object a (rooted) base pointer names.
#[must_use]
pub fn classify_base(f: &Function, v: ValueId) -> MemoryBase {
    match &f.value(v).kind {
        ValueKind::Argument { index } => MemoryBase::Param(*index),
        ValueKind::Instr(i) if i.opcode == Opcode::Alloca => MemoryBase::Alloca,
        _ => MemoryBase::Unknown,
    }
}

/// Why a region failed the static legality check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityError {
    /// A call to something outside the pure-intrinsic whitelist.
    ImpureCall(String),
    /// A store whose address is not rooted at a reported write object.
    UnreportedWrite(String),
    /// A live load whose address is not rooted at a reported object.
    UnreportedRead(String),
    /// A reported base pointer is not a named memory object (argument or
    /// `alloca`), so the restrict model cannot speak about it.
    UnnamedObject(String),
}

impl std::fmt::Display for LegalityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalityError::ImpureCall(m) => write!(f, "impure call {m} in region"),
            LegalityError::UnreportedWrite(m) => write!(f, "store {m} outside reported writes"),
            LegalityError::UnreportedRead(m) => write!(f, "load {m} outside reported reads"),
            LegalityError::UnnamedObject(m) => {
                write!(f, "reported base pointer {m} is not a named memory object")
            }
        }
    }
}

/// The memory footprint of a block region, at base-object granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSummary {
    /// Address roots of every load in the region.
    pub read_roots: BTreeSet<ValueId>,
    /// Address roots of every store in the region.
    pub write_roots: BTreeSet<ValueId>,
    /// Call instructions targeting non-whitelisted callees.
    pub impure_calls: Vec<ValueId>,
}

/// Follows `gep` chains to the underlying object pointer.
#[must_use]
pub fn address_root(f: &Function, mut v: ValueId) -> ValueId {
    loop {
        match f.instr(v) {
            Some(i) if i.opcode == Opcode::Gep => v = i.operands[0],
            _ => return v,
        }
    }
}

/// Summarizes the memory behaviour of `blocks`.
#[must_use]
pub fn region_memory_summary(f: &Function, blocks: &[BlockId]) -> RegionSummary {
    let mut s = RegionSummary {
        read_roots: BTreeSet::new(),
        write_roots: BTreeSet::new(),
        impure_calls: Vec::new(),
    };
    for &b in blocks {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            match i.opcode {
                Opcode::Load => {
                    s.read_roots.insert(address_root(f, i.operands[0]));
                }
                Opcode::Store => {
                    s.write_roots.insert(address_root(f, i.operands[1]));
                }
                Opcode::Call => {
                    let pure = i
                        .callee
                        .as_deref()
                        .is_some_and(|c| solver::PURE_CALLS.contains(&c));
                    if !pure {
                        s.impure_calls.push(v);
                    }
                }
                _ => {}
            }
        }
    }
    s
}

/// Verifies that the region is pure outside its reported objects:
///
/// * no impure calls;
/// * every reported base pointer is a named object (argument/`alloca`),
///   so the restrict model applies;
/// * every store is rooted at a reported write object;
/// * every *live* load (its value has users) is rooted at a reported
///   read or write object. Dead loads are tolerated: excising one
///   cannot change behaviour.
///
/// `reads` and `writes` are the base pointers the detected instance
/// reports (already rooted or not — roots are taken here).
pub fn check_region_purity(
    f: &Function,
    blocks: &[BlockId],
    reads: &[ValueId],
    writes: &[ValueId],
) -> Result<(), LegalityError> {
    let named = |v: ValueId| classify_base(f, v) != MemoryBase::Unknown;
    let read_roots: BTreeSet<ValueId> = reads.iter().map(|&v| address_root(f, v)).collect();
    let write_roots: BTreeSet<ValueId> = writes.iter().map(|&v| address_root(f, v)).collect();
    for &r in read_roots.iter().chain(write_roots.iter()) {
        if !named(r) {
            return Err(LegalityError::UnnamedObject(f.display_name(r)));
        }
    }
    let has_users = {
        let defuse = ssair::analysis::DefUse::new(f);
        move |v: ValueId| !defuse.users(v).is_empty()
    };
    for &b in blocks {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            match i.opcode {
                Opcode::Load => {
                    let root = address_root(f, i.operands[0]);
                    if !read_roots.contains(&root) && !write_roots.contains(&root) && has_users(v) {
                        return Err(LegalityError::UnreportedRead(f.display_name(v)));
                    }
                }
                Opcode::Store => {
                    let root = address_root(f, i.operands[1]);
                    if !write_roots.contains(&root) {
                        return Err(LegalityError::UnreportedWrite(f.display_name(v)));
                    }
                }
                Opcode::Call => {
                    let pure = i
                        .callee
                        .as_deref()
                        .is_some_and(|c| solver::PURE_CALLS.contains(&c));
                    if !pure {
                        return Err(LegalityError::ImpureCall(
                            i.callee.clone().unwrap_or_default(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// The strength of a legality verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerdictKind {
    /// Every base-pointer pair the replacement relies on is proven
    /// disjoint (or provably per-iteration disjoint on a shared base).
    Proven,
    /// Sound only under the restrict-parameter assumption for at least
    /// one pair.
    AssumedRestrict,
    /// The region must not be replaced: a write overlaps memory it
    /// cannot be proven (or assumed) disjoint from, or the region is
    /// impure outside its reported objects.
    Rejected,
}

impl VerdictKind {
    /// The stable wire name used in BENCH artifacts.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictKind::Proven => "proven",
            VerdictKind::AssumedRestrict => "assumed_restrict",
            VerdictKind::Rejected => "rejected",
        }
    }
}

/// An evidence-carrying replacement-legality verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalityVerdict {
    /// The overall strength.
    pub kind: VerdictKind,
    /// One line per fact: proofs, assumptions, or the rejection reason.
    pub evidence: Vec<String>,
}

impl LegalityVerdict {
    fn rejected(reason: String) -> LegalityVerdict {
        LegalityVerdict {
            kind: VerdictKind::Rejected,
            evidence: vec![reason],
        }
    }
}

/// Judges the legality of replacing `blocks` given the instance's
/// reported `reads` and `writes` base pointers: purity first (as
/// [`check_region_purity`]), then every write-object pair is classified —
/// distinct objects must be proven or assumed disjoint, and a base both
/// written and read must have its store/load pairs proven per-iteration
/// disjoint across the loop of `outer_iv` (or be a same-address
/// read-modify-write, the accumulating-idiom shape).
///
/// `facts` (module-wide call-site alias facts) upgrades parameter pairs
/// from assumption to proof, or rejects pairs a call site shows aliased.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn check_region_legality(
    f: &Function,
    an: &Analyses,
    map: &AffineMap,
    blocks: &[BlockId],
    reads: &[ValueId],
    writes: &[ValueId],
    outer_iv: Option<ValueId>,
    facts: Option<&ParamAliasFacts>,
) -> LegalityVerdict {
    if let Err(e) = check_region_purity(f, blocks, reads, writes) {
        return LegalityVerdict::rejected(e.to_string());
    }
    let read_roots: BTreeSet<ValueId> = reads.iter().map(|&v| address_root(f, v)).collect();
    let write_roots: BTreeSet<ValueId> = writes.iter().map(|&v| address_root(f, v)).collect();
    let mut evidence = Vec::new();
    let mut kind = VerdictKind::Proven;
    if write_roots.is_empty() {
        return LegalityVerdict {
            kind,
            evidence: vec!["store-free region: no write can overlap anything".into()],
        };
    }
    let name = |v: ValueId| f.display_name(v);
    // Distinct-object pairs: every written base against every other base.
    for &w in &write_roots {
        for &o in read_roots.iter().chain(write_roots.iter()) {
            if o == w {
                continue;
            }
            match classify_alias(f, facts, w, o) {
                AliasClass::NoAliasProven => {
                    evidence.push(format!("{} and {} are provably distinct", name(w), name(o)));
                }
                AliasClass::NoAliasAssumed => {
                    kind = kind.max(VerdictKind::AssumedRestrict);
                    evidence.push(format!(
                        "assumed restrict: {} vs {} (no call-site proof)",
                        name(w),
                        name(o)
                    ));
                }
                AliasClass::MustAlias => {
                    return LegalityVerdict::rejected(format!(
                        "{} and {} name the same object at a call site",
                        name(w),
                        name(o)
                    ));
                }
                AliasClass::MayAlias => {
                    return LegalityVerdict::rejected(format!(
                        "{} and {} may overlap and no proof applies",
                        name(w),
                        name(o)
                    ));
                }
            }
        }
        // Same-base read/write overlap: every store to `w` against every
        // live load from `w`.
        if !read_roots.contains(&w) {
            continue;
        }
        let mut stores: Vec<ValueId> = Vec::new();
        let mut loads: Vec<ValueId> = Vec::new();
        for &b in blocks {
            for &v in &f.block(b).instrs {
                let Some(i) = f.instr(v) else { continue };
                match i.opcode {
                    Opcode::Load if address_root(f, i.operands[0]) == w => loads.push(v),
                    Opcode::Store if address_root(f, i.operands[1]) == w => stores.push(v),
                    _ => {}
                }
            }
        }
        let loop_idx = outer_iv.and_then(|iv| map.iv(iv)).map(|i| i.loop_idx);
        for &st in &stores {
            let sp = f.instr(st).expect("store instr").operands[1];
            for &ld in &loads {
                let lp = f.instr(ld).expect("load instr").operands[0];
                if lp == sp {
                    // Same-address read-modify-write: the accumulating
                    // idiom shape, legal by the idiom's own semantics.
                    evidence.push(format!(
                        "{} and {} form a same-address read-modify-write",
                        name(st),
                        name(ld)
                    ));
                    continue;
                }
                let proven = loop_idx.is_some_and(|li| {
                    match (map.address_of(f, sp), map.address_of(f, lp)) {
                        (Some(a), Some(b)) => disjoint_across(f, an, map, li, &a.index, &b.index),
                        _ => false,
                    }
                });
                if proven {
                    evidence.push(format!(
                        "{} and {} on {} are per-iteration disjoint",
                        name(st),
                        name(ld),
                        name(w)
                    ));
                } else {
                    return LegalityVerdict::rejected(format!(
                        "write region of {} overlaps its read region ({} vs {})",
                        name(w),
                        name(st),
                        name(ld)
                    ));
                }
            }
        }
    }
    LegalityVerdict { kind, evidence }
}
