//! Static replacement-legality checking (§6.3), built on the
//! restrict-parameter aliasing model: every memory object is named by
//! its base pointer (a function argument or an `alloca`), and distinct
//! base pointers do not alias. Before a replacement commits, the region
//! about to be excised must be *pure outside its reported reads and
//! writes* — every store lands in a reported output object, every live
//! load comes from a reported input (or output, for read-modify-write
//! idioms), and every call is a pure math intrinsic.

use ssair::{BlockId, Function, Opcode, ValueId};
use std::collections::BTreeSet;

/// Why a region failed the static legality check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityError {
    /// A call to something outside the pure-intrinsic whitelist.
    ImpureCall(String),
    /// A store whose address is not rooted at a reported write object.
    UnreportedWrite(String),
    /// A live load whose address is not rooted at a reported object.
    UnreportedRead(String),
    /// A reported base pointer is not a named memory object (argument or
    /// `alloca`), so the restrict model cannot speak about it.
    UnnamedObject(String),
}

impl std::fmt::Display for LegalityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalityError::ImpureCall(m) => write!(f, "impure call {m} in region"),
            LegalityError::UnreportedWrite(m) => write!(f, "store {m} outside reported writes"),
            LegalityError::UnreportedRead(m) => write!(f, "load {m} outside reported reads"),
            LegalityError::UnnamedObject(m) => {
                write!(f, "reported base pointer {m} is not a named memory object")
            }
        }
    }
}

/// The memory footprint of a block region, at base-object granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSummary {
    /// Address roots of every load in the region.
    pub read_roots: BTreeSet<ValueId>,
    /// Address roots of every store in the region.
    pub write_roots: BTreeSet<ValueId>,
    /// Call instructions targeting non-whitelisted callees.
    pub impure_calls: Vec<ValueId>,
}

/// Follows `gep` chains to the underlying object pointer.
#[must_use]
pub fn address_root(f: &Function, mut v: ValueId) -> ValueId {
    loop {
        match f.instr(v) {
            Some(i) if i.opcode == Opcode::Gep => v = i.operands[0],
            _ => return v,
        }
    }
}

/// Summarizes the memory behaviour of `blocks`.
#[must_use]
pub fn region_memory_summary(f: &Function, blocks: &[BlockId]) -> RegionSummary {
    let mut s = RegionSummary {
        read_roots: BTreeSet::new(),
        write_roots: BTreeSet::new(),
        impure_calls: Vec::new(),
    };
    for &b in blocks {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            match i.opcode {
                Opcode::Load => {
                    s.read_roots.insert(address_root(f, i.operands[0]));
                }
                Opcode::Store => {
                    s.write_roots.insert(address_root(f, i.operands[1]));
                }
                Opcode::Call => {
                    let pure = i
                        .callee
                        .as_deref()
                        .is_some_and(|c| solver::PURE_CALLS.contains(&c));
                    if !pure {
                        s.impure_calls.push(v);
                    }
                }
                _ => {}
            }
        }
    }
    s
}

/// Verifies that the region is pure outside its reported objects:
///
/// * no impure calls;
/// * every reported base pointer is a named object (argument/`alloca`),
///   so the restrict model applies;
/// * every store is rooted at a reported write object;
/// * every *live* load (its value has users) is rooted at a reported
///   read or write object. Dead loads are tolerated: excising one
///   cannot change behaviour.
///
/// `reads` and `writes` are the base pointers the detected instance
/// reports (already rooted or not — roots are taken here).
pub fn check_region_purity(
    f: &Function,
    blocks: &[BlockId],
    reads: &[ValueId],
    writes: &[ValueId],
) -> Result<(), LegalityError> {
    let named = |v: ValueId| !f.is_instruction(v) || f.opcode(v) == Some(Opcode::Alloca);
    let read_roots: BTreeSet<ValueId> = reads.iter().map(|&v| address_root(f, v)).collect();
    let write_roots: BTreeSet<ValueId> = writes.iter().map(|&v| address_root(f, v)).collect();
    for &r in read_roots.iter().chain(write_roots.iter()) {
        if !named(r) {
            return Err(LegalityError::UnnamedObject(f.display_name(r)));
        }
    }
    let has_users = {
        let defuse = ssair::analysis::DefUse::new(f);
        move |v: ValueId| !defuse.users(v).is_empty()
    };
    for &b in blocks {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            match i.opcode {
                Opcode::Load => {
                    let root = address_root(f, i.operands[0]);
                    if !read_roots.contains(&root) && !write_roots.contains(&root) && has_users(v) {
                        return Err(LegalityError::UnreportedRead(f.display_name(v)));
                    }
                }
                Opcode::Store => {
                    let root = address_root(f, i.operands[1]);
                    if !write_roots.contains(&root) {
                        return Err(LegalityError::UnreportedWrite(f.display_name(v)));
                    }
                }
                Opcode::Call => {
                    let pure = i
                        .callee
                        .as_deref()
                        .is_some_and(|c| solver::PURE_CALLS.contains(&c));
                    if !pure {
                        return Err(LegalityError::ImpureCall(
                            i.callee.clone().unwrap_or_default(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}
