//! Idiom requirement signatures: necessary conditions derived once from
//! a compiled constraint tree. A condition is *necessary* when it holds
//! in every satisfying assignment — derived bottom-up with conjunctions
//! contributing the union of their children's facts and disjunctions the
//! intersection, while `collect` sub-searches contribute nothing (a
//! collect may legitimately match zero instances).
//!
//! Soundness is what matters here: a requirement that is not actually
//! necessary would make the fingerprint prepass drop real matches. The
//! differential tests pin the prepass byte-identical to the unpruned
//! path over the whole suite and the fuzz generator's programs.

use crate::FunctionFingerprint;
use idl::ctree::{Atom, AtomKind, CTree, OpcodeClass};
use idl::{CompiledConstraint, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Necessary conditions of one compiled idiom constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdiomRequirements {
    /// Opcode classes some matched value must carry (presence level).
    pub required_opcodes: BTreeSet<OpcodeClass>,
    /// Minimum loop-nest depth, from the constraint's leading loop
    /// skeleton (`ForNest(N)` → N, `For` → 1).
    pub min_loop_depth: u32,
    /// Minimum number of *distinct* phi instructions: the largest set of
    /// variables that must all be phis and pairwise bind different
    /// values (distinctness from `is not the same as` and strict
    /// dominance facts).
    pub min_phis: u32,
    /// A matched `gep` must take its index from a load (or a sext of a
    /// load) — the indirect-access shape of SPMV's column reads.
    pub needs_indirect_gep_index: bool,
    /// A matched `gep` must serve as both a store address and a load
    /// address — the read-modify-write shape of histograms.
    pub needs_rmw_gep: bool,
    /// A matched `store` must write through a `gep` indexed by a `phi`
    /// (or a `sext` of one) — the `out[i] = …` shape of 1-D stencils,
    /// where the inherited `For` block pins the iterator to a phi.
    pub needs_phi_indexed_store: bool,
}

impl IdiomRequirements {
    /// Derives the requirement signature of `c`.
    #[must_use]
    pub fn of(c: &CompiledConstraint) -> IdiomRequirements {
        let min_loop_depth = match c.skeletons.first() {
            Some(s) if s.block == "ForNest" => s
                .params
                .iter()
                .find(|(k, _)| k == "N")
                .map_or(1, |&(_, n)| u32::try_from(n).unwrap_or(1)),
            Some(_) => 1,
            None => 0,
        };
        let root_facts = facts(&c.tree);
        IdiomRequirements {
            required_opcodes: presence(&c.tree),
            min_loop_depth,
            min_phis: min_distinct_phis(&root_facts),
            needs_indirect_gep_index: implied(&c.tree, &BTreeSet::new(), &indirect_gep_index),
            needs_rmw_gep: implied(&c.tree, &BTreeSet::new(), &rmw_gep),
            needs_phi_indexed_store: implied(&c.tree, &BTreeSet::new(), &phi_indexed_store),
        }
    }

    /// The subsumption check: `true` when `fp` could possibly contain a
    /// match — i.e. every necessary condition is present. `false` proves
    /// the idiom cannot match, with zero solver steps.
    #[must_use]
    pub fn admitted_by(&self, fp: &FunctionFingerprint) -> bool {
        self.required_opcodes.is_subset(&fp.opcodes)
            && fp.max_loop_depth >= self.min_loop_depth
            && fp.phis >= self.min_phis
            && (!self.needs_indirect_gep_index || fp.has_indirect_gep_index)
            && (!self.needs_rmw_gep || fp.has_rmw_gep)
            && (!self.needs_phi_indexed_store || fp.has_phi_indexed_store)
    }
}

/// One necessary fact about the variables of a satisfying assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Fact {
    /// `v` is bound to an instruction of this opcode class.
    Op(VarId, OpcodeClass),
    /// `child` is operand `pos` of `parent`.
    Arg(usize, VarId, VarId),
    /// `a` and `b` bind the same value (ordered pair).
    Eq(VarId, VarId),
    /// `a` and `b` bind different values (ordered pair).
    Distinct(VarId, VarId),
    /// `a` strictly (post)dominates `b` — implies distinct values.
    StrictDom(VarId, VarId),
}

fn atom_facts(a: &Atom, out: &mut BTreeSet<Fact>) {
    match &a.kind {
        AtomKind::OpcodeIs(class) => {
            out.insert(Fact::Op(a.vars[0], *class));
        }
        AtomKind::ArgumentOf { pos } => {
            out.insert(Fact::Arg(*pos, a.vars[0], a.vars[1]));
        }
        AtomKind::Same { negated } => {
            let (x, y) = (a.vars[0].min(a.vars[1]), a.vars[0].max(a.vars[1]));
            out.insert(if *negated {
                Fact::Distinct(x, y)
            } else {
                Fact::Eq(x, y)
            });
        }
        AtomKind::Dominates {
            strict: true,
            negated: false,
            ..
        } => {
            out.insert(Fact::StrictDom(a.vars[0], a.vars[1]));
        }
        _ => {}
    }
}

/// Facts guaranteed by every satisfying assignment of `tree`.
fn facts(tree: &CTree) -> BTreeSet<Fact> {
    match tree {
        CTree::And(cs) => {
            let mut out = BTreeSet::new();
            for c in cs {
                out.extend(facts(c));
            }
            out
        }
        CTree::Or(cs) => {
            let mut sets = cs.iter().map(facts);
            let Some(mut out) = sets.next() else {
                return BTreeSet::new();
            };
            for s in sets {
                out = out.intersection(&s).copied().collect();
            }
            out
        }
        CTree::Atom(a) => {
            let mut out = BTreeSet::new();
            atom_facts(a, &mut out);
            out
        }
        CTree::Collect { .. } => BTreeSet::new(),
    }
}

/// Opcode classes that must be present in any match of `tree`.
fn presence(tree: &CTree) -> BTreeSet<OpcodeClass> {
    match tree {
        CTree::And(cs) => {
            let mut out = BTreeSet::new();
            for c in cs {
                out.extend(presence(c));
            }
            out
        }
        CTree::Or(cs) => {
            let mut sets = cs.iter().map(presence);
            let Some(mut out) = sets.next() else {
                return BTreeSet::new();
            };
            for s in sets {
                out = out.intersection(&s).copied().collect();
            }
            out
        }
        CTree::Atom(a) => match &a.kind {
            AtomKind::OpcodeIs(class) => [*class].into_iter().collect(),
            _ => BTreeSet::new(),
        },
        CTree::Collect { .. } => BTreeSet::new(),
    }
}

/// `true` when `pred` holds under every satisfying assignment of `tree`
/// given the already-established `ctx` facts: the predicate is checked
/// against the node's guaranteed facts, descending through conjunction
/// children and requiring *all* branches of a disjunction to imply it.
fn implied(tree: &CTree, ctx: &BTreeSet<Fact>, pred: &dyn Fn(&BTreeSet<Fact>) -> bool) -> bool {
    let mut here = ctx.clone();
    here.extend(facts(tree));
    if pred(&here) {
        return true;
    }
    match tree {
        CTree::And(cs) => cs.iter().any(|c| implied(c, &here, pred)),
        CTree::Or(cs) => !cs.is_empty() && cs.iter().all(|c| implied(c, &here, pred)),
        _ => false,
    }
}

/// Union-find over the `Eq` facts of a set, so value-equal variables are
/// interchangeable in the predicates.
struct Classes {
    rep: BTreeMap<VarId, VarId>,
}

impl Classes {
    fn new(set: &BTreeSet<Fact>) -> Classes {
        let mut c = Classes {
            rep: BTreeMap::new(),
        };
        for f in set {
            if let Fact::Eq(a, b) = *f {
                let (ra, rb) = (c.find(a), c.find(b));
                if ra != rb {
                    c.rep.insert(ra.max(rb), ra.min(rb));
                }
            }
        }
        c
    }

    fn find(&self, mut v: VarId) -> VarId {
        while let Some(&p) = self.rep.get(&v) {
            if p == v {
                break;
            }
            v = p;
        }
        v
    }
}

fn has_op(set: &BTreeSet<Fact>, uf: &Classes, v: VarId, class: OpcodeClass) -> bool {
    let rv = uf.find(v);
    set.iter()
        .any(|f| matches!(*f, Fact::Op(w, c) if c == class && uf.find(w) == rv))
}

/// Some gep's index operand is a load or a sext of a load.
fn indirect_gep_index(set: &BTreeSet<Fact>) -> bool {
    let uf = Classes::new(set);
    set.iter().any(|f| {
        let Fact::Arg(1, w, g) = *f else { return false };
        if !has_op(set, &uf, g, OpcodeClass::Gep) {
            return false;
        }
        if has_op(set, &uf, w, OpcodeClass::Load) {
            return true;
        }
        has_op(set, &uf, w, OpcodeClass::SExt)
            && set.iter().any(|f2| {
                matches!(*f2, Fact::Arg(0, u, w2)
                    if uf.find(w2) == uf.find(w) && has_op(set, &uf, u, OpcodeClass::Load))
            })
    })
}

/// Some store's address is a gep whose index operand is a phi or a sext
/// of a phi (the iterator's phi-ness comes from the inherited `For`
/// atoms; the `iterator`-vs-`sext(iterator)` split is an `or` the
/// `implied` driver pushes through branch by branch).
fn phi_indexed_store(set: &BTreeSet<Fact>) -> bool {
    let uf = Classes::new(set);
    set.iter().any(|f| {
        let Fact::Arg(1, g, s) = *f else { return false };
        if !has_op(set, &uf, g, OpcodeClass::Gep) || !has_op(set, &uf, s, OpcodeClass::Store) {
            return false;
        }
        set.iter().any(|f2| {
            let Fact::Arg(1, i, g2) = *f2 else {
                return false;
            };
            if uf.find(g2) != uf.find(g) {
                return false;
            }
            if has_op(set, &uf, i, OpcodeClass::Phi) {
                return true;
            }
            has_op(set, &uf, i, OpcodeClass::SExt)
                && set.iter().any(|f3| {
                    matches!(*f3, Fact::Arg(0, p, i2)
                        if uf.find(i2) == uf.find(i) && has_op(set, &uf, p, OpcodeClass::Phi))
                })
        })
    })
}

/// Some gep is both a store's address (operand 1) and a load's address
/// (operand 0).
fn rmw_gep(set: &BTreeSet<Fact>) -> bool {
    let uf = Classes::new(set);
    set.iter().any(|f| {
        let Fact::Arg(1, g, s) = *f else { return false };
        has_op(set, &uf, g, OpcodeClass::Gep)
            && has_op(set, &uf, s, OpcodeClass::Store)
            && set.iter().any(|f2| {
                matches!(*f2, Fact::Arg(0, g2, l)
                    if uf.find(g2) == uf.find(g) && has_op(set, &uf, l, OpcodeClass::Load))
            })
    })
}

/// The largest set of variables that must all be phi instructions and
/// pairwise bind distinct values: a max clique over the distinctness
/// graph (strict dominance is transitively closed first). The graphs
/// here have a handful of nodes, so exact search is fine.
fn min_distinct_phis(set: &BTreeSet<Fact>) -> u32 {
    let uf = Classes::new(set);
    let mut phis: Vec<VarId> = Vec::new();
    for f in set {
        if let Fact::Op(v, OpcodeClass::Phi) = *f {
            let r = uf.find(v);
            if !phis.contains(&r) {
                phis.push(r);
            }
        }
    }
    // Transitive closure of strict dominance over representatives.
    let mut dom: BTreeSet<(VarId, VarId)> = set
        .iter()
        .filter_map(|f| match *f {
            Fact::StrictDom(a, b) => Some((uf.find(a), uf.find(b))),
            _ => None,
        })
        .collect();
    loop {
        let mut grew = false;
        let pairs: Vec<(VarId, VarId)> = dom.iter().copied().collect();
        for &(a, b) in &pairs {
            for &(c, d) in &pairs {
                if b == c && dom.insert((a, d)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    let distinct = |a: VarId, b: VarId| {
        set.iter().any(|f| {
            matches!(*f, Fact::Distinct(x, y)
                if (uf.find(x), uf.find(y)) == (a.min(b), a.max(b))
                    || (uf.find(x), uf.find(y)) == (a.max(b), a.min(b)))
        }) || dom.contains(&(a, b))
            || dom.contains(&(b, a))
    };
    fn grow(
        phis: &[VarId],
        from: usize,
        clique: &mut Vec<VarId>,
        best: &mut usize,
        distinct: &dyn Fn(VarId, VarId) -> bool,
    ) {
        *best = (*best).max(clique.len());
        for i in from..phis.len() {
            let v = phis[i];
            if clique.iter().all(|&w| distinct(v, w)) {
                clique.push(v);
                grow(phis, i + 1, clique, best, distinct);
                clique.pop();
            }
        }
    }
    let mut best = 0usize;
    grow(&phis, 0, &mut Vec::new(), &mut best, &distinct);
    u32::try_from(best).unwrap_or(u32::MAX)
}
