//! Structural diagnostics over compiled IDL constraints. The linter runs
//! on the *compiled* tree (after macro expansion), so every diagnostic
//! points at a real property of what the solver will search — a dead
//! variable in an inherited block surfaces in every idiom embedding it.

use idl::ctree::{Atom, AtomKind, CTree, TypeClass};
use idl::{CompiledConstraint, VarId};
use std::collections::BTreeMap;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintRule {
    /// A searchable variable disconnected from the constraint's main
    /// variable cluster: no atom path ties it to the rest, so it matches
    /// independently and multiplies solutions without constraining them.
    DeadVariable,
    /// A conjunction that can never be satisfied (conflicting opcode /
    /// type / kind demands on one variable, or an irreflexive relation
    /// applied to a variable and itself).
    UnsatisfiableConjunction,
    /// An `or` branch that is statically unsatisfiable in its context —
    /// the branch can never be the one that matches.
    UnreachableOrBranch,
    /// Two structurally identical branches of one `or`.
    DuplicateOrBranch,
    /// Two library constraints with identical coarse signatures — the
    /// later one can never add detections over the earlier one.
    ShadowedConstraint,
    /// A write base pointer with no `is not the same as` atom against
    /// some read base pointer of the same constraint: the idiom can
    /// match a region whose output array is one of its inputs, leaving
    /// the replacement's soundness to rest entirely on the downstream
    /// legality gate instead of the match itself.
    UnprovenWriteAlias,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// The constraint the diagnostic is about.
    pub constraint: String,
    /// The rule that fired.
    pub rule: LintRule,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {:?}: {}", self.constraint, self.rule, self.message)
    }
}

/// Lints a single compiled constraint.
#[must_use]
pub fn lint_constraint(c: &CompiledConstraint) -> Vec<Lint> {
    let mut out = Vec::new();
    dead_variables(c, &mut out);
    unproven_write_alias(c, &mut out);
    let mut ctx: Vec<&Atom> = Vec::new();
    contexts(c, &c.tree, true, &mut ctx, &mut out);
    out
}

/// Base-pointer distinctness audit. Write bases are identified by the
/// binding convention the transform driver keys on (`write.base_pointer`,
/// `output.base_pointer`, `bins`); every other variable named
/// `*.base_pointer` is a read base. For each write/read pair the
/// constraint must either assert `is not the same as` between them
/// (directly or through chains of positive `is the same as` atoms), or
/// deliberately equate them (a read-modify-write on one array, like the
/// histogram bins) — anything else is a match that admits aliased
/// arrays without saying so.
fn unproven_write_alias(c: &CompiledConstraint, out: &mut Vec<Lint>) {
    let mut atoms = Vec::new();
    deep_atoms(&c.tree, &mut atoms);
    // All ids any atom mentions (collect-instance bindings included —
    // the stencil read bases only exist inside `collect` bodies).
    let ids: std::collections::BTreeSet<VarId> =
        atoms.iter().flat_map(|a| a.vars.iter().copied()).collect();
    let is_write = |n: &str| n == "write.base_pointer" || n == "output.base_pointer" || n == "bins";
    let writes: Vec<VarId> = ids
        .iter()
        .copied()
        .filter(|&v| is_write(c.var_name(v)))
        .collect();
    let reads: Vec<VarId> = ids
        .iter()
        .copied()
        .filter(|&v| {
            let n = c.var_name(v);
            n.ends_with(".base_pointer") && !is_write(n)
        })
        .collect();
    if writes.is_empty() || reads.is_empty() {
        return;
    }
    // Equality classes under the positive `is the same as` atoms.
    let mut parent: BTreeMap<VarId, VarId> = BTreeMap::new();
    fn find(parent: &BTreeMap<VarId, VarId>, mut v: VarId) -> VarId {
        while let Some(&p) = parent.get(&v) {
            if p == v {
                break;
            }
            v = p;
        }
        v
    }
    for a in &atoms {
        if a.kind == (AtomKind::Same { negated: false }) {
            let (ra, rb) = (find(&parent, a.vars[0]), find(&parent, a.vars[1]));
            if ra != rb {
                parent.insert(ra.max(rb), ra.min(rb));
            }
        }
    }
    for &w in &writes {
        for &r in &reads {
            let (cw, cr) = (find(&parent, w), find(&parent, r));
            if cw == cr {
                continue; // deliberate read-modify-write aliasing
            }
            let separated = atoms.iter().any(|a| {
                a.kind == (AtomKind::Same { negated: true }) && {
                    let (x, y) = (find(&parent, a.vars[0]), find(&parent, a.vars[1]));
                    (x == cw && y == cr) || (x == cr && y == cw)
                }
            });
            if !separated {
                out.push(Lint {
                    constraint: c.name.clone(),
                    rule: LintRule::UnprovenWriteAlias,
                    message: format!(
                        "no `is not the same as` atom separates write base {{{}}} \
                         from read base {{{}}}",
                        c.var_name(w),
                        c.var_name(r)
                    ),
                });
            }
        }
    }
}

/// Lints a whole library of compiled constraints, adding the
/// cross-constraint shadowing check.
#[must_use]
pub fn lint_constraints(cs: &[&CompiledConstraint]) -> Vec<Lint> {
    let mut out: Vec<Lint> = cs.iter().flat_map(|c| lint_constraint(c)).collect();
    for (i, a) in cs.iter().enumerate() {
        for b in &cs[i + 1..] {
            let sig = |c: &CompiledConstraint| {
                (
                    crate::IdiomRequirements::of(c),
                    c.variables.len(),
                    c.tree.atom_count(),
                )
            };
            if sig(a) == sig(b) {
                out.push(Lint {
                    constraint: b.name.clone(),
                    rule: LintRule::ShadowedConstraint,
                    message: format!(
                        "signature identical to {:?}: same requirement profile, \
                         variable count and atom count",
                        a.name
                    ),
                });
            }
        }
    }
    out
}

/// Union-find over every symbol, linking all ids mentioned by one atom
/// (search variables and family references alike, `collect` bodies
/// included). A searchable variable outside the first variable's
/// component constrains nothing about the rest of the match.
fn dead_variables(c: &CompiledConstraint, out: &mut Vec<Lint>) {
    let mut parent: BTreeMap<VarId, VarId> = BTreeMap::new();
    fn find(parent: &BTreeMap<VarId, VarId>, mut v: VarId) -> VarId {
        while let Some(&p) = parent.get(&v) {
            if p == v {
                break;
            }
            v = p;
        }
        v
    }
    let mut atoms = Vec::new();
    deep_atoms(&c.tree, &mut atoms);
    for a in &atoms {
        let ids: Vec<VarId> = a.vars.iter().chain(a.families.iter()).copied().collect();
        for w in ids.windows(2) {
            let (ra, rb) = (find(&parent, w[0]), find(&parent, w[1]));
            if ra != rb {
                parent.insert(ra.max(rb), ra.min(rb));
            }
        }
    }
    let Some(&first) = c.variables.first() else {
        return;
    };
    let anchor = find(&parent, first);
    let dead: Vec<&str> = c
        .variables
        .iter()
        .filter(|&&v| find(&parent, v) != anchor)
        .map(|&v| c.var_name(v))
        .collect();
    if !dead.is_empty() {
        out.push(Lint {
            constraint: c.name.clone(),
            rule: LintRule::DeadVariable,
            message: format!(
                "variables disconnected from the {:?} cluster: {}",
                c.var_name(first),
                dead.join(", ")
            ),
        });
    }
}

fn deep_atoms<'t>(tree: &'t CTree, out: &mut Vec<&'t Atom>) {
    match tree {
        CTree::And(cs) | CTree::Or(cs) => {
            for c in cs {
                deep_atoms(c, out);
            }
        }
        CTree::Atom(a) => out.push(a),
        CTree::Collect { instances } => {
            for i in instances {
                deep_atoms(i, out);
            }
        }
    }
}

/// Atoms on the conjunctive spine of `tree` (not crossing `or`/`collect`).
fn conj_atoms<'t>(tree: &'t CTree, out: &mut Vec<&'t Atom>) {
    match tree {
        CTree::And(cs) => {
            for c in cs {
                conj_atoms(c, out);
            }
        }
        CTree::Atom(a) => out.push(a),
        CTree::Or(_) | CTree::Collect { .. } => {}
    }
}

/// Walks every conjunctive context: the root, each `or` branch (with the
/// enclosing context inherited) and the first instance of each `collect`.
/// Conflicts are only reported when at least one participating atom is
/// new to the innermost context, so an inherited conflict is not
/// re-reported once per branch.
fn contexts<'t>(
    c: &CompiledConstraint,
    tree: &'t CTree,
    root: bool,
    inherited: &mut Vec<&'t Atom>,
    out: &mut Vec<Lint>,
) {
    let new_start = inherited.len();
    conj_atoms(tree, inherited);
    if let Some(msg) = conflict(c, inherited, new_start) {
        out.push(Lint {
            constraint: c.name.clone(),
            rule: if root {
                LintRule::UnsatisfiableConjunction
            } else {
                LintRule::UnreachableOrBranch
            },
            message: msg,
        });
    }
    // Descend into or/collect nodes reachable without crossing another
    // context boundary.
    let mut nested = Vec::new();
    nested_contexts(tree, &mut nested);
    for n in nested {
        match n {
            CTree::Or(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if branches[..i].contains(b) {
                        out.push(Lint {
                            constraint: c.name.clone(),
                            rule: LintRule::DuplicateOrBranch,
                            message: format!("or-branch {} duplicates an earlier branch", i + 1),
                        });
                    }
                    contexts(c, b, false, inherited, out);
                }
            }
            CTree::Collect { instances } => {
                if let Some(first) = instances.first() {
                    contexts(c, first, false, inherited, out);
                }
            }
            _ => {}
        }
    }
    inherited.truncate(new_start);
}

/// Direct `or`/`collect` children of the conjunctive spine.
fn nested_contexts<'t>(tree: &'t CTree, out: &mut Vec<&'t CTree>) {
    match tree {
        CTree::And(cs) => {
            for c in cs {
                nested_contexts(c, out);
            }
        }
        CTree::Or(_) | CTree::Collect { .. } => out.push(tree),
        CTree::Atom(_) => {}
    }
}

/// A statically detectable contradiction among `atoms`, where at least
/// one side is at index `new_start` or later.
fn conflict(c: &CompiledConstraint, atoms: &[&Atom], new_start: usize) -> Option<String> {
    let name = |v: VarId| c.var_name(v);
    for (j, b) in atoms.iter().enumerate() {
        // Irreflexive relations on a single variable.
        if j >= new_start {
            match b.kind {
                AtomKind::Same { negated: true } if b.vars[0] == b.vars[1] => {
                    return Some(format!("{{{}}} is not the same as itself", name(b.vars[0])));
                }
                AtomKind::Dominates {
                    strict: true,
                    negated: false,
                    ..
                } if b.vars[0] == b.vars[1] => {
                    return Some(format!("{{{}}} strictly dominates itself", name(b.vars[0])));
                }
                _ => {}
            }
        }
        for (i, a) in atoms.iter().enumerate().take(j) {
            if i < new_start && j < new_start {
                continue;
            }
            if a.vars.first() != b.vars.first() || a.vars.is_empty() {
                continue;
            }
            let v = a.vars[0];
            let pair = (&a.kind, &b.kind);
            let clash = match pair {
                (AtomKind::OpcodeIs(x), AtomKind::OpcodeIs(y)) => x != y,
                (AtomKind::TypeIs { class: x, .. }, AtomKind::TypeIs { class: y, .. }) => {
                    x != y && *x != TypeClass::Pointer && *y != TypeClass::Pointer
                }
                (AtomKind::OpcodeIs(_), AtomKind::IsConstant)
                | (AtomKind::IsConstant, AtomKind::OpcodeIs(_))
                | (AtomKind::OpcodeIs(_), AtomKind::IsArgument)
                | (AtomKind::IsArgument, AtomKind::OpcodeIs(_))
                | (AtomKind::IsConstant, AtomKind::IsInstruction)
                | (AtomKind::IsInstruction, AtomKind::IsConstant)
                | (AtomKind::IsArgument, AtomKind::IsInstruction)
                | (AtomKind::IsInstruction, AtomKind::IsArgument)
                | (AtomKind::IsConstant, AtomKind::IsArgument)
                | (AtomKind::IsArgument, AtomKind::IsConstant) => true,
                _ => false,
            };
            if clash {
                return Some(format!(
                    "conflicting demands on {{{}}}: {:?} vs {:?}",
                    name(v),
                    a.kind,
                    b.kind
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> CompiledConstraint {
        let lib = idl::parse_library(src).expect("test constraint parses");
        idl::compile(&lib, "T").expect("test constraint compiles")
    }

    fn write_alias_lints(src: &str) -> Vec<Lint> {
        lint_constraint(&compile(src))
            .into_iter()
            .filter(|l| l.rule == LintRule::UnprovenWriteAlias)
            .collect()
    }

    const BASE: &str = "Constraint T
( {s} is store instruction and
  {l} is load instruction and
  {l} dominates {s} and
  {output.base_pointer} is first argument of {s} and
  {in.base_pointer} is first argument of {l}EXTRA )
End";

    #[test]
    fn missing_distinctness_atom_is_flagged() {
        let lints = write_alias_lints(&BASE.replace("EXTRA", ""));
        assert_eq!(lints.len(), 1, "{lints:?}");
        assert!(lints[0].message.contains("output.base_pointer"));
        assert!(lints[0].message.contains("in.base_pointer"));
    }

    #[test]
    fn direct_distinctness_atom_silences_the_rule() {
        let src = BASE.replace(
            "EXTRA",
            " and\n  {output.base_pointer} is not the same as {in.base_pointer}",
        );
        assert!(write_alias_lints(&src).is_empty());
    }

    #[test]
    fn distinctness_through_an_equality_chain_counts() {
        // `in.base_pointer = x` and `output ≠ x` separates the classes.
        let src = BASE.replace(
            "EXTRA",
            " and\n  {in.base_pointer} is the same as {x} and\n  \
             {output.base_pointer} is not the same as {x}",
        );
        assert!(write_alias_lints(&src).is_empty());
    }

    #[test]
    fn deliberate_read_modify_write_is_tolerated() {
        // Positively equating the bases (the histogram-bins shape) is a
        // conscious aliasing decision, not an unproven one.
        let src = BASE.replace(
            "EXTRA",
            " and\n  {output.base_pointer} is the same as {in.base_pointer}",
        );
        assert!(write_alias_lints(&src).is_empty());
    }
}
