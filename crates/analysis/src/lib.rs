//! # analysis — static analyses over SSA IR and compiled IDL (§4.4, §6.3)
//!
//! Three passes sharing one view of the compiled constraint trees:
//!
//! * [`FunctionFingerprint`] / [`IdiomRequirements`] — a cheap linear
//!   per-function summary and a per-idiom necessary-condition signature.
//!   [`IdiomRequirements::admitted_by`] is the subsumption check the
//!   detection driver uses to skip idiom×function pairs that provably
//!   cannot match, before any solver step is spent.
//! * [`lint_constraint`] / [`lint_constraints`] — structural diagnostics
//!   over compiled IDL: dead (disconnected) variables, statically
//!   unsatisfiable conjunctions, unreachable/duplicate `or` branches and
//!   shadowed idiom definitions.
//! * [`legality`] — the restrict-parameter side-effect summary used to
//!   verify, before a replacement commits, that a detected region is
//!   pure outside its reported reads and writes — upgraded to an
//!   evidence-carrying [`LegalityVerdict`] (proven / assumed-restrict /
//!   rejected) by the dependence layer.
//! * [`depend`] — affine dependence testing (ZIV/SIV/GCD/delinearized)
//!   and alias classification over the SCEV-lite forms of
//!   `ssair::analysis::AffineMap`, producing the per-region
//!   [`SafetyCertificate`] a parallel executor consumes.

pub mod depend;
pub mod fingerprint;
pub mod legality;
pub mod lint;
pub mod requirements;

pub use depend::{
    classify_alias, classify_region, disjoint_across, AliasClass, ParallelSafety, ParamAliasFacts,
    SafetyCertificate,
};
pub use fingerprint::FunctionFingerprint;
pub use legality::{
    check_region_legality, check_region_purity, classify_base, region_memory_summary,
    LegalityError, LegalityVerdict, MemoryBase, RegionSummary, VerdictKind,
};
pub use lint::{lint_constraint, lint_constraints, Lint, LintRule};
pub use requirements::IdiomRequirements;
