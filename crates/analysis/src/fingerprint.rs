//! Per-function fingerprints: one linear walk over the instructions plus
//! the loop forest, summarizing everything the idiom requirement
//! signatures can test. Computing a fingerprint costs microseconds; a
//! solver search costs thousands of steps — the whole point is that
//! [`crate::IdiomRequirements::admitted_by`] can reject a pair from the
//! fingerprint alone.

use idl::ctree::OpcodeClass;
use ssair::analysis::LoopForest;
use ssair::{Function, Opcode, ValueId};
use std::collections::BTreeSet;

/// A conservative one-pass summary of a function's instruction mix and
/// loop structure. Every field over-approximates: whatever an idiom
/// requires must be *present* here, or the idiom cannot match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionFingerprint {
    /// Deepest loop nesting (1 = a flat loop, 0 = loop-free).
    pub max_loop_depth: u32,
    /// Opcode classes present (census at class granularity).
    pub opcodes: BTreeSet<OpcodeClass>,
    /// Number of `load` instructions.
    pub loads: u32,
    /// Number of `store` instructions.
    pub stores: u32,
    /// Number of `phi` instructions.
    pub phis: u32,
    /// Some `gep` index operand is a `load` (or `sext` of a load) — the
    /// indirect-access shape of histogram bins and CSR column reads.
    pub has_indirect_gep_index: bool,
    /// Some `gep` is used both as a store address and as a load address —
    /// the read-modify-write shape of generalized histograms.
    pub has_rmw_gep: bool,
    /// Some `store` writes through a `gep` whose index operand is a `phi`
    /// (or a `sext` of one) — the direct `out[i] = …` shape of 1-D
    /// stencils and SPMV row writes. Row-major 2-D writes index through
    /// an `add`, scatters through a `load`: neither sets this.
    pub has_phi_indexed_store: bool,
    /// Number of `call` instructions.
    pub calls: u32,
    /// `true` if some call targets a function outside the pure math
    /// intrinsic whitelist ([`solver::PURE_CALLS`]).
    pub has_impure_call: bool,
}

impl FunctionFingerprint {
    /// Computes the fingerprint of `f`, reusing an already-computed loop
    /// forest (the detection driver has one from the solver's analyses).
    #[must_use]
    pub fn with_loops(f: &Function, loops: &LoopForest) -> FunctionFingerprint {
        let mut fp = FunctionFingerprint {
            max_loop_depth: 0,
            opcodes: BTreeSet::new(),
            loads: 0,
            stores: 0,
            phis: 0,
            has_indirect_gep_index: false,
            has_rmw_gep: false,
            has_phi_indexed_store: false,
            calls: 0,
            has_impure_call: false,
        };
        for l in &loops.loops {
            let mut depth = 1u32;
            let mut parent = l.parent;
            while let Some(p) = parent {
                depth += 1;
                parent = loops.loops[p].parent;
            }
            fp.max_loop_depth = fp.max_loop_depth.max(depth);
        }
        let mut load_addrs: Vec<ValueId> = Vec::new();
        let mut store_addrs: Vec<ValueId> = Vec::new();
        // Walk placed instructions only: `remove_instruction` leaves
        // operand-less orphan values behind, and the solver never binds
        // them either.
        let placed = f
            .block_ids()
            .flat_map(|b| f.block(b).instrs.iter().copied());
        for v in placed {
            let Some(i) = f.instr(v) else { continue };
            if let Some(class) = OpcodeClass::of(i.opcode) {
                fp.opcodes.insert(class);
            }
            match i.opcode {
                Opcode::Load => {
                    fp.loads += 1;
                    load_addrs.push(i.operands[0]);
                }
                Opcode::Store => {
                    fp.stores += 1;
                    let addr = i.operands[1];
                    store_addrs.push(addr);
                    if f.opcode(addr) == Some(Opcode::Gep) {
                        let idx = f.instr(addr).map(|g| g.operands[1]);
                        let root = match idx.and_then(|x| f.opcode(x)) {
                            Some(Opcode::SExt) => {
                                idx.and_then(|x| f.instr(x)).map(|s| s.operands[0])
                            }
                            _ => idx,
                        };
                        if root.and_then(|r| f.opcode(r)) == Some(Opcode::Phi) {
                            fp.has_phi_indexed_store = true;
                        }
                    }
                }
                Opcode::Phi => fp.phis += 1,
                Opcode::Gep => {
                    let idx = i.operands[1];
                    let root = match f.opcode(idx) {
                        Some(Opcode::SExt) => f.instr(idx).map(|s| s.operands[0]),
                        _ => Some(idx),
                    };
                    if root.and_then(|r| f.opcode(r)) == Some(Opcode::Load) {
                        fp.has_indirect_gep_index = true;
                    }
                }
                Opcode::Call => {
                    fp.calls += 1;
                    let pure = i
                        .callee
                        .as_deref()
                        .is_some_and(|c| solver::PURE_CALLS.contains(&c));
                    if !pure {
                        fp.has_impure_call = true;
                    }
                }
                _ => {}
            }
        }
        fp.has_rmw_gep = store_addrs
            .iter()
            .any(|&a| f.opcode(a) == Some(Opcode::Gep) && load_addrs.contains(&a));
        fp
    }

    /// Computes the fingerprint of `f` from scratch (builds the CFG,
    /// dominator tree and loop forest itself).
    #[must_use]
    pub fn of(f: &Function) -> FunctionFingerprint {
        let cfg = ssair::analysis::Cfg::new(f);
        let dom = ssair::analysis::DomTree::dominators(&cfg);
        let loops = LoopForest::new(&cfg, &dom);
        FunctionFingerprint::with_loops(f, &loops)
    }
}
