//! Greedy test-case minimization: given a failing [`Spec`] and a
//! predicate that re-checks "still fails the same way", repeatedly try
//! structural simplifications — drop whole functions, drop filler
//! statements, unwrap repetition loops, simplify kernels and tap sets —
//! keeping each change that preserves the failure, until a fixpoint.
//!
//! The predicate re-runs the full pipeline per candidate, so shrinking a
//! program of `F` functions costs `O(F · passes)` pipeline runs — small,
//! because generated programs hold at most ~8 tiny functions.

use crate::spec::{FuncSpec, PlantKind, RedKernel, Role, Spec};

/// One-step simplifications of the function at index `k`. Ordered most
/// aggressive first so the greedy loop takes big bites before nibbling.
fn candidates(spec: &Spec, k: usize) -> Vec<Spec> {
    let mut out = Vec::new();
    let f = &spec.funcs[k];
    let mut with = |g: FuncSpec| {
        let mut s = spec.clone();
        s.funcs[k] = g;
        out.push(s);
    };
    // Drop filler wholesale, then one statement at a time.
    if !f.pre.is_empty() || !f.post.is_empty() {
        let mut g = f.clone();
        g.pre.clear();
        g.post.clear();
        with(g);
    }
    for i in 0..f.pre.len() {
        let mut g = f.clone();
        g.pre.remove(i);
        with(g);
    }
    for i in 0..f.post.len() {
        let mut g = f.clone();
        g.post.remove(i);
        with(g);
    }
    if let Role::Plant(p) = &f.role {
        match p {
            PlantKind::Reduction {
                kernel,
                a,
                b,
                lo,
                hi,
                wrapped,
            } => {
                if *wrapped {
                    let mut g = f.clone();
                    g.role = Role::Plant(PlantKind::Reduction {
                        kernel: *kernel,
                        a: *a,
                        b: *b,
                        lo: *lo,
                        hi: *hi,
                        wrapped: false,
                    });
                    with(g);
                }
                if *kernel != RedKernel::Sum {
                    let mut g = f.clone();
                    g.role = Role::Plant(PlantKind::Reduction {
                        kernel: RedKernel::Sum,
                        a: *a,
                        b: *b,
                        lo: *lo,
                        hi: *hi,
                        wrapped: *wrapped,
                    });
                    with(g);
                }
                if *lo != 0 || *hi != 0 {
                    let mut g = f.clone();
                    g.role = Role::Plant(PlantKind::Reduction {
                        kernel: *kernel,
                        a: *a,
                        b: *b,
                        lo: 0,
                        hi: 0,
                        wrapped: *wrapped,
                    });
                    with(g);
                }
            }
            PlantKind::Stencil1D {
                src,
                dst,
                taps,
                scale,
            } if taps.len() > 1 || scale.is_some() => {
                let mut g = f.clone();
                g.role = Role::Plant(PlantKind::Stencil1D {
                    src: *src,
                    dst: *dst,
                    taps: vec![taps[0]],
                    scale: None,
                });
                with(g);
            }
            PlantKind::Stencil2D { taps, scale } if taps.len() > 1 || scale.is_some() => {
                let mut g = f.clone();
                g.role = Role::Plant(PlantKind::Stencil2D {
                    taps: vec![taps[0]],
                    scale: None,
                });
                with(g);
            }
            _ => {}
        }
    }
    out
}

/// Minimizes `spec` under `still_fails` (which must be `true` for `spec`
/// itself). Deterministic: candidates are tried in a fixed order and the
/// first success restarts the scan.
pub fn shrink(spec: &Spec, still_fails: impl Fn(&Spec) -> bool) -> Spec {
    debug_assert!(still_fails(spec), "shrink needs a failing starting point");
    let mut cur = spec.clone();
    loop {
        let mut progressed = false;
        // Pass 1: drop whole functions (largest single reduction).
        let mut k = 0;
        while k < cur.funcs.len() {
            if cur.funcs.len() > 1 {
                let mut cand = cur.clone();
                cand.funcs.remove(k);
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                    continue; // same index now holds the next function
                }
            }
            k += 1;
        }
        // Pass 2: per-function simplifications.
        for k in 0..cur.funcs.len() {
            loop {
                let step = candidates(&cur, k).into_iter().find(|c| still_fails(c));
                match step {
                    Some(c) => {
                        cur = c;
                        progressed = true;
                    }
                    None => break,
                }
            }
        }
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrayId, FillerStmt};

    /// A structural predicate (no pipeline): "still contains a reduction
    /// plant" — shrinking against it must strip everything else.
    #[test]
    fn shrinks_to_the_single_relevant_function() {
        let spec = crate::generate(7);
        assert!(!spec.funcs.is_empty());
        let mut padded = spec;
        padded.funcs.insert(
            0,
            FuncSpec {
                name: "fx".into(),
                role: Role::Plant(PlantKind::Reduction {
                    kernel: RedKernel::SumCos,
                    a: ArrayId::D0,
                    b: ArrayId::D1,
                    lo: 2,
                    hi: 1,
                    wrapped: true,
                }),
                pre: vec![FillerStmt::ScalarNoise {
                    src: ArrayId::D2,
                    c: 3,
                }],
                post: vec![],
            },
        );
        let has_reduction = |s: &Spec| {
            s.funcs
                .iter()
                .any(|f| matches!(f.role, Role::Plant(PlantKind::Reduction { .. })))
        };
        assert!(has_reduction(&padded));
        let min = shrink(&padded, has_reduction);
        assert_eq!(min.funcs.len(), 1, "everything irrelevant dropped");
        match &min.funcs[0].role {
            Role::Plant(PlantKind::Reduction {
                kernel,
                lo,
                hi,
                wrapped,
                ..
            }) => {
                assert_eq!(*kernel, RedKernel::Sum, "kernel simplified");
                assert_eq!((*lo, *hi), (0, 0), "bounds simplified");
                assert!(!wrapped, "repetition unwrapped");
            }
            other => panic!("kept {other:?}"),
        }
        assert!(min.funcs[0].pre.is_empty() && min.funcs[0].post.is_empty());
    }
}
