//! The generated-program model: a [`Spec`] is a deterministic, shrinkable
//! description of one mini-C program — a list of functions, each either a
//! **planted** idiom instance (detection and replacement expected, by
//! construction), a **near-miss** mutant (the tempting idiom kind is
//! forbidden), or **filler** — plus a fixed entry point that calls them
//! all. Rendering goes through the `minicc` AST builders and
//! pretty-printer, so every spec *is* a plain `.c` file (the corpus
//! format) and compiles through the exact frontend under test.
//!
//! The input shape is fixed across all specs (same arrays, same sizes,
//! same seeding discipline as `benchsuite`), which keeps [`setup`] a
//! single function and makes every generated program directly
//! comparable under the multi-seed differential validator.

use idioms::IdiomKind;
use interp::{Memory, Value};
use minicc::ast::{BinOp, CType, CmpOp, Expr, FuncDef, LValue, Program, Stmt};

/// Length of the 1-D `double`/`int` data arrays (`n`).
pub const LEN: usize = 64;
/// Edge of the 2-D grid arrays (`g`), `g*g` elements.
pub const GRID: usize = 8;
/// Edge of the dense matrices (`dim`), `dim*dim` elements.
pub const DIM: usize = 6;
/// Rows of the CSR matrix and length of its dense vectors (`rows`).
pub const ROWS: usize = 24;
/// Histogram bin count (`nb`).
pub const BINS: usize = 32;
/// Approximate CSR entries per row (structure is seed-independent).
const CSR_PER_ROW: usize = 3;

/// The fixed array pool every generated program draws from, in entry
/// parameter order. Inputs are seeded per input seed; outputs start
/// zeroed — exactly the discipline of `benchsuite` setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArrayId {
    /// Seeded `double[LEN]` inputs.
    D0,
    /// Seeded `double[LEN]` inputs.
    D1,
    /// Seeded `double[LEN]` inputs.
    D2,
    /// Seeded `double[LEN]` inputs.
    D3,
    /// Zeroed `double[LEN]` outputs (stencil destinations, scratch).
    O0,
    /// Zeroed `double[LEN]` outputs.
    O1,
    /// Seeded `double[GRID*GRID]` input grid.
    G0,
    /// Zeroed `double[GRID*GRID]` output grid.
    GOut,
    /// Seeded `double[DIM*DIM]` matrix.
    M0,
    /// Seeded `double[DIM*DIM]` matrix.
    M1,
    /// Zeroed `double[DIM*DIM]` output matrix.
    MOut,
    /// Seeded `int[LEN]` keys in `[0, BINS)`.
    K0,
    /// Zeroed `int[BINS]` bins.
    BinsI,
    /// Zeroed `double[BINS]` bins.
    BinsF,
    /// Seeded `double[nnz]` CSR values.
    CsrV,
    /// CSR row pointers, `int[ROWS+1]`.
    CsrR,
    /// CSR column indices, `int[nnz]`, all `< ROWS`.
    CsrC,
    /// Seeded `double[ROWS]` dense vector.
    X0,
    /// Zeroed `double[ROWS]` SPMV output.
    Y0,
}

impl ArrayId {
    /// All arrays in entry parameter order.
    pub const ALL: [ArrayId; 19] = [
        ArrayId::D0,
        ArrayId::D1,
        ArrayId::D2,
        ArrayId::D3,
        ArrayId::O0,
        ArrayId::O1,
        ArrayId::G0,
        ArrayId::GOut,
        ArrayId::M0,
        ArrayId::M1,
        ArrayId::MOut,
        ArrayId::K0,
        ArrayId::BinsI,
        ArrayId::BinsF,
        ArrayId::CsrV,
        ArrayId::CsrR,
        ArrayId::CsrC,
        ArrayId::X0,
        ArrayId::Y0,
    ];

    /// The C parameter name.
    #[must_use]
    pub fn cname(self) -> &'static str {
        match self {
            ArrayId::D0 => "d0",
            ArrayId::D1 => "d1",
            ArrayId::D2 => "d2",
            ArrayId::D3 => "d3",
            ArrayId::O0 => "o0",
            ArrayId::O1 => "o1",
            ArrayId::G0 => "g0",
            ArrayId::GOut => "go",
            ArrayId::M0 => "m0",
            ArrayId::M1 => "m1",
            ArrayId::MOut => "mo",
            ArrayId::K0 => "k0",
            ArrayId::BinsI => "bi",
            ArrayId::BinsF => "bf",
            ArrayId::CsrV => "cv",
            ArrayId::CsrR => "cr",
            ArrayId::CsrC => "cc",
            ArrayId::X0 => "x0",
            ArrayId::Y0 => "y0",
        }
    }

    /// The pointer type of the parameter.
    #[must_use]
    pub fn ctype(self) -> CType {
        match self {
            ArrayId::K0 | ArrayId::BinsI | ArrayId::CsrR | ArrayId::CsrC => CType::Int.ptr_to(),
            _ => CType::Double.ptr_to(),
        }
    }
}

/// One formal parameter of a generated function: an array or one of the
/// fixed size scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Param {
    /// An array from the fixed pool.
    Arr(ArrayId),
    /// `int n` = [`LEN`].
    N,
    /// `int g` = [`GRID`].
    G,
    /// `int dim` = [`DIM`].
    Dim,
    /// `int rows` = [`ROWS`].
    Rows,
    /// `int nb` = [`BINS`].
    Nb,
}

impl Param {
    fn cname(self) -> &'static str {
        match self {
            Param::Arr(a) => a.cname(),
            Param::N => "n",
            Param::G => "g",
            Param::Dim => "dim",
            Param::Rows => "rows",
            Param::Nb => "nb",
        }
    }

    fn ctype(self) -> CType {
        match self {
            Param::Arr(a) => a.ctype(),
            _ => CType::Int,
        }
    }
}

/// The reduction kernel planted into a [`PlantKind::Reduction`]. All
/// variants are shapes the replacement backend is known to offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedKernel {
    /// `s += a[i] * b[i]` (dot product).
    SumMul,
    /// `s += a[i]`.
    Sum,
    /// `s += a[i] * a[i]` (norm).
    SumSq,
    /// `s += c * a[i]` for a small constant `c` (index into a fixed pool).
    SumScaled(u8),
    /// `s += a[i] - b[i]`.
    SumDiff,
    /// `s = s * a[i]` (product, init 1.0).
    Prod,
    /// `s += sqrt(fabs(a[i]))`.
    SumSqrtAbs,
    /// `s += cos(a[i] * b[i])`.
    SumCos,
    /// `d = a[i] - b[i]; s += d > 0 ? d : -d` (select kernel).
    TernaryAbs,
    /// `s = fmax(s, fabs(a[i]))`.
    MaxAbs,
    /// Integer sum over the key array: `s += k0[i]`.
    IntSum,
}

/// The coefficient pool `SumScaled`/stencil taps index into (keeps specs
/// `Copy`-friendly and the shrinker's "simplest coefficient" well-defined).
pub const COEFS: [f64; 9] = [0.05, 0.1, 0.2, 0.25, 0.4, 0.5, 0.9, 1.0, 2.0];

fn coef(ix: u8) -> f64 {
    COEFS[ix as usize % COEFS.len()]
}

/// Histogram template variants.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoVariant {
    /// `bi[k0[i]] = bi[k0[i]] + 1`.
    CountInt,
    /// `bf[k0[i]] = bf[k0[i]] + w[i]`.
    WeightedF {
        /// The weight array (from the `double[LEN]` pool).
        w: ArrayId,
    },
    /// `b = (int)(fabs(src[i]) * c); bi[b] = bi[b] + 1`.
    ComputedBin {
        /// The value array the bin index is computed from.
        src: ArrayId,
        /// Scale constant (bins stay `< BINS` because `|src| < 0.5`).
        c: f64,
    },
    /// The EP shape: bin from `fmax(fabs(xa[i]), fabs(xb[i]))`.
    MaxOfTwo {
        /// First value array.
        xa: ArrayId,
        /// Second value array.
        xb: ArrayId,
        /// Scale constant.
        c: f64,
    },
}

/// A planted idiom: the function is constructed so that detection MUST
/// report exactly this kind here, and the replacement backend MUST
/// rewrite it.
#[derive(Debug, Clone, PartialEq)]
pub enum PlantKind {
    /// A scalar reduction loop.
    Reduction {
        /// The update kernel.
        kernel: RedKernel,
        /// Primary read array.
        a: ArrayId,
        /// Secondary read array (unused by single-array kernels).
        b: ArrayId,
        /// Loop lower bound (literal).
        lo: u8,
        /// Loop upper bound is `n - hi`.
        hi: u8,
        /// Whether the loop sits inside a small repetition loop.
        wrapped: bool,
    },
    /// A histogram loop.
    Histogram(HistoVariant),
    /// A 1-D stencil `dst[i] = f(src[i+off]...)`.
    Stencil1D {
        /// Read array.
        src: ArrayId,
        /// Written array (disjoint from `src` by construction).
        dst: ArrayId,
        /// `(offset, coefficient-pool index)` taps, offsets unique.
        taps: Vec<(i64, u8)>,
        /// `Some(c)`: `dst[i] = c * (sum of raw taps)` instead of
        /// per-tap coefficients.
        scale: Option<u8>,
    },
    /// A 2-D stencil on the grid arrays.
    Stencil2D {
        /// `(row offset, col offset, coefficient-pool index)` taps.
        taps: Vec<(i64, i64, u8)>,
        /// Optional factored scale, as in `Stencil1D`.
        scale: Option<u8>,
    },
    /// Dense matrix multiplication `mo = m0 × m1`.
    Gemm {
        /// `true` for the Figure-8 second form (`mo[..] = 0; mo[..] +=`),
        /// `false` for the stored-accumulator first form.
        epilogue: bool,
    },
    /// CSR sparse matrix-vector multiplication `y0 = csr × x0`.
    Spmv,
}

impl PlantKind {
    /// The idiom class this plant must be detected as.
    #[must_use]
    pub fn kind(&self) -> IdiomKind {
        match self {
            PlantKind::Reduction { .. } => IdiomKind::Reduction,
            PlantKind::Histogram(_) => IdiomKind::Histogram,
            PlantKind::Stencil1D { .. } => IdiomKind::Stencil1D,
            PlantKind::Stencil2D { .. } => IdiomKind::Stencil2D,
            PlantKind::Gemm { .. } => IdiomKind::Gemm,
            PlantKind::Spmv => IdiomKind::Spmv,
        }
    }
}

/// An adversarial almost-idiom: one semantic detail disqualifies it, and
/// the detector reporting [`NearMissKind::forbidden`] for its function is
/// a false positive.
#[derive(Debug, Clone, PartialEq)]
pub enum NearMissKind {
    /// A reduction guarded by data-dependent control flow: summing only
    /// where `g[i] > 0` is not a plain reduction over the range.
    GuardedReduction {
        /// Summed array.
        a: ArrayId,
        /// Guard array (may equal `a`).
        g: ArrayId,
    },
    /// A downward-counting reduction loop (`i--`): outside the canonical
    /// rotated-loop shape the `For` building block pins down.
    DownwardReduction {
        /// Summed array.
        a: ArrayId,
    },
    /// `bi[i] = bi[i] + 1`: the "bin index" is the loop iterator — a
    /// parallel vector update, not a histogram.
    IteratorHistogram,
    /// `arr[i] = c*arr[i-1] + c*arr[i+1]`: reads the written array, so
    /// the kernel-purity constraint must reject it (it is a loop-carried
    /// sweep, not a stencil).
    InPlaceStencil {
        /// The array swept in place.
        arr: ArrayId,
    },
}

impl NearMissKind {
    /// The idiom kind that must NOT be reported for this function.
    #[must_use]
    pub fn forbidden(&self) -> IdiomKind {
        match self {
            NearMissKind::GuardedReduction { .. } | NearMissKind::DownwardReduction { .. } => {
                IdiomKind::Reduction
            }
            NearMissKind::IteratorHistogram => IdiomKind::Histogram,
            NearMissKind::InPlaceStencil { .. } => IdiomKind::Stencil1D,
        }
    }
}

/// A soundness adversary: a function whose loop *looks* offloadable but
/// must never end up replaced **and** certified independent-iterations —
/// each variant defeats one leg of the dependence analysis (call-site
/// aliasing, affine subscript recovery, cross-iteration disjointness).
/// Unlike a [`NearMissKind`], being *detected* is acceptable (the aliased
/// stencil is a textbook stencil inside its own function); what the
/// oracle checks is that the legality/certificate layer refuses the
/// parallel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// A clean out-of-place 1-D stencil `pb[i] = .5*pa[i-1] + .5*pa[i+1]`
    /// whose *call site* passes the same array for both parameters: the
    /// per-function view is replaceable, the whole-module view is an
    /// in-place loop-carried sweep.
    AliasedParams,
    /// `pb[i*i] = .5*pa[i]`: the written subscript is quadratic in the
    /// iterator, outside the affine model — no disjointness argument may
    /// be constructed for it.
    NonAffine,
    /// A triangular wavefront on one matrix: row `i` is computed from row
    /// `i-1` (written by the previous outer iteration) through the same
    /// object, so outer iterations are genuinely ordered.
    TriangularSweep,
}

/// Non-idiomatic surrounding code: shapes taken from the suite's
/// uncovered benchmarks (recurrences, guarded in-place updates, scalar
/// arithmetic) that the detector is known to ignore.
#[derive(Debug, Clone, PartialEq)]
pub enum FillerStmt {
    /// `for i: arr[i] = arr[i]*ca + arr[i-1]*cb` (loop-carried sweep).
    Recurrence {
        /// The swept `double[LEN]` array.
        arr: ArrayId,
        /// Self coefficient (pool index).
        ca: u8,
        /// Neighbour coefficient (pool index).
        cb: u8,
    },
    /// `for i: if (src[i] > 0) dst[i] = src[i]*c + dst[i]*c2` (guarded
    /// in-place update, the cutcp lattice shape).
    GuardedScale {
        /// Guard/read array.
        src: ArrayId,
        /// Updated array.
        dst: ArrayId,
    },
    /// Straight-line scalar arithmetic reading one fixed element.
    ScalarNoise {
        /// Read array.
        src: ArrayId,
        /// Coefficient pool index.
        c: u8,
    },
}

/// What one generated function is for.
#[derive(Debug, Clone, PartialEq)]
pub enum Role {
    /// A planted idiom (must be detected and replaced).
    Plant(PlantKind),
    /// A near-miss mutant (its tempting kind must not be detected).
    NearMiss(NearMissKind),
    /// A dependence-analysis adversary (must never be replaced with an
    /// independent-iterations certificate).
    Adversary(AdversaryKind),
    /// Pure filler.
    Filler,
}

/// One generated function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSpec {
    /// Function name (`f0`, `f1`, ... in program order).
    pub name: String,
    /// What the function is.
    pub role: Role,
    /// Filler statements before the role's loop.
    pub pre: Vec<FillerStmt>,
    /// Filler statements after the role's loop.
    pub post: Vec<FillerStmt>,
}

/// A whole generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// The generator seed the spec was derived from (0 for hand-built).
    pub seed: u64,
    /// The functions, in program order. The fixed entry point
    /// [`Spec::ENTRY`] is appended at render time.
    pub funcs: Vec<FuncSpec>,
}

impl Spec {
    /// Name of the generated entry function.
    pub const ENTRY: &'static str = "fz_entry";

    /// The module name used for compilation.
    #[must_use]
    pub fn module_name(&self) -> String {
        format!("progen_{}", self.seed)
    }

    /// The planted expectations: `(function, kind)` pairs that must be
    /// detected AND replaced.
    #[must_use]
    pub fn expected(&self) -> Vec<(String, IdiomKind)> {
        self.funcs
            .iter()
            .filter_map(|f| match &f.role {
                Role::Plant(p) => Some((f.name.clone(), p.kind())),
                _ => None,
            })
            .collect()
    }

    /// The near-miss prohibitions: `(function, kind)` pairs that must NOT
    /// be detected.
    #[must_use]
    pub fn forbidden(&self) -> Vec<(String, IdiomKind)> {
        self.funcs
            .iter()
            .filter_map(|f| match &f.role {
                Role::NearMiss(nm) => Some((f.name.clone(), nm.forbidden())),
                _ => None,
            })
            .collect()
    }

    /// The adversary functions: any of these being replaced *and*
    /// certified independent-iterations is a dependence-analysis
    /// soundness failure.
    #[must_use]
    pub fn adversaries(&self) -> Vec<String> {
        self.funcs
            .iter()
            .filter_map(|f| match &f.role {
                Role::Adversary(_) => Some(f.name.clone()),
                _ => None,
            })
            .collect()
    }

    /// Renders the program as a `minicc` AST.
    #[must_use]
    pub fn ast(&self) -> Program {
        let mut funcs: Vec<FuncDef> = self.funcs.iter().map(render_func).collect();
        funcs.push(render_entry(&self.funcs));
        Program { funcs }
    }

    /// Renders the program as C source (the corpus / compile format).
    #[must_use]
    pub fn render(&self) -> String {
        minicc::pretty::print_program(&self.ast())
    }
}

/// Allocates the fixed input shape for one input seed and returns the
/// entry arguments. Identical across all specs: the entry signature is
/// the full array pool plus the size scalars, in [`ArrayId::ALL`] order.
/// Seed 0 is the canonical workload; other seeds vary the data, never
/// the shape — the same contract as [`benchsuite::Benchmark::setup`].
#[must_use]
pub fn setup(mem: &mut Memory, seed: u64) -> Vec<Value> {
    use benchsuite::{csr, fill_f64, fill_i32_mod, mix, zeros_f64, zeros_i32};
    let mut args: Vec<Value> = Vec::new();
    for a in ArrayId::ALL {
        let base = match a {
            ArrayId::D0 => fill_f64(mem, LEN, mix(seed, 101)),
            ArrayId::D1 => fill_f64(mem, LEN, mix(seed, 102)),
            ArrayId::D2 => fill_f64(mem, LEN, mix(seed, 103)),
            ArrayId::D3 => fill_f64(mem, LEN, mix(seed, 104)),
            ArrayId::O0 | ArrayId::O1 => zeros_f64(mem, LEN),
            ArrayId::G0 => fill_f64(mem, GRID * GRID, mix(seed, 105)),
            ArrayId::GOut => zeros_f64(mem, GRID * GRID),
            ArrayId::M0 => fill_f64(mem, DIM * DIM, mix(seed, 106)),
            ArrayId::M1 => fill_f64(mem, DIM * DIM, mix(seed, 107)),
            ArrayId::MOut => zeros_f64(mem, DIM * DIM),
            ArrayId::K0 => fill_i32_mod(mem, LEN, BINS as i32, mix(seed, 108)),
            ArrayId::BinsI => zeros_i32(mem, BINS),
            ArrayId::BinsF => zeros_f64(mem, BINS),
            ArrayId::CsrV => {
                // csr() allocates values, rowstr, colidx back-to-back in
                // exactly the CsrV, CsrR, CsrC parameter order.
                let (v, r, c) = csr(mem, ROWS, CSR_PER_ROW, seed);
                args.push(Value::P(v));
                args.push(Value::P(r));
                args.push(Value::P(c));
                continue;
            }
            ArrayId::CsrR | ArrayId::CsrC => continue, // handled above
            ArrayId::X0 => fill_f64(mem, ROWS, mix(seed, 109)),
            ArrayId::Y0 => zeros_f64(mem, ROWS),
        };
        args.push(Value::P(base));
    }
    for scalar in [LEN, GRID, DIM, ROWS, BINS] {
        args.push(Value::I(scalar as i64));
    }
    args
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

/// Per-function fresh-name source (minicc rejects shadowing, so every
/// local gets a unique suffix).
#[derive(Default)]
struct Names {
    iters: usize,
    vars: usize,
}

impl Names {
    fn iter(&mut self) -> String {
        self.iters += 1;
        format!("i{}", self.iters - 1)
    }
    fn var(&mut self) -> String {
        self.vars += 1;
        format!("v{}", self.vars - 1)
    }
}

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn at(arr: ArrayId, idx: Expr) -> Expr {
    Expr::idx(arr.cname(), idx)
}

fn store(arr: ArrayId, idx: Expr) -> LValue {
    LValue::Index {
        base: arr.cname().into(),
        indices: vec![idx],
    }
}

/// `iter + off` / `iter - off` / `iter`.
fn off_expr(iter: &str, off: i64) -> Expr {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => v(iter),
        std::cmp::Ordering::Greater => Expr::add(v(iter), Expr::int(off)),
        std::cmp::Ordering::Less => Expr::sub(v(iter), Expr::int(-off)),
    }
}

/// The `n - hi` upper bound (printed as plain `n` when `hi` is 0).
fn upper(bound: &str, hi: u8) -> Expr {
    if hi == 0 {
        v(bound)
    } else {
        Expr::sub(v(bound), Expr::int(i64::from(hi)))
    }
}

fn render_filler(f: &FillerStmt, names: &mut Names, acc: Option<&str>) -> Vec<Stmt> {
    match f {
        FillerStmt::Recurrence { arr, ca, cb } => {
            let i = names.iter();
            vec![Stmt::count_for(
                i.clone(),
                Expr::int(1),
                v("n"),
                vec![Stmt::assign(
                    store(*arr, v(&i)),
                    Expr::add(
                        Expr::mul(at(*arr, v(&i)), Expr::f64(coef(*ca))),
                        Expr::mul(at(*arr, off_expr(&i, -1)), Expr::f64(coef(*cb))),
                    ),
                )],
            )]
        }
        FillerStmt::GuardedScale { src, dst } => {
            let i = names.iter();
            vec![Stmt::count_for(
                i.clone(),
                Expr::int(0),
                v("n"),
                vec![Stmt::If {
                    cond: Expr::cmp(CmpOp::Gt, at(*src, v(&i)), Expr::f64(0.0)),
                    then: vec![Stmt::assign(
                        store(*dst, v(&i)),
                        Expr::add(
                            Expr::mul(at(*src, v(&i)), Expr::f64(0.01)),
                            Expr::mul(at(*dst, v(&i)), Expr::f64(0.5)),
                        ),
                    )],
                    other: vec![],
                }],
            )]
        }
        FillerStmt::ScalarNoise { src, c } => {
            let t = names.var();
            let mut out = vec![Stmt::decl(
                t.clone(),
                CType::Double,
                Expr::mul(at(*src, Expr::int(3)), Expr::f64(coef(*c))),
            )];
            if let Some(acc) = acc {
                out.push(Stmt::assign(
                    LValue::Var(acc.into()),
                    Expr::add(v(acc), v(&t)),
                ));
            }
            out
        }
    }
}

fn reduction_body(
    kernel: RedKernel,
    a: ArrayId,
    b: ArrayId,
    i: &str,
    names: &mut Names,
) -> Vec<Stmt> {
    let s = LValue::Var("s".into());
    let x = at(a, v(i));
    let y = at(b, v(i));
    match kernel {
        RedKernel::SumMul => vec![Stmt::assign_op(s, BinOp::Add, Expr::mul(x, y))],
        RedKernel::Sum => vec![Stmt::assign_op(s, BinOp::Add, x)],
        RedKernel::SumSq => vec![Stmt::assign_op(s, BinOp::Add, Expr::mul(x.clone(), x))],
        RedKernel::SumScaled(c) => vec![Stmt::assign_op(
            s,
            BinOp::Add,
            Expr::mul(Expr::f64(coef(c)), x),
        )],
        RedKernel::SumDiff => vec![Stmt::assign_op(s, BinOp::Add, Expr::sub(x, y))],
        RedKernel::Prod => vec![Stmt::assign(s, Expr::mul(v("s"), x))],
        RedKernel::SumSqrtAbs => vec![Stmt::assign_op(
            s,
            BinOp::Add,
            Expr::call("sqrt", vec![Expr::call("fabs", vec![x])]),
        )],
        RedKernel::SumCos => vec![Stmt::assign_op(
            s,
            BinOp::Add,
            Expr::call("cos", vec![Expr::mul(x, y)]),
        )],
        RedKernel::TernaryAbs => {
            let d = names.var();
            vec![
                Stmt::decl(d.clone(), CType::Double, Expr::sub(x, y)),
                Stmt::assign_op(
                    s,
                    BinOp::Add,
                    Expr::ternary(
                        Expr::cmp(CmpOp::Gt, v(&d), Expr::f64(0.0)),
                        v(&d),
                        Expr::Neg(Box::new(v(&d))),
                    ),
                ),
            ]
        }
        RedKernel::MaxAbs => vec![Stmt::assign(
            s,
            Expr::call("fmax", vec![v("s"), Expr::call("fabs", vec![x])]),
        )],
        RedKernel::IntSum => vec![Stmt::assign_op(s, BinOp::Add, at(ArrayId::K0, v(i)))],
    }
}

fn histogram_body(variant: &HistoVariant, i: &str, names: &mut Names) -> Vec<Stmt> {
    match variant {
        HistoVariant::CountInt => {
            let bin = at(ArrayId::K0, v(i));
            vec![Stmt::assign(
                store(ArrayId::BinsI, bin.clone()),
                Expr::add(at(ArrayId::BinsI, bin), Expr::int(1)),
            )]
        }
        HistoVariant::WeightedF { w } => {
            let bin = at(ArrayId::K0, v(i));
            vec![Stmt::assign(
                store(ArrayId::BinsF, bin.clone()),
                Expr::add(at(ArrayId::BinsF, bin), at(*w, v(i))),
            )]
        }
        HistoVariant::ComputedBin { src, c } => {
            let b = names.var();
            vec![
                Stmt::decl(
                    b.clone(),
                    CType::Int,
                    Expr::cast(
                        CType::Int,
                        Expr::mul(Expr::call("fabs", vec![at(*src, v(i))]), Expr::f64(*c)),
                    ),
                ),
                Stmt::assign(
                    store(ArrayId::BinsI, v(&b)),
                    Expr::add(at(ArrayId::BinsI, v(&b)), Expr::int(1)),
                ),
            ]
        }
        HistoVariant::MaxOfTwo { xa, xb, c } => {
            let m = names.var();
            let b = names.var();
            vec![
                Stmt::decl(
                    m.clone(),
                    CType::Double,
                    Expr::call(
                        "fmax",
                        vec![
                            Expr::call("fabs", vec![at(*xa, v(i))]),
                            Expr::call("fabs", vec![at(*xb, v(i))]),
                        ],
                    ),
                ),
                Stmt::decl(
                    b.clone(),
                    CType::Int,
                    Expr::cast(CType::Int, Expr::mul(v(&m), Expr::f64(*c))),
                ),
                Stmt::assign(
                    store(ArrayId::BinsI, v(&b)),
                    Expr::add(at(ArrayId::BinsI, v(&b)), Expr::int(1)),
                ),
            ]
        }
    }
}

/// Sums `terms` into one expression tree (left-leaning).
fn sum(terms: Vec<Expr>) -> Expr {
    let mut it = terms.into_iter();
    let first = it.next().expect("at least one term");
    it.fold(first, Expr::add)
}

fn render_plant(p: &PlantKind, names: &mut Names, body: &mut Vec<Stmt>) -> CType {
    match p {
        PlantKind::Reduction {
            kernel,
            a,
            b,
            lo,
            hi,
            wrapped,
        } => {
            let (ty, init) = if *kernel == RedKernel::IntSum {
                (CType::Int, Expr::int(0))
            } else if *kernel == RedKernel::Prod {
                (CType::Double, Expr::f64(1.0))
            } else {
                (CType::Double, Expr::f64(0.0))
            };
            body.push(Stmt::decl("s", ty.clone(), init));
            let i = names.iter();
            let red = Stmt::count_for(
                i.clone(),
                Expr::int(i64::from(*lo)),
                upper("n", *hi),
                reduction_body(*kernel, *a, *b, &i, names),
            );
            if *wrapped {
                let r = names.iter();
                body.push(Stmt::count_for(r, Expr::int(0), Expr::int(2), vec![red]));
            } else {
                body.push(red);
            }
            ty
        }
        PlantKind::Histogram(variant) => {
            let i = names.iter();
            let inner = histogram_body(variant, &i, names);
            body.push(Stmt::count_for(i, Expr::int(0), v("n"), inner));
            CType::Void
        }
        PlantKind::Stencil1D {
            src,
            dst,
            taps,
            scale,
        } => {
            let radius = taps.iter().map(|&(o, _)| o.abs()).max().unwrap_or(0).max(1);
            let i = names.iter();
            let reads: Vec<Expr> = taps
                .iter()
                .map(|&(o, _)| at(*src, off_expr(&i, o)))
                .collect();
            let value = match scale {
                Some(c) => Expr::mul(Expr::f64(coef(*c)), sum(reads)),
                None => sum(taps
                    .iter()
                    .zip(reads)
                    .map(|(&(_, c), r)| Expr::mul(Expr::f64(coef(c)), r))
                    .collect()),
            };
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(radius),
                Expr::sub(v("n"), Expr::int(radius)),
                vec![Stmt::assign(store(*dst, v(&i)), value)],
            ));
            CType::Void
        }
        PlantKind::Stencil2D { taps, scale } => {
            let i = names.iter();
            let j = names.iter();
            let flat =
                |r: i64, c: i64| Expr::add(Expr::mul(off_expr(&i, r), v("g")), off_expr(&j, c));
            let reads: Vec<Expr> = taps
                .iter()
                .map(|&(r, c, _)| at(ArrayId::G0, flat(r, c)))
                .collect();
            let value = match scale {
                Some(c) => Expr::mul(Expr::f64(coef(*c)), sum(reads)),
                None => sum(taps
                    .iter()
                    .zip(reads)
                    .map(|(&(_, _, c), r)| Expr::mul(Expr::f64(coef(c)), r))
                    .collect()),
            };
            let writeback = Stmt::assign(store(ArrayId::GOut, flat(0, 0)), value);
            let inner = Stmt::count_for(
                j.clone(),
                Expr::int(1),
                Expr::sub(v("g"), Expr::int(1)),
                vec![writeback],
            );
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(1),
                Expr::sub(v("g"), Expr::int(1)),
                vec![inner],
            ));
            CType::Void
        }
        PlantKind::Gemm { epilogue } => {
            let i = names.iter();
            let j = names.iter();
            let k = names.iter();
            let rm = |arr: ArrayId, row: &str, col: &str| {
                at(arr, Expr::add(Expr::mul(v(row), v("dim")), v(col)))
            };
            let inner = if *epilogue {
                // mo[i*dim+j] = 0; for k: mo[i*dim+j] += m0[i*dim+k]*m1[k*dim+j]
                vec![
                    Stmt::assign(
                        store(ArrayId::MOut, Expr::add(Expr::mul(v(&i), v("dim")), v(&j))),
                        Expr::f64(0.0),
                    ),
                    Stmt::count_for(
                        k.clone(),
                        Expr::int(0),
                        v("dim"),
                        vec![Stmt::assign_op(
                            store(ArrayId::MOut, Expr::add(Expr::mul(v(&i), v("dim")), v(&j))),
                            BinOp::Add,
                            Expr::mul(rm(ArrayId::M0, &i, &k), rm(ArrayId::M1, &k, &j)),
                        )],
                    ),
                ]
            } else {
                // double s = 0; for k: s += m0[i + k*dim]*m1[j + k*dim];
                // mo[i + j*dim] = s  (the Parboil sgemm layout)
                let cm = |arr: ArrayId, row: &str, col: &str| {
                    at(arr, Expr::add(v(row), Expr::mul(v(col), v("dim"))))
                };
                vec![
                    Stmt::decl("s", CType::Double, Expr::f64(0.0)),
                    Stmt::count_for(
                        k.clone(),
                        Expr::int(0),
                        v("dim"),
                        vec![Stmt::assign_op(
                            LValue::Var("s".into()),
                            BinOp::Add,
                            Expr::mul(cm(ArrayId::M0, &i, &k), cm(ArrayId::M1, &j, &k)),
                        )],
                    ),
                    Stmt::assign(
                        store(ArrayId::MOut, Expr::add(v(&i), Expr::mul(v(&j), v("dim")))),
                        v("s"),
                    ),
                ]
            };
            let jloop = Stmt::count_for(j.clone(), Expr::int(0), v("dim"), inner);
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(0),
                v("dim"),
                vec![jloop],
            ));
            CType::Void
        }
        PlantKind::Spmv => {
            let i = names.iter();
            let k = names.iter();
            let inner = Stmt::For {
                init: Some(Box::new(Stmt::decl(
                    k.clone(),
                    CType::Int,
                    at(ArrayId::CsrR, v(&i)),
                ))),
                cond: Some(Expr::cmp(
                    CmpOp::Lt,
                    v(&k),
                    at(ArrayId::CsrR, off_expr(&i, 1)),
                )),
                step: Some(Box::new(Stmt::assign(
                    LValue::Var(k.clone()),
                    Expr::add(v(&k), Expr::int(1)),
                ))),
                body: vec![Stmt::assign(
                    LValue::Var("s".into()),
                    Expr::add(
                        v("s"),
                        Expr::mul(
                            at(ArrayId::CsrV, v(&k)),
                            at(ArrayId::X0, at(ArrayId::CsrC, v(&k))),
                        ),
                    ),
                )],
            };
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(0),
                v("rows"),
                vec![
                    Stmt::decl("s", CType::Double, Expr::f64(0.0)),
                    inner,
                    Stmt::assign(store(ArrayId::Y0, v(&i)), v("s")),
                ],
            ));
            CType::Void
        }
    }
}

fn render_near_miss(nm: &NearMissKind, names: &mut Names, body: &mut Vec<Stmt>) -> CType {
    match nm {
        NearMissKind::GuardedReduction { a, g } => {
            body.push(Stmt::decl("s", CType::Double, Expr::f64(0.0)));
            let i = names.iter();
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(0),
                v("n"),
                vec![Stmt::If {
                    cond: Expr::cmp(CmpOp::Gt, at(*g, v(&i)), Expr::f64(0.0)),
                    then: vec![Stmt::assign_op(
                        LValue::Var("s".into()),
                        BinOp::Add,
                        at(*a, v(&i)),
                    )],
                    other: vec![],
                }],
            ));
            CType::Double
        }
        NearMissKind::DownwardReduction { a } => {
            body.push(Stmt::decl("s", CType::Double, Expr::f64(0.0)));
            let i = names.iter();
            body.push(Stmt::For {
                init: Some(Box::new(Stmt::decl(
                    i.clone(),
                    CType::Int,
                    Expr::sub(v("n"), Expr::int(1)),
                ))),
                cond: Some(Expr::cmp(CmpOp::Ge, v(&i), Expr::int(0))),
                step: Some(Box::new(Stmt::assign(
                    LValue::Var(i.clone()),
                    Expr::sub(v(&i), Expr::int(1)),
                ))),
                body: vec![Stmt::assign_op(
                    LValue::Var("s".into()),
                    BinOp::Add,
                    at(*a, v(&i)),
                )],
            });
            CType::Double
        }
        NearMissKind::IteratorHistogram => {
            let i = names.iter();
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(0),
                v("nb"),
                vec![Stmt::assign(
                    store(ArrayId::BinsI, v(&i)),
                    Expr::add(at(ArrayId::BinsI, v(&i)), Expr::int(1)),
                )],
            ));
            CType::Void
        }
        NearMissKind::InPlaceStencil { arr } => {
            let i = names.iter();
            body.push(Stmt::count_for(
                i.clone(),
                Expr::int(1),
                Expr::sub(v("n"), Expr::int(1)),
                vec![Stmt::assign(
                    store(*arr, v(&i)),
                    Expr::add(
                        Expr::mul(Expr::f64(0.5), at(*arr, off_expr(&i, -1))),
                        Expr::mul(Expr::f64(0.5), at(*arr, off_expr(&i, 1))),
                    ),
                )],
            ));
            CType::Void
        }
    }
}

/// Adversary formal parameters. These are NOT drawn from the array pool
/// naming scheme on purpose: the aliasing adversary needs two pointer
/// parameters that only the *call site* (see [`adversary_args`]) reveals
/// to be one object.
fn adversary_params(k: AdversaryKind) -> Vec<(String, CType)> {
    match k {
        AdversaryKind::AliasedParams => vec![
            ("pa".into(), CType::Double.ptr_to()),
            ("pb".into(), CType::Double.ptr_to()),
            ("n".into(), CType::Int),
        ],
        AdversaryKind::NonAffine => vec![
            ("pa".into(), CType::Double.ptr_to()),
            ("pb".into(), CType::Double.ptr_to()),
        ],
        AdversaryKind::TriangularSweep => vec![
            ("pm".into(), CType::Double.ptr_to()),
            ("dim".into(), CType::Int),
        ],
    }
}

/// The entry-point arguments for an adversary call. `AliasedParams`
/// passes the seeded `d2` array twice — the whole point of the variant.
/// All adversaries write seeded (never all-zero) data so a wrongly
/// parallelized replacement cannot hide from differential validation,
/// and every kernel is a convex combination so array magnitudes stay
/// bounded (the computed-histogram invariant elsewhere in generated
/// programs).
fn adversary_args(k: AdversaryKind) -> Vec<Expr> {
    match k {
        AdversaryKind::AliasedParams => vec![v("d2"), v("d2"), v("n")],
        AdversaryKind::NonAffine => vec![v("d0"), v("o0")],
        AdversaryKind::TriangularSweep => vec![v("m0"), v("dim")],
    }
}

fn adversary_body(k: AdversaryKind, names: &mut Names) -> Vec<Stmt> {
    let idx = |base: &str, e: Expr| Expr::idx(base, e);
    let sto = |base: &str, e: Expr| LValue::Index {
        base: base.into(),
        indices: vec![e],
    };
    match k {
        AdversaryKind::AliasedParams => {
            // for i in 1..n-1: pb[i] = 0.5*pa[i-1] + 0.5*pa[i+1]
            let i = names.iter();
            vec![Stmt::count_for(
                i.clone(),
                Expr::int(1),
                Expr::sub(v("n"), Expr::int(1)),
                vec![Stmt::assign(
                    sto("pb", v(&i)),
                    Expr::add(
                        Expr::mul(Expr::f64(0.5), idx("pa", off_expr(&i, -1))),
                        Expr::mul(Expr::f64(0.5), idx("pa", off_expr(&i, 1))),
                    ),
                )],
            )]
        }
        AdversaryKind::NonAffine => {
            // for i in 0..8: pb[i*i] = 0.5*pa[i]   (i*i < LEN)
            let i = names.iter();
            vec![Stmt::count_for(
                i.clone(),
                Expr::int(0),
                Expr::int(8),
                vec![Stmt::assign(
                    sto("pb", Expr::mul(v(&i), v(&i))),
                    Expr::mul(Expr::f64(0.5), idx("pa", v(&i))),
                )],
            )]
        }
        AdversaryKind::TriangularSweep => {
            // for i in 1..dim: for j in 0..i:
            //   pm[i*dim+j] = 0.5*(pm[(i-1)*dim+j] + pm[j*dim+i])
            let i = names.iter();
            let j = names.iter();
            let flat = |row: Expr, col: Expr| Expr::add(Expr::mul(row, v("dim")), col);
            let inner = Stmt::count_for(
                j.clone(),
                Expr::int(0),
                v(&i),
                vec![Stmt::assign(
                    sto("pm", flat(v(&i), v(&j))),
                    Expr::mul(
                        Expr::f64(0.5),
                        Expr::add(
                            idx("pm", flat(Expr::sub(v(&i), Expr::int(1)), v(&j))),
                            idx("pm", flat(v(&j), v(&i))),
                        ),
                    ),
                )],
            );
            vec![Stmt::count_for(
                i.clone(),
                Expr::int(1),
                v("dim"),
                vec![inner],
            )]
        }
    }
}

/// Collects the parameters a function needs (arrays it touches plus the
/// bound scalars), deduplicated in canonical order.
fn func_params(f: &FuncSpec) -> Vec<Param> {
    let mut ps: Vec<Param> = Vec::new();
    let arr = |a: ArrayId, ps: &mut Vec<Param>| ps.push(Param::Arr(a));
    match &f.role {
        Role::Plant(p) => match p {
            PlantKind::Reduction { kernel, a, b, .. } => {
                if *kernel == RedKernel::IntSum {
                    arr(ArrayId::K0, &mut ps);
                } else {
                    arr(*a, &mut ps);
                    if uses_second(*kernel) {
                        arr(*b, &mut ps);
                    }
                }
                ps.push(Param::N);
            }
            PlantKind::Histogram(hv) => {
                match hv {
                    HistoVariant::CountInt => {
                        arr(ArrayId::K0, &mut ps);
                        arr(ArrayId::BinsI, &mut ps);
                    }
                    HistoVariant::WeightedF { w } => {
                        arr(ArrayId::K0, &mut ps);
                        arr(*w, &mut ps);
                        arr(ArrayId::BinsF, &mut ps);
                    }
                    HistoVariant::ComputedBin { src, .. } => {
                        arr(*src, &mut ps);
                        arr(ArrayId::BinsI, &mut ps);
                    }
                    HistoVariant::MaxOfTwo { xa, xb, .. } => {
                        arr(*xa, &mut ps);
                        arr(*xb, &mut ps);
                        arr(ArrayId::BinsI, &mut ps);
                    }
                }
                ps.push(Param::N);
            }
            PlantKind::Stencil1D { src, dst, .. } => {
                arr(*src, &mut ps);
                arr(*dst, &mut ps);
                ps.push(Param::N);
            }
            PlantKind::Stencil2D { .. } => {
                arr(ArrayId::G0, &mut ps);
                arr(ArrayId::GOut, &mut ps);
                ps.push(Param::G);
            }
            PlantKind::Gemm { .. } => {
                arr(ArrayId::M0, &mut ps);
                arr(ArrayId::M1, &mut ps);
                arr(ArrayId::MOut, &mut ps);
                ps.push(Param::Dim);
            }
            PlantKind::Spmv => {
                arr(ArrayId::CsrV, &mut ps);
                arr(ArrayId::CsrR, &mut ps);
                arr(ArrayId::CsrC, &mut ps);
                arr(ArrayId::X0, &mut ps);
                arr(ArrayId::Y0, &mut ps);
                ps.push(Param::Rows);
            }
        },
        Role::NearMiss(nm) => match nm {
            NearMissKind::GuardedReduction { a, g } => {
                arr(*a, &mut ps);
                arr(*g, &mut ps);
                ps.push(Param::N);
            }
            NearMissKind::DownwardReduction { a } => {
                arr(*a, &mut ps);
                ps.push(Param::N);
            }
            NearMissKind::IteratorHistogram => {
                arr(ArrayId::BinsI, &mut ps);
                ps.push(Param::Nb);
            }
            NearMissKind::InPlaceStencil { arr: a } => {
                arr(*a, &mut ps);
                ps.push(Param::N);
            }
        },
        // Adversaries have bespoke (non-pool) parameters; see
        // `adversary_params`/`adversary_args`.
        Role::Adversary(_) | Role::Filler => {}
    }
    for stmt in f.pre.iter().chain(&f.post) {
        match stmt {
            FillerStmt::Recurrence { arr: a, .. } => {
                ps.push(Param::Arr(*a));
                ps.push(Param::N);
            }
            FillerStmt::GuardedScale { src, dst } => {
                ps.push(Param::Arr(*src));
                ps.push(Param::Arr(*dst));
                ps.push(Param::N);
            }
            FillerStmt::ScalarNoise { src, .. } => ps.push(Param::Arr(*src)),
        }
    }
    ps.sort();
    ps.dedup();
    ps
}

fn uses_second(k: RedKernel) -> bool {
    matches!(
        k,
        RedKernel::SumMul | RedKernel::SumDiff | RedKernel::SumCos | RedKernel::TernaryAbs
    )
}

/// The C return type of a function, derivable from its role without
/// rendering the body (kept in sync with `render_plant`/
/// `render_near_miss` by a debug assertion in `render_func`).
fn ret_type(f: &FuncSpec) -> CType {
    match &f.role {
        Role::Plant(PlantKind::Reduction { kernel, .. }) => {
            if *kernel == RedKernel::IntSum {
                CType::Int
            } else {
                CType::Double
            }
        }
        Role::Plant(_) => CType::Void,
        Role::NearMiss(
            NearMissKind::GuardedReduction { .. } | NearMissKind::DownwardReduction { .. },
        ) => CType::Double,
        Role::NearMiss(_) => CType::Void,
        Role::Adversary(_) => CType::Void,
        Role::Filler => CType::Double,
    }
}

fn render_func(f: &FuncSpec) -> FuncDef {
    let mut names = Names::default();
    if let Role::Adversary(k) = &f.role {
        // Adversaries carry no filler and use their own parameter names:
        // the function must stay exactly the almost-parallel shape the
        // dependence analysis has to refuse.
        return FuncDef {
            name: f.name.clone(),
            params: adversary_params(*k),
            ret: ret_type(f),
            body: adversary_body(*k, &mut names),
            line: 0,
        };
    }
    let mut body: Vec<Stmt> = Vec::new();
    let ret = match &f.role {
        Role::Plant(_) | Role::NearMiss(_) => {
            for stmt in &f.pre {
                body.extend(render_filler(stmt, &mut names, None));
            }
            let ty = match &f.role {
                Role::Plant(p) => render_plant(p, &mut names, &mut body),
                Role::NearMiss(nm) => render_near_miss(nm, &mut names, &mut body),
                Role::Adversary(_) | Role::Filler => unreachable!(),
            };
            for stmt in &f.post {
                body.extend(render_filler(stmt, &mut names, None));
            }
            if ty != CType::Void {
                body.push(Stmt::ret(v("s")));
            }
            ty
        }
        Role::Adversary(_) => unreachable!("adversaries render above"),
        Role::Filler => {
            body.push(Stmt::decl("s", CType::Double, Expr::f64(0.0)));
            for stmt in f.pre.iter().chain(&f.post) {
                body.extend(render_filler(stmt, &mut names, Some("s")));
            }
            body.push(Stmt::ret(v("s")));
            CType::Double
        }
    };
    debug_assert_eq!(ret, ret_type(f), "ret_type out of sync for {f:?}");
    FuncDef {
        name: f.name.clone(),
        params: func_params(f)
            .into_iter()
            .map(|p| (p.cname().to_owned(), p.ctype()))
            .collect(),
        ret,
        body,
        line: 0,
    }
}

/// The fixed entry point: takes the full array pool + size scalars and
/// calls every generated function, accumulating scalar results.
fn render_entry(funcs: &[FuncSpec]) -> FuncDef {
    let mut params: Vec<(String, CType)> = ArrayId::ALL
        .iter()
        .map(|a| (a.cname().to_owned(), a.ctype()))
        .collect();
    for s in [Param::N, Param::G, Param::Dim, Param::Rows, Param::Nb] {
        params.push((s.cname().to_owned(), CType::Int));
    }
    let mut body = vec![Stmt::decl("total", CType::Double, Expr::f64(0.0))];
    for f in funcs {
        let args: Vec<Expr> = match &f.role {
            Role::Adversary(k) => adversary_args(*k),
            _ => func_params(f).iter().map(|p| v(p.cname())).collect(),
        };
        let call = Expr::call(&f.name, args);
        match ret_type(f) {
            CType::Void => body.push(Stmt::Expr(call, 0)),
            CType::Int => body.push(Stmt::assign(
                LValue::Var("total".into()),
                Expr::add(v("total"), Expr::cast(CType::Double, call)),
            )),
            _ => body.push(Stmt::assign(
                LValue::Var("total".into()),
                Expr::add(v("total"), call),
            )),
        }
    }
    body.push(Stmt::ret(v("total")));
    FuncDef {
        name: Spec::ENTRY.into(),
        params,
        ret: CType::Double,
        body,
        line: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(role: Role) -> Spec {
        Spec {
            seed: 0,
            funcs: vec![FuncSpec {
                name: "f0".into(),
                role,
                pre: vec![],
                post: vec![],
            }],
        }
    }

    #[test]
    fn every_template_renders_and_compiles() {
        let roles = vec![
            Role::Plant(PlantKind::Reduction {
                kernel: RedKernel::SumMul,
                a: ArrayId::D0,
                b: ArrayId::D1,
                lo: 0,
                hi: 0,
                wrapped: false,
            }),
            Role::Plant(PlantKind::Histogram(HistoVariant::CountInt)),
            Role::Plant(PlantKind::Stencil1D {
                src: ArrayId::D0,
                dst: ArrayId::O0,
                taps: vec![(-1, 3), (0, 6), (1, 3)],
                scale: None,
            }),
            Role::Plant(PlantKind::Stencil2D {
                taps: vec![(0, 0, 1), (-1, 0, 1), (1, 0, 1), (0, -1, 1), (0, 1, 1)],
                scale: Some(2),
            }),
            Role::Plant(PlantKind::Gemm { epilogue: false }),
            Role::Plant(PlantKind::Gemm { epilogue: true }),
            Role::Plant(PlantKind::Spmv),
            Role::NearMiss(NearMissKind::GuardedReduction {
                a: ArrayId::D0,
                g: ArrayId::D1,
            }),
            Role::NearMiss(NearMissKind::DownwardReduction { a: ArrayId::D0 }),
            Role::NearMiss(NearMissKind::IteratorHistogram),
            Role::NearMiss(NearMissKind::InPlaceStencil { arr: ArrayId::O0 }),
            Role::Adversary(AdversaryKind::AliasedParams),
            Role::Adversary(AdversaryKind::NonAffine),
            Role::Adversary(AdversaryKind::TriangularSweep),
        ];
        for role in roles {
            let spec = one(role.clone());
            let src = spec.render();
            minicc::compile(&src, "t").unwrap_or_else(|e| panic!("{role:?}: {e}\n{src}"));
        }
    }

    #[test]
    fn setup_shape_is_seed_independent() {
        let mut m0 = Memory::new();
        let mut m1 = Memory::new();
        let a0 = setup(&mut m0, 0);
        let a1 = setup(&mut m1, 0x5EED);
        assert_eq!(a0.len(), a1.len());
        assert_eq!(a0.len(), ArrayId::ALL.len() + 5);
        assert_eq!(m0.size(), m1.size());
        assert_eq!(m0.allocations(), m1.allocations());
    }
}
