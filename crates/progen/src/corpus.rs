//! The regression-corpus format: a minimized failing program persisted
//! as a plain `.c` file whose leading `// progen:` comment directives
//! record the expectations the fuzz driver was checking. Directive
//! comments are legal minicc comments, so the whole file text IS the
//! compiled source — nothing to strip, nothing to get out of sync.
//!
//! ```c
//! // progen: case seed-42 (progen corpus v1)
//! // progen:expect f0 Reduction
//! // progen:forbid f1 Stencil1D
//! // progen:note planted Reduction in f0 was not detected
//! double f0(double* d0, int n) { ... }
//! double fz_entry(...) { ... }
//! ```
//!
//! Replay (`tests/fuzz_corpus.rs`) runs [`replay_case`] on every `.c`
//! file under `tests/corpus/`: a checked-in case must PASS — each file
//! pins a failure that has since been fixed (or a format example), and a
//! reappearing bug fails the replay with the original expectations.

use crate::check::{check_source, Canary, Checked, Failure};
use crate::spec::Spec;
use idioms::IdiomKind;

/// A parsed corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// The case name (from the `// progen: case` header).
    pub name: String,
    /// The full file text (directives included — they are comments).
    pub source: String,
    /// `(function, kind)` pairs that must be detected and replaced.
    pub expects: Vec<(String, IdiomKind)>,
    /// `(function, kind)` pairs that must not be detected.
    pub forbids: Vec<(String, IdiomKind)>,
    /// Functions that must never be replaced with an
    /// independent-iterations certificate.
    pub adversaries: Vec<String>,
    /// Free-text description of the original failure.
    pub note: String,
}

fn kind_from_name(name: &str) -> Option<IdiomKind> {
    IdiomKind::ALL
        .into_iter()
        .find(|k| k.constraint_name() == name)
}

/// Serializes a (typically shrunk) spec as a corpus file.
#[must_use]
pub fn to_corpus(spec: &Spec, name: &str, note: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("// progen: case {name} (progen corpus v1)\n"));
    for (f, k) in spec.expected() {
        out.push_str(&format!("// progen:expect {f} {}\n", k.constraint_name()));
    }
    for (f, k) in spec.forbidden() {
        out.push_str(&format!("// progen:forbid {f} {}\n", k.constraint_name()));
    }
    for f in spec.adversaries() {
        out.push_str(&format!("// progen:adversary {f}\n"));
    }
    if !note.is_empty() {
        out.push_str(&format!("// progen:note {note}\n"));
    }
    out.push_str(&spec.render());
    out
}

/// Parses a corpus file.
///
/// # Errors
/// A description of the malformed directive.
pub fn parse_case(text: &str) -> Result<CorpusCase, String> {
    let mut case = CorpusCase {
        name: String::new(),
        source: text.to_owned(),
        expects: Vec::new(),
        forbids: Vec::new(),
        adversaries: Vec::new(),
        note: String::new(),
    };
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("// progen:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(name) = rest.strip_prefix("case ") {
            case.name = name.split(" (").next().unwrap_or(name).trim().to_owned();
        } else if let Some(spec) = rest.strip_prefix("expect ") {
            case.expects.push(parse_pair(spec)?);
        } else if let Some(spec) = rest.strip_prefix("forbid ") {
            case.forbids.push(parse_pair(spec)?);
        } else if let Some(func) = rest.strip_prefix("adversary ") {
            let func = func.trim();
            if func.is_empty() || func.contains(char::is_whitespace) {
                return Err(format!("expected `adversary <function>`, got {line:?}"));
            }
            case.adversaries.push(func.to_owned());
        } else if let Some(note) = rest.strip_prefix("note ") {
            case.note = note.to_owned();
        } else {
            return Err(format!("unknown progen directive: {line:?}"));
        }
    }
    if case.name.is_empty() {
        return Err("missing `// progen: case <name>` header".into());
    }
    Ok(case)
}

fn parse_pair(s: &str) -> Result<(String, IdiomKind), String> {
    let mut it = s.split_whitespace();
    let (Some(f), Some(k), None) = (it.next(), it.next(), it.next()) else {
        return Err(format!("expected `<function> <kind>`, got {s:?}"));
    };
    let kind = kind_from_name(k).ok_or_else(|| format!("unknown idiom kind {k:?} in directive"))?;
    Ok((f.to_owned(), kind))
}

/// Replays a corpus case through the full pipeline with its recorded
/// expectations (no canary: replay checks the honest pipeline).
///
/// # Errors
/// The first violated guarantee — a reappearance of the pinned bug.
pub fn replay_case(case: &CorpusCase) -> Result<Checked, Failure> {
    check_source(
        &case.source,
        &format!("corpus_{}", case.name),
        &case.expects,
        &case.forbids,
        &case.adversaries,
        Canary::None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_round_trips_through_parse() {
        let spec = crate::generate(3);
        let text = to_corpus(&spec, "seed-3", "format example");
        let case = parse_case(&text).unwrap();
        assert_eq!(case.name, "seed-3");
        assert_eq!(case.expects, spec.expected());
        assert_eq!(case.forbids, spec.forbidden());
        assert_eq!(case.adversaries, spec.adversaries());
        assert_eq!(case.note, "format example");
        // Directives are comments: the file text compiles as-is.
        minicc::compile(&case.source, "t").unwrap();
    }

    #[test]
    fn malformed_directives_are_rejected() {
        assert!(parse_case("// progen: case x\n// progen:expect f0\n").is_err());
        assert!(parse_case("// progen: case x\n// progen:expect f0 NotAKind\n").is_err());
        assert!(parse_case("// progen: case x\n// progen:adversary f0 extra\n").is_err());
        assert!(parse_case("// progen:bogus\n").is_err());
        assert!(
            parse_case("double f() { return 1.0; }\n").is_err(),
            "missing header"
        );
    }
}
