//! # progen — planted-idiom program generation and differential fuzzing
//!
//! The suite-wide differential validator (PR 3) proves program-scale
//! soundness on 21 hand-reconstructed benchmarks — a fixed corpus the
//! idiom library was written against. This crate turns that validator
//! into an oracle over an *unbounded* program space:
//!
//! * [`generate`] derives, from one `u64` seed, a deterministic mini-C
//!   program [`Spec`] that **plants** known idiom instances (all six
//!   kinds, with randomized kernels, loop bounds, taps and surrounding
//!   filler code) so the expected detection set is known by construction,
//!   and mixes in **near-miss mutants** (in-place stencils, guarded
//!   reductions, iterator-indexed histograms, downward loops) that must
//!   *not* match;
//! * [`check`] runs the full pipeline on the rendered program — parse →
//!   optimize → detect (planted ⊆ detected ∧ planted replaced ∧ no
//!   near-miss false positive) → `transform_module` →
//!   `validate_transform` under multiple input seeds — and reports the
//!   first violated guarantee as a typed [`Failure`];
//! * [`shrink`] greedily minimizes any failing spec (drop functions,
//!   drop filler, unwrap loops, simplify kernels, re-check) so the
//!   regression corpus stores small reproducers;
//! * [`corpus`] persists minimized cases as plain `.c` files with
//!   `// progen:` expectation directives, replayed by `cargo test`.
//!
//! Everything is seeded and deterministic: the same seed generates the
//! same source, data and verdict on every run, so a failing fuzz seed is
//! itself a reproducer.

mod check;
mod corpus;
mod gen;
mod shrink;
mod spec;

pub use check::{check, Canary, Checked, Failure, FUZZ_SEEDS};
pub use corpus::{parse_case, replay_case, to_corpus, CorpusCase};
pub use gen::generate;
pub use shrink::shrink;
pub use spec::{
    setup, AdversaryKind, ArrayId, FillerStmt, FuncSpec, HistoVariant, NearMissKind, PlantKind,
    RedKernel, Role, Spec, BINS, COEFS, DIM, GRID, LEN, ROWS,
};

/// A splitmix64 stream: the one RNG behind generation and shrinking.
/// Deterministic, dependency-free, and stable across platforms.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds a stream.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Unbiased in-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for k in (1..xs.len()).rev() {
            let j = self.below(k + 1);
            xs.swap(k, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spreads() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }
}
