//! The per-program oracle: runs the full pipeline on one generated (or
//! corpus) program and checks every guarantee the generator establishes
//! by construction — planted idioms are detected *and* replaced,
//! near-miss mutants are not reported, detection is not silently
//! truncated, and the transformed program is differentially equivalent
//! to the original under every input seed.

use crate::spec::{setup, Spec};
use idiomatch_core::{ValidationError, ValidationSummary};
use idioms::{DetectOptions, IdiomKind};
use ssair::{Module, Opcode, Type};

/// Input seeds every generated program is validated under (the suite's
/// canonical + randomized set).
pub const FUZZ_SEEDS: [u64; 3] = benchsuite::VALIDATION_SEEDS;

/// A deliberately broken transformation, injected *after* the real
/// replacement pass, to prove end-to-end that the differential validator
/// (and the shrinker feeding the corpus) catches miscompiles. Test-only
/// by construction: nothing outside tests and the fuzz binary's
/// `--canary` mode ever passes anything but [`Canary::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Canary {
    /// No tampering: the honest pipeline.
    None,
    /// Corrupts the `init` argument of the first offloaded reduction
    /// call (`lift_red_*`), the §6 miscompile class that never touches
    /// memory and is visible only through the entry return value.
    BreakReductionInit,
}

impl Canary {
    /// Applies the tamper to a transformed module. Returns `false` when
    /// the module contains no applicable target (e.g. nothing was
    /// replaced) — the check then proceeds untampered.
    pub fn tamper(self, m: &mut Module) -> bool {
        match self {
            Canary::None => false,
            Canary::BreakReductionInit => {
                for f in &mut m.functions {
                    let target = f.value_ids().find(|&vid| {
                        f.instr(vid)
                            .filter(|i| i.opcode == Opcode::Call)
                            .and_then(|i| i.callee.as_deref())
                            .is_some_and(|c| c.starts_with("lift_red_"))
                    });
                    if let Some(call) = target {
                        // args are [read bases.., begin, end, init, extras..]:
                        // the base count varies with the kernel arity, so
                        // locate `init` by skipping the leading pointer
                        // operands plus the two integer bounds.
                        let n_bases = f
                            .instr(call)
                            .expect("call instr")
                            .operands
                            .iter()
                            .take_while(|&&op| matches!(f.value(op).ty, Type::Ptr(_)))
                            .count();
                        let bad = f.const_float(Type::F64, 12.5);
                        f.instr_mut(call).expect("call instr").operands[n_bases + 2] = bad;
                        return true;
                    }
                }
                false
            }
        }
    }
}

/// What a passing check measured.
#[derive(Debug, Clone)]
pub struct Checked {
    /// Functions in the generated module (entry included).
    pub functions: usize,
    /// Planted idiom instances (the recall denominator).
    pub planted: usize,
    /// Near-miss functions checked for false positives.
    pub near_misses: usize,
    /// Total detected instances (planted + incidental).
    pub detected: usize,
    /// Applied replacements.
    pub replaced: usize,
    /// Total solver assignment steps.
    pub solve_steps: u64,
    /// Wall-clock seconds spent in idiom detection alone.
    pub detect_s: f64,
    /// Wall-clock seconds in detection + transformation (the compiler
    /// pipeline, excluding generation/lowering and validation).
    pub detect_replace_s: f64,
    /// Wall-clock seconds executing programs: the multi-seed differential
    /// validation plus the reversed-iteration oracle runs (everything
    /// that goes through the bytecode VM / interpreter).
    pub execute_s: f64,
    /// Independent-iterations regions whose certificate was witnessed by
    /// the reversed-iteration oracle.
    pub reversal_checked: usize,
    /// The differential-validation summary.
    pub validation: ValidationSummary,
}

/// The first guarantee a program violated. Every variant names the
/// function so a shrunk reproducer stays meaningful.
#[derive(Debug, Clone, PartialEq)]
pub enum Failure {
    /// The rendered program failed to compile (a generator bug).
    Compile(String),
    /// Detection hit a solver budget (undercounts would poison recall).
    Truncated {
        /// The function whose search was cut off.
        function: String,
    },
    /// The transformed module failed the structural IR verifier (a
    /// backend bug: the excision or a generated kernel is malformed).
    InvalidIr {
        /// The first verifier error.
        error: String,
    },
    /// An adversarial function was replaced *and* certified safe for
    /// parallel execution (the dependence analysis missed a same-object
    /// overlap, a non-affine subscript, or call-site aliasing).
    AdversaryCertified {
        /// The adversarial function.
        function: String,
        /// The certificate that wrongly admitted it.
        certificate: String,
    },
    /// A planted idiom was not detected (recall loss).
    MissedPlant {
        /// The planted function.
        function: String,
        /// The planted kind.
        kind: IdiomKind,
    },
    /// A planted idiom was detected but not replaced.
    NotReplaced {
        /// The planted function.
        function: String,
        /// The planted kind.
        kind: IdiomKind,
        /// The driver's outcome description.
        why: String,
    },
    /// A near-miss function was reported as its forbidden kind.
    FalsePositive {
        /// The near-miss function.
        function: String,
        /// The forbidden kind that was reported.
        kind: IdiomKind,
    },
    /// A region certified `IndependentIterations` diverged when its
    /// iterations were executed in reverse order — the certificate
    /// claimed a commutativity the program does not have.
    ReversalDiverged(ValidationError),
    /// The transformed program diverged from the original.
    Validation(ValidationError),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Compile(e) => write!(f, "generated program does not compile: {e}"),
            Failure::Truncated { function } => {
                write!(f, "detection truncated in {function}")
            }
            Failure::InvalidIr { error } => {
                write!(f, "transformed module failed IR verification: {error}")
            }
            Failure::AdversaryCertified {
                function,
                certificate,
            } => write!(
                f,
                "adversarial {function} was replaced with a parallel certificate: {certificate}"
            ),
            Failure::MissedPlant { function, kind } => {
                write!(f, "planted {kind:?} in {function} was not detected")
            }
            Failure::NotReplaced {
                function,
                kind,
                why,
            } => write!(f, "planted {kind:?} in {function} was not replaced: {why}"),
            Failure::FalsePositive { function, kind } => {
                write!(f, "near-miss {function} falsely reported as {kind:?}")
            }
            Failure::ReversalDiverged(e) => write!(
                f,
                "independent-iterations certificate failed the reversed-iteration oracle: {e}"
            ),
            Failure::Validation(e) => write!(f, "differential validation failed: {e}"),
        }
    }
}

/// Runs the pipeline and checks every guarantee for one spec.
///
/// # Errors
/// The first violated guarantee, as a [`Failure`].
pub fn check(spec: &Spec, canary: Canary) -> Result<Checked, Failure> {
    check_source(
        &spec.render(),
        &spec.module_name(),
        &spec.expected(),
        &spec.forbidden(),
        &spec.adversaries(),
        canary,
    )
}

/// [`check`] over already-rendered source + expectations: the shared
/// engine behind spec checking and corpus replay. The pipeline itself is
/// [`idiomatch_core::run_pipeline_with`] (the canary is its
/// fault-injection hook); this function layers the generator's
/// guarantees on the outcome.
pub(crate) fn check_source(
    source: &str,
    name: &str,
    expected: &[(String, IdiomKind)],
    forbidden: &[(String, IdiomKind)],
    adversaries: &[String],
    canary: Canary,
) -> Result<Checked, Failure> {
    let out = idiomatch_core::run_pipeline_with(
        source,
        name,
        Spec::ENTRY,
        setup,
        &FUZZ_SEEDS,
        &DetectOptions::default(),
        |m| {
            canary.tamper(m);
        },
    )
    .map_err(|e| Failure::Compile(e.to_string()))?;
    if let Some(function) = out.incomplete_functions.first() {
        return Err(Failure::Truncated {
            function: function.clone(),
        });
    }
    // The transformed module must be structurally well-formed before any
    // semantic comparison (the verifier runs on the honest module, before
    // the canary's deliberate tampering).
    if let Some(error) = out.verify_errors.first() {
        return Err(Failure::InvalidIr {
            error: error.clone(),
        });
    }

    // Recall: every planted (function, kind) pair must be detected.
    for (function, kind) in expected {
        if !out
            .instances
            .iter()
            .any(|i| &i.function == function && i.kind == *kind)
        {
            return Err(Failure::MissedPlant {
                function: function.clone(),
                kind: *kind,
            });
        }
    }
    // Precision: no near-miss function may be reported as its kind.
    for (function, kind) in forbidden {
        if out
            .instances
            .iter()
            .any(|i| &i.function == function && i.kind == *kind)
        {
            return Err(Failure::FalsePositive {
                function: function.clone(),
                kind: *kind,
            });
        }
    }
    // Every planted instance must actually be rewritten, not just found.
    for (function, kind) in expected {
        let outcomes: Vec<&xform::InstanceOutcome> = out
            .xform
            .outcomes
            .iter()
            .filter(|o| &o.instance.function == function && o.instance.kind == *kind)
            .collect();
        if !outcomes.iter().any(|o| o.outcome.is_replaced()) {
            let why = outcomes
                .first()
                .map_or("instance vanished".to_owned(), |o| {
                    format!("{:?}", o.outcome)
                });
            return Err(Failure::NotReplaced {
                function: function.clone(),
                kind: *kind,
                why,
            });
        }
    }

    // Soundness: an adversary function may be detected, and may even be
    // refused-or-serially replaced, but a replacement carrying an
    // independent-iterations certificate means the dependence analysis
    // proved a parallelism that does not exist.
    for function in adversaries {
        for o in &out.xform.outcomes {
            let xform::Outcome::Replaced(rep) = &o.outcome else {
                continue;
            };
            if &o.instance.function == function
                && rep.certificate.safety == idioms::ParallelSafety::IndependentIterations
            {
                return Err(Failure::AdversaryCertified {
                    function: function.clone(),
                    certificate: rep.certificate.reason.clone(),
                });
            }
        }
    }

    // Every surviving independent-iterations certificate is witnessed
    // dynamically: the original program re-run with the certified loop
    // reversed must match the forward run bitwise.
    let t = std::time::Instant::now();
    let reversal = idiomatch_core::check_reversal_oracle(
        &out.module,
        &out.instances,
        Spec::ENTRY,
        setup,
        &FUZZ_SEEDS,
    )
    .map_err(Failure::ReversalDiverged)?;
    let reversal_s = t.elapsed().as_secs_f64();

    let validation = out.validation.map_err(Failure::Validation)?;
    Ok(Checked {
        functions: out.module.functions.len(),
        planted: expected.len(),
        near_misses: forbidden.len(),
        detected: out.xform.outcomes.len(),
        replaced: out.xform.replaced(),
        solve_steps: out.solve_steps,
        detect_s: out.timings.detect_s,
        detect_replace_s: out.timings.detect_s + out.timings.transform_s,
        execute_s: out.timings.validate_s + reversal_s,
        reversal_checked: reversal.checked,
        validation,
    })
}
