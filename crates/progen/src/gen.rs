//! Seed → [`Spec`]: the randomized (but fully deterministic) program
//! generator. Every random choice is drawn from one splitmix64 stream,
//! so a seed is a complete reproducer of its program.

use crate::spec::{
    AdversaryKind, ArrayId, FillerStmt, FuncSpec, HistoVariant, NearMissKind, PlantKind, RedKernel,
    Role, Spec, COEFS,
};
use crate::Rng;

/// Seeded `double[LEN]` arrays usable as idiom inputs.
const D_POOL: [ArrayId; 4] = [ArrayId::D0, ArrayId::D1, ArrayId::D2, ArrayId::D3];
/// Zeroed `double[LEN]` arrays usable as outputs / in-place scratch.
const O_POOL: [ArrayId; 2] = [ArrayId::O0, ArrayId::O1];

fn coef_ix(rng: &mut Rng) -> u8 {
    rng.below(COEFS.len()) as u8
}

fn pick_d(rng: &mut Rng) -> ArrayId {
    *rng.pick(&D_POOL)
}

/// A second D-pool array distinct from `a`.
fn pick_d_other(rng: &mut Rng, a: ArrayId) -> ArrayId {
    loop {
        let b = pick_d(rng);
        if b != a {
            return b;
        }
    }
}

fn gen_reduction(rng: &mut Rng) -> PlantKind {
    let scaled = RedKernel::SumScaled(coef_ix(rng));
    let kernel = *rng.pick(&[
        RedKernel::SumMul,
        RedKernel::Sum,
        RedKernel::SumSq,
        scaled,
        RedKernel::SumDiff,
        RedKernel::Prod,
        RedKernel::SumSqrtAbs,
        RedKernel::SumCos,
        RedKernel::TernaryAbs,
        RedKernel::MaxAbs,
        RedKernel::IntSum,
    ]);
    let a = pick_d(rng);
    PlantKind::Reduction {
        kernel,
        a,
        b: pick_d_other(rng, a),
        lo: rng.below(3) as u8,
        hi: rng.below(2) as u8,
        wrapped: rng.chance(1, 4),
    }
}

fn gen_histogram(rng: &mut Rng) -> PlantKind {
    let variant = match rng.below(4) {
        0 => HistoVariant::CountInt,
        1 => HistoVariant::WeightedF { w: pick_d(rng) },
        2 => HistoVariant::ComputedBin {
            src: pick_d(rng),
            c: *rng.pick(&[9.99, 15.0, 31.0, 63.0]),
        },
        _ => {
            let xa = pick_d(rng);
            HistoVariant::MaxOfTwo {
                xa,
                xb: pick_d_other(rng, xa),
                c: *rng.pick(&[9.99, 15.0, 31.0]),
            }
        }
    };
    PlantKind::Histogram(variant)
}

fn gen_stencil1d(rng: &mut Rng) -> PlantKind {
    let radius = 1 + rng.below(2) as i64;
    let mut taps: Vec<(i64, u8)> = Vec::new();
    for o in -radius..=radius {
        if rng.chance(3, 5) {
            taps.push((o, coef_ix(rng)));
        }
    }
    if taps.is_empty() {
        taps.push((0, coef_ix(rng)));
    }
    PlantKind::Stencil1D {
        src: pick_d(rng),
        dst: *rng.pick(&O_POOL),
        taps,
        scale: if rng.chance(1, 3) {
            Some(coef_ix(rng))
        } else {
            None
        },
    }
}

fn gen_stencil2d(rng: &mut Rng) -> PlantKind {
    let mut taps: Vec<(i64, i64, u8)> = Vec::new();
    for r in -1..=1i64 {
        for c in -1..=1i64 {
            if rng.chance(2, 5) {
                taps.push((r, c, coef_ix(rng)));
            }
        }
    }
    if taps.is_empty() {
        taps.push((0, 0, coef_ix(rng)));
    }
    PlantKind::Stencil2D {
        taps,
        scale: if rng.chance(1, 3) {
            Some(coef_ix(rng))
        } else {
            None
        },
    }
}

fn gen_plant(rng: &mut Rng) -> PlantKind {
    match rng.below(6) {
        0 => gen_reduction(rng),
        1 => gen_histogram(rng),
        2 => gen_stencil1d(rng),
        3 => gen_stencil2d(rng),
        4 => PlantKind::Gemm {
            epilogue: rng.chance(1, 2),
        },
        _ => PlantKind::Spmv,
    }
}

fn gen_near_miss(rng: &mut Rng) -> NearMissKind {
    match rng.below(4) {
        0 => {
            let a = pick_d(rng);
            let g = if rng.chance(1, 3) {
                a
            } else {
                pick_d_other(rng, a)
            };
            NearMissKind::GuardedReduction { a, g }
        }
        1 => NearMissKind::DownwardReduction { a: pick_d(rng) },
        2 => NearMissKind::IteratorHistogram,
        _ => NearMissKind::InPlaceStencil {
            arr: *rng.pick(&[ArrayId::O0, ArrayId::O1, ArrayId::D2, ArrayId::D3]),
        },
    }
}

fn gen_adversary(rng: &mut Rng) -> AdversaryKind {
    match rng.below(3) {
        0 => AdversaryKind::AliasedParams,
        1 => AdversaryKind::NonAffine,
        _ => AdversaryKind::TriangularSweep,
    }
}

/// A coefficient index whose value is ≤ 0.5: recurrence sweeps must be
/// convex combinations (`ca + cb ≤ 1`) so they never amplify array
/// magnitudes — computed histogram bins elsewhere in the program rely on
/// `|data| ≤ 0.5` staying invariant. (Found by the fuzzer itself: seed
/// 507 originally drew `cb = 1.0`, grew `d2` past 1.0 over two sweeps
/// and drove `(int)(fabs(d2[i]) * 31.0)` out of the bins array.)
fn small_coef_ix(rng: &mut Rng) -> u8 {
    rng.below(6) as u8 // COEFS[0..=5] are 0.05 .. 0.5
}

fn gen_filler_stmt(rng: &mut Rng) -> FillerStmt {
    match rng.below(3) {
        0 => FillerStmt::Recurrence {
            arr: *rng.pick(&[ArrayId::O0, ArrayId::O1, ArrayId::D2, ArrayId::D3]),
            ca: small_coef_ix(rng),
            cb: small_coef_ix(rng),
        },
        1 => {
            let src = pick_d(rng);
            FillerStmt::GuardedScale {
                src,
                dst: *rng.pick(&O_POOL),
            }
        }
        _ => FillerStmt::ScalarNoise {
            src: pick_d(rng),
            c: coef_ix(rng),
        },
    }
}

fn gen_fillers(rng: &mut Rng, max: usize) -> Vec<FillerStmt> {
    (0..rng.below(max + 1))
        .map(|_| gen_filler_stmt(rng))
        .collect()
}

/// Generates the deterministic program of `seed`: 1–4 planted idioms,
/// 0–2 near-miss mutants, 0–1 dependence-analysis adversaries and 0–2
/// filler functions, each (plants only) with optional surrounding filler
/// statements, in a shuffled order.
#[must_use]
pub fn generate(seed: u64) -> Spec {
    let mut rng = Rng::new(seed);
    let mut roles: Vec<(Role, Vec<FillerStmt>, Vec<FillerStmt>)> = Vec::new();
    for _ in 0..1 + rng.below(4) {
        let pre = gen_fillers(&mut rng, 1);
        let post = gen_fillers(&mut rng, 1);
        roles.push((Role::Plant(gen_plant(&mut rng)), pre, post));
    }
    for _ in 0..rng.below(3) {
        // Near-miss functions carry no in-function filler: nothing else
        // in the function may produce the forbidden kind.
        roles.push((Role::NearMiss(gen_near_miss(&mut rng)), vec![], vec![]));
    }
    for _ in 0..rng.below(2) {
        // Dependence-analysis adversaries; like near-misses they carry no
        // filler — the function must stay exactly the almost-parallel
        // shape the legality layer has to refuse.
        roles.push((Role::Adversary(gen_adversary(&mut rng)), vec![], vec![]));
    }
    for _ in 0..rng.below(3) {
        let stmts = {
            let mut s = gen_fillers(&mut rng, 2);
            if s.is_empty() {
                s.push(gen_filler_stmt(&mut rng));
            }
            s
        };
        roles.push((Role::Filler, stmts, vec![]));
    }
    // Shuffle, then name in final program order.
    rng.shuffle(&mut roles);
    let funcs = roles
        .into_iter()
        .enumerate()
        .map(|(k, (role, pre, post))| FuncSpec {
            name: format!("f{k}"),
            role,
            pre,
            post,
        })
        .collect();
    Spec { seed, funcs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b);
            assert_eq!(a.render(), b.render());
        }
    }

    #[test]
    fn generated_programs_have_planted_content() {
        let mut planted = 0;
        let mut near = 0;
        for seed in 0..64 {
            let s = generate(seed);
            planted += s.expected().len();
            near += s.forbidden().len();
        }
        assert!(planted >= 64, "every program plants at least one idiom");
        assert!(near > 0, "near-misses must occur in the stream");
    }
}
