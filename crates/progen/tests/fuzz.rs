//! End-to-end properties of the generator + pipeline oracle: a batch of
//! seeded programs must pass every guarantee (100% planted recall, zero
//! near-miss false positives, zero validation failures), and an injected
//! canary miscompile must be caught and shrunk to a tiny reproducer.

use progen::{
    check, generate, shrink, to_corpus, AdversaryKind, Canary, Failure, PlantKind, RedKernel, Role,
};

/// Seeds checked by `cargo test` (the release-mode `fuzz` binary and the
/// CI smoke job run hundreds more).
const BATCH: u64 = 40;

#[test]
fn every_generated_program_passes_the_pipeline_oracle() {
    let mut planted = 0;
    let mut near = 0;
    let mut replaced = 0;
    for seed in 0..BATCH {
        let spec = generate(seed);
        let checked = check(&spec, Canary::None).unwrap_or_else(|f| {
            panic!(
                "seed {seed} violated a guarantee: {f}\n--- source ---\n{}",
                spec.render()
            )
        });
        assert!(
            checked.validation.elements > 0,
            "seed {seed}: vacuous validation"
        );
        planted += checked.planted;
        near += checked.near_misses;
        replaced += checked.replaced;
    }
    // The batch must actually exercise the machinery.
    assert!(planted >= BATCH as usize, "at least one plant per program");
    assert!(near > 0, "near-misses must occur in the batch");
    assert!(
        replaced >= planted,
        "every plant replaced (plus incidentals)"
    );
}

fn one_adversary(kind: AdversaryKind) -> progen::Spec {
    progen::Spec {
        seed: 0,
        funcs: vec![progen::FuncSpec {
            name: "f0".into(),
            role: Role::Adversary(kind),
            pre: vec![],
            post: vec![],
        }],
    }
}

#[test]
fn adversaries_are_never_certified_parallel() {
    // Each adversary alone must pass the oracle: refused, undetected, or
    // at worst replaced WITHOUT an independent-iterations certificate —
    // and the honest pipeline must stay differentially sound either way.
    for kind in [
        AdversaryKind::AliasedParams,
        AdversaryKind::NonAffine,
        AdversaryKind::TriangularSweep,
    ] {
        let spec = one_adversary(kind);
        check(&spec, Canary::None)
            .unwrap_or_else(|f| panic!("{kind:?} violated the oracle: {f}\n{}", spec.render()));
    }
}

#[test]
fn aliased_stencil_is_detected_but_refused_by_call_site_facts() {
    // The aliasing adversary is the one the detector actually *sees*: in
    // its own function it is a textbook out-of-place stencil, and only
    // the whole-module call-site facts (the entry passes d2 twice) stop
    // the rewrite. Pin all three stages: detected, attempted, refused.
    let spec = one_adversary(AdversaryKind::AliasedParams);
    let out = idiomatch_core::run_pipeline_with(
        &spec.render(),
        "adv_alias",
        progen::Spec::ENTRY,
        progen::setup,
        &progen::FUZZ_SEEDS,
        &idioms::DetectOptions::default(),
        |_| {},
    )
    .expect("adversary program compiles and validates");
    assert!(
        out.instances
            .iter()
            .any(|i| i.function == "f0" && i.kind == idioms::IdiomKind::Stencil1D),
        "the aliased stencil must be detected per-function: {:?}",
        out.instances
    );
    let f0: Vec<_> = out
        .xform
        .outcomes
        .iter()
        .filter(|o| o.instance.function == "f0")
        .collect();
    assert!(
        !f0.is_empty(),
        "the instance must reach the transform driver"
    );
    for o in &f0 {
        assert!(
            matches!(o.outcome, xform::Outcome::Failed(_)),
            "the rewrite must be refused at the legality gate, got {:?}",
            o.outcome
        );
    }
    // And the original loop survives untouched, so the program still
    // validates (run_pipeline_with already checked that above).
    assert_eq!(out.xform.replaced(), 0);
}

#[test]
fn canary_miscompile_is_caught_and_shrinks_to_a_tiny_reproducer() {
    // Find a generated program that plants a reduction — the canary
    // corrupts the first offloaded reduction call's init argument, a
    // divergence that never touches memory (return-value-only).
    let seed = (0..200)
        .find(|&s| {
            generate(s)
                .expected()
                .iter()
                .any(|(_, k)| *k == idioms::IdiomKind::Reduction)
        })
        .expect("a reduction-planting seed exists");
    let spec = generate(seed);
    assert!(
        check(&spec, Canary::None).is_ok(),
        "the honest pipeline must pass before tampering"
    );
    let fails = |s: &progen::Spec| {
        matches!(
            check(s, Canary::BreakReductionInit),
            Err(Failure::Validation(_))
        )
    };
    assert!(fails(&spec), "the canary must be caught by validation");
    let min = shrink(&spec, fails);
    let source = min.render();
    let lines = source.lines().count();
    assert!(
        lines <= 25,
        "reproducer must be tiny, got {lines} lines:\n{source}"
    );
    // The survivor is exactly one reduction plant (plus the entry).
    assert_eq!(min.funcs.len(), 1, "only the canary target survives");
    assert!(
        matches!(min.funcs[0].role, Role::Plant(PlantKind::Reduction { .. })),
        "survivor: {:?}",
        min.funcs[0].role
    );
    // And it serializes to a replayable corpus file.
    let text = to_corpus(
        &min,
        &format!("canary-{seed}"),
        "canary: broken lift_red init",
    );
    let case = progen::parse_case(&text).unwrap();
    assert!(
        progen::replay_case(&case).is_ok(),
        "the honest pipeline passes on the reproducer (the canary is not in the code)"
    );
}

#[test]
fn canary_corrupts_init_even_for_two_input_kernels() {
    // SumMul's lift_red call carries TWO read bases before the bounds,
    // so `init` sits at operand 4, not 3. The canary must corrupt init
    // itself — producing the silent return-value-only divergence class —
    // and not a loop bound (which would crash the run instead of
    // miscomputing it).
    let spec = progen::Spec {
        seed: 0,
        funcs: vec![progen::FuncSpec {
            name: "f0".into(),
            role: Role::Plant(PlantKind::Reduction {
                kernel: RedKernel::SumMul,
                a: progen::ArrayId::D0,
                b: progen::ArrayId::D1,
                lo: 0,
                hi: 0,
                wrapped: false,
            }),
            pre: vec![],
            post: vec![],
        }],
    };
    match check(&spec, Canary::BreakReductionInit) {
        Err(Failure::Validation(idiomatch_core::ValidationError::ReturnValue { .. })) => {}
        other => panic!("expected a return-value divergence, got {other:?}"),
    }
}

#[test]
fn simplest_kernels_shrink_cleanly() {
    // The shrinker's kernel simplification must preserve compilability
    // for every reduction kernel (Sum target).
    for kernel in [
        RedKernel::SumMul,
        RedKernel::Prod,
        RedKernel::TernaryAbs,
        RedKernel::IntSum,
    ] {
        let spec = progen::Spec {
            seed: 0,
            funcs: vec![progen::FuncSpec {
                name: "f0".into(),
                role: Role::Plant(PlantKind::Reduction {
                    kernel,
                    a: progen::ArrayId::D0,
                    b: progen::ArrayId::D1,
                    lo: 1,
                    hi: 1,
                    wrapped: true,
                }),
                pre: vec![],
                post: vec![],
            }],
        };
        assert!(check(&spec, Canary::None).is_ok(), "{kernel:?}");
    }
}
