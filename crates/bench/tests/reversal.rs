//! Suite-wide reversed-iteration oracle: every `IndependentIterations`
//! certificate handed out over the 21 bundled benchmarks must survive
//! running its loop backwards (bitwise-identical final state), and the
//! sweep must actually witness a meaningful share of them.

#[test]
fn suite_certificates_survive_iteration_reversal() {
    let mut checked = 0;
    let mut skipped = Vec::new();
    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
        let instances = idioms::detect_module(&module);
        let oracle = idiomatch_core::check_reversal_oracle(
            &module,
            &instances,
            b.entry,
            b.setup,
            &benchsuite::VALIDATION_SEEDS,
        )
        .unwrap_or_else(|e| panic!("{}: reversed run diverged: {e}", b.name));
        checked += oracle.checked;
        for (f, why) in oracle.skipped {
            skipped.push(format!("{}/{f}: {why}", b.name));
        }
    }
    // The suite currently certifies 10 independent-iterations regions
    // and the rewriter covers every one; a new skip means a loop shape
    // regressed out of oracle coverage.
    assert!(skipped.is_empty(), "uncovered regions: {skipped:?}");
    assert!(checked >= 10, "only {checked} regions witnessed");
}
