//! The offload determinism suite: every transformed benchmark must
//! produce bitwise-identical results under the thread-pool executors
//! ([`hetero::exec`]) and the serial hosts, for every validation seed
//! and worker count — and a `serial`-certified region must never reach
//! a parallel executor.
//!
//! The type system carries half the guarantee: [`hetero::ParallelCert`]
//! has no `Serial` variant, so a parallel executor for a serial region
//! cannot even be constructed (`TryFrom` is the only way in, and it
//! refuses). The audited runtime backstop —
//! [`hetero::ExecStats::serial_cert_parallel_entries`] — is asserted
//! zero across the full sweep here.

use hetero::exec::{register_parallel, ExecConfig, ExecStats, ParallelCert};
use idioms::ParallelSafety;
use interp::{Machine, Value};
use std::sync::Arc;

const SEEDS: [u64; 2] = [
    benchsuite::VALIDATION_SEEDS[0],
    benchsuite::VALIDATION_SEEDS[1],
];
const WORKERS: [usize; 2] = [1, 4];

fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::I(x), Value::I(y)) => x == y,
        (Value::P(x), Value::P(y)) => x == y,
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

#[test]
fn parallel_execution_is_bitwise_equal_to_serial_for_every_benchmark() {
    let stats = Arc::new(ExecStats::default());
    let mut replaced_total = 0usize;
    let mut serial_certs = 0usize;
    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
        let xf = xform::transform_module(&module);
        let certs = xf.certificates();
        replaced_total += xf.replaced();
        serial_certs += certs
            .values()
            .filter(|&&s| s == ParallelSafety::Serial)
            .count();

        for &seed in &SEEDS {
            // Serial oracle: the sequential library hosts, everything
            // else interpreted in place.
            let mut oracle = Machine::new(&xf.module);
            hetero::hosts::register_all(&mut oracle);
            let args = (b.setup)(&mut oracle.mem, seed);
            let want = oracle
                .run(b.entry, &args)
                .unwrap_or_else(|e| panic!("{}: serial run failed: {e}", b.name));

            for &w in &WORKERS {
                let mut vm = Machine::new(&xf.module);
                register_parallel(
                    &mut vm,
                    &xf.module,
                    &certs,
                    &ExecConfig::with_workers(w),
                    &stats,
                );
                let pargs = (b.setup)(&mut vm.mem, seed);
                let got = vm.run(b.entry, &pargs).unwrap_or_else(|e| {
                    panic!("{}: parallel run (workers={w}) failed: {e}", b.name)
                });
                assert!(
                    bits_eq(&got, &want),
                    "{}: return value diverged (seed={seed:#x}, workers={w})",
                    b.name
                );
                assert!(
                    vm.mem.bytes() == oracle.mem.bytes(),
                    "{}: memory image diverged (seed={seed:#x}, workers={w})",
                    b.name
                );
            }
        }
    }
    assert_eq!(replaced_total, 60, "the paper's 60 replaced regions");
    assert_eq!(
        stats.serial_cert_parallel_entries(),
        0,
        "a serial-certified region reached a parallel entry point"
    );
    assert_eq!(
        serial_certs, 0,
        "no committed replacement is serial-certified"
    );
    assert!(
        stats.parallel_launches() > 0,
        "the pool actually ran kernels"
    );
}

#[test]
fn serial_certificates_cannot_construct_a_parallel_executor() {
    // Compile-time face: ParallelCert has no Serial variant, so the only
    // conversion refuses. Runtime face: the audited admit() counts it.
    assert!(ParallelCert::try_from(ParallelSafety::Serial).is_err());
    let stats = ExecStats::default();
    assert!(ParallelCert::admit(ParallelSafety::Serial, &stats).is_err());
    assert_eq!(stats.serial_cert_parallel_entries(), 1);
}
