//! Criterion benches: detection robustness/throughput over the whole
//! suite (§8.1's compile-time claim) and solver microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_detection(c: &mut Criterion) {
    // The full-suite pass takes ~1 s per iteration; keep sampling modest.

    // Pre-compile all modules once; measure detection itself.
    let modules: Vec<ssair::Module> = benchsuite::all()
        .iter()
        .map(|b| minicc::compile(b.source, b.name).unwrap())
        .collect();
    c.bench_function("detect_all_21_benchmarks", |b| {
        // The parallel driver fans out over ALL functions of the suite at
        // once (not per module) so the fan-out isn't throttled by small
        // modules.
        let fs: Vec<&ssair::Function> = modules.iter().flat_map(|m| &m.functions).collect();
        let opts = idioms::DetectOptions::default();
        b.iter(|| {
            let n: usize = idioms::detect_functions(&fs, &opts)
                .iter()
                .map(|d| d.instances.len())
                .sum();
            assert_eq!(n, 60);
        })
    });
    let cg = minicc::compile(
        benchsuite::all()
            .iter()
            .find(|b| b.name == "CG")
            .unwrap()
            .source,
        "CG",
    )
    .unwrap();
    c.bench_function("detect_spmv_in_cg", |b| {
        b.iter(|| {
            let f = cg.function("cg_spmv").unwrap();
            let n = idioms::detect(f).len();
            assert_eq!(n, 1);
        })
    });
    c.bench_function("frontend_compile_cg", |b| {
        let src = benchsuite::all()
            .iter()
            .find(|b| b.name == "CG")
            .unwrap()
            .source;
        b.iter(|| minicc::compile(src, "CG").unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detection
}
criterion_main!(benches);
