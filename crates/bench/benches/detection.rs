//! Criterion benches: detection robustness/throughput over the whole
//! suite (§8.1's compile-time claim) and solver microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_detection(c: &mut Criterion) {
    // The full-suite pass takes ~1 s per iteration; keep sampling modest.

    // Pre-compile all modules once; measure detection itself.
    let modules: Vec<ssair::Module> = benchsuite::all()
        .iter()
        .map(|b| minicc::compile(b.source, b.name).unwrap())
        .collect();
    c.bench_function("detect_all_21_benchmarks", |b| {
        // The parallel driver fans out over ALL functions of the suite at
        // once (not per module) so the fan-out isn't throttled by small
        // modules.
        let fs: Vec<&ssair::Function> = modules.iter().flat_map(|m| &m.functions).collect();
        let opts = idioms::DetectOptions::default();
        b.iter(|| {
            let n: usize = idioms::detect_functions(&fs, &opts)
                .iter()
                .map(|d| d.instances.len())
                .sum();
            assert_eq!(n, 60);
        })
    });
    let cg = minicc::compile(
        benchsuite::all()
            .iter()
            .find(|b| b.name == "CG")
            .unwrap()
            .source,
        "CG",
    )
    .unwrap();
    c.bench_function("detect_spmv_in_cg", |b| {
        b.iter(|| {
            let f = cg.function("cg_spmv").unwrap();
            let n = idioms::detect(f).len();
            assert_eq!(n, 1);
        })
    });
    c.bench_function("frontend_compile_cg", |b| {
        let src = benchsuite::all()
            .iter()
            .find(|b| b.name == "CG")
            .unwrap()
            .source;
        b.iter(|| minicc::compile(src, "CG").unwrap())
    });
}

/// Solve-only microbenchmarks: each idiom kind's compiled constraint run
/// in isolation on a representative function that contains the idiom
/// (no frontend lowering, no post-processing, no fan-out — pure solver).
fn bench_solver_per_idiom(c: &mut Criterion) {
    use idioms::IdiomKind;
    // (kind, representative C source, function name).
    let cases: [(IdiomKind, &str, &str); 6] = [
        (
            IdiomKind::Gemm,
            "void mm(double* a, double* b, double* o, int n) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++) {
                        double s = 0.0;
                        for (int k = 0; k < n; k++) s += a[i*n+k] * b[k*n+j];
                        o[i*n+j] = s;
                    }
            }",
            "mm",
        ),
        (
            IdiomKind::Spmv,
            "void spmv(double* a, int* rp, int* ci, double* x, double* y, int m) {
                for (int i = 0; i < m; i++) {
                    double s = 0.0;
                    for (int k = rp[i]; k < rp[i+1]; k++) s = s + a[k] * x[ci[k]];
                    y[i] = s;
                }
            }",
            "spmv",
        ),
        (
            IdiomKind::Stencil2D,
            "void jac(double* o, double* a, int n) {
                for (int i = 1; i < n - 1; i++)
                    for (int j = 1; j < n - 1; j++)
                        o[i*n+j] = 0.25 * (a[(i-1)*n+j] + a[(i+1)*n+j] + a[i*n+j-1] + a[i*n+j+1]);
            }",
            "jac",
        ),
        (
            IdiomKind::Stencil1D,
            "void blur(double* o, double* a, int n) {
                for (int i = 1; i < n - 1; i++) o[i] = a[i-1] + 2.0*a[i] + a[i+1];
            }",
            "blur",
        ),
        (
            IdiomKind::Histogram,
            "void hist(int* k, int* b, int n) {
                for (int i = 0; i < n; i++) b[k[i]] = b[k[i]] + 1;
            }",
            "hist",
        ),
        (
            IdiomKind::Reduction,
            "double dot(double* x, double* y, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) s += x[i] * y[i];
                return s;
            }",
            "dot",
        ),
    ];
    for (kind, src, fname) in cases {
        let module = minicc::compile(src, "bench").unwrap();
        let f = module.function(fname).unwrap().clone();
        let constraint = idioms::compiled(kind);
        let opts = solver::SolveOptions::default();
        // Analyses are built once (as detection shares them per function);
        // the measured loop is the constraint search alone.
        let s = solver::Solver::new(&f);
        assert!(
            !s.solve(constraint, &opts).is_empty(),
            "{kind:?}: representative function must contain the idiom"
        );
        c.bench_function(&format!("solve_{}", kind.constraint_name()), |b| {
            b.iter(|| {
                let n = s.solve_outcome(constraint, &opts).solutions.len();
                assert!(n > 0);
            })
        });
    }
}

/// Execution-only microbenchmarks: one canonical-seed run of a
/// representative benchmark on each executor tier — the tree-walking
/// `Machine` oracle, the bytecode `Vm` (compile amortized outside the
/// loop), and compile+execute on the `Vm` (the per-validation-seed cost
/// the pipeline actually pays once, then reuses).
fn bench_execution(c: &mut Criterion) {
    let suite = benchsuite::all();
    for name in ["CG", "stencil"] {
        let b = suite
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("suite has {name}"));
        let module = minicc::compile(b.source, b.name).unwrap();
        let tag = name.replace('-', "_");
        c.bench_function(&format!("exec_walker_{tag}"), |bench| {
            bench.iter(|| {
                let mut vm = interp::Machine::new(&module);
                let args = (b.setup)(&mut vm.mem, benchsuite::CANONICAL_SEED);
                vm.run(b.entry, &args).unwrap()
            })
        });
        let code = interp::compile_module(&module);
        c.bench_function(&format!("exec_vm_{tag}"), |bench| {
            bench.iter(|| {
                let mut vm = interp::Vm::new(&code);
                let args = (b.setup)(&mut vm.mem, benchsuite::CANONICAL_SEED);
                vm.run(b.entry, &args).unwrap()
            })
        });
        c.bench_function(&format!("compile_exec_vm_{tag}"), |bench| {
            bench.iter(|| {
                let code = interp::compile_module(&module);
                let mut vm = interp::Vm::new(&code);
                let args = (b.setup)(&mut vm.mem, benchsuite::CANONICAL_SEED);
                vm.run(b.entry, &args).unwrap()
            })
        });
    }
}

criterion_group! {
    name = solver_benches;
    config = Criterion::default().sample_size(20);
    targets = bench_solver_per_idiom
}

criterion_group! {
    name = exec_benches;
    config = Criterion::default().sample_size(20);
    targets = bench_execution
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detection
}
criterion_main!(benches, solver_benches, exec_benches);
