//! Figure 18: end-to-end speedup vs sequential, best API per platform.
//! The "lazy" column is the red-bar runtime optimization of §8.3.
use hetero::Platform;
fn main() {
    let analyses = idiomatch_bench::analyze_all();
    let mut rows = Vec::new();
    for a in analyses.iter().filter(|a| a.covered) {
        let mut row = vec![a.name.to_owned()];
        for p in Platform::ALL {
            match idiomatch_core::speedup_on(a, p, false) {
                Some((api, s)) => row.push(format!("{:.2}x ({})", s, api.label())),
                None => row.push("-".into()),
            }
        }
        if a.lazy {
            match idiomatch_core::speedup_on(a, Platform::Gpu, true) {
                Some((_, s)) => row.push(format!("{s:.2}x")),
                None => row.push("-".into()),
            }
        } else {
            row.push("".into());
        }
        rows.push(row);
    }
    idiomatch_bench::print_rows(&["Benchmark", "CPU", "iGPU", "GPU", "GPU+lazy copy"], &rows);
}
