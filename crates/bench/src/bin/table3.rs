//! Table 3: per-API runtime (ms) per platform for the covered benchmarks.
use hetero::{Api, Platform};
fn main() {
    let analyses = idiomatch_bench::analyze_all();
    let apis = Api::AUTO;
    for platform in Platform::ALL {
        println!("\n== {} ==", platform.label());
        let mut headers: Vec<&str> = vec!["Benchmark"];
        headers.extend(apis.iter().map(|a| a.label()));
        let mut rows = Vec::new();
        for a in analyses.iter().filter(|a| a.covered) {
            let Some(kind) = a.dominant_kind else {
                continue;
            };
            let mut row = vec![a.name.to_owned()];
            let mut best = f64::INFINITY;
            let mut cells = Vec::new();
            for api in apis {
                match hetero::kernel_time_ms(api, platform, kind, &a.workload, true) {
                    Some(t) => {
                        best = best.min(t);
                        cells.push(Some(t));
                    }
                    None => cells.push(None),
                }
            }
            for c in cells {
                row.push(match c {
                    Some(t) if (t - best).abs() < 1e-9 => format!("*{}*", idiomatch_bench::ms(t)),
                    Some(t) => idiomatch_bench::ms(t),
                    None => "-".to_owned(),
                });
            }
            rows.push(row);
        }
        idiomatch_bench::print_rows(&headers, &rows);
    }
    println!("\n(*fastest per row/platform; '-' = API does not target this idiom/platform)");
}
