//! Table 1: idioms detected by IDL, ICC and Polly across all benchmarks.
fn main() {
    let analyses = idiomatch_bench::analyze_all();
    let t = idiomatch_bench::table1(&analyses);
    let headers = [
        "Detector",
        "Scalar Red.",
        "Histogram Red.",
        "Stencil",
        "Matrix Op.",
        "Sparse Op.",
    ];
    let rows: Vec<Vec<String>> = ["Polly", "ICC", "IDL"]
        .iter()
        .map(|d| {
            let mut row = vec![(*d).to_owned()];
            row.extend(t[*d].iter().map(|c| {
                if *c == 0 {
                    "-".to_owned()
                } else {
                    c.to_string()
                }
            }));
            row
        })
        .collect();
    idiomatch_bench::print_rows(&headers, &rows);
}
