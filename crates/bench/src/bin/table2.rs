//! Table 2: compile-time cost of detection (seconds, overhead %).
//!
//! Detection goes through the parallel module driver, so the "with IDL"
//! column is wall-clock as a compiler user would see it; the printed
//! worker count makes the numbers comparable across hosts (on one core
//! this is exactly the serial cost the paper reports against).
use std::time::Instant;
fn main() {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rows = Vec::new();
    for b in benchsuite::all() {
        let t0 = Instant::now();
        let module = minicc::compile(b.source, b.name).unwrap();
        let without = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let _ = idioms::detect_module(&module);
        let with = without + t1.elapsed().as_secs_f64();
        rows.push(vec![
            b.name.to_owned(),
            format!("{without:.3}"),
            format!("{with:.3}"),
            format!("{:.0}", 100.0 * (with - without) / without.max(1e-9)),
        ]);
    }
    idiomatch_bench::print_rows(
        &["Benchmark", "without IDL (s)", "with IDL (s)", "overhead %"],
        &rows,
    );
    let avg: f64 = rows
        .iter()
        .map(|r| r[3].parse::<f64>().unwrap_or(0.0))
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "\naverage overhead: {avg:.0}% wall-clock over {workers} detection worker(s) (paper: 82%, serial)"
    );
}
