//! Table 2: compile-time cost of detection (seconds, overhead %).
use std::time::Instant;
fn main() {
    let mut rows = Vec::new();
    for b in benchsuite::all() {
        let t0 = Instant::now();
        let module = minicc::compile(b.source, b.name).unwrap();
        let without = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for f in &module.functions {
            let _ = idioms::detect(f);
        }
        let with = without + t1.elapsed().as_secs_f64();
        rows.push(vec![
            b.name.to_owned(),
            format!("{without:.3}"),
            format!("{with:.3}"),
            format!("{:.0}", 100.0 * (with - without) / without.max(1e-9)),
        ]);
    }
    idiomatch_bench::print_rows(
        &["Benchmark", "without IDL (s)", "with IDL (s)", "overhead %"],
        &rows,
    );
    let avg: f64 = rows
        .iter()
        .map(|r| r[3].parse::<f64>().unwrap_or(0.0))
        .sum::<f64>()
        / rows.len() as f64;
    println!("\naverage overhead: {avg:.0}% (paper: 82%)");
}
