//! The corpus-scale batch analysis driver: runs the `corpus` service
//! over a directory of `.c` files or a seeded progen corpus and condenses
//! the per-module JSONL records into `BENCH_corpus.json` — throughput,
//! p50/p95/p99 per-module latency, instance totals and the full failure
//! taxonomy.
//!
//! Usage:
//! `cargo run --release -p idiomatch-bench --bin corpus -- [flags]`
//!
//! * `--progen N` — analyze an N-program seeded progen corpus (default
//!   500; `--seed-start S` shifts the seed range);
//! * `--dir PATH` — analyze every `.c` file directly under PATH instead;
//! * `--workers N`, `--shard-size N`, `--timeout-ms N` — pool size,
//!   checkpoint granularity, per-module wall-clock budget;
//! * `--state DIR` — where `records.jsonl` + `checkpoint.json` live
//!   (default `target/corpus`); `--resume` continues from the checkpoint
//!   there instead of starting fresh;
//! * `--out PATH` — artifact path (default `BENCH_corpus.json`);
//! * `--check` — CI drift guard: re-runs the default 500-program smoke
//!   corpus in a scratch directory and verifies the committed artifact's
//!   stable fields (totals, taxonomy — timings exempt) still match.
//!
//! For a progen corpus the run is also a gate: any non-`ok` record,
//! recall loss or near-miss false positive exits non-zero.

use corpus::{run, RunConfig, RunSummary, Source, Taxonomy};
use idiomatch_bench::report::{nested_object, percentile, Json, Report};

/// The fixed smoke configuration behind the committed artifact and
/// `--check`: 500 progen programs from seed 0, shard size 32.
const SMOKE_COUNT: usize = 500;

fn summarize(summary: &RunSummary, source: &Source, cfg: &RunConfig) -> Report {
    let recs = &summary.records;
    let mut by_kind: std::collections::BTreeMap<&str, u64> = Default::default();
    let mut by_cert: std::collections::BTreeMap<&str, u64> = Default::default();
    for r in recs {
        for (k, v) in &r.instances {
            *by_kind.entry(k.as_str()).or_default() += v;
        }
        for (k, v) in &r.certificates {
            *by_cert.entry(k.as_str()).or_default() += v;
        }
    }
    let kind_pairs: Vec<(&str, u64)> = by_kind.into_iter().collect();
    let cert_pairs: Vec<(&str, u64)> = by_cert.into_iter().collect();
    let tax_pairs: Vec<(&str, u64)> = summary
        .taxonomy()
        .into_iter()
        .map(|(t, n)| (t.as_str(), n))
        .collect();
    let sum = |f: fn(&corpus::ModuleRecord) -> u64| recs.iter().map(f).sum::<u64>();
    let sum_f = |f: fn(&corpus::ModuleRecord) -> f64| recs.iter().map(f).sum::<f64>();
    let latencies: Vec<f64> = recs.iter().map(|r| r.latency_ms).collect();
    let exec_ms: Vec<f64> = recs.iter().map(|r| r.exec_ms).collect();
    Report::new()
        .stable("bench", Json::S("corpus_batch".into()))
        .stable("source", Json::S(source.descriptor()))
        .stable("modules", Json::U(recs.len() as u64))
        .stable("shard_size", Json::U(cfg.shard_size as u64))
        .stable("shards", Json::U(summary.total_shards as u64))
        .stable("complete", Json::B(summary.complete))
        .stable("instances_by_kind", nested_object(&kind_pairs))
        .stable("detected", Json::U(sum(|r| r.detected)))
        .stable("replaced", Json::U(sum(|r| r.replaced)))
        .stable("legality_proven", Json::U(sum(|r| r.legality_proven)))
        .stable("legality_assumed", Json::U(sum(|r| r.legality_assumed)))
        .stable("certificates", nested_object(&cert_pairs))
        .stable("planted", Json::U(sum(|r| r.planted)))
        .stable("planted_hit", Json::U(sum(|r| r.planted_hit)))
        .stable("false_positives", Json::U(sum(|r| r.false_positives)))
        .stable(
            "validated_modules",
            Json::U(recs.iter().filter(|r| r.validated).count() as u64),
        )
        .bounded_up("total_solve_steps", sum(|r| r.solve_steps), 0.05)
        .stable("pruned_pairs", Json::U(sum(|r| r.pruned_pairs)))
        .stable("taxonomy", nested_object(&tax_pairs))
        .stable(
            "abandoned_threads",
            Json::U(summary.abandoned_threads as u64),
        )
        .volatile("workers", Json::U(cfg.workers as u64))
        .volatile("timeout_ms", Json::U(cfg.timeout.as_millis() as u64))
        .volatile("analyzed_this_run", Json::U(summary.analyzed as u64))
        .volatile("resumed_records", Json::U(summary.resumed_records as u64))
        .rate(
            "elapsed_s",
            "modules_per_sec",
            summary.analyzed as u64,
            summary.wall_s,
        )
        .volatile("p50_latency_ms", Json::F(percentile(&latencies, 50.0), 3))
        .volatile("p95_latency_ms", Json::F(percentile(&latencies, 95.0), 3))
        .volatile("p99_latency_ms", Json::F(percentile(&latencies, 99.0), 3))
        // Per-module latency splits: frontend compile and (bytecode VM)
        // multi-seed validation, so artifact diffs show which stage moved.
        .volatile("compile_ms_total", Json::F(sum_f(|r| r.compile_ms), 3))
        .volatile("exec_ms_total", Json::F(sum_f(|r| r.exec_ms), 3))
        .volatile("p50_exec_ms", Json::F(percentile(&exec_ms, 50.0), 3))
        .volatile("p95_exec_ms", Json::F(percentile(&exec_ms, 95.0), 3))
}

fn main() {
    let mut source: Option<Source> = None;
    let mut progen_count: usize = SMOKE_COUNT;
    let mut seed_start: u64 = 0;
    let mut cfg_workers: Option<usize> = None;
    let mut shard_size: usize = 32;
    let mut timeout_ms: u64 = 10_000;
    let mut state_dir = String::from("target/corpus");
    let mut resume = false;
    let mut out_path = String::from("BENCH_corpus.json");
    let mut check = false;

    let mut args = std::env::args().skip(1);
    let parse = |v: Option<String>, flag: &str| -> u64 {
        v.and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{flag} takes a number"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--progen" => progen_count = parse(args.next(), "--progen") as usize,
            "--seed-start" => seed_start = parse(args.next(), "--seed-start"),
            "--dir" => {
                let path = args.next().expect("--dir takes a path");
                source = Some(Source::dir(path).unwrap_or_else(|e| panic!("{e}")));
            }
            "--workers" => cfg_workers = Some(parse(args.next(), "--workers") as usize),
            "--shard-size" => shard_size = parse(args.next(), "--shard-size") as usize,
            "--timeout-ms" => timeout_ms = parse(args.next(), "--timeout-ms"),
            "--state" => state_dir = args.next().expect("--state takes a path"),
            "--resume" => resume = true,
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--check" => check = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    if check {
        // Re-run the smoke corpus in scratch state and compare stable
        // fields against the committed artifact.
        let scratch = std::env::temp_dir().join(format!("corpus_check_{}", std::process::id()));
        let mut cfg = RunConfig::new(Source::progen(SMOKE_COUNT, 0), &scratch);
        cfg.progress = true;
        let summary = run(&cfg).unwrap_or_else(|e| panic!("corpus run failed: {e}"));
        let report = summarize(&summary, &cfg.source, &cfg);
        let _ = std::fs::remove_dir_all(&scratch);
        if let Err(e) = report.check_drift(&out_path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        eprintln!("{out_path}: stable fields match the current code");
        return;
    }

    let source = source.unwrap_or_else(|| Source::progen(progen_count, seed_start));
    let is_progen = matches!(source, Source::Progen { .. });
    let mut cfg = RunConfig::new(source, &state_dir);
    if let Some(w) = cfg_workers {
        cfg.workers = w.max(1);
    }
    cfg.shard_size = shard_size.max(1);
    cfg.timeout = std::time::Duration::from_millis(timeout_ms.max(1));
    cfg.resume = resume;
    cfg.progress = true;

    let summary = run(&cfg).unwrap_or_else(|e| panic!("corpus run failed: {e}"));
    let report = summarize(&summary, &cfg.source, &cfg);
    report.write(&out_path);
    print!("{}", report.render());

    // A progen corpus knows its ground truth: treat any service failure,
    // recall loss or false positive as a gate violation.
    if is_progen {
        let bad: Vec<&corpus::ModuleRecord> = summary
            .records
            .iter()
            .filter(|r| {
                r.outcome != Taxonomy::Ok
                    || r.planted_hit != r.planted
                    || r.false_positives > 0
                    || r.legality_proven + r.legality_assumed != r.replaced
                    || r.certificates.values().sum::<u64>() != r.replaced
            })
            .collect();
        if !bad.is_empty() {
            for r in bad.iter().take(10) {
                eprintln!(
                    "{}: {} planted={} hit={} fp={} {}",
                    r.module, r.outcome, r.planted, r.planted_hit, r.false_positives, r.detail
                );
            }
            eprintln!(
                "{} of {} modules violated the oracle",
                bad.len(),
                summary.records.len()
            );
            std::process::exit(1);
        }
    }
}
