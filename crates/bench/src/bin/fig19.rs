//! Figure 19: our best configuration vs handwritten OpenMP (CPU) and
//! OpenCL (GPU) reference implementations.
use hetero::Platform;
fn main() {
    let analyses = idiomatch_bench::analyze_all();
    let mut rows = Vec::new();
    for a in analyses.iter().filter(|a| a.covered) {
        let ours = Platform::ALL
            .iter()
            .filter_map(|&p| idiomatch_core::speedup_on(a, p, a.lazy))
            .map(|(_, s)| s)
            .fold(0.0f64, f64::max);
        let omp = idiomatch_core::reference_speedup(a, Platform::Cpu).unwrap_or(0.0);
        let ocl = idiomatch_core::reference_speedup(a, Platform::Gpu).unwrap_or(0.0);
        rows.push(vec![
            a.name.to_owned(),
            format!("{ours:.2}x"),
            format!("{omp:.2}x"),
            format!("{ocl:.2}x"),
        ]);
    }
    idiomatch_bench::print_rows(
        &["Benchmark", "IDL (best)", "OpenMP ref", "OpenCL ref"],
        &rows,
    );
    println!("\n(EP/IS/MG/tpacf references parallelize the whole application — §8.3)");
}
