//! IDL library linter gate: runs every `analysis::lint` rule over a
//! compiled IDL library (building blocks expanded into each constraint)
//! and exits non-zero on any diagnostic. CI runs this over the bundled
//! idiom library so it stays lint-clean — a dead variable in a building
//! block multiplies solver work in every idiom inheriting it, and a
//! statically unsatisfiable branch is a constraint that can never fire.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin lint` (bundled
//! library), or pass a path to lint your own `.idl` file — it is parsed
//! on top of the bundled building blocks and every definition is
//! compiled and linted. Parameterized helpers (which only compile via
//! `inherits Name(P=..)`) are skipped standalone; their expansions are
//! linted inside each constraint that instantiates them.

use idioms::IdiomKind;

fn main() {
    let path = std::env::args().nth(1);
    let owned: Vec<idl::CompiledConstraint>;
    let compiled: Vec<&idl::CompiledConstraint> = match &path {
        None => IdiomKind::ALL
            .iter()
            .map(|&k| idioms::compiled(k))
            .collect(),
        Some(p) => {
            let src = std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("{p}: {e}");
                std::process::exit(2);
            });
            let user = idl::parse_library(&src).unwrap_or_else(|e| {
                eprintln!("{p}: parse error: {e}");
                std::process::exit(2);
            });
            let mut lib = idl::parse_library(idioms::BUILDING_BLOCKS_IDL)
                .expect("the bundled building blocks parse");
            let names: Vec<String> = user.defs.iter().map(|d| d.name.clone()).collect();
            lib.extend(user);
            owned = names
                .iter()
                .filter_map(|name| match idl::compile(&lib, name) {
                    Ok(c) => Some(c),
                    // A parameterized helper has no standalone expansion;
                    // it is linted through its instantiating constraints.
                    Err(e) if e.to_string().contains("unbound calculation name") => None,
                    Err(e) => {
                        eprintln!("{p}: {name}: compile error: {e}");
                        std::process::exit(2);
                    }
                })
                .collect();
            owned.iter().collect()
        }
    };
    let lints = analysis::lint_constraints(&compiled);
    for l in &lints {
        eprintln!("{l}");
    }
    if lints.is_empty() {
        let atoms: usize = compiled.iter().map(|c| c.tree.atom_count()).sum();
        eprintln!(
            "lint clean: {} constraints, {} compiled atoms{}",
            compiled.len(),
            atoms,
            match path {
                None => format!(", {} IDL lines", idioms::idl_line_count()),
                Some(_) => String::new(),
            }
        );
    } else {
        eprintln!("{} lint diagnostic(s)", lints.len());
        std::process::exit(1);
    }
}
