//! Figure 17: runtime coverage of the detected idioms per benchmark.
fn main() {
    let analyses = idiomatch_bench::analyze_all();
    let mut rows = Vec::new();
    for a in &analyses {
        let pct = 100.0 * a.coverage;
        let bar = "#".repeat((pct / 2.5) as usize);
        rows.push(vec![a.name.to_owned(), format!("{pct:5.1}%"), bar]);
    }
    idiomatch_bench::print_rows(&["Benchmark", "coverage", ""], &rows);
    println!("\n(the distribution is bimodal: idioms either dominate or are negligible — §8.2)");
}
