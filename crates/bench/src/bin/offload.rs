//! Profile-guided parallel offload: the thread-pool backend measured
//! end to end, writing `BENCH_offload.json`.
//!
//! Three sections:
//!
//! 1. **Micro kernels** — a dense GEMM and a CSR SpMV large enough to
//!    dwarf launch overhead, run through the serial hosts
//!    ([`hetero::hosts`]) and the thread-pool executors
//!    ([`hetero::exec`]) at 1 and 4 workers. Wall-clock, speedup and
//!    bitwise equality are reported; the speedup a machine can show is
//!    bounded by its physical cores (a 1-core container measures ~1×
//!    no matter the worker count — the bin says so instead of lying).
//! 2. **Suite determinism + timing** — every benchmark is transformed,
//!    then executed once with the serial hosts and once per worker
//!    count with [`hetero::exec::register_parallel`] dispatching off the
//!    parallel-safety certificates, under two input seeds. Return value
//!    and the full memory image must be bitwise identical; any
//!    divergence, and any `serial`-certified region reaching a parallel
//!    entry point, fails the run.
//! 3. **Offload decisions** — the measured interpreter profile of each
//!    benchmark ([`idiomatch_core::analyze`]) drives
//!    [`hetero::best_configuration_profiled`]: regions below the
//!    coverage threshold stay on the host (Figure 17's bimodal split),
//!    the rest pick the best modeled API under their certificate.
//!
//! Counts, certificates and offload decisions are stable (drift-gated by
//! `--check`); every timing is volatile.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin offload --
//! [--workers N] [--out PATH] [--check]`

use hetero::exec::{self, ExecConfig, ExecStats, ParallelCert};
use hetero::hosts;
use idiomatch_bench::report::{nested_object, Json, Report};
use idioms::ParallelSafety;
use interp::{Machine, Memory, Value};
use std::sync::Arc;
use std::time::Instant;

/// Worker counts every configuration is validated under.
const WORKER_GRID: [usize; 2] = [1, 4];
/// Input seeds for the determinism sweep (canonical + one randomized).
const SEEDS: [u64; 2] = [
    benchsuite::VALIDATION_SEEDS[0],
    benchsuite::VALIDATION_SEEDS[1],
];
/// Micro-kernel shapes: GEMM edge and SpMV row count.
const GEMM_N: usize = 160;
const SPMV_ROWS: usize = 150_000;
/// Best-of-N wall-clock per micro configuration.
const MICRO_REPS: usize = 3;

fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::I(x), Value::I(y)) => x == y,
        (Value::P(x), Value::P(y)) => x == y,
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// `gemm_f64` argument vector for an n×n×n product, row-major all round
/// (`row_scaled = 0`, C stride = n ≥ n: the in-place windowed path).
fn gemm_micro_args(mem: &mut Memory, n: usize) -> Vec<Value> {
    let a = benchsuite::fill_f64(mem, n * n, benchsuite::mix(7, 1));
    let b = benchsuite::fill_f64(mem, n * n, benchsuite::mix(7, 2));
    let c = benchsuite::zeros_f64(mem, n * n);
    let ni = n as i64;
    vec![
        Value::P(a),
        Value::P(b),
        Value::P(c),
        Value::I(ni),
        Value::I(ni),
        Value::I(ni),
        Value::I(ni),
        Value::I(ni),
        Value::I(ni),
        Value::I(0),
        Value::I(0),
        Value::I(0),
        Value::F(0.0),
    ]
}

/// `csrmv_f64` argument vector over a seeded CSR matrix.
fn spmv_micro_args(mem: &mut Memory, rows: usize) -> Vec<Value> {
    let (vals, rowptr, colidx) = benchsuite::csr(mem, rows, 8, 7);
    let x = benchsuite::fill_f64(mem, rows, benchsuite::mix(7, 3));
    let y = benchsuite::zeros_f64(mem, rows);
    vec![
        Value::P(vals),
        Value::P(rowptr),
        Value::P(colidx),
        Value::P(x),
        Value::P(y),
        Value::I(rows as i64),
        Value::I(4),
        Value::I(4),
    ]
}

/// Best-of-[`MICRO_REPS`] wall-clock milliseconds. The micro kernels
/// fully overwrite their output (beta = +0.0 / dense `y`), so repeated
/// in-place runs are idempotent.
fn best_ms(mut run: impl FnMut() -> Result<Value, String>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MICRO_REPS {
        let t = Instant::now();
        run().unwrap_or_else(|e| panic!("micro kernel failed: {e}"));
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Micro {
    serial_ms: f64,
    parallel_ms: Vec<(usize, f64)>,
    /// Ordered-combine (`reduction_only`) path at the largest grid entry.
    combine_ms: f64,
    bitwise_equal: bool,
}

/// Runs one micro kernel serially and at every grid worker count,
/// checking the full memory image of each parallel run against the
/// serial one.
fn run_micro(
    setup: impl Fn(&mut Memory) -> Vec<Value>,
    serial: impl Fn(&mut Memory, &[Value]) -> Result<Value, String>,
    parallel: impl Fn(ParallelCert, usize, &mut Memory, &[Value]) -> Result<Value, String>,
) -> Micro {
    let mut smem = Memory::new();
    let sargs = setup(&mut smem);
    let serial_ms = best_ms(|| serial(&mut smem, &sargs));

    let mut bitwise_equal = true;
    let mut parallel_ms = Vec::new();
    for &w in &WORKER_GRID {
        let mut pmem = Memory::new();
        let pargs = setup(&mut pmem);
        let ms = best_ms(|| parallel(ParallelCert::Independent, w, &mut pmem, &pargs));
        bitwise_equal &= pmem.bytes() == smem.bytes();
        parallel_ms.push((w, ms));
    }
    // The partial-accumulator + ordered-combine path must agree too.
    let mut cmem = Memory::new();
    let cargs = setup(&mut cmem);
    let combine_ms = best_ms(|| parallel(ParallelCert::ReductionOnly, 4, &mut cmem, &cargs));
    bitwise_equal &= cmem.bytes() == smem.bytes();

    Micro {
        serial_ms,
        parallel_ms,
        combine_ms,
        bitwise_equal,
    }
}

struct SuiteRun {
    ret: Value,
    bytes: Vec<u8>,
    ms: f64,
}

fn run_serial(module: &ssair::Module, b: &benchsuite::Benchmark, seed: u64) -> SuiteRun {
    let mut vm = Machine::new(module);
    hosts::register_all(&mut vm);
    let args = (b.setup)(&mut vm.mem, seed);
    let t = Instant::now();
    let ret = vm
        .run(b.entry, &args)
        .unwrap_or_else(|e| panic!("{}: serial run failed: {e}", b.name));
    let ms = t.elapsed().as_secs_f64() * 1e3;
    SuiteRun {
        ret,
        bytes: vm.mem.bytes().to_vec(),
        ms,
    }
}

fn run_parallel(
    module: &ssair::Module,
    certs: &std::collections::BTreeMap<String, ParallelSafety>,
    b: &benchsuite::Benchmark,
    seed: u64,
    workers: usize,
    stats: &Arc<ExecStats>,
) -> SuiteRun {
    let mut vm = Machine::new(module);
    exec::register_parallel(
        &mut vm,
        module,
        certs,
        &ExecConfig::with_workers(workers),
        stats,
    );
    let args = (b.setup)(&mut vm.mem, seed);
    let t = Instant::now();
    let ret = vm
        .run(b.entry, &args)
        .unwrap_or_else(|e| panic!("{}: parallel run (w={workers}) failed: {e}", b.name));
    let ms = t.elapsed().as_secs_f64() * 1e3;
    SuiteRun {
        ret,
        bytes: vm.mem.bytes().to_vec(),
        ms,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_offload.json");
    let mut check = false;
    let mut cfg = ExecConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers takes a number");
                cfg = ExecConfig::with_workers(n);
            }
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--check" => check = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // ---- Section 1: micro kernels --------------------------------------
    let gemm = run_micro(
        |mem| gemm_micro_args(mem, GEMM_N),
        hosts::gemm_serial,
        exec::gemm_parallel,
    );
    let spmv = run_micro(
        |mem| spmv_micro_args(mem, SPMV_ROWS),
        hosts::csrmv_serial,
        exec::csrmv_parallel,
    );
    let speedup_at = |m: &Micro, w: usize| {
        m.parallel_ms
            .iter()
            .find(|&&(pw, _)| pw == w)
            .map_or(0.0, |&(_, ms)| m.serial_ms / ms.max(1e-9))
    };
    if cores < *WORKER_GRID.last().expect("grid nonempty") {
        eprintln!(
            "note: {cores} core(s) available — measured speedup is bounded by \
             physical parallelism, not by the executor"
        );
    }

    // ---- Section 2: suite determinism sweep ----------------------------
    // ---- Section 3: profile-guided offload decisions -------------------
    let stats = Arc::new(ExecStats::default());
    let mut divergences = 0u64;
    let mut replaced_total = 0u64;
    let mut cert_counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    let mut decisions: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let (mut suite_serial_ms, mut suite_parallel_ms) = (0.0f64, 0.0f64);

    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
        let xf = xform::transform_module(&module);
        let certs = xf.certificates();
        replaced_total += xf.replaced() as u64;
        for o in &xf.outcomes {
            if let xform::Outcome::Replaced(rep) = &o.outcome {
                *cert_counts
                    .entry(rep.certificate.safety.as_str())
                    .or_insert(0) += 1;
            }
        }

        let (mut ser_ms, mut par_ms, mut equal) = (0.0f64, 0.0f64, true);
        for &seed in &SEEDS {
            let oracle = run_serial(&xf.module, &b, seed);
            ser_ms += oracle.ms;
            for &w in &WORKER_GRID {
                let got = run_parallel(&xf.module, &certs, &b, seed, w, &stats);
                if w == WORKER_GRID[WORKER_GRID.len() - 1] {
                    par_ms += got.ms;
                }
                if !value_bits_eq(&got.ret, &oracle.ret) || got.bytes != oracle.bytes {
                    divergences += 1;
                    equal = false;
                    eprintln!(
                        "{}: DIVERGENCE seed={seed:#x} workers={w} \
                         (parallel output is not bitwise equal to serial)",
                        b.name
                    );
                }
            }
        }
        suite_serial_ms += ser_ms;
        suite_parallel_ms += par_ms;

        // Profile the original program and decide offload from measurement.
        let a = idiomatch_core::analyze(&b);
        let safety = idiomatch_core::region_safety(&a);
        let decision = a.dominant_kind.and_then(|kind| {
            hetero::best_configuration_profiled(
                hetero::Platform::Gpu,
                kind,
                &a.profile,
                b.lazy,
                safety,
            )
        });
        decisions.push(format!(
            "    {{\"name\": \"{}\", \"certificate\": \"{}\", \"clears_threshold\": {}, \
             \"offload\": \"{}\", \"modeled_speedup\": {:.3}}}",
            b.name,
            safety.as_str(),
            a.profile.clears_threshold(),
            decision.map_or("none", |(api, _)| api.label()),
            decision.map_or(1.0, |(_, s)| s),
        ));
        rows.push(vec![
            b.name.to_owned(),
            xf.replaced().to_string(),
            safety.as_str().to_owned(),
            decision.map_or("none", |(api, _)| api.label()).to_owned(),
            format!("{ser_ms:.1}"),
            format!("{par_ms:.1}"),
            format!("{:.2}", ser_ms / par_ms.max(1e-9)),
            if equal { "ok" } else { "DIVERGED" }.to_owned(),
        ]);
    }

    let headers = [
        "benchmark",
        "replaced",
        "certificate",
        "offload",
        "serial_ms",
        "par4_ms",
        "speedup",
        "bitwise",
    ];
    idiomatch_bench::print_rows(&headers, &rows);
    println!(
        "gemm {GEMM_N}³: serial {:.1} ms, 4 workers {:.1} ms ({:.2}x); \
         spmv {SPMV_ROWS} rows: serial {:.1} ms, 4 workers {:.1} ms ({:.2}x); {cores} core(s)",
        gemm.serial_ms,
        gemm.parallel_ms[1].1,
        speedup_at(&gemm, 4),
        spmv.serial_ms,
        spmv.parallel_ms[1].1,
        speedup_at(&spmv, 4),
    );

    let certs_json: Vec<(&str, u64)> = [
        ParallelSafety::IndependentIterations,
        ParallelSafety::ReductionOnly,
        ParallelSafety::Serial,
    ]
    .iter()
    .map(|s| {
        (
            s.as_str(),
            cert_counts.get(s.as_str()).copied().unwrap_or(0),
        )
    })
    .collect();
    let seeds_json: Vec<String> = SEEDS.iter().map(u64::to_string).collect();
    let grid_json: Vec<String> = WORKER_GRID.iter().map(usize::to_string).collect();
    let micro_ok = gemm.bitwise_equal && spmv.bitwise_equal;

    let report = Report::new()
        .stable("bench", Json::S("parallel_offload".into()))
        .stable("seeds", Json::Raw(format!("[{}]", seeds_json.join(", "))))
        .stable(
            "worker_grid",
            Json::Raw(format!("[{}]", grid_json.join(", "))),
        )
        .stable("benchmarks", Json::U(rows.len() as u64))
        .stable("replaced", Json::U(replaced_total))
        .stable("certificates", nested_object(&certs_json))
        .stable("divergences", Json::U(divergences))
        .stable(
            "serial_cert_parallel_entries",
            Json::U(stats.serial_cert_parallel_entries()),
        )
        .stable("parallel_launches", Json::U(stats.parallel_launches()))
        .stable("sequential_launches", Json::U(stats.sequential_launches()))
        .stable("gemm_n", Json::U(GEMM_N as u64))
        .stable("spmv_rows", Json::U(SPMV_ROWS as u64))
        .stable("micro_bitwise_equal", Json::B(micro_ok))
        .stable(
            "offload_decisions",
            Json::Raw(format!("[\n{}\n  ]", decisions.join(",\n"))),
        )
        .volatile("cores", Json::U(cores as u64))
        .volatile("default_workers", Json::U(cfg.workers as u64))
        .volatile("gemm_serial_ms", Json::F(gemm.serial_ms, 3))
        .volatile("gemm_parallel_ms_w1", Json::F(gemm.parallel_ms[0].1, 3))
        .volatile("gemm_parallel_ms_w4", Json::F(gemm.parallel_ms[1].1, 3))
        .volatile("gemm_combine_ms_w4", Json::F(gemm.combine_ms, 3))
        .volatile("gemm_speedup_w4", Json::F(speedup_at(&gemm, 4), 3))
        .volatile("spmv_serial_ms", Json::F(spmv.serial_ms, 3))
        .volatile("spmv_parallel_ms_w1", Json::F(spmv.parallel_ms[0].1, 3))
        .volatile("spmv_parallel_ms_w4", Json::F(spmv.parallel_ms[1].1, 3))
        .volatile("spmv_combine_ms_w4", Json::F(spmv.combine_ms, 3))
        .volatile("spmv_speedup_w4", Json::F(speedup_at(&spmv, 4), 3))
        .volatile("suite_serial_ms", Json::F(suite_serial_ms, 3))
        .volatile("suite_parallel_ms_w4", Json::F(suite_parallel_ms, 3));

    if check {
        if let Err(e) = report.check_drift(&out_path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        eprintln!("{out_path}: stable fields match the current code");
    } else {
        report.write(&out_path);
    }

    if divergences > 0 || !micro_ok || stats.serial_cert_parallel_entries() > 0 {
        eprintln!(
            "offload gate violated: divergences={divergences} micro_bitwise_equal={micro_ok} \
             serial_cert_parallel_entries={}",
            stats.serial_cert_parallel_entries()
        );
        std::process::exit(1);
    }
}
