//! Figure 16: detected idioms per benchmark, by class.
fn main() {
    let analyses = idiomatch_bench::analyze_all();
    let classes = [
        "Scalar Reduction",
        "Histogram Reduction",
        "Stencil",
        "Matrix Op.",
        "Sparse Matrix Op.",
    ];
    let mut rows = Vec::new();
    for a in &analyses {
        let mut row = vec![a.name.to_owned()];
        let mut total = 0;
        for c in classes {
            let n = a.by_class.get(c).copied().unwrap_or(0);
            total += n;
            row.push(if n == 0 { "".into() } else { n.to_string() });
        }
        row.push(total.to_string());
        rows.push(row);
    }
    let headers = [
        "Benchmark",
        "ScalarRed",
        "HistoRed",
        "Stencil",
        "MatrixOp",
        "SparseOp",
        "total",
    ];
    idiomatch_bench::print_rows(&headers, &rows);
}
