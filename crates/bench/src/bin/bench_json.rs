//! Machine-readable perf baseline: times suite-wide idiom detection and
//! writes `BENCH_detect.json` (mean/min ms per full-suite pass, total and
//! per-idiom solver steps) so the performance trajectory across PRs has
//! comparable data points.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin bench_json`
//! (optionally `[passes] [output-path]`).

use idioms::{DetectOptions, IdiomKind};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    // Arguments in any order: a number is the pass count, anything else
    // is the output path.
    let mut passes: usize = 10;
    let mut out_path = String::from("BENCH_detect.json");
    for arg in std::env::args().skip(1) {
        match arg.parse::<usize>() {
            Ok(n) => passes = n.max(1),
            Err(_) => out_path = arg,
        }
    }

    let modules: Vec<ssair::Module> = benchsuite::all()
        .iter()
        .map(|b| minicc::compile(b.source, b.name).expect("bundled benchmark compiles"))
        .collect();
    let fs: Vec<&ssair::Function> = modules.iter().flat_map(|m| &m.functions).collect();
    let opts = DetectOptions::default();

    // Warm-up pass (also the source of the step/instance counts, which
    // are deterministic across passes).
    let detections = idioms::detect_functions(&fs, &opts);
    let instances: usize = detections.iter().map(|d| d.instances.len()).sum();
    let complete = detections.iter().all(|d| d.complete);
    let total_steps: u64 = detections.iter().map(|d| d.steps).sum();
    let mut steps_by_idiom: BTreeMap<&'static str, u64> = BTreeMap::new();
    for d in &detections {
        for (&kind, &s) in &d.steps_by_kind {
            *steps_by_idiom.entry(kind.constraint_name()).or_default() += s;
        }
    }
    debug_assert_eq!(steps_by_idiom.len(), IdiomKind::ALL.len());

    let mut samples_ms: Vec<f64> = Vec::with_capacity(passes);
    for _ in 0..passes {
        let t = Instant::now();
        let n: usize = idioms::detect_functions(&fs, &opts)
            .iter()
            .map(|d| d.instances.len())
            .sum();
        assert_eq!(n, instances, "detection must be deterministic");
        samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let mean_ms = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    let min_ms = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);

    // Hand-rolled JSON: flat, deterministic key order, no dependencies.
    let steps_json: Vec<String> = steps_by_idiom
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"detect_all_21_benchmarks\",\n  \"functions\": {},\n  \"instances\": {},\n  \"passes\": {},\n  \"mean_ms\": {:.3},\n  \"min_ms\": {:.3},\n  \"complete\": {},\n  \"total_solve_steps\": {},\n  \"solve_steps_by_idiom\": {{\n{}\n  }}\n}}\n",
        fs.len(),
        instances,
        passes,
        mean_ms,
        min_ms,
        complete,
        total_steps,
        steps_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("BENCH_detect.json is writable");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
