//! Machine-readable perf baseline: times suite-wide idiom detection and
//! writes `BENCH_detect.json` (mean/min ms per full-suite pass, per-idiom
//! mean ms, per-function latency percentiles, total and per-idiom solver
//! steps) so the performance trajectory across PRs has comparable data
//! points.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin bench_json`
//! (optionally `--passes N` — a bare number still works — and an output
//! path), or `--check` to verify the committed artifact against the
//! current code without rewriting it (the CI drift guard). The guard
//! compares the stable fields exactly (instance counts, completeness),
//! ratchets `total_solve_steps` against upward regression beyond 5%, and
//! ignores timings.

use idiomatch_bench::report::{nested_object, percentile, Json, Report};
use idioms::{DetectOptions, IdiomKind};
use std::time::Instant;

fn main() {
    // Arguments: `--passes N` (or a bare number), `--check` selects
    // drift-check mode, anything else is the output path.
    let mut passes: usize = 10;
    let mut out_path = String::from("BENCH_detect.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--check" {
            check = true;
        } else if arg == "--passes" {
            passes = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--passes takes a number")
        } else {
            match arg.parse::<usize>() {
                Ok(n) => passes = n,
                Err(_) => out_path = arg,
            }
        }
    }
    passes = passes.max(1);

    let modules: Vec<ssair::Module> = benchsuite::all()
        .iter()
        .map(|b| minicc::compile(b.source, b.name).expect("bundled benchmark compiles"))
        .collect();
    let fs: Vec<&ssair::Function> = modules.iter().flat_map(|m| &m.functions).collect();
    let opts = DetectOptions::default();

    // Warm-up pass (also the source of the step/instance counts, which
    // are deterministic across passes).
    let detections = idioms::detect_functions(&fs, &opts);
    let instances: usize = detections.iter().map(|d| d.instances.len()).sum();
    let complete = detections.iter().all(|d| d.complete);
    let total_steps: u64 = detections.iter().map(|d| d.steps).sum();
    let skeleton_steps: u64 = detections.iter().map(|d| d.skeleton_steps).sum();
    let pruned_pairs: u64 = detections.iter().map(|d| d.pruned_pairs).sum();
    let mut steps_by_idiom: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for d in &detections {
        for (&kind, &s) in &d.steps_by_kind {
            *steps_by_idiom.entry(kind.constraint_name()).or_default() += s;
        }
    }
    debug_assert_eq!(steps_by_idiom.len(), IdiomKind::ALL.len());
    let steps_pairs: Vec<(&str, u64)> = steps_by_idiom.iter().map(|(&k, &v)| (k, v)).collect();
    let steps_raw = nested_object(&steps_pairs);
    // Provisional (per-function) parallel-safety certificate mix across
    // every detected instance — deterministic, so drift-guarded.
    let mut cert_counts: std::collections::BTreeMap<idioms::ParallelSafety, u64> =
        Default::default();
    for d in &detections {
        for (safety, n) in d.certificate_counts() {
            *cert_counts.entry(safety).or_default() += n;
        }
    }
    let cert_pairs: Vec<(&str, u64)> = [
        idioms::ParallelSafety::IndependentIterations,
        idioms::ParallelSafety::ReductionOnly,
        idioms::ParallelSafety::Serial,
    ]
    .iter()
    .map(|s| (s.as_str(), cert_counts.get(s).copied().unwrap_or(0)))
    .collect();
    let certs_raw = nested_object(&cert_pairs);

    let stable = |passes: usize,
                  mean_ms: f64,
                  min_ms: f64,
                  per_idiom_raw: Json,
                  p50_ms: f64,
                  p95_ms: f64,
                  fingerprint_ms: f64| {
        Report::new()
            .stable("bench", Json::S("detect_all_21_benchmarks".into()))
            .stable("functions", Json::U(fs.len() as u64))
            .stable("instances", Json::U(instances as u64))
            .stable("certificates", certs_raw.clone())
            .volatile("passes", Json::U(passes as u64))
            .volatile("mean_ms", Json::F(mean_ms, 3))
            .volatile("min_ms", Json::F(min_ms, 3))
            .volatile("per_idiom_mean_ms", per_idiom_raw)
            .volatile("per_function_p50_ms", Json::F(p50_ms, 4))
            .volatile("per_function_p95_ms", Json::F(p95_ms, 4))
            .stable("complete", Json::B(complete))
            // Perf ratchet: improvements land freely, regressions above
            // +5% fail CI until the artifact is consciously regenerated.
            .bounded_up("total_solve_steps", total_steps, 0.05)
            .stable("pruned_pairs", Json::U(pruned_pairs))
            .volatile("skeleton_solve_steps", Json::U(skeleton_steps))
            .volatile("fingerprint_ms", Json::F(fingerprint_ms, 3))
            .volatile("solve_steps_by_idiom", steps_raw.clone())
    };

    if check {
        if let Err(e) =
            stable(0, 0.0, 0.0, Json::Raw("{}".into()), 0.0, 0.0, 0.0).check_drift(&out_path)
        {
            eprintln!("{e}");
            std::process::exit(1);
        }
        eprintln!("{out_path}: stable fields match the current code");
        return;
    }

    // Full-suite passes through the parallel driver (the headline mean).
    let mut samples_ms: Vec<f64> = Vec::with_capacity(passes);
    for _ in 0..passes {
        let t = Instant::now();
        let n: usize = idioms::detect_functions(&fs, &opts)
            .iter()
            .map(|d| d.instances.len())
            .sum();
        assert_eq!(n, instances, "detection must be deterministic");
        samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let mean_ms = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    let min_ms = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);

    // Per-function serial latency profile: each function sampled `passes`
    // times back to back, keeping the minimum — the steady-state latency,
    // measured the way micro-benchmark harnesses do (warm caches and
    // branch predictors, and a minimum that only the code can reach:
    // scheduler jitter is strictly additive). Percentiles are then taken
    // across the functions.
    let fn_ms: Vec<f64> = fs
        .iter()
        .map(|f| {
            let mut best = f64::INFINITY;
            for _ in 0..passes {
                let t = Instant::now();
                let _ = idioms::detect_with(f, &opts);
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            best
        })
        .collect();
    let p50_ms = percentile(&fn_ms, 50.0);
    let p95_ms = percentile(&fn_ms, 95.0);

    // Cost of the fingerprint prepass itself: one from-scratch
    // fingerprint (CFG + dominators + loop forest + linear walk) per
    // function, averaged over the passes.
    let mut fingerprint_total = 0.0;
    for _ in 0..passes {
        let t = Instant::now();
        for f in &fs {
            let _ = analysis::FunctionFingerprint::of(f);
        }
        fingerprint_total += t.elapsed().as_secs_f64() * 1e3;
    }
    let fingerprint_ms = fingerprint_total / passes as f64;

    // Per-idiom solve cost: each kind's compiled constraint run in
    // isolation over every function, with `Solver` construction (IR
    // analyses, candidate buckets) hoisted out of the timed region so
    // the numbers profile the constraint search itself — unseeded, the
    // strategy-independent baseline comparable across PRs (the seeded
    // production pipeline is what `mean_ms` measures).
    let solve_opts = solver::SolveOptions {
        max_solutions: opts.max_solutions,
        max_steps: opts.max_steps,
    };
    let mut per_idiom_acc: std::collections::BTreeMap<&'static str, f64> = Default::default();
    for _ in 0..passes {
        for f in &fs {
            let s = solver::Solver::new(f);
            for kind in IdiomKind::ALL {
                let t = Instant::now();
                let _ = s.solve_outcome(idioms::compiled(kind), &solve_opts);
                *per_idiom_acc.entry(kind.constraint_name()).or_default() +=
                    t.elapsed().as_secs_f64() * 1e3;
            }
        }
    }
    let per_idiom: Vec<(&str, String)> = per_idiom_acc
        .iter()
        .map(|(&k, total)| (k, format!("{:.3}", total / passes as f64)))
        .collect();
    let per_idiom_raw = nested_object(&per_idiom);

    let report = stable(
        passes,
        mean_ms,
        min_ms,
        per_idiom_raw,
        p50_ms,
        p95_ms,
        fingerprint_ms,
    );
    report.write(&out_path);
    print!("{}", report.render());
}
