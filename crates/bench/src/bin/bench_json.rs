//! Machine-readable perf baseline: times suite-wide idiom detection and
//! writes `BENCH_detect.json` (mean/min ms per full-suite pass, total and
//! per-idiom solver steps) so the performance trajectory across PRs has
//! comparable data points.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin bench_json`
//! (optionally `[passes] [output-path]`), or `--check` to verify the
//! committed artifact's stable fields (instance counts, solver steps —
//! not timings) against the current code without rewriting it (the CI
//! drift guard).

use idiomatch_bench::report::{Json, Report};
use idioms::{DetectOptions, IdiomKind};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    // Arguments in any order: a number is the pass count, `--check`
    // selects drift-check mode, anything else is the output path.
    let mut passes: usize = 10;
    let mut out_path = String::from("BENCH_detect.json");
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            match arg.parse::<usize>() {
                Ok(n) => passes = n.max(1),
                Err(_) => out_path = arg,
            }
        }
    }

    let modules: Vec<ssair::Module> = benchsuite::all()
        .iter()
        .map(|b| minicc::compile(b.source, b.name).expect("bundled benchmark compiles"))
        .collect();
    let fs: Vec<&ssair::Function> = modules.iter().flat_map(|m| &m.functions).collect();
    let opts = DetectOptions::default();

    // Warm-up pass (also the source of the step/instance counts, which
    // are deterministic across passes).
    let detections = idioms::detect_functions(&fs, &opts);
    let instances: usize = detections.iter().map(|d| d.instances.len()).sum();
    let complete = detections.iter().all(|d| d.complete);
    let total_steps: u64 = detections.iter().map(|d| d.steps).sum();
    let mut steps_by_idiom: BTreeMap<&'static str, u64> = BTreeMap::new();
    for d in &detections {
        for (&kind, &s) in &d.steps_by_kind {
            *steps_by_idiom.entry(kind.constraint_name()).or_default() += s;
        }
    }
    debug_assert_eq!(steps_by_idiom.len(), IdiomKind::ALL.len());
    let steps_json: Vec<String> = steps_by_idiom
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let steps_raw = format!("{{\n{}\n  }}", steps_json.join(",\n"));

    let stable = |passes: usize, mean_ms: f64, min_ms: f64| {
        Report::new()
            .stable("bench", Json::S("detect_all_21_benchmarks".into()))
            .stable("functions", Json::U(fs.len() as u64))
            .stable("instances", Json::U(instances as u64))
            .volatile("passes", Json::U(passes as u64))
            .volatile("mean_ms", Json::F(mean_ms, 3))
            .volatile("min_ms", Json::F(min_ms, 3))
            .stable("complete", Json::B(complete))
            .stable("total_solve_steps", Json::U(total_steps))
            .stable("solve_steps_by_idiom", Json::Raw(steps_raw.clone()))
    };

    if check {
        // Drift guard: the committed artifact must carry the stable
        // fields the current code produces; timings are not compared.
        if let Err(e) = stable(0, 0.0, 0.0).check_drift(&out_path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        eprintln!("{out_path}: stable fields match the current code");
        return;
    }

    let mut samples_ms: Vec<f64> = Vec::with_capacity(passes);
    for _ in 0..passes {
        let t = Instant::now();
        let n: usize = idioms::detect_functions(&fs, &opts)
            .iter()
            .map(|d| d.instances.len())
            .sum();
        assert_eq!(n, instances, "detection must be deterministic");
        samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let mean_ms = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    let min_ms = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);

    let report = stable(passes, mean_ms, min_ms);
    report.write(&out_path);
    print!("{}", report.render());
}
