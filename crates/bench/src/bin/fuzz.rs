//! The end-to-end differential fuzz driver: generates `count` seeded
//! programs with planted idioms and near-miss mutants (`progen`), runs
//! the full pipeline oracle on each (detect → assert planted ⊆ detected
//! and no near-miss false positives → transform → multi-seed
//! differential validation), and writes `BENCH_fuzz.json` with recall,
//! false-positive and validation-failure counts plus throughput.
//!
//! Any failing program is greedily shrunk to a minimal reproducer; the
//! reproducer is printed in corpus format and, when run from the repo
//! root, written to `tests/corpus/seed-<seed>.c` for check-in. The
//! process exits non-zero on any failure — this is the CI smoke gate.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin fuzz --
//! [count] [seed-start] [output-path] [--canary]`
//! (two numbers are `count` then `seed-start`; `--canary` injects the
//! deliberately broken reduction replacement to demonstrate the oracle
//! catching and shrinking a miscompile — it must make the run fail).

use idiomatch_bench::report::{object_array, Json, Report};
use progen::{check, generate, shrink, to_corpus, Canary, Failure, Spec};
use std::time::Instant;

fn failure_class(f: &Failure) -> &'static str {
    match f {
        Failure::Compile(_) => "compile",
        Failure::Truncated { .. } => "truncated",
        Failure::InvalidIr { .. } => "invalid_ir",
        Failure::AdversaryCertified { .. } => "adversary_certified",
        Failure::ReversalDiverged(_) => "reversal_diverged",
        Failure::MissedPlant { .. } => "missed_plant",
        Failure::NotReplaced { .. } => "not_replaced",
        Failure::FalsePositive { .. } => "false_positive",
        Failure::Validation(_) => "validation",
    }
}

/// Shrinks a failing spec under "same failure class" and reports it.
fn report_failure(spec: &Spec, failure: &Failure, canary: Canary) {
    let class = failure_class(failure);
    eprintln!("seed {}: {failure}", spec.seed);
    let min = shrink(spec, |s| {
        check(s, canary)
            .err()
            .is_some_and(|f| failure_class(&f) == class)
    });
    let text = to_corpus(&min, &format!("seed-{}", spec.seed), &failure.to_string());
    // Only pipeline-bug classes belong in the corpus (its policy: a
    // checked-in case pins a fixed bug and must replay clean). A
    // non-compiling or budget-truncated program is a generator bug —
    // print it, but don't seed tests/corpus with a case that can never
    // pass replay.
    let corpus_worthy = matches!(
        failure,
        Failure::MissedPlant { .. }
            | Failure::FalsePositive { .. }
            | Failure::NotReplaced { .. }
            | Failure::InvalidIr { .. }
            | Failure::AdversaryCertified { .. }
            | Failure::ReversalDiverged(_)
            | Failure::Validation(_)
    );
    let dir = std::path::Path::new("tests/corpus");
    if dir.is_dir() && canary == Canary::None && corpus_worthy {
        let path = dir.join(format!("seed-{}.c", spec.seed));
        match std::fs::write(&path, &text) {
            Ok(()) => eprintln!("wrote minimized reproducer to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    eprintln!(
        "--- minimized reproducer ({} lines) ---",
        text.lines().count()
    );
    eprintln!("{text}");
}

fn main() {
    let mut count: u64 = 500;
    let mut seed_start: u64 = 0;
    let mut out_path = String::from("BENCH_fuzz.json");
    let mut canary = Canary::None;
    let mut seen_number = false;
    for arg in std::env::args().skip(1) {
        if arg == "--canary" {
            canary = Canary::BreakReductionInit;
        } else {
            match arg.parse::<u64>() {
                Ok(v) if !seen_number => {
                    count = v.max(1);
                    seen_number = true;
                }
                Ok(v) => seed_start = v,
                Err(_) => out_path = arg,
            }
        }
    }

    // `planted`/`near_misses` count every generated program — failing
    // ones included — so the recall denominator is auditable from the
    // artifact. `detected`/`replaced` accumulate over passing programs
    // only (the oracle stops at the first violated guarantee), which
    // makes `planted_recall` = planted-in-passing / planted a
    // conservative bound: exactly 1.0 iff no program failed a plant.
    let mut planted = 0u64;
    let mut planted_ok = 0u64;
    let mut near_misses = 0u64;
    let mut detected = 0u64;
    let mut replaced = 0u64;
    let mut reversal_checked = 0u64;
    let mut solve_steps = 0u64;
    let mut detect_s = 0f64;
    let mut detect_replace_s = 0f64;
    let mut execute_s = 0f64;
    let mut failures: Vec<(u64, &'static str)> = Vec::new();
    let t0 = Instant::now();
    for seed in seed_start..seed_start + count {
        let spec = generate(seed);
        planted += spec.expected().len() as u64;
        near_misses += spec.forbidden().len() as u64;
        match check(&spec, canary) {
            Ok(c) => {
                planted_ok += c.planted as u64;
                detected += c.detected as u64;
                replaced += c.replaced as u64;
                reversal_checked += c.reversal_checked as u64;
                solve_steps += c.solve_steps;
                detect_s += c.detect_s;
                detect_replace_s += c.detect_replace_s;
                execute_s += c.execute_s;
            }
            Err(f) => {
                failures.push((seed, failure_class(&f)));
                report_failure(&spec, &f, canary);
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let recall = planted_ok as f64 / (planted.max(1)) as f64;

    let count_class = |cls: &str| failures.iter().filter(|(_, c)| *c == cls).count() as u64;
    let failures_json: Vec<String> = failures
        .iter()
        .map(|(seed, cls)| format!("{{\"seed\": {seed}, \"class\": \"{cls}\"}}"))
        .collect();
    let report = Report::new()
        .stable("bench", Json::S("progen_fuzz".into()))
        .stable("programs", Json::U(count))
        .stable("seed_start", Json::U(seed_start))
        .stable("canary", Json::B(canary != Canary::None))
        .stable("planted", Json::U(planted))
        .stable("planted_recall", Json::F(recall, 4))
        .stable("near_misses", Json::U(near_misses))
        .stable("detected", Json::U(detected))
        .stable("replaced", Json::U(replaced))
        .stable("missed_plants", Json::U(count_class("missed_plant")))
        .stable("false_positives", Json::U(count_class("false_positive")))
        .stable(
            "adversary_certified",
            Json::U(count_class("adversary_certified")),
        )
        .stable("reversal_checked", Json::U(reversal_checked))
        .stable(
            "reversal_diverged",
            Json::U(count_class("reversal_diverged")),
        )
        .stable("validation_failures", Json::U(count_class("validation")))
        .stable(
            "other_failures",
            Json::U(
                failures.len() as u64
                    - count_class("missed_plant")
                    - count_class("false_positive")
                    - count_class("adversary_certified")
                    - count_class("reversal_diverged")
                    - count_class("validation"),
            ),
        )
        .stable("solve_steps", Json::U(solve_steps))
        // `elapsed_s` (and the headline `programs_per_sec`) folds in
        // program generation, lowering and multi-seed validation; the
        // detect-only and detect+replace splits measure the compiler
        // pipeline itself, and the execute split isolates the bytecode
        // VM (multi-seed validation + reversal oracle) — together these
        // are what the perf trajectory tracks across PRs.
        .rate("elapsed_s", "programs_per_sec", count, elapsed)
        .rate("detect_s", "detect_programs_per_sec", count, detect_s)
        .rate(
            "detect_replace_s",
            "detect_replace_programs_per_sec",
            count,
            detect_replace_s,
        )
        .rate("execute_s", "execute_programs_per_sec", count, execute_s)
        .stable("failures", object_array(&failures_json));
    report.write(&out_path);
    print!("{}", report.render());

    if !failures.is_empty() {
        eprintln!("{} of {count} programs failed the oracle", failures.len());
        std::process::exit(1);
    }
}
