//! Machine-readable transformation coverage: runs detect → transform-all
//! → differential validation (original vs transformed under several
//! seeded inputs) for every benchmark and writes `BENCH_replace.json` —
//! the replacement-side companion of `BENCH_detect.json`.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin table_replace`
//! (optionally `[output-path]`).

use idiomatch_bench::report::{Json, Report};
use idiomatch_core::ValidationError;
use xform::{Outcome, XformError};

struct Row {
    name: &'static str,
    detected: usize,
    replaced: usize,
    unsupported: usize,
    unsound: usize,
    shadowed: usize,
    validated: bool,
    failure: Option<ValidationError>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replace.json".into());
    let seeds = benchsuite::VALIDATION_SEEDS;

    let mut rows: Vec<Row> = Vec::new();
    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
        let report =
            idiomatch_core::transform_and_validate_module(&module, b.entry, b.setup, &seeds);
        let mut row = Row {
            name: b.name,
            detected: report.xform.outcomes.len(),
            replaced: 0,
            unsupported: 0,
            unsound: 0,
            shadowed: 0,
            validated: report.validation.is_ok(),
            failure: report.validation.err(),
        };
        for o in &report.xform.outcomes {
            match &o.outcome {
                Outcome::Replaced(_) => row.replaced += 1,
                Outcome::Shadowed { .. } => row.shadowed += 1,
                Outcome::Failed(XformError::Unsupported(_)) => row.unsupported += 1,
                Outcome::Failed(XformError::Unsound(_)) => row.unsound += 1,
            }
        }
        rows.push(row);
    }

    let headers = [
        "benchmark",
        "detected",
        "replaced",
        "unsupported",
        "unsound",
        "shadowed",
        "validated",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.detected.to_string(),
                r.replaced.to_string(),
                r.unsupported.to_string(),
                r.unsound.to_string(),
                r.shadowed.to_string(),
                if r.validated { "ok" } else { "FAIL" }.to_owned(),
            ]
        })
        .collect();
    idiomatch_bench::print_rows(&headers, &table);
    for r in rows.iter().filter(|r| !r.validated) {
        eprintln!(
            "{}: VALIDATION FAILED: {}",
            r.name,
            r.failure.as_ref().expect("failing rows carry the error")
        );
    }

    let totals = rows.iter().fold((0, 0, 0, 0, 0), |t, r| {
        (
            t.0 + r.detected,
            t.1 + r.replaced,
            t.2 + r.unsupported,
            t.3 + r.unsound,
            t.4 + r.shadowed,
        )
    });
    let failures = rows.iter().filter(|r| !r.validated).count();

    // Everything in this artifact is deterministic, so every field is
    // stable (CI additionally pins the whole file via `git diff`).
    let bench_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"detected\": {}, \"replaced\": {}, \"unsupported\": {}, \"unsound\": {}, \"shadowed\": {}, \"validated\": {}}}",
                r.name, r.detected, r.replaced, r.unsupported, r.unsound, r.shadowed, r.validated
            )
        })
        .collect();
    let seeds_json: Vec<String> = seeds.iter().map(u64::to_string).collect();
    Report::new()
        .stable("bench", Json::S("replace_all_21_benchmarks".into()))
        .stable("seeds", Json::Raw(format!("[{}]", seeds_json.join(", "))))
        .stable("detected", Json::U(totals.0 as u64))
        .stable("replaced", Json::U(totals.1 as u64))
        .stable("unsupported", Json::U(totals.2 as u64))
        .stable("unsound", Json::U(totals.3 as u64))
        .stable("shadowed", Json::U(totals.4 as u64))
        .stable("validation_failures", Json::U(failures as u64))
        .stable(
            "benchmarks",
            Json::Raw(format!("[\n{}\n  ]", bench_json.join(",\n"))),
        )
        .write(&out_path);
    if failures > 0 {
        std::process::exit(1);
    }
}
