//! Machine-readable transformation coverage: runs detect → transform-all
//! → differential validation (original vs transformed under several
//! seeded inputs) for every benchmark and writes `BENCH_replace.json` —
//! the replacement-side companion of `BENCH_detect.json`.
//!
//! Beyond coverage, the artifact records the *legality evidence* of every
//! applied replacement: how many regions were proven safe by the affine
//! dependence test, how many still rest on the restrict assumption
//! (`legality_assumed` is a shrink-only ratchet — evidence may only get
//! stronger), how many attempts the legality gate rejected, and the
//! parallel-safety certificate mix of the committed rewrites. Every
//! transformed module must also pass the structural IR verifier.
//!
//! Usage: `cargo run --release -p idiomatch-bench --bin table_replace`
//! (optionally `[output-path]`).

use idiomatch_bench::report::{nested_object, Json, Report};
use idiomatch_core::ValidationError;
use idioms::ParallelSafety;
use xform::{Outcome, XformError};

struct Row {
    name: &'static str,
    detected: usize,
    replaced: usize,
    unsupported: usize,
    unsound: usize,
    shadowed: usize,
    proven: usize,
    assumed: usize,
    validated: bool,
    failure: Option<ValidationError>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replace.json".into());
    let seeds = benchsuite::VALIDATION_SEEDS;

    let mut rows: Vec<Row> = Vec::new();
    let mut rejected = 0u64;
    let mut cert_counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut verify_failures = 0u64;
    for b in benchsuite::all() {
        let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
        let report =
            idiomatch_core::transform_and_validate_module(&module, b.entry, b.setup, &seeds);
        if let Err(errors) = ssair::verify::verify_module(&report.xform.module) {
            verify_failures += 1;
            for e in &errors {
                eprintln!("{}: IR VERIFICATION FAILED: {e}", b.name);
            }
        }
        let mut row = Row {
            name: b.name,
            detected: report.xform.outcomes.len(),
            replaced: 0,
            unsupported: 0,
            unsound: 0,
            shadowed: 0,
            proven: 0,
            assumed: 0,
            validated: report.validation.is_ok(),
            failure: report.validation.err(),
        };
        for o in &report.xform.outcomes {
            match &o.outcome {
                Outcome::Replaced(rep) => {
                    row.replaced += 1;
                    match rep.verdict.kind {
                        analysis::VerdictKind::Proven => row.proven += 1,
                        analysis::VerdictKind::AssumedRestrict => row.assumed += 1,
                        analysis::VerdictKind::Rejected => {
                            unreachable!("rejected verdicts never commit")
                        }
                    }
                    *cert_counts
                        .entry(rep.certificate.safety.as_str())
                        .or_insert(0) += 1;
                }
                Outcome::Shadowed { .. } => row.shadowed += 1,
                Outcome::Failed(XformError::Unsupported(_)) => row.unsupported += 1,
                Outcome::Failed(XformError::Unsound(msg)) => {
                    row.unsound += 1;
                    if msg.starts_with("legality rejected") {
                        rejected += 1;
                    }
                }
            }
        }
        rows.push(row);
    }

    let headers = [
        "benchmark",
        "detected",
        "replaced",
        "proven",
        "assumed",
        "unsupported",
        "unsound",
        "shadowed",
        "validated",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.detected.to_string(),
                r.replaced.to_string(),
                r.proven.to_string(),
                r.assumed.to_string(),
                r.unsupported.to_string(),
                r.unsound.to_string(),
                r.shadowed.to_string(),
                if r.validated { "ok" } else { "FAIL" }.to_owned(),
            ]
        })
        .collect();
    idiomatch_bench::print_rows(&headers, &table);
    for r in rows.iter().filter(|r| !r.validated) {
        eprintln!(
            "{}: VALIDATION FAILED: {}",
            r.name,
            r.failure.as_ref().expect("failing rows carry the error")
        );
    }

    let totals = rows.iter().fold((0, 0, 0, 0, 0, 0, 0), |t, r| {
        (
            t.0 + r.detected,
            t.1 + r.replaced,
            t.2 + r.unsupported,
            t.3 + r.unsound,
            t.4 + r.shadowed,
            t.5 + r.proven,
            t.6 + r.assumed,
        )
    });
    let failures = rows.iter().filter(|r| !r.validated).count();
    let certs: Vec<(&str, u64)> = [
        ParallelSafety::IndependentIterations,
        ParallelSafety::ReductionOnly,
        ParallelSafety::Serial,
    ]
    .iter()
    .map(|s| {
        (
            s.as_str(),
            cert_counts.get(s.as_str()).copied().unwrap_or(0),
        )
    })
    .collect();

    // Everything in this artifact is deterministic, so every field is
    // stable (CI additionally pins the whole file via `git diff`) —
    // except `legality_assumed`, a shrink-only ratchet: replacements may
    // migrate from assumed-restrict to proven, never back.
    let bench_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"detected\": {}, \"replaced\": {}, \"proven\": {}, \"assumed\": {}, \"unsupported\": {}, \"unsound\": {}, \"shadowed\": {}, \"validated\": {}}}",
                r.name, r.detected, r.replaced, r.proven, r.assumed, r.unsupported, r.unsound, r.shadowed, r.validated
            )
        })
        .collect();
    let seeds_json: Vec<String> = seeds.iter().map(u64::to_string).collect();
    Report::new()
        .stable("bench", Json::S("replace_all_21_benchmarks".into()))
        .stable("seeds", Json::Raw(format!("[{}]", seeds_json.join(", "))))
        .stable("detected", Json::U(totals.0 as u64))
        .stable("replaced", Json::U(totals.1 as u64))
        .stable("unsupported", Json::U(totals.2 as u64))
        .stable("unsound", Json::U(totals.3 as u64))
        .stable("shadowed", Json::U(totals.4 as u64))
        .stable("legality_proven", Json::U(totals.5 as u64))
        .bounded_up("legality_assumed", totals.6 as u64, 0.0)
        .stable("legality_rejected", Json::U(rejected))
        .stable("certificates", nested_object(&certs))
        .stable("verify_failures", Json::U(verify_failures))
        .stable("validation_failures", Json::U(failures as u64))
        .stable(
            "benchmarks",
            Json::Raw(format!("[\n{}\n  ]", bench_json.join(",\n"))),
        )
        .write(&out_path);
    if failures > 0 || verify_failures > 0 {
        std::process::exit(1);
    }
}
