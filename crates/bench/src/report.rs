//! Shared machine-readable benchmark reports (`BENCH_*.json`).
//!
//! Every bench binary used to hand-roll its own JSON string and its own
//! artifact-drift policy; this module centralizes both:
//!
//! * [`Report`] renders a flat, deterministic-key-order JSON object
//!   (hand-rolled on purpose — the workspace has no networked
//!   dependencies), with each field marked **stable** (deterministic
//!   output of the code, guarded against drift in CI) or **volatile**
//!   (timings, throughput — expected to differ per machine);
//! * [`Report::write`] persists the artifact;
//! * [`Report::check_drift`] verifies that a committed artifact still
//!   contains exactly the stable fields the current code produces, so a
//!   code change that alters instance counts, solver steps or coverage
//!   without regenerating the artifact fails CI — without false alarms
//!   from machine-dependent timings.

use std::fmt::Write as _;

/// The `p`-th percentile (nearest-rank) of a sample set. Sorts a copy —
/// callers pass raw latency vectors. An empty set yields `0.0`; a
/// single-element set yields that element for every `p`.
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Renders a list of pre-rendered JSON objects as a nested array value
/// (`[]` when empty), matching the report's 2-space top-level indent.
#[must_use]
pub fn object_array(items: &[String]) -> Json {
    if items.is_empty() {
        Json::Raw("[]".into())
    } else {
        let body: Vec<String> = items.iter().map(|i| format!("    {i}")).collect();
        Json::Raw(format!("[\n{}\n  ]", body.join(",\n")))
    }
}

/// Renders `(key, rendered value)` pairs as a nested JSON object value,
/// matching the report's 2-space top-level indent.
#[must_use]
pub fn nested_object<K: std::fmt::Display, V: std::fmt::Display>(pairs: &[(K, V)]) -> Json {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    Json::Raw(format!("{{\n{}\n  }}", body.join(",\n")))
}

/// One rendered JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// Unsigned integer.
    U(u64),
    /// Float with fixed decimals.
    F(f64, usize),
    /// Boolean.
    B(bool),
    /// String (quoted, must not need escaping).
    S(String),
    /// Pre-rendered JSON spliced verbatim (arrays, nested objects).
    Raw(String),
}

impl Json {
    fn render(&self) -> String {
        match self {
            Json::U(v) => v.to_string(),
            Json::F(v, p) => format!("{v:.p$}", p = p),
            Json::B(v) => v.to_string(),
            Json::S(s) => {
                assert!(
                    !s.contains(['"', '\\', '\n']),
                    "string field needs no escaping by construction: {s:?}"
                );
                format!("\"{s}\"")
            }
            Json::Raw(r) => r.clone(),
        }
    }
}

/// Drift policy of one field.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Policy {
    /// Deterministic output of the code: the committed fragment must
    /// match exactly.
    Stable,
    /// Machine-dependent (timings, throughput): never compared.
    Volatile,
    /// Deterministic but perf-tracked: the current value may drift
    /// *downward* freely (improvements don't force a regeneration), but
    /// must not exceed the committed value by more than the given
    /// fraction (e.g. `0.05` = +5%) — the ratchet that keeps solver-step
    /// wins from being silently given back.
    BoundedUp(f64),
}

struct Field {
    key: &'static str,
    value: Json,
    policy: Policy,
}

/// A flat JSON report with per-field drift policy.
#[derive(Default)]
pub struct Report {
    fields: Vec<Field>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a stable (drift-guarded) field.
    #[must_use]
    pub fn stable(mut self, key: &'static str, value: Json) -> Report {
        self.fields.push(Field {
            key,
            value,
            policy: Policy::Stable,
        });
        self
    }

    /// Adds a volatile (machine-dependent) field.
    #[must_use]
    pub fn volatile(mut self, key: &'static str, value: Json) -> Report {
        self.fields.push(Field {
            key,
            value,
            policy: Policy::Volatile,
        });
        self
    }

    /// Adds the volatile elapsed/throughput pair every batch driver
    /// reports: `secs_key` (seconds, 3 decimals) and `rate_key`
    /// (`count` per second, 1 decimal) — machine-dependent, never
    /// drift-compared.
    #[must_use]
    pub fn rate(
        self,
        secs_key: &'static str,
        rate_key: &'static str,
        count: u64,
        secs: f64,
    ) -> Report {
        self.volatile(secs_key, Json::F(secs, 3))
            .volatile(rate_key, Json::F(count as f64 / secs.max(1e-9), 1))
    }

    /// Adds a perf-ratchet field: drift-guarded against *upward*
    /// regression beyond `tolerance` (a fraction, e.g. `0.05`), while
    /// downward movement passes without regenerating the artifact.
    #[must_use]
    pub fn bounded_up(mut self, key: &'static str, value: u64, tolerance: f64) -> Report {
        self.fields.push(Field {
            key,
            value: Json::U(value),
            policy: Policy::BoundedUp(tolerance),
        });
        self
    }

    /// The rendered fragment of one field, exactly as it appears in the
    /// artifact (used both for writing and for drift comparison).
    fn fragment(f: &Field) -> String {
        format!("  \"{}\": {}", f.key, f.value.render())
    }

    /// Renders the whole artifact.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let body: Vec<String> = self.fields.iter().map(Self::fragment).collect();
        let _ = write!(out, "{}", body.join(",\n"));
        out.push_str("\n}\n");
        out
    }

    /// Writes the artifact to `path` (and notes it on stderr).
    ///
    /// # Panics
    /// Panics when the path is not writable — bench artifacts are always
    /// produced in a writable checkout.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("{path} not writable: {e}"));
        eprintln!("wrote {path}");
    }

    /// Checks the committed artifact at `path` against this report's
    /// stable fields.
    ///
    /// # Errors
    /// Lists every stable field whose rendered fragment is missing from
    /// the committed file (meaning the artifact was not regenerated
    /// after a behaviour change), or an IO problem.
    pub fn check_drift(&self, path: &str) -> Result<(), String> {
        let committed =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        // A fragment only counts as present when followed by a field
        // separator or the closing brace: a bare substring check would
        // accept a current value that is a prefix of the committed one
        // (e.g. 1644 matching inside 16443).
        let present = |frag: &String| {
            committed.contains(&format!("{frag},\n")) || committed.contains(&format!("{frag}\n}}"))
        };
        let missing: Vec<String> = self
            .fields
            .iter()
            .filter(|f| f.policy == Policy::Stable)
            .map(Self::fragment)
            .filter(|frag| !present(frag))
            .collect();
        // Perf-ratchet fields: compare numerically against the committed
        // value with one-sided headroom.
        let mut regressed: Vec<String> = Vec::new();
        for f in &self.fields {
            let Policy::BoundedUp(tol) = f.policy else {
                continue;
            };
            let Json::U(current) = f.value else {
                continue;
            };
            let prefix = format!("  \"{}\": ", f.key);
            let old: Option<u64> = committed
                .lines()
                .find_map(|l| l.strip_prefix(&prefix))
                .and_then(|rest| rest.trim_end_matches(',').trim().parse().ok());
            match old {
                None => regressed.push(format!(
                    "  \"{}\": missing from the committed artifact",
                    f.key
                )),
                Some(old) => {
                    let ceiling = (old as f64 * (1.0 + tol)).floor() as u64;
                    if current > ceiling {
                        regressed.push(format!(
                            "  \"{}\": {current} regressed above committed {old} (+{:.0}% ceiling {ceiling})",
                            f.key,
                            tol * 100.0
                        ));
                    }
                }
            }
        }
        // The reverse direction: every top-level key in the committed
        // artifact must still be one the current code emits, or a field
        // deleted from the report would survive in the artifact forever.
        let known: Vec<String> = self
            .fields
            .iter()
            .map(|f| format!("  \"{}\":", f.key))
            .collect();
        let stale: Vec<&str> = committed
            .lines()
            .filter(|l| l.starts_with("  \"")) // top-level keys only (nested lines indent deeper)
            .filter(|l| !known.iter().any(|k| l.starts_with(k.as_str())))
            .collect();
        if missing.is_empty() && stale.is_empty() && regressed.is_empty() {
            Ok(())
        } else {
            let mut msg = format!("{path} drifted from the current code;");
            if !missing.is_empty() {
                msg.push_str(&format!(" stale stable fields:\n{}", missing.join("\n")));
            }
            if !regressed.is_empty() {
                msg.push_str(&format!(
                    "\nperf-ratchet fields regressed:\n{}",
                    regressed.join("\n")
                ));
            }
            if !stale.is_empty() {
                msg.push_str(&format!(
                    "\ncommitted fields the code no longer emits:\n{}",
                    stale.join("\n")
                ));
            }
            msg.push_str("\nregenerate the artifact and commit it");
            Err(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new()
            .stable("bench", Json::S("x".into()))
            .stable("count", Json::U(60))
            .volatile("mean_ms", Json::F(12.3456, 3))
            .stable("complete", Json::B(true))
            .stable("by_kind", Json::Raw("{\n    \"A\": 1\n  }".into()))
    }

    /// Nearest-rank percentiles, including the edge cases that bite:
    /// the empty set, a single element (every percentile is it), and an
    /// even-count set (p50 is the lower middle under nearest-rank — no
    /// interpolation).
    #[test]
    fn percentile_nearest_rank_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        // One element: p50, p95 and p99 all collapse onto it.
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(percentile(&[7.5], p), 7.5);
        }
        // Even count (unsorted input is fine — the helper sorts).
        let even = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&even, 50.0), 2.0, "lower middle, not 2.5");
        assert_eq!(percentile(&even, 75.0), 3.0);
        assert_eq!(percentile(&even, 100.0), 4.0);
        // Odd count: p50 is the true middle.
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), 3.0);
        // A 100-element 1..=100 sample pins the classic ranks.
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
    }

    #[test]
    fn object_array_and_nested_object_render_report_indented() {
        assert_eq!(object_array(&[]).render(), "[]");
        let arr = object_array(&["{\"a\": 1}".to_owned(), "{\"b\": 2}".to_owned()]);
        assert_eq!(arr.render(), "[\n    {\"a\": 1},\n    {\"b\": 2}\n  ]");
        let obj = nested_object(&[("x", 1), ("y", 2)]);
        assert_eq!(obj.render(), "{\n    \"x\": 1,\n    \"y\": 2\n  }");
    }

    #[test]
    fn rate_fields_are_volatile() {
        let dir = std::env::temp_dir().join("bench_report_rate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let path = path.to_str().unwrap();
        let with = |count, secs| Report::new().rate("elapsed_s", "per_sec", count, secs);
        assert_eq!(
            with(100, 2.0).render(),
            "{\n  \"elapsed_s\": 2.000,\n  \"per_sec\": 50.0\n}\n"
        );
        std::fs::write(path, with(100, 2.0).render()).unwrap();
        // A wildly different timing never trips the drift guard.
        assert!(with(100, 9000.0).check_drift(path).is_ok());
        // Zero elapsed must not divide by zero.
        assert!(with(5, 0.0).render().contains("per_sec"));
    }

    #[test]
    fn renders_flat_deterministic_json() {
        assert_eq!(
            sample().render(),
            "{\n  \"bench\": \"x\",\n  \"count\": 60,\n  \"mean_ms\": 12.346,\n  \"complete\": true,\n  \"by_kind\": {\n    \"A\": 1\n  }\n}\n"
        );
    }

    #[test]
    fn drift_guard_ignores_volatile_but_catches_stable_changes() {
        let dir = std::env::temp_dir().join("bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, sample().render()).unwrap();

        // Different timing: no drift.
        let retimed = Report::new()
            .stable("bench", Json::S("x".into()))
            .stable("count", Json::U(60))
            .volatile("mean_ms", Json::F(99.9, 3))
            .stable("complete", Json::B(true))
            .stable("by_kind", Json::Raw("{\n    \"A\": 1\n  }".into()));
        assert!(retimed.check_drift(path).is_ok());

        // A field the code no longer emits must be flagged, even though
        // every currently-emitted fragment is present in the artifact.
        let shrunk = Report::new()
            .stable("bench", Json::S("x".into()))
            .stable("count", Json::U(60))
            .volatile("mean_ms", Json::F(99.9, 3))
            .stable("complete", Json::B(true));
        let err = shrunk.check_drift(path).unwrap_err();
        assert!(err.contains("by_kind"), "stale committed key: {err}");

        // Different stable count: drift.
        let changed = Report::new().stable("count", Json::U(61));
        let err = changed.check_drift(path).unwrap_err();
        assert!(err.contains("\"count\": 61"), "{err}");

        // A current value that is a string PREFIX of the committed one
        // (60 → 6) is still drift — the match is separator-anchored.
        let prefix = Report::new().stable("count", Json::U(6));
        assert!(prefix.check_drift(path).is_err(), "prefix must not pass");
    }

    #[test]
    fn bounded_up_ratchet_allows_improvement_but_catches_regression() {
        let dir = std::env::temp_dir().join("bench_report_ratchet_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, Report::new().bounded_up("steps", 1000, 0.05).render()).unwrap();
        let with = |v: u64| Report::new().bounded_up("steps", v, 0.05);
        assert!(with(1000).check_drift(path).is_ok(), "unchanged passes");
        assert!(
            with(400).check_drift(path).is_ok(),
            "improvement passes without regeneration"
        );
        assert!(with(1050).check_drift(path).is_ok(), "within +5% headroom");
        let err = with(1051).check_drift(path).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // The key must exist in the committed artifact at all.
        let err = Report::new()
            .bounded_up("other", 1, 0.05)
            .check_drift(path)
            .unwrap_err();
        assert!(
            err.contains("missing") || err.contains("no longer emits"),
            "{err}"
        );
    }
}
