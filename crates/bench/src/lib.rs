//! # idiomatch-bench — regenerating every table and figure of §8
//!
//! One binary per paper artifact (see `DESIGN.md`'s experiment index):
//!
//! | artifact | binary | what it prints |
//! |---|---|---|
//! | Table 1  | `table1` | idioms detected by IDL vs Polly vs ICC per class |
//! | Table 2  | `table2` | compile time without/with IDL, overhead % |
//! | Table 3  | `table3` | per-API runtime (ms) on CPU/iGPU/GPU |
//! | Figure 16 | `fig16` | idiom instances per benchmark by class |
//! | Figure 17 | `fig17` | runtime coverage per benchmark |
//! | Figure 18 | `fig18` | speedup vs sequential per platform (± lazy copy) |
//! | Figure 19 | `fig19` | IDL best vs handwritten OpenMP/OpenCL |
//!
//! Beyond the paper artifacts, three binaries write machine-readable
//! `BENCH_*.json` trajectory data via the shared [`report`] helper:
//! `bench_json` (detection perf + solver steps, with a `--check` drift
//! guard), `table_replace` (suite-wide replacement coverage) and `fuzz`
//! (the `progen` differential fuzz driver).
//!
//! The shared measurement logic lives here so the binaries stay thin and
//! the Criterion benches (`benches/`) can reuse it.

pub mod report;

use idiomatch_core::Analysis;
use std::collections::BTreeMap;

/// Analyses for all 21 benchmarks, in suite order.
#[must_use]
pub fn analyze_all() -> Vec<Analysis> {
    benchsuite::all()
        .iter()
        .map(idiomatch_core::analyze)
        .collect()
}

/// The Table 1 rows: per-detector counts by idiom class.
#[must_use]
pub fn table1(analyses: &[Analysis]) -> BTreeMap<&'static str, [usize; 5]> {
    // columns: scalar red, histogram, stencil, matrix, sparse
    let mut idl = [0usize; 5];
    let mut polly = [0usize; 5];
    let mut icc = [0usize; 5];
    for a in analyses {
        idl[0] += a.by_class.get("Scalar Reduction").copied().unwrap_or(0);
        idl[1] += a.by_class.get("Histogram Reduction").copied().unwrap_or(0);
        idl[2] += a.by_class.get("Stencil").copied().unwrap_or(0);
        idl[3] += a.by_class.get("Matrix Op.").copied().unwrap_or(0);
        idl[4] += a.by_class.get("Sparse Matrix Op.").copied().unwrap_or(0);
        polly[0] += a.polly.0;
        polly[2] += a.polly.1;
        icc[0] += a.icc;
    }
    BTreeMap::from([("IDL", idl), ("Polly", polly), ("ICC", icc)])
}

/// Renders a Markdown-ish table to stdout.
pub fn print_rows(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{:>w$}", c, w = widths[k]))
            .collect();
        println!("| {} |", s.join(" | "));
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Formats a time in ms like the paper's Table 3 (two decimals).
#[must_use]
pub fn ms(t: f64) -> String {
    format!("{t:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper() {
        let analyses = analyze_all();
        let t = table1(&analyses);
        assert_eq!(t["IDL"], [45, 5, 6, 1, 3]);
        assert_eq!(t["Polly"], [3, 0, 5, 0, 0]);
        assert_eq!(t["ICC"], [28, 0, 0, 0, 0]);
    }

    #[test]
    fn figure18_shape_holds() {
        let analyses = analyze_all();
        let get = |n: &str| analyses.iter().find(|a| a.name == n).unwrap();
        // sgemm: the external GPU wins by a large factor (paper: >275x).
        let sgemm = get("sgemm");
        let (_, gpu) = idiomatch_core::speedup_on(sgemm, hetero::Platform::Gpu, false).unwrap();
        let (_, igpu) = idiomatch_core::speedup_on(sgemm, hetero::Platform::IGpu, false).unwrap();
        let (_, cpu) = idiomatch_core::speedup_on(sgemm, hetero::Platform::Cpu, false).unwrap();
        assert!(gpu > 50.0, "sgemm GPU speedup {gpu}");
        assert!(gpu > igpu && igpu > cpu, "sgemm platform order");
        // MG and histo favour the integrated GPU (paper §8.3).
        for n in ["MG", "histo"] {
            let a = get(n);
            let (_, ig) = idiomatch_core::speedup_on(a, hetero::Platform::IGpu, false).unwrap();
            let (_, dg) = idiomatch_core::speedup_on(a, hetero::Platform::Gpu, false).unwrap();
            assert!(ig > dg, "{n}: iGPU {ig} should beat eager dGPU {dg}");
        }
        // tpacf: CPU beats the discrete GPU (transfer-dominated).
        let tpacf = get("tpacf");
        let (_, cpu) = idiomatch_core::speedup_on(tpacf, hetero::Platform::Cpu, true).unwrap();
        let (_, tgpu) = idiomatch_core::speedup_on(tpacf, hetero::Platform::Gpu, false).unwrap();
        assert!(cpu > tgpu, "tpacf: CPU {cpu} should beat eager GPU {tgpu}");
        // CG: lazy copying is what makes the GPU worthwhile.
        let cg = get("CG");
        let (_, lazy) = idiomatch_core::speedup_on(cg, hetero::Platform::Gpu, true).unwrap();
        let (_, eager) = idiomatch_core::speedup_on(cg, hetero::Platform::Gpu, false).unwrap();
        assert!(lazy > eager, "CG: lazy {lazy} > eager {eager}");
        assert!(lazy > 4.0, "CG speedup {lazy}");
    }
}
