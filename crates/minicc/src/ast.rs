//! Abstract syntax tree of the minicc C subset.

/// Source-level types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `int`: 32-bit signed.
    Int,
    /// `long`: 64-bit signed.
    Long,
    /// `float`: 32-bit IEEE.
    Float,
    /// `double`: 64-bit IEEE.
    Double,
    /// `void` (function returns only).
    Void,
    /// Pointer.
    Ptr(Box<CType>),
}

impl CType {
    /// Pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> CType {
        CType::Ptr(Box::new(self))
    }

    /// `true` for `int`/`long`.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int | CType::Long)
    }

    /// `true` for `float`/`double`.
    #[must_use]
    pub fn is_float(&self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal (`1.0`, `2.5e-3`, `1.0f`).
    FloatLit(f64, /*is_f32:*/ bool),
    /// Variable reference.
    Var(String),
    /// Arithmetic binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison, result is boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and (bitwise on `i1`; both sides evaluated).
    And(Box<Expr>, Box<Expr>),
    /// Logical or (bitwise on `i1`; both sides evaluated).
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Array / pointer subscript with one or more indices
    /// (`a[i]`, `A[i][j]` for local multi-dim arrays).
    Index {
        /// The array variable name.
        base: String,
        /// One index per dimension.
        indices: Vec<Expr>,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Ternary conditional, lowered to `select` (both sides evaluated).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        other: Box<Expr>,
    },
    /// Explicit cast `(type) expr`.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// A variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// An integer literal.
    #[must_use]
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// A `double` literal.
    #[must_use]
    pub fn f64(v: f64) -> Expr {
        Expr::FloatLit(v, false)
    }

    /// A one-dimensional subscript `base[idx]`.
    #[must_use]
    pub fn idx(base: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index {
            base: base.into(),
            indices: vec![idx],
        }
    }

    /// A call `name(args...)`.
    #[must_use]
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// A binary arithmetic node.
    #[must_use]
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`. Associated constructors, not `self` methods — these
    /// cannot collide with the `std::ops` traits clippy worries about.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// A comparison node.
    #[must_use]
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// A cast `(ty) e`.
    #[must_use]
    pub fn cast(ty: CType, e: Expr) -> Expr {
        Expr::Cast {
            ty,
            expr: Box::new(e),
        }
    }

    /// A ternary `cond ? then : other` (lowered to `select`).
    #[must_use]
    pub fn ternary(cond: Expr, then: Expr, other: Expr) -> Expr {
        Expr::Ternary {
            cond: Box::new(cond),
            then: Box::new(then),
            other: Box::new(other),
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index {
        /// Array variable name.
        base: String,
        /// One index per dimension.
        indices: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration, optionally with array dimensions and initializer.
    Decl {
        /// Declared name.
        name: String,
        /// Element type.
        ty: CType,
        /// Array dimensions; empty for scalars.
        dims: Vec<usize>,
        /// Scalar initializer.
        init: Option<Expr>,
        /// Source line (for diagnostics).
        line: usize,
    },
    /// Assignment `target = value` or compound `target op= value`.
    Assign {
        /// Destination.
        target: LValue,
        /// `Some(op)` for compound assignment.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// Bare expression (usually a call).
    Expr(Expr, usize),
    /// `if` with optional `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        other: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for` loop.
    For {
        /// Init statement (declaration or assignment).
        init: Option<Box<Stmt>>,
        /// Condition; `None` means `1`.
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return(Option<Expr>, usize),
    /// Braced block (scope is flat; shadowing is rejected at lowering).
    Block(Vec<Stmt>),
}

impl Stmt {
    /// A scalar declaration with an initializer.
    #[must_use]
    pub fn decl(name: impl Into<String>, ty: CType, init: Expr) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty,
            dims: vec![],
            init: Some(init),
            line: 0,
        }
    }

    /// A plain assignment `target = value`.
    #[must_use]
    pub fn assign(target: LValue, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op: None,
            value,
            line: 0,
        }
    }

    /// A compound assignment `target op= value`.
    #[must_use]
    pub fn assign_op(target: LValue, op: BinOp, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op: Some(op),
            value,
            line: 0,
        }
    }

    /// `return e;`
    #[must_use]
    pub fn ret(e: Expr) -> Stmt {
        Stmt::Return(Some(e), 0)
    }

    /// The canonical counted loop `for (int iter = begin; iter < end;
    /// iter++) { body }` — the shape every idiom template builds on.
    #[must_use]
    pub fn count_for(iter: impl Into<String>, begin: Expr, end: Expr, body: Vec<Stmt>) -> Stmt {
        let iter = iter.into();
        Stmt::For {
            init: Some(Box::new(Stmt::decl(iter.clone(), CType::Int, begin))),
            cond: Some(Expr::cmp(CmpOp::Lt, Expr::var(iter.clone()), end)),
            step: Some(Box::new(Stmt::assign(
                LValue::Var(iter.clone()),
                Expr::add(Expr::var(iter), Expr::int(1)),
            ))),
            body,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, CType)>,
    /// Return type.
    pub ret: CType,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: usize,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Function definitions in source order.
    pub funcs: Vec<FuncDef>,
}
